"""Tests for the declarative scenario harness."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import (
    Equivocate,
    Scenario,
    Silent,
    all_algorithms,
    bosco_weak,
    dex_freq,
    dex_prv,
    run_once,
    twostep,
)
from repro.types import DecisionKind
from repro.workloads.inputs import unanimous


class TestAlgorithmSpecs:
    def test_registry_contents(self):
        names = {spec.name for spec in all_algorithms()}
        assert names == {
            "brasileiro",
            "izumi",
            "bosco-weak",
            "bosco-strong",
            "dex-freq",
            "dex-prv",
            "twostep",
        }

    def test_max_t(self):
        assert dex_freq().max_t(13) == 2
        assert dex_freq().max_t(7) == 1
        assert dex_freq().max_t(6) == 0
        assert bosco_weak().max_t(11) == 2

    def test_table1_metadata_present(self):
        for spec in all_algorithms():
            assert "processes" in spec.table1


class TestScenarioValidation:
    def test_default_t_is_maximum(self):
        scenario = Scenario(dex_freq(), unanimous(1, 13))
        assert scenario.config.t == 2

    def test_explicit_t_respected(self):
        scenario = Scenario(dex_freq(), unanimous(1, 13), t=1)
        assert scenario.config.t == 1

    def test_resilience_violation_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(dex_freq(), unanimous(1, 6), t=1)

    def test_too_many_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(dex_freq(), unanimous(1, 7), faults={5: Silent(), 6: Silent()})

    def test_unknown_uc_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(dex_freq(), unanimous(1, 7), uc="magic").build()

    def test_crash_model_enforcement_mentions_fault(self):
        from repro.harness import brasileiro

        with pytest.raises(ConfigurationError, match="Equivocate"):
            Scenario(brasileiro(), unanimous(1, 4), faults={3: Equivocate(1, 2)})


class TestScenarioExecution:
    def test_run_once_shortcut(self):
        result = run_once(dex_freq(), unanimous(1, 7), seed=3)
        assert result.decided_value == 1

    def test_components_cover_all_processes(self):
        scenario = Scenario(dex_freq(), unanimous(1, 7), faults={6: Silent()})
        protocols, services = scenario.components()
        assert set(protocols) == set(range(7))
        assert "oracle-uc" in services

    def test_real_uc_has_no_services(self):
        scenario = Scenario(dex_freq(), unanimous(1, 7), uc="real")
        _, services = scenario.components()
        assert services == {}

    def test_seed_controls_determinism(self):
        r1 = Scenario(dex_freq(), [1, 1, 1, 1, 2, 2, 2], seed=9).run()
        r2 = Scenario(dex_freq(), [1, 1, 1, 1, 2, 2, 2], seed=9).run()
        assert r1.decisions == r2.decisions
        assert r1.stats.messages_sent == r2.stats.messages_sent

    def test_uc_step_cost_flows_through(self):
        from repro.sim.latency import ConstantLatency
        from repro.workloads.inputs import split

        result = Scenario(
            twostep(), split(1, 2, 4, 2), uc_step_cost=5,
            latency=ConstantLatency(1.0), seed=0,
        ).run()
        assert {d.step for d in result.correct_decisions.values()} == {5}

    def test_max_events_passes_through(self):
        scenario = Scenario(dex_freq(), unanimous(1, 7), max_events=123)
        assert scenario.build().max_events == 123

    def test_trace_enabled(self):
        result = Scenario(dex_freq(), unanimous(1, 7), trace=True, seed=0).run()
        assert result.tracer.by_event("decide")

    def test_privileged_spec_parameterised(self):
        result = Scenario(dex_prv("GO"), ["GO"] * 6, seed=1).run()
        assert result.decided_value == "GO"
        assert {d.kind for d in result.correct_decisions.values()} == {
            DecisionKind.ONE_STEP
        }


class TestTopLevelExports:
    def test_public_api_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_fault_kinds_exported(self):
        from repro import Collapse, Crash, Equivocate, Garbage, Silent, Spoiler

        for cls in (Silent, Crash, Equivocate, Garbage, Spoiler, Collapse):
            assert cls is not None

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
