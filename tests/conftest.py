"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.types import SystemConfig


@pytest.fixture
def config7() -> SystemConfig:
    """n=7, t=1 — the smallest system for the frequency pair (n > 6t)."""
    return SystemConfig(7, 1)


@pytest.fixture
def config13() -> SystemConfig:
    """n=13, t=2 — two tolerated faults under the frequency pair."""
    return SystemConfig(13, 2)


@pytest.fixture
def config4() -> SystemConfig:
    """n=4, t=0 — degenerate fault-free system."""
    return SystemConfig(4, 0)


def kinds_of(result):
    """Set of decision kinds among correct processes of a run."""
    return {d.kind for d in result.correct_decisions.values()}


def steps_of(result):
    """Set of decision steps among correct processes of a run."""
    return {d.step for d in result.correct_decisions.values()}
