"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import signal

import pytest

from repro.types import SystemConfig


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Hard wall-clock cap for ``@pytest.mark.net`` tests.

    Socket-engine tests fork real processes; a hub bug that swallows the
    deadline would otherwise hang the whole suite.  SIGALRM interrupts the
    test body even when it is blocked in a syscall (select/recv), which a
    soft in-Python timeout cannot do.
    """
    marker = item.get_closest_marker("net")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    timeout = marker.kwargs.get("timeout", 60)

    def on_alarm(signum, frame):
        raise TimeoutError(f"net test exceeded the hard {timeout}s timeout")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def config7() -> SystemConfig:
    """n=7, t=1 — the smallest system for the frequency pair (n > 6t)."""
    return SystemConfig(7, 1)


@pytest.fixture
def config13() -> SystemConfig:
    """n=13, t=2 — two tolerated faults under the frequency pair."""
    return SystemConfig(13, 2)


@pytest.fixture
def config4() -> SystemConfig:
    """n=4, t=0 — degenerate fault-free system."""
    return SystemConfig(4, 0)


def kinds_of(result):
    """Set of decision kinds among correct processes of a run."""
    return {d.kind for d in result.correct_decisions.values()}


def steps_of(result):
    """Set of decision steps among correct processes of a run."""
    return {d.step for d in result.correct_decisions.values()}
