"""Tests for metrics aggregation and report rendering."""

from repro.harness import Scenario, dex_freq, twostep
from repro.metrics.collectors import RunAggregate
from repro.metrics.report import format_histogram, format_series, format_table
from repro.sim.latency import ConstantLatency
from repro.types import DecisionKind
from repro.workloads.inputs import split, unanimous


def make_results():
    fast = Scenario(dex_freq(), unanimous(1, 7), seed=0, latency=ConstantLatency(1.0)).run()
    slow = Scenario(dex_freq(), split(1, 2, 7, 3), seed=1, latency=ConstantLatency(1.0)).run()
    return fast, slow


class TestRunAggregate:
    def test_add_accumulates(self):
        fast, slow = make_results()
        agg = RunAggregate(label="test")
        agg.add(fast)
        agg.add(slow)
        assert agg.runs == 2
        assert len(agg.steps) == 14  # 7 correct decisions per run
        assert agg.max_steps == [1, 4]

    def test_mean_and_worst(self):
        fast, slow = make_results()
        agg = RunAggregate()
        agg.add(fast)
        agg.add(slow)
        assert agg.mean_step == (7 * 1 + 7 * 4) / 14
        assert agg.worst_step == 4
        assert agg.mean_max_step == 2.5

    def test_kind_fractions(self):
        fast, slow = make_results()
        agg = RunAggregate()
        agg.add(fast)
        agg.add(slow)
        assert agg.kind_fraction(DecisionKind.ONE_STEP) == 0.5
        assert agg.kind_fraction(DecisionKind.UNDERLYING) == 0.5
        assert agg.kind_fraction(DecisionKind.TWO_STEP) == 0.0

    def test_fraction_within(self):
        fast, slow = make_results()
        agg = RunAggregate()
        agg.add(fast)
        agg.add(slow)
        assert agg.fraction_within(1) == 0.5
        assert agg.fraction_within(4) == 1.0

    def test_percentiles(self):
        agg = RunAggregate()
        agg.steps = [1, 1, 1, 4]
        assert agg.step_percentile(0.5) == 1.0
        assert agg.step_percentile(0.99) == 4.0

    def test_unanimity_violation_counting(self):
        fast, _ = make_results()
        agg = RunAggregate()
        agg.add(fast, expected_value=2)  # decided 1, expected 2
        assert agg.unanimity_violations == 1
        agg.add(fast, expected_value=1)
        assert agg.unanimity_violations == 1

    def test_histogram(self):
        agg = RunAggregate()
        agg.steps = [1, 1, 2]
        assert agg.step_histogram() == {1: 2, 2: 1}

    def test_empty_aggregate_safe(self):
        agg = RunAggregate()
        assert agg.mean_step == 0.0
        assert agg.worst_step == 0
        assert agg.step_percentile(0.5) == 0.0
        assert agg.fraction_within(1) == 0.0

    def test_summary_keys(self):
        fast, _ = make_results()
        agg = RunAggregate()
        agg.add(fast)
        summary = agg.summary()
        assert summary["runs"] == 1
        assert summary["one_step_frac"] == 1.0
        assert summary["agreement_violations"] == 0


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table([{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert "22" in lines[3]

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_title(self):
        assert format_table([{"a": 1}], title="T").splitlines()[0] == "T"

    def test_empty(self):
        assert format_table([]) == ""
        assert format_table([], title="T") == "T\n"

    def test_float_formatting(self):
        text = format_table([{"x": 0.5}])
        assert "0.5" in text


class TestFormatHistogram:
    def test_bars_scale(self):
        text = format_histogram({1: 10, 2: 5}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert "(empty)" in format_histogram({})


class TestFormatSeries:
    def test_series_table(self):
        text = format_series([0, 1], [0.5, 0.7], "f", "coverage")
        assert "f" in text and "coverage" in text
        assert "0.7" in text


class TestStreamAggregate:
    """The event-stream collector: fold EventStats sinks, retain counters only."""

    def _run_with_sink(self, inputs, seed):
        from repro.metrics.collectors import StreamAggregate

        stats = StreamAggregate.new_sink()
        result = Scenario(
            dex_freq(), inputs, seed=seed, latency=ConstantLatency(1.0),
            event_sink=stats,
        ).run()
        return stats, result

    def test_folds_counters_from_event_stats(self):
        from repro.metrics.collectors import StreamAggregate

        agg = StreamAggregate(label="fold")
        fast_stats, fast = self._run_with_sink(unanimous(1, 7), seed=0)
        slow_stats, slow = self._run_with_sink(split(1, 2, 7, 3), seed=1)
        agg.add_stats(fast_stats, wall_seconds=0.5)
        agg.add_stats(slow_stats, wall_seconds=1.5, timed_out=True)
        assert agg.runs == 2
        assert len(agg.steps) == 14  # 7 decisions per run
        assert agg.timeouts == 1
        # Counters agree with the run results the stream mirrored.
        assert agg.sends == fast.stats.messages_sent + slow.stats.messages_sent
        assert agg.max_steps == [fast.max_correct_step, slow.max_correct_step]

    def test_derived_statistics(self):
        from repro.metrics.collectors import StreamAggregate

        agg = StreamAggregate()
        fast_stats, _ = self._run_with_sink(unanimous(1, 7), seed=0)
        agg.add_stats(fast_stats, wall_seconds=2.0)
        assert agg.one_step_fraction == 1.0
        assert agg.kind_fraction(DecisionKind.ONE_STEP) == 1.0
        assert agg.mean_step == 1.0
        assert agg.throughput == agg.delivers / 2.0
        assert agg.latency_percentile(0.5) >= 0.0

    def test_summary_keys_are_report_ready(self):
        from repro.metrics.collectors import StreamAggregate

        agg = StreamAggregate()
        stats, _ = self._run_with_sink(unanimous(1, 7), seed=3)
        agg.add_stats(stats, wall_seconds=1.0)
        summary = agg.summary()
        for key in (
            "runs", "sends", "delivers", "one_step_frac",
            "throughput_msgs_per_s", "p50_decision_latency_s", "timeouts",
        ):
            assert key in summary
        assert summary["runs"] == 1
        assert summary["one_step_frac"] == 1.0

    def test_empty_aggregate_is_all_zeros(self):
        from repro.metrics.collectors import StreamAggregate

        agg = StreamAggregate()
        assert agg.mean_step == 0.0
        assert agg.one_step_fraction == 0.0
        assert agg.throughput == 0.0
        assert agg.latency_percentile(0.99) == 0.0
        assert agg.summary()["runs"] == 0
