"""Additional property-based suites: privileged pair under targeted
attacks, pipeline over random tables, coverage/guarantee consistency, and
the sync engine under random crash schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.coverage import dex_one_step_guaranteed
from repro.apps.pipeline import run_pipelined
from repro.baselines.sync_onestep import SyncOneStepConsensus, sync_one_step_level
from repro.conditions.frequency import FrequencyPair
from repro.conditions.privileged import PrivilegedPair
from repro.conditions.views import View
from repro.harness import Collapse, Scenario, Spoiler, dex_prv
from repro.sim.synchronous import CrashEvent, SynchronousSimulation
from repro.types import SystemConfig

seeds = st.integers(min_value=0, max_value=50_000)


@settings(max_examples=25, deadline=None)
@given(
    inputs=st.lists(st.sampled_from(["C", "A"]), min_size=6, max_size=6),
    seed=seeds,
)
def test_dex_prv_survives_spoiler(inputs, seed):
    """The privileged instantiation under the condition-aware spoiler."""
    result = Scenario(
        dex_prv("C"), inputs, faults={5: Spoiler(fallback="A")}, seed=seed
    ).run()
    assert result.all_correct_decided()
    assert result.agreement_holds()


@settings(max_examples=25, deadline=None)
@given(
    inputs=st.lists(st.sampled_from([1, 2]), min_size=7, max_size=7),
    seed=seeds,
)
def test_dex_freq_survives_collapser(inputs, seed):
    result = Scenario(
        dex_freq_spec(), inputs, faults={6: Collapse(2)}, seed=seed
    ).run()
    assert result.all_correct_decided()
    assert result.agreement_holds()


def dex_freq_spec():
    from repro.harness import dex_freq

    return dex_freq()


@settings(max_examples=15, deadline=None)
@given(
    rivals=st.lists(st.integers(min_value=0, max_value=3), min_size=4, max_size=4),
    window=st.integers(min_value=1, max_value=4),
    seed=seeds,
)
def test_pipeline_logs_identical(rivals, window, seed):
    """Random contention pattern per slot: all replica logs identical."""
    n, slots = 7, 4
    table = {pid: [f"c{s}" for s in range(slots)] for pid in range(n)}
    for slot, rival_count in enumerate(rivals):
        for pid in range(min(rival_count, 3)):
            table[pid][slot] = f"r{slot}"
    result, logs = run_pipelined(table, window=window, seed=seed)
    assert len(set(logs.values())) == 1
    assert len(logs[0]) == slots


@settings(max_examples=60, deadline=None)
@given(
    inputs=st.lists(st.sampled_from([1, 2, 3]), min_size=13, max_size=13),
    f=st.integers(min_value=0, max_value=2),
)
def test_guarantee_consistency_freq(inputs, f):
    """coverage.dex_one_step_guaranteed ↔ the pair's level computation."""
    pair = FrequencyPair(13, 2)
    vector = View(inputs)
    level = pair.one_step_level(vector)
    expected = level is not None and level >= f
    assert dex_one_step_guaranteed(pair, vector, f) == expected


@settings(max_examples=60, deadline=None)
@given(
    count_m=st.integers(min_value=0, max_value=11),
    f=st.integers(min_value=0, max_value=2),
)
def test_guarantee_consistency_prv(count_m, f):
    """Privileged levels match the closed threshold #m > 3t + k."""
    pair = PrivilegedPair(11, 2, privileged="m")
    vector = View(["m"] * count_m + ["x"] * (11 - count_m))
    level = pair.one_step_level(vector)
    if count_m > 3 * 2 + f and f <= 2:
        assert level is not None and level >= f
    if level is not None:
        assert count_m > 3 * 2 + level


@settings(max_examples=20, deadline=None)
@given(
    inputs=st.lists(st.sampled_from([1, 2]), min_size=5, max_size=5),
    crash_round=st.integers(min_value=1, max_value=3),
    seed=seeds,
)
def test_sync_agreement_random_crashes(inputs, crash_round, seed):
    """Synchronous consensus: agreement + termination for random inputs and
    a random crash (with adversary-chosen partial delivery)."""
    config = SystemConfig(5, 2)
    protocols = {
        pid: SyncOneStepConsensus(pid, config, inputs[pid])
        for pid in config.processes
    }
    crashes = {4: CrashEvent(round=crash_round)}
    result = SynchronousSimulation(config, protocols, crashes, seed=seed).run(5)
    assert result.agreement_holds()
    assert result.all_correct_decided()
    # one-round guarantee (level >= f with f = 1 crash)
    level = sync_one_step_level(View(inputs), config.t)
    if level is not None and level >= 1 and crash_round >= 2:
        # crash after round 1: round-1 views are complete
        assert {d.round for d in result.correct_decisions.values()} == {1}
