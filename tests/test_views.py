"""Unit + property tests for the view algebra (paper §3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conditions.views import (
    View,
    hamming_distance,
    merge_compatible,
    views_of,
)
from repro.types import BOTTOM

values = st.integers(min_value=0, max_value=3)
entries = st.one_of(values, st.just(BOTTOM))


def view_strategy(n_min=1, n_max=9):
    return st.lists(entries, min_size=n_min, max_size=n_max).map(View)


class TestConstruction:
    def test_bottoms(self):
        view = View.bottoms(4)
        assert len(view) == 4
        assert view.known == 0
        assert not view.is_complete

    def test_of_literal(self):
        view = View.of(1, BOTTOM, 2)
        assert view[0] == 1
        assert view[1] is BOTTOM
        assert view[2] == 2

    def test_with_entry_is_functional(self):
        view = View.of(1, 2)
        other = view.with_entry(0, 9)
        assert view[0] == 1
        assert other[0] == 9

    def test_equality_and_hash(self):
        assert View.of(1, 2) == View.of(1, 2)
        assert hash(View.of(1, 2)) == hash(View.of(1, 2))
        assert View.of(1, 2) != View.of(2, 1)

    def test_repr_marks_bottom(self):
        assert "⊥" in repr(View.of(1, BOTTOM))


class TestCounting:
    def test_count_ignores_bottom_for_values(self):
        view = View.of(1, 1, BOTTOM, 2)
        assert view.count(1) == 2
        assert view.count(2) == 1
        assert view.count(3) == 0

    def test_count_bottom(self):
        assert View.of(1, BOTTOM, BOTTOM).count(BOTTOM) == 2

    def test_known_is_paper_cardinality(self):
        assert View.of(1, BOTTOM, 2).known == 2
        assert View.bottoms(3).known == 0

    def test_values_set(self):
        assert View.of(1, 2, 2, BOTTOM).values() == {1, 2}


class TestFirstSecond:
    def test_first_most_frequent(self):
        assert View.of(1, 1, 2).first() == 1

    def test_first_tie_picks_largest(self):
        # Paper: "If two or more values appear most often, the largest one
        # is selected."
        assert View.of(1, 2).first() == 2
        assert View.of(3, 3, 5, 5).first() == 5

    def test_first_of_all_bottom_is_none(self):
        assert View.bottoms(3).first() is None

    def test_second(self):
        assert View.of(1, 1, 1, 2, 2, 3).second() == 2

    def test_second_tie_picks_largest(self):
        assert View.of(1, 1, 1, 2, 3).second() == 3

    def test_second_single_value_is_none(self):
        assert View.of(1, 1, BOTTOM).second() is None

    def test_frequency_gap(self):
        assert View.of(1, 1, 1, 2).frequency_gap() == 2
        assert View.of(1, 2).frequency_gap() == 0

    def test_frequency_gap_single_value(self):
        assert View.of(7, 7, 7).frequency_gap() == 3

    def test_frequency_gap_all_bottom(self):
        assert View.bottoms(4).frequency_gap() == 0


class TestContainment:
    def test_contained_in_basic(self):
        assert View.of(1, BOTTOM).contained_in(View.of(1, 2))
        assert not View.of(1, 3).contained_in(View.of(1, 2))

    def test_containment_is_reflexive(self):
        view = View.of(1, 2, BOTTOM)
        assert view.contained_in(view)

    def test_bottom_contained_in_everything(self):
        assert View.bottoms(2).contained_in(View.of(5, 6))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            View.of(1).contained_in(View.of(1, 2))


class TestDistance:
    def test_hamming_basic(self):
        assert hamming_distance(View.of(1, 2, 3), View.of(1, 9, 3)) == 1

    def test_bottom_counts_as_symbol(self):
        assert hamming_distance(View.of(1, BOTTOM), View.of(1, 2)) == 1
        assert hamming_distance(View.of(BOTTOM, BOTTOM), View.bottoms(2)) == 0

    def test_symmetry(self):
        a, b = View.of(1, 2, BOTTOM), View.of(2, 2, 3)
        assert hamming_distance(a, b) == hamming_distance(b, a)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_distance(View.of(1), View.of(1, 2))


class TestMerge:
    def test_compatible_views_merge(self):
        merged = merge_compatible(View.of(1, BOTTOM, 3), View.of(BOTTOM, 2, 3))
        assert merged == View.of(1, 2, 3)

    def test_conflicting_views_return_none(self):
        assert merge_compatible(View.of(1, 2), View.of(1, 3)) is None

    def test_merge_with_bottoms(self):
        merged = merge_compatible(View.bottoms(2), View.of(1, BOTTOM))
        assert merged == View.of(1, BOTTOM)


class TestFillAndViews:
    def test_fill_bottoms_from(self):
        view = View.of(1, BOTTOM, BOTTOM)
        complete = View.of(9, 8, 7)
        assert view.fill_bottoms_from(complete) == View.of(1, 8, 7)

    def test_views_of_counts(self):
        vector = View.of(1, 2, 3)
        all_views = list(views_of(vector, 1))
        # C(3,0) + C(3,1) = 4 views
        assert len(all_views) == 4
        assert vector in all_views

    def test_views_of_zero_bottoms(self):
        vector = View.of(1, 2)
        assert list(views_of(vector, 0)) == [vector]


# -- property-based laws -----------------------------------------------------------


@settings(max_examples=80)
@given(view_strategy())
def test_known_plus_bottoms_is_length(view):
    assert view.known + view.count(BOTTOM) == len(view)


@settings(max_examples=80)
@given(view_strategy())
def test_first_is_a_maximal_count_value(view):
    top = view.first()
    if top is None:
        assert view.known == 0
    else:
        assert all(view.count(top) >= view.count(v) for v in view.values())


@settings(max_examples=80)
@given(view_strategy())
def test_gap_nonnegative_and_bounded(view):
    assert 0 <= view.frequency_gap() <= view.known


@settings(max_examples=60)
@given(view_strategy(n_min=2, n_max=8), st.data())
def test_contained_views_merge(view, data):
    # Erase a random subset -> the sub-view merges back with the original.
    mask = data.draw(st.lists(st.booleans(), min_size=len(view), max_size=len(view)))
    sub = View(BOTTOM if m else e for e, m in zip(view, mask))
    assert sub.contained_in(view)
    merged = merge_compatible(sub, view)
    assert merged == view


@settings(max_examples=60)
@given(view_strategy(n_min=1, n_max=8))
def test_distance_triangle_with_fill(view):
    complete = View(0 if e is BOTTOM else e for e in view)
    assert hamming_distance(view, complete) == view.count(BOTTOM)
    assert view.fill_bottoms_from(complete) == complete
