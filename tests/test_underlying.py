"""Tests for the underlying-consensus stack: oracle, coin, ABA, ACS, MVC."""

import pytest

from repro.errors import ResilienceError
from repro.runtime.effects import Broadcast, Decide, Deliver, ServiceCall
from repro.runtime.protocol import Protocol
from repro.sim.latency import ConstantLatency
from repro.sim.runner import Simulation
from repro.types import DecisionKind, SystemConfig
from repro.underlying.aba import (
    DELIVER_TAG as ABA_TAG,
)
from repro.underlying.aba import (
    AbaDecided,
    AbaEst,
    BinaryAgreement,
)
from repro.underlying.acs import DELIVER_TAG as ACS_TAG
from repro.underlying.acs import CommonSubset
from repro.underlying.base import UC_DECIDE_TAG
from repro.underlying.coin import CommonCoin
from repro.underlying.multivalued import MultivaluedConsensus, extract_decision
from repro.underlying.oracle import (
    OracleConsensus,
    OracleProposal,
    OracleService,
)


class TestCommonCoin:
    def test_deterministic(self):
        coin = CommonCoin(seed=5)
        assert coin.bit("x", 3) == CommonCoin(seed=5).bit("x", 3)

    def test_instance_and_round_sensitivity(self):
        coin = CommonCoin(seed=5)
        bits = {coin.bit("x", r) for r in range(32)}
        assert bits == {0, 1}  # both values appear over rounds

    def test_value_in_range(self):
        coin = CommonCoin(seed=1)
        for r in range(20):
            assert 0 <= coin.value("e", r, 7) < 7

    def test_value_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            CommonCoin().value("e", 0, 0)


# -- oracle -------------------------------------------------------------------------


class TestOracleService:
    def make(self, n=4, t=1, step_cost=2):
        return OracleService(SystemConfig(n, t), step_cost=step_cost)

    def test_waits_for_quorum(self):
        service = self.make()
        assert service.on_call(0, OracleProposal(0, "a"), 1, 0.0) == []
        assert service.on_call(1, OracleProposal(0, "a"), 1, 0.0) == []
        replies = service.on_call(2, OracleProposal(0, "a"), 1, 0.0)
        # announcement to every proposer so far (late proposers get theirs
        # when their own proposal arrives)
        assert {r.dst for r in replies} == {0, 1, 2}

    def test_unanimity_of_majority(self):
        service = self.make()
        service.on_call(0, OracleProposal(0, "v"), 1, 0.0)
        service.on_call(1, OracleProposal(0, "v"), 1, 0.0)
        replies = service.on_call(2, OracleProposal(0, "w"), 1, 0.0)
        assert all(r.payload.value == "v" for r in replies)

    def test_step_cost_applied(self):
        service = self.make(step_cost=2)
        service.on_call(0, OracleProposal(0, "v"), 3, 0.0)
        service.on_call(1, OracleProposal(0, "v"), 2, 0.0)
        replies = service.on_call(2, OracleProposal(0, "v"), 1, 0.0)
        assert all(r.depth == 5 for r in replies)  # max(3,2,1) + 2

    def test_duplicate_caller_ignored(self):
        service = self.make()
        service.on_call(0, OracleProposal(0, "a"), 1, 0.0)
        assert service.on_call(0, OracleProposal(0, "b"), 1, 0.0) == []

    def test_late_proposer_gets_decision(self):
        service = self.make()
        for pid in range(3):
            service.on_call(pid, OracleProposal(0, "v"), 1, 0.0)
        replies = service.on_call(3, OracleProposal(0, "w"), 9, 0.0)
        assert len(replies) == 1
        assert replies[0].dst == 3
        assert replies[0].payload.value == "v"

    def test_instances_independent(self):
        service = self.make()
        for pid in range(3):
            service.on_call(pid, OracleProposal("a", 1), 1, 0.0)
        assert service.on_call(0, OracleProposal("b", 2), 1, 0.0) == []

    def test_garbage_payload_ignored(self):
        service = self.make()
        assert service.on_call(0, "garbage", 1, 0.0) == []

    def test_reset(self):
        service = self.make()
        for pid in range(3):
            service.on_call(pid, OracleProposal(0, "v"), 1, 0.0)
        service.reset()
        assert service.on_call(0, OracleProposal(0, "v"), 1, 0.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            OracleService(SystemConfig(4, 1), step_cost=-1)


class TestOracleConsensusAdapter:
    def test_propose_once(self):
        adapter = OracleConsensus(0, SystemConfig(4, 1))
        first = adapter.propose("v")
        assert len(first) == 1
        assert isinstance(first[0], ServiceCall)
        assert adapter.propose("w") == []
        assert adapter.has_proposed

    def test_decide_upcall(self):
        from repro.underlying.oracle import OracleDecision

        adapter = OracleConsensus(0, SystemConfig(4, 1), instance=7)
        effects = adapter.on_message(-1, OracleDecision(7, "v"))
        assert effects == [Deliver(UC_DECIDE_TAG, 0, "v")]
        # duplicate announcements ignored
        assert adapter.on_message(-1, OracleDecision(7, "v")) == []

    def test_wrong_instance_ignored(self):
        from repro.underlying.oracle import OracleDecision

        adapter = OracleConsensus(0, SystemConfig(4, 1), instance=7)
        assert adapter.on_message(-1, OracleDecision(8, "v")) == []


# -- binary agreement -----------------------------------------------------------------


def aba_system(config, inputs, byzantine=None, seed=0, coin_seed=0):
    coin = CommonCoin(coin_seed)
    byzantine = byzantine or {}
    protocols = {}

    class Node(Protocol):
        def __init__(self, pid, config, value):
            super().__init__(pid, config)
            self.aba = BinaryAgreement(pid, config, coin)
            self.value = value

        def on_start(self):
            return self._forward(self.aba.propose(self.value))

        def _forward(self, effects):
            out = []
            for e in effects:
                if isinstance(e, Deliver) and e.tag == ABA_TAG:
                    out.append(Decide(e.value, DecisionKind.UNDERLYING))
                else:
                    out.append(e)
            return out

        def on_message(self, sender, payload):
            return self._forward(self.aba.on_message(sender, payload))

    for pid in config.processes:
        protocols[pid] = byzantine.get(pid) or Node(pid, config, inputs[pid])
    return Simulation(config, protocols, faulty=frozenset(byzantine), seed=seed)


class TestBinaryAgreement:
    def test_resilience(self):
        with pytest.raises(ResilienceError):
            BinaryAgreement(0, SystemConfig(3, 1), CommonCoin())

    def test_input_validation(self):
        aba = BinaryAgreement(0, SystemConfig(4, 1), CommonCoin())
        with pytest.raises(ValueError):
            aba.propose(2)

    def test_propose_idempotent(self):
        aba = BinaryAgreement(0, SystemConfig(4, 1), CommonCoin())
        assert aba.propose(1)
        assert aba.propose(0) == []

    @pytest.mark.parametrize("value", [0, 1])
    @pytest.mark.parametrize("seed", range(3))
    def test_unanimous_input_decides_it(self, value, seed):
        config = SystemConfig(4, 1)
        result = aba_system(config, [value] * 4, seed=seed).run_until_decided()
        assert result.agreement_holds()
        assert result.decided_value == value

    @pytest.mark.parametrize("seed", range(5))
    def test_mixed_inputs_agree(self, seed):
        config = SystemConfig(4, 1)
        result = aba_system(config, [0, 1, 0, 1], seed=seed, coin_seed=seed).run_until_decided()
        assert result.agreement_holds()
        assert result.decided_value in (0, 1)

    @pytest.mark.parametrize("seed", range(3))
    def test_agreement_with_silent_fault(self, seed):
        config = SystemConfig(4, 1)

        class Quiet(Protocol):
            def on_message(self, sender, payload):
                return []

        result = aba_system(
            config, [1, 1, 0, 0], byzantine={3: Quiet(3, config)}, seed=seed
        ).run_until_decided()
        assert result.agreement_holds()

    @pytest.mark.parametrize("seed", range(3))
    def test_agreement_with_est_spammer(self, seed):
        config = SystemConfig(7, 2)

        class Spammer(Protocol):
            def on_start(self):
                return [Broadcast(AbaEst(r, r % 2)) for r in range(4)] + [
                    Broadcast(AbaDecided(0))
                ]

            def on_message(self, sender, payload):
                return []

        byz = {5: Spammer(5, config), 6: Spammer(6, config)}
        result = aba_system(
            config, [1, 1, 1, 1, 1, 0, 0], byzantine=byz, seed=seed
        ).run_until_decided()
        assert result.agreement_holds()

    def test_round_horizon_guards_memory(self):
        aba = BinaryAgreement(0, SystemConfig(4, 1), CommonCoin())
        aba.propose(1)
        assert aba.on_message(1, AbaEst(10_000, 1)) == []
        assert (10_000, 1) not in aba._est_from

    def test_decided_adoption_via_t_plus_one(self):
        config = SystemConfig(4, 1)
        aba = BinaryAgreement(0, config, CommonCoin())
        aba.propose(1)
        assert aba.decided is None
        aba.on_message(1, AbaDecided(0))
        effects = aba.on_message(2, AbaDecided(0))  # t+1 = 2 announcements
        assert aba.decided == 0
        assert any(isinstance(e, Deliver) for e in effects)


# -- ACS + multivalued -----------------------------------------------------------------


def mvc_system(config, inputs, byzantine=None, seed=0, coin_seed=0):
    coin = CommonCoin(coin_seed)
    byzantine = byzantine or {}

    class Node(Protocol):
        def __init__(self, pid, config, value):
            super().__init__(pid, config)
            self.mvc = MultivaluedConsensus(pid, config, coin)
            self.value = value

        def _forward(self, effects):
            out = []
            for e in effects:
                if isinstance(e, Deliver) and e.tag == UC_DECIDE_TAG:
                    out.append(Decide(e.value, DecisionKind.UNDERLYING))
                else:
                    out.append(e)
            return out

        def on_start(self):
            return self._forward(self.mvc.propose(self.value))

        def on_message(self, sender, payload):
            return self._forward(self.mvc.on_message(sender, payload))

    protocols = {
        pid: byzantine.get(pid) or Node(pid, config, inputs[pid])
        for pid in config.processes
    }
    return Simulation(config, protocols, faulty=frozenset(byzantine), seed=seed)


class TestExtractDecision:
    def test_plurality(self):
        assert extract_decision({0: "a", 1: "a", 2: "b"}) == "a"

    def test_tie_breaks_to_largest(self):
        assert extract_decision({0: "a", 1: "b"}) == "b"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            extract_decision({})


class TestMultivaluedConsensus:
    @pytest.mark.parametrize("seed", range(3))
    def test_unanimity(self, seed):
        config = SystemConfig(4, 1)
        result = mvc_system(config, ["v"] * 4, seed=seed).run_until_decided()
        assert result.decided_value == "v"

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement_mixed_inputs(self, seed):
        config = SystemConfig(4, 1)
        result = mvc_system(
            config, ["a", "b", "a", "b"], seed=seed, coin_seed=seed
        ).run_until_decided()
        assert result.agreement_holds()
        assert result.decided_value in ("a", "b")

    @pytest.mark.parametrize("seed", range(3))
    def test_termination_with_silent_fault(self, seed):
        config = SystemConfig(4, 1)

        class Quiet(Protocol):
            def on_message(self, sender, payload):
                return []

        result = mvc_system(
            config, ["v"] * 4, byzantine={3: Quiet(3, config)}, seed=seed
        ).run_until_decided()
        assert result.decided_value == "v"

    def test_unanimity_with_equivocating_rbc(self):
        config = SystemConfig(4, 1)
        from repro.broadcast.bracha import RbcInit
        from repro.runtime.composite import Envelope
        from repro.runtime.effects import Send

        class TwoFaced(Protocol):
            def on_start(self):
                return [
                    Send(
                        dst,
                        Envelope("acs", Envelope("rbc", RbcInit("X" if dst < 2 else "Y"))),
                    )
                    for dst in self.config.processes
                ]

            def on_message(self, sender, payload):
                return []

        result = mvc_system(
            config, ["v", "v", "v", "v"], byzantine={3: TwoFaced(3, config)}, seed=7
        ).run_until_decided()
        # all correct propose v and n - 2t > t: decision must be v
        assert result.decided_value == "v"


class TestCommonSubset:
    @pytest.mark.parametrize("seed", range(3))
    def test_subsets_identical_and_large(self, seed):
        config = SystemConfig(4, 1)
        coin = CommonCoin(seed)

        class Node(Protocol):
            def __init__(self, pid, config):
                super().__init__(pid, config)
                self.acs = CommonSubset(pid, config, coin)

            def _forward(self, effects):
                out = []
                for e in effects:
                    if isinstance(e, Deliver) and e.tag == ACS_TAG:
                        out.append(Decide(tuple(sorted(e.value.items())), DecisionKind.UNDERLYING))
                    else:
                        out.append(e)
                return out

            def on_start(self):
                return self._forward(self.acs.propose(("p", self.process_id)))

            def on_message(self, sender, payload):
                return self._forward(self.acs.on_message(sender, payload))

        protocols = {pid: Node(pid, config) for pid in config.processes}
        result = Simulation(config, protocols, seed=seed).run_until_decided()
        assert result.agreement_holds()
        subset = dict(result.decided_value)
        assert len(subset) >= config.quorum
        for j, value in subset.items():
            assert value == ("p", j)
