"""Cross-validation of the closed-form coverage formulas.

Three independent computations of the same quantities must agree:
exact weighted enumeration over ``{fav, con}^n``, the binomial closed
forms, and the Monte-Carlo estimators of :mod:`repro.analysis.coverage`.
"""

import itertools
import math

import pytest

from repro.analysis.closed_form import (
    bosco_one_step,
    count_exceeds_probability,
    dex_freq_one_step,
    dex_freq_two_step,
    dex_prv_one_step,
    gap_exceeds_probability,
)
from repro.analysis.coverage import (
    baseline_coverage,
    pair_coverage,
)
from repro.conditions.frequency import FrequencyPair
from repro.conditions.generators import VectorSampler
from repro.conditions.views import View
from repro.types import SystemConfig


def enumerate_probability(n, q, predicate):
    """Exact probability of ``predicate(vector)`` over weighted {1, 2}^n."""
    total = 0.0
    for bits in itertools.product([1, 2], repeat=n):
        vector = View(bits)
        x = bits.count(1)
        weight = (q**x) * ((1 - q) ** (n - x))
        if predicate(vector):
            total += weight
    return total


class TestAgainstExactEnumeration:
    @pytest.mark.parametrize("q", [0.5, 0.8, 0.95])
    @pytest.mark.parametrize("d", [0, 2, 4])
    def test_gap_probability(self, q, d):
        n = 9
        exact = enumerate_probability(n, q, lambda v: v.frequency_gap() > d)
        assert math.isclose(gap_exceeds_probability(n, q, d), exact, abs_tol=1e-12)

    @pytest.mark.parametrize("q", [0.3, 0.7])
    @pytest.mark.parametrize("d", [1, 3, 5])
    def test_count_probability(self, q, d):
        n = 9
        exact = enumerate_probability(n, q, lambda v: v.count(1) > d)
        assert math.isclose(count_exceeds_probability(n, q, d), exact, abs_tol=1e-12)

    @pytest.mark.parametrize("q", [0.6, 0.9])
    def test_bosco_formula_f0(self, q):
        n, t = 9, 1
        config = SystemConfig(n, t)

        def guaranteed(vector):
            best = max(vector.count(1), vector.count(2))
            return 2 * (best - t) > n + 3 * t

        exact = enumerate_probability(n, q, guaranteed)
        assert math.isclose(bosco_one_step(n, t, 0, q), exact, abs_tol=1e-12)


class TestAgainstMonteCarlo:
    """The sampled coverage of E1 must sit inside ~4σ binomial bounds of
    the closed form (seeded, so this is deterministic, not flaky)."""

    N, T = 13, 2
    SAMPLES = 4000

    def _vectors(self, q, seed):
        sampler = VectorSampler([1, 2], self.N, seed=seed)
        return [sampler.skewed_vector(1, q) for _ in range(self.SAMPLES)]

    def _tolerance(self, p):
        sigma = math.sqrt(max(p * (1 - p), 1e-9) / self.SAMPLES)
        return 4 * sigma + 1e-9

    @pytest.mark.parametrize("q", [0.9, 0.8])
    @pytest.mark.parametrize("f", [0, 1, 2])
    def test_dex_freq_coverage(self, q, f):
        pair = FrequencyPair(self.N, self.T)
        vectors = self._vectors(q, seed=int(q * 100) + f)
        point = pair_coverage(pair, vectors, [f])[0]
        expected = dex_freq_one_step(self.N, self.T, f, q)
        assert abs(point.one_step - expected) <= self._tolerance(expected)
        expected2 = dex_freq_two_step(self.N, self.T, f, q)
        assert abs(point.two_step - expected2) <= self._tolerance(expected2)

    @pytest.mark.parametrize("q", [0.9, 0.7])
    def test_bosco_coverage(self, q):
        config = SystemConfig(self.N, self.T)
        vectors = self._vectors(q, seed=int(q * 1000))
        for f in range(self.T + 1):
            point = baseline_coverage("bosco", config, vectors, [f])[0]
            expected = bosco_one_step(self.N, self.T, f, q)
            assert abs(point.one_step - expected) <= self._tolerance(expected)


class TestFormulaProperties:
    def test_monotone_in_f(self):
        for q in (0.5, 0.8, 0.95):
            values = [dex_freq_one_step(13, 2, f, q) for f in range(3)]
            assert values == sorted(values, reverse=True)

    def test_two_step_dominates_one_step(self):
        for q in (0.5, 0.8, 0.95):
            for f in range(3):
                assert dex_freq_two_step(13, 2, f, q) >= dex_freq_one_step(13, 2, f, q)

    def test_prv_dominates_on_favourite_heavy(self):
        # the privileged pair is strictly easier to satisfy at high q
        assert dex_prv_one_step(13, 2, 0, 0.9) > dex_freq_one_step(13, 2, 0, 0.9)

    def test_extreme_q(self):
        assert gap_exceeds_probability(13, 1.0, 12) == pytest.approx(1.0)
        assert gap_exceeds_probability(13, 1.0, 13) == pytest.approx(0.0)
        assert count_exceeds_probability(13, 0.0, 0) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            gap_exceeds_probability(0, 0.5, 1)
        with pytest.raises(ValueError):
            gap_exceeds_probability(5, 1.5, 1)
        with pytest.raises(ValueError):
            bosco_one_step(5, 1, 9, 0.5)
