"""Tests for the applications: replicated state machine, atomic commit."""

import pytest

from repro.apps.atomic_commit import ABORT, COMMIT, AtomicCommitCoordinator
from repro.apps.rsm import KeyValueStore, ReplicatedStateMachine, command_stream
from repro.harness import Silent, dex_freq, twostep


class TestKeyValueStore:
    def test_apply_set(self):
        store = KeyValueStore()
        store.apply(("set", "x", 1))
        store.apply(("set", "x", 2))
        assert store.data == {"x": 2}
        assert store.log == [("set", "x", 1), ("set", "x", 2)]

    def test_unknown_command_rejected(self):
        with pytest.raises(ValueError):
            KeyValueStore().apply(("del", "x", 0))


class TestCommandStream:
    def test_deterministic(self):
        assert command_stream(5, seed=1) == command_stream(5, seed=1)

    def test_length_and_shape(self):
        commands = command_stream(7, keys=["k"], seed=2)
        assert len(commands) == 7
        assert all(c[0] == "set" and c[1] == "k" for c in commands)


class TestReplicatedStateMachine:
    def test_low_contention_orders_everything(self):
        rsm = ReplicatedStateMachine(dex_freq(), n=7, contention=0.0, seed=1)
        commands = command_stream(6, seed=3)
        report = rsm.run(commands)
        assert report.slots == 6
        assert not report.divergence
        assert sorted(report.applied) == sorted(commands)

    def test_zero_contention_is_all_one_step(self):
        rsm = ReplicatedStateMachine(dex_freq(), n=7, contention=0.0, seed=2)
        report = rsm.run(command_stream(4, seed=4))
        assert report.mean_slot_steps == 1.0

    def test_contention_raises_latency(self):
        low = ReplicatedStateMachine(dex_freq(), n=7, contention=0.0, seed=5)
        high = ReplicatedStateMachine(dex_freq(), n=7, contention=1.0, seed=5)
        commands = command_stream(8, seed=6)
        assert low.run(commands).mean_slot_steps <= high.run(list(commands)).mean_slot_steps

    def test_with_faulty_replica(self):
        rsm = ReplicatedStateMachine(
            dex_freq(), n=7, contention=0.2, faults={6: Silent()}, seed=7
        )
        report = rsm.run(command_stream(5, seed=8))
        assert not report.divergence
        assert report.slots == 5

    def test_state_matches_log(self):
        rsm = ReplicatedStateMachine(twostep(), n=4, contention=0.5, seed=9)
        report = rsm.run(command_stream(6, seed=10))
        replay = KeyValueStore()
        for command in report.applied:
            replay.apply(command)
        assert replay.data == report.state

    def test_contention_validation(self):
        with pytest.raises(ValueError):
            ReplicatedStateMachine(dex_freq(), n=7, contention=1.5)


class TestAtomicCommit:
    def test_all_yes_commits_one_step(self):
        coordinator = AtomicCommitCoordinator(n=11, vote_yes_probability=1.0, seed=1)
        report = coordinator.run(5)
        assert report.committed == 5
        assert report.one_step_commit_rate == 1.0
        assert report.overridden_aborts == 0

    def test_all_no_aborts(self):
        coordinator = AtomicCommitCoordinator(n=11, vote_yes_probability=0.0, seed=2)
        report = coordinator.run(5)
        assert report.aborted == 5
        assert report.commit_rate == 0.0

    def test_mixed_votes_terminate_and_count(self):
        coordinator = AtomicCommitCoordinator(n=11, vote_yes_probability=0.7, seed=3)
        report = coordinator.run(10)
        assert report.committed + report.aborted == 10
        assert report.aggregate.runs == 10

    def test_overridden_aborts_tracked(self):
        # with one abort vote among 11, consensus still commits (privileged
        # value outweighs), and the report flags the override
        coordinator = AtomicCommitCoordinator(n=11, vote_yes_probability=0.93, seed=4)
        report = coordinator.run(20)
        if report.overridden_aborts:
            assert report.committed >= report.overridden_aborts

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            AtomicCommitCoordinator(n=11, vote_yes_probability=1.2)

    def test_deterministic(self):
        a = AtomicCommitCoordinator(n=11, vote_yes_probability=0.8, seed=5).run(5)
        b = AtomicCommitCoordinator(n=11, vote_yes_probability=0.8, seed=5).run(5)
        assert a.committed == b.committed
        assert a.aggregate.max_steps == b.aggregate.max_steps
