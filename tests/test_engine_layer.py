"""Unit tests for the shared execution-engine layer (:mod:`repro.engine`).

The interpreter, the fault plane and the event stream are exercised here
in isolation; the cross-engine behavioral guarantees live in
``test_cross_engine.py``.
"""

import pytest

from repro.engine.events import (
    DecideEvent,
    DeliverEvent,
    EventLog,
    EventStats,
    FaultEvent,
    SendEvent,
    TeeSink,
    TracerSink,
    combine,
)
from repro.engine.faults import Crash, Custom, Equivocate, FaultPlane, Silent
from repro.engine.interpreter import (
    CensoringRewriter,
    EffectRewriter,
    ExecutionPorts,
    dispatch_service_call,
    expand_broadcasts,
    interpret,
)
from repro.errors import ConfigurationError, SimulationDeadlock, SimulationError
from repro.runtime.effects import (
    Broadcast,
    Decide,
    Deliver,
    Envelope,
    Log,
    Send,
    ServiceCall,
)
from repro.runtime.protocol import Protocol
from repro.runtime.services import Service, ServiceReply
from repro.types import DecisionKind, SystemConfig


class RecordingPorts(ExecutionPorts):
    """Turns every port call into a tuple for assertions."""

    def __init__(self, config):
        self.config = config
        self.calls = []

    def send(self, src, dst, payload, depth):
        self.calls.append(("send", src, dst, payload, depth))

    def decide(self, pid, value, kind, depth):
        self.calls.append(("decide", pid, value, kind, depth))

    def output(self, pid, effect, depth):
        self.calls.append(("output", pid, effect, depth))

    def service_call(self, pid, call, depth):
        self.calls.append(("service", pid, call.service, depth))

    def log_record(self, pid, record, depth):
        self.calls.append(("log", pid, record.event, depth))


class TestInterpret:
    def test_dispatch_and_depth_arithmetic(self):
        ports = RecordingPorts(SystemConfig(3, 0))
        interpret(
            ports,
            1,
            [
                Send(2, "m"),
                Decide(7, DecisionKind.ONE_STEP),
                Deliver("tag", 0, "v"),
                Log("noted"),
            ],
            depth=4,
        )
        assert ports.calls == [
            # messages carry the triggering depth plus one...
            ("send", 1, 2, "m", 5),
            # ...while local effects keep the handler's depth.
            ("decide", 1, 7, DecisionKind.ONE_STEP, 4),
            ("output", 1, Deliver("tag", 0, "v"), 4),
            ("log", 1, "noted", 4),
        ]

    def test_default_broadcast_fans_out_in_pid_order_with_self_copy(self):
        ports = RecordingPorts(SystemConfig(3, 0))
        interpret(ports, 1, [Broadcast("b")], depth=0)
        assert ports.calls == [
            ("send", 1, 0, "b", 1),
            ("send", 1, 1, "b", 1),
            ("send", 1, 2, "b", 1),
        ]

    def test_unknown_effect_rejected(self):
        ports = RecordingPorts(SystemConfig(2, 0))
        with pytest.raises(SimulationError, match="unknown effect"):
            interpret(ports, 0, ["not-an-effect"], depth=0)


class _EchoService(Service):
    def on_call(self, caller, payload, depth, time, reply_path=()):
        return [
            ServiceReply(dst=caller, payload=("echo", payload), depth=depth + 1,
                         reply_path=reply_path)
        ]


class TestDispatchServiceCall:
    def test_missing_service_rejected(self):
        with pytest.raises(SimulationError, match="no service registered"):
            dispatch_service_call(
                {}, 0, ServiceCall("oracle", "x"), 0, 0.0, lambda *a: None
            )

    def test_reply_path_wraps_envelopes_outermost_first(self):
        delivered = []
        dispatch_service_call(
            {"echo": _EchoService()},
            2,
            ServiceCall("echo", "q", reply_path=("outer", "inner")),
            depth=1,
            now=0.0,
            deliver_reply=lambda reply, payload: delivered.append((reply, payload)),
        )
        (reply, payload), = delivered
        assert reply.dst == 2
        assert payload == Envelope("outer", Envelope("inner", ("echo", "q")))


class TestEffectRewriter:
    def test_defaults_are_identity(self):
        effects = [Send(0, "m"), Broadcast("b"), Decide(1, DecisionKind.ONE_STEP)]
        assert EffectRewriter().rewrite_effects(effects) == effects

    def test_drop_and_splice(self):
        class DropSendsDoubleLogs(EffectRewriter):
            def rewrite_send(self, effect):
                return None

            def rewrite_log(self, effect):
                return [effect, effect]

        out = DropSendsDoubleLogs().rewrite_effects([Send(0, "m"), Log("e")])
        assert out == [Log("e"), Log("e")]

    def test_stop_rewrite_drops_tail(self):
        class StopAfterFirstSend(EffectRewriter):
            def rewrite_send(self, effect):
                self.stop_rewrite()
                return effect

        out = StopAfterFirstSend().rewrite_effects(
            [Send(0, "a"), Send(1, "b"), Log("never")]
        )
        assert out == [Send(0, "a")]

    def test_broadcast_expansion_visits_each_destination(self):
        class OmitP1(EffectRewriter):
            rewriter_expands_broadcasts = True

            def __init__(self, config):
                self.config = config

            def rewrite_send(self, effect):
                return None if effect.dst == 1 else effect

        out = OmitP1(SystemConfig(3, 0)).rewrite_effects([Broadcast("b")])
        assert out == [Send(0, "b"), Send(2, "b")]

    def test_stop_flag_restored_after_reentrant_rewrite(self):
        rewriter = EffectRewriter()
        rewriter._rewrite_stopped = True  # simulate an outer rewrite mid-stop
        rewriter.rewrite_effects([Send(0, "m")])
        assert rewriter._rewrite_stopped is True

    def test_censoring_rewriter_drops_upcalls_only(self):
        out = CensoringRewriter().rewrite_effects(
            [Decide(1, DecisionKind.ONE_STEP), Deliver("t", 0, "v"), Send(0, "m")]
        )
        assert out == [Send(0, "m")]

    def test_expand_broadcasts_helper(self):
        out = expand_broadcasts([Broadcast("b"), Log("e")], SystemConfig(2, 0))
        assert out == [Send(0, "b"), Send(1, "b"), Log("e")]


class TestFaultPlane:
    def test_too_many_faults_rejected(self):
        with pytest.raises(ConfigurationError, match="exceed the declared bound"):
            FaultPlane(SystemConfig(7, 1), {5: Silent(), 6: Silent()})

    def test_out_of_range_pid_rejected(self):
        with pytest.raises(ConfigurationError, match="outside the process space"):
            FaultPlane(SystemConfig(4, 1), {7: Silent()})

    def test_crash_model_rejects_byzantine_faults(self):
        with pytest.raises(ConfigurationError, match="crash-model algorithm"):
            FaultPlane(
                SystemConfig(7, 1),
                {6: Equivocate(1, 2)},
                failure_model="crash",
                algorithm_name="izumi",
            )

    def test_crash_model_accepts_crash_faults(self):
        plane = FaultPlane(
            SystemConfig(7, 1), {6: Crash(3)}, failure_model="crash"
        )
        assert plane.faulty == frozenset({6})

    def test_build_honest_and_faulty(self):
        class Nop(Protocol):
            def on_message(self, sender, payload):
                return []

        config = SystemConfig(4, 1)
        marker = Nop(3, config)
        plane = FaultPlane(
            config, {3: Custom(lambda pid, cfg, make, value: marker)}
        )
        honest = plane.build(0, lambda v: Nop(0, config), "v", spec=None)
        assert isinstance(honest, Nop) and honest is not marker
        assert plane.build(3, lambda v: Nop(3, config), "v", spec=None) is marker

    def test_crash_schedule_projection(self):
        plane = FaultPlane(SystemConfig(7, 2), {5: Silent(), 6: Crash(3)})
        schedule = plane.crash_schedule()
        assert schedule[5].delivered_to == frozenset()
        assert schedule[6].delivered_to == frozenset({0, 1, 2})
        assert schedule[5].round == schedule[6].round == 1

    def test_crash_schedule_rejects_byzantine(self):
        plane = FaultPlane(SystemConfig(7, 1), {6: Equivocate(1, 2)})
        with pytest.raises(ConfigurationError, match="no synchronous"):
            plane.crash_schedule()

    def test_announce_emits_sorted_fault_events(self):
        log = EventLog()
        FaultPlane(
            SystemConfig(7, 2), {6: Crash(3), 2: Silent()}
        ).announce(log)
        assert [(e.pid, e.fault, e.detail) for e in log.of_type(FaultEvent)] == [
            (2, "Silent", ""),
            (6, "Crash", "budget=3"),
        ]

    def test_announce_tolerates_missing_sink(self):
        FaultPlane(SystemConfig(7, 1), {6: Silent()}).announce(None)


class TestEventStream:
    def _sample_events(self):
        return [
            SendEvent(0.0, 0, 1, "m", 1),
            DeliverEvent(1.0, 1, 0, "m", 1),
            DecideEvent(1.0, 1, 7, DecisionKind.ONE_STEP, 1),
            DecideEvent(2.0, 1, 8, DecisionKind.TWO_STEP, 2),  # late duplicate
            DecideEvent(2.0, 0, 7, DecisionKind.TWO_STEP, 2),
        ]

    def test_event_log_records_and_filters(self):
        log = EventLog()
        for event in self._sample_events():
            log.emit(event)
        assert len(log) == 5
        assert [e.pid for e in log.of_type(DecideEvent)] == [1, 1, 0]

    def test_event_log_decisions_keeps_first_per_pid(self):
        log = EventLog()
        for event in self._sample_events():
            log.emit(event)
        decisions = log.decisions()
        assert decisions[1].value == 7 and decisions[1].step == 1
        assert decisions[0].step == 2

    def test_event_stats_counters(self):
        stats = EventStats()
        for event in self._sample_events():
            stats.emit(event)
        assert stats.sends == 1
        assert stats.delivers == 1
        assert stats.decide_steps == {1: 1, 0: 2}
        assert stats.one_step_fraction == 0.5

    def test_tracer_sink_matches_legacy_record_format(self):
        from repro.sim.trace import Tracer

        via_sink, direct = Tracer(enabled=True), Tracer(enabled=True)
        sink = TracerSink(via_sink)
        sink.emit(DeliverEvent(1.5, 2, 0, "m", 3))
        direct.record(1.5, 2, "deliver", {"from": 0, "payload": "m", "depth": 3})
        sink.emit(DecideEvent(2.0, 2, 7, DecisionKind.ONE_STEP, 1))
        direct.record(2.0, 2, "decide", {"value": 7, "kind": "one-step", "step": 1})
        sink.emit(SendEvent(0.5, 0, 1, "m", 1))  # no legacy counterpart
        assert via_sink.events == direct.events

    def test_combine(self):
        log = EventLog()
        assert combine(None, None) is None
        assert combine(None, log) is log
        tee = combine(log, EventStats())
        assert isinstance(tee, TeeSink)

    def test_tee_sink_fans_out(self):
        a, b = EventLog(), EventLog()
        TeeSink(a, b).emit(SendEvent(0.0, 0, 1, "m", 1))
        assert len(a) == len(b) == 1


class TestLockstepSimulation:
    def _deployment(self, protocol_cls, n=3):
        config = SystemConfig(n, 0)
        return config, {pid: protocol_cls(pid, config) for pid in config.processes}

    def test_round_synchronous_delivery(self):
        from repro.sim.synchronous import LockstepSimulation

        class FloodOnce(Protocol):
            def on_start(self):
                self.seen = []
                return [Broadcast("hello")] if self.process_id == 0 else []

            def on_message(self, sender, payload):
                self.seen.append((sender, payload))
                return [Decide(payload, DecisionKind.ONE_STEP)]

        config, protocols = self._deployment(FloodOnce)
        result = LockstepSimulation(config, protocols).run_until_decided()
        assert result.decided_value == "hello"
        # everything sent in round 0 arrives together at round 1.
        assert result.end_time == 1.0
        assert all(d.step == 1 for d in result.decisions.values())

    def test_deadlock_reported_with_undecided_set(self):
        from repro.sim.synchronous import LockstepSimulation

        class Mute(Protocol):
            def on_start(self):
                return [Broadcast("x")] if self.process_id == 0 else []

            def on_message(self, sender, payload):
                return []

        config, protocols = self._deployment(Mute)
        with pytest.raises(SimulationDeadlock):
            LockstepSimulation(config, protocols).run_until_decided()


class TestMcRunFifo:
    def test_livelock_cap_raises(self):
        from repro.mc.state import McSystem

        class PingPong(Protocol):
            def on_start(self):
                return [Send(1 - self.process_id, "ping")]

            def on_message(self, sender, payload):
                return [Send(sender, "pong")]

        config = SystemConfig(2, 0)
        system = McSystem(
            config, {pid: PingPong(pid, config) for pid in config.processes}
        )
        with pytest.raises(SimulationError, match="max_deliveries"):
            system.run_fifo(max_deliveries=50)
