"""Tests for the targeted (condition-aware) adversaries."""

import pytest

from repro.byzantine.targeted import GapCollapser, SpoilerBehavior
from repro.core.dex import DexProposal
from repro.harness import Collapse, Scenario, Silent, Spoiler, dex_freq
from repro.types import DecisionKind, SystemConfig
from repro.workloads.inputs import unanimous, with_frequency_gap

from .conftest import kinds_of


class TestSpoilerBehavior:
    def test_waits_for_threshold(self):
        config = SystemConfig(7, 1)
        spoiler = SpoilerBehavior(6, config, fallback=2)
        for sender in range(4):
            assert spoiler.on_message(sender, DexProposal(1)) == []
        effects = spoiler.on_message(4, DexProposal(1))  # 5 = n - t - 1
        assert effects
        assert spoiler._attacked

    def test_attacks_once(self):
        config = SystemConfig(7, 1)
        spoiler = SpoilerBehavior(6, config, fallback=2, watch_threshold=1)
        assert spoiler.on_message(0, DexProposal(1))
        assert spoiler.on_message(1, DexProposal(1)) == []

    def test_picks_runner_up(self):
        config = SystemConfig(7, 1)
        spoiler = SpoilerBehavior(6, config, fallback=9, watch_threshold=3)
        spoiler.on_message(0, DexProposal(1))
        spoiler.on_message(1, DexProposal(1))
        effects = spoiler.on_message(2, DexProposal(2))
        values = {
            e.payload.value
            for e in effects
            if isinstance(getattr(e, "payload", None), DexProposal)
        }
        assert values == {2}

    def test_fallback_on_unanimity(self):
        config = SystemConfig(7, 1)
        spoiler = SpoilerBehavior(6, config, fallback=9, watch_threshold=2)
        spoiler.on_message(0, DexProposal(1))
        effects = spoiler.on_message(1, DexProposal(1))
        values = {
            e.payload.value
            for e in effects
            if isinstance(getattr(e, "payload", None), DexProposal)
        }
        assert values == {9}

    def test_ignores_garbage(self):
        config = SystemConfig(7, 1)
        spoiler = SpoilerBehavior(6, config, fallback=2)
        assert spoiler.on_message(0, "garbage") == []


class TestSafetyUnderTargetedAttacks:
    @pytest.mark.parametrize("seed", range(6))
    def test_spoiler_cannot_break_agreement(self, seed):
        inputs = with_frequency_gap(1, 2, 7, 3)
        result = Scenario(
            dex_freq(), inputs, faults={6: Spoiler(fallback=2)}, seed=seed
        ).run()
        assert result.agreement_holds()
        assert result.all_correct_decided()

    @pytest.mark.parametrize("seed", range(6))
    def test_collapser_cannot_break_agreement(self, seed):
        inputs = with_frequency_gap(1, 2, 13, 9)
        result = Scenario(
            dex_freq(),
            inputs,
            t=2,
            faults={11: Collapse(2), 12: Collapse(2)},
            seed=seed,
        ).run()
        assert result.agreement_holds()

    @pytest.mark.parametrize("seed", range(4))
    def test_unanimity_survives_spoiler(self, seed):
        result = Scenario(
            dex_freq(), unanimous(1, 7), faults={6: Spoiler(fallback=2)}, seed=seed
        ).run()
        assert result.decided_value == 1

    def test_lemma4_holds_against_collapsers(self):
        """A level-k input keeps its one-step guarantee against the worst
        condition-aware attack, for f <= k."""
        n, t = 13, 2
        inputs = with_frequency_gap(1, 2, n, 11)  # level 1
        for seed in range(4):
            result = Scenario(
                dex_freq(), inputs, t=t, faults={0: Collapse(2)}, seed=seed
            ).run()
            assert kinds_of(result) == {DecisionKind.ONE_STEP}


class TestAttackEffectiveness:
    """The spoiler must actually be stronger than a silent fault — this is
    what makes it a meaningful worst-case for the coverage experiments."""

    def test_spoiler_degrades_more_than_silence(self):
        n, t = 13, 2
        # gap 11, faults among the majority proposers: a silent fault costs
        # the views 1 gap point (9 > 4t still one-step), a collapser costs 2
        # (7 <= 4t, fast path dead) — the separating regime.
        inputs = with_frequency_gap(1, 2, n, 11)
        fast_with_silent = fast_with_spoiler = 0
        seeds = range(8)
        for seed in seeds:
            silent = Scenario(
                dex_freq(), inputs, t=t, faults={0: Silent(), 1: Silent()}, seed=seed
            ).run()
            spoiled = Scenario(
                dex_freq(),
                inputs,
                t=t,
                faults={0: Collapse(2), 1: Collapse(2)},
                seed=seed,
            ).run()
            fast_with_silent += all(
                d.kind is DecisionKind.ONE_STEP
                for d in silent.correct_decisions.values()
            )
            fast_with_spoiler += all(
                d.kind is DecisionKind.ONE_STEP
                for d in spoiled.correct_decisions.values()
            )
            assert spoiled.agreement_holds()
        assert fast_with_spoiler < fast_with_silent
