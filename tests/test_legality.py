"""Mechanical verification of Theorems 1 and 2 (legality of both pairs).

These tests re-prove the paper's legality theorems exhaustively on bounded
spaces — every LT1/LT2/LA3/LA4/LU5 instance over ``V^n`` with small ``n``
and alphabet — and check that the checker itself catches deliberately
broken pairs.
"""

import pytest

from repro.conditions.base import ConditionSequence, ConditionSequencePair
from repro.conditions.frequency import FrequencyCondition, FrequencyPair
from repro.conditions.legality import (
    LegalityChecker,
    completable_within,
    conflicting_positions,
)
from repro.conditions.privileged import PrivilegedPair
from repro.conditions.views import View
from repro.errors import LegalityError
from repro.types import BOTTOM


class TestCompletability:
    def test_conflicting_positions(self):
        a = View.of(1, 2, BOTTOM)
        b = View.of(1, 3, 4)
        assert conflicting_positions(a, b) == 1

    def test_bottoms_never_conflict(self):
        assert conflicting_positions(View.bottoms(3), View.of(1, 2, 3)) == 0

    def test_completable_within(self):
        a = View.of(1, 2, BOTTOM)
        b = View.of(2, 2, 9)
        assert completable_within(a, b, 1)
        assert not completable_within(a, b, 0)


class TestFrequencyPairLegality:
    """Theorem 1, re-proved exhaustively for n=7, t=1, V={1, 2}."""

    @pytest.fixture(scope="class")
    def report(self):
        pair = FrequencyPair(7, 1)
        return LegalityChecker(pair, [1, 2]).check_exhaustive()

    def test_is_legal(self, report):
        assert report.is_legal, report.violations

    def test_nontrivial_check_count(self, report):
        assert report.checks > 3_000

    def test_require_legal_passes(self, report):
        report.require_legal()


class TestPrivilegedPairLegality:
    """Theorem 2, re-proved exhaustively for n=6, t=1, V={1, 2}."""

    @pytest.fixture(scope="class")
    def report(self):
        pair = PrivilegedPair(6, 1, privileged=1)
        return LegalityChecker(pair, [1, 2]).check_exhaustive()

    def test_is_legal(self, report):
        assert report.is_legal, report.violations

    def test_three_value_alphabet(self):
        pair = PrivilegedPair(6, 1, privileged=1)
        report = LegalityChecker(pair, [1, 2, 3]).check_exhaustive(
            max_pair_views=600
        )
        assert report.is_legal, report.violations


class TestSampledLegality:
    def test_frequency_pair_n13(self):
        pair = FrequencyPair(13, 2)
        report = LegalityChecker(pair, [1, 2, 3]).check_sampled(400, seed=11)
        assert report.is_legal, report.violations
        assert report.checks > 0

    def test_privileged_pair_n11(self):
        pair = PrivilegedPair(11, 2, privileged=2)
        report = LegalityChecker(pair, [1, 2]).check_sampled(400, seed=12)
        assert report.is_legal, report.violations


class _BrokenPair(ConditionSequencePair):
    """P1 fires on any non-trivial plurality — far too weak for agreement:
    two views of Byzantine-twisted vectors can then disagree on F."""

    required_ratio = 5

    def p1(self, view):
        return view.frequency_gap() > 0

    def p2(self, view):
        return view.frequency_gap() > 2 * self.t

    def f(self, view):
        top = view.first()
        if top is None:
            raise ValueError("undefined")
        return top

    def one_step_sequence(self):
        return ConditionSequence(
            [FrequencyCondition(2 * k) for k in range(self.t + 1)]
        )

    def two_step_sequence(self):
        return ConditionSequence(
            [FrequencyCondition(2 * self.t + 2 * k) for k in range(self.t + 1)]
        )


class _BrokenTermination(ConditionSequencePair):
    """P1 never fires although C¹ is non-empty — violates LT1."""

    required_ratio = 5

    def p1(self, view):
        return False

    def p2(self, view):
        return view.frequency_gap() > 2 * self.t

    def f(self, view):
        top = view.first()
        if top is None:
            raise ValueError("undefined")
        return top

    def one_step_sequence(self):
        return ConditionSequence(
            [FrequencyCondition(4 * self.t + 2 * k) for k in range(self.t + 1)]
        )

    def two_step_sequence(self):
        return ConditionSequence(
            [FrequencyCondition(2 * self.t + 2 * k) for k in range(self.t + 1)]
        )


class TestCheckerCatchesBrokenPairs:
    def test_broken_agreement_detected(self):
        report = LegalityChecker(_BrokenPair(7, 1), [1, 2]).check_exhaustive()
        assert not report.is_legal
        assert any("LA3" in v for v in report.violations)

    def test_broken_termination_detected(self):
        report = LegalityChecker(_BrokenTermination(7, 1), [1, 2]).check_exhaustive()
        assert not report.is_legal
        assert any("LT1" in v for v in report.violations)

    def test_require_legal_raises(self):
        report = LegalityChecker(_BrokenPair(7, 1), [1, 2]).check_exhaustive()
        with pytest.raises(LegalityError):
            report.require_legal()
