"""Cross-engine equivalence: one Scenario, four backends, same verdicts.

The tentpole claim of the engine layer is that ``sim``, ``asyncio``,
``sync`` and ``mc`` are *backends* of one interpreter, not four
reimplementations.  These tests pin the observable consequences: the same
seeded scenario decides the same value (and satisfies the same
properties) no matter which engine runs it.
"""

import dataclasses

import pytest

from repro.engine.events import DecideEvent, EventLog, FaultEvent
from repro.harness import (
    ENGINES,
    Crash,
    Equivocate,
    Scenario,
    Silent,
    dex_freq,
    dex_prv,
    run_once,
)
from repro.workloads.inputs import split, unanimous

DETERMINISTIC_ENGINES = ("sim", "sync", "mc")


def _run_on(scenario: Scenario, engine: str):
    return dataclasses.replace(scenario, engine=engine).run()


class TestFaultFreeEquivalence:
    def test_unanimous_same_value_everywhere(self):
        scenario = Scenario(dex_freq(), unanimous(1, 7), seed=3)
        for engine in ENGINES:
            result = _run_on(scenario, engine)
            assert result.agreement_holds(), engine
            assert result.all_correct_decided(), engine
            assert result.decided_value == 1, engine
            assert result.max_correct_step == 1, engine

    def test_contended_inputs_agree_on_deterministic_engines(self):
        scenario = Scenario(dex_freq(), split(1, 2, 7, 3), seed=5)
        for engine in DETERMINISTIC_ENGINES:
            result = _run_on(scenario, engine)
            assert result.agreement_holds(), engine
            assert result.decided_value in (1, 2), engine

    def test_privileged_pair_runs_on_every_engine(self):
        scenario = Scenario(dex_prv(), unanimous(0, 4), seed=1)
        for engine in ENGINES:
            result = _run_on(scenario, engine)
            assert result.decided_value == 0, engine


class TestFaultyEquivalence:
    def test_crash_fault_same_value_everywhere(self):
        scenario = Scenario(
            dex_freq(), unanimous(1, 7), faults={6: Crash(3)}, seed=7
        )
        for engine in ENGINES:
            result = _run_on(scenario, engine)
            assert result.agreement_holds(), engine
            assert result.all_correct_decided(), engine
            assert result.decided_value == 1, engine

    def test_silent_fault_same_value_everywhere(self):
        scenario = Scenario(
            dex_freq(), unanimous(1, 7), faults={6: Silent()}, seed=7
        )
        for engine in ENGINES:
            result = _run_on(scenario, engine)
            assert result.decided_value == 1, engine

    def test_equivocator_same_value_everywhere(self):
        scenario = Scenario(
            dex_freq(), unanimous(1, 7), faults={6: Equivocate(1, 2)}, seed=9
        )
        for engine in ENGINES:
            result = _run_on(scenario, engine)
            assert result.agreement_holds(), engine
            assert result.all_correct_decided(), engine
            # validity: with every correct process proposing 1, the
            # equivocator cannot push the system to 2 on any backend.
            assert result.decided_value == 1, engine


class TestEventStreamParity:
    def test_decide_events_match_result_on_every_engine(self):
        for engine in ENGINES:
            log = EventLog()
            scenario = Scenario(
                dex_freq(), unanimous(1, 7), seed=2, engine=engine, event_sink=log
            )
            result = scenario.run()
            decided = {e.pid: e.value for e in log.of_type(DecideEvent)}
            assert decided == {
                pid: d.value for pid, d in result.decisions.items()
            }, engine

    def test_fault_plane_announced_on_event_stream(self):
        log = EventLog()
        Scenario(
            dex_freq(),
            unanimous(1, 7),
            faults={6: Equivocate(1, 2)},
            seed=2,
            event_sink=log,
        ).run()
        faults = log.of_type(FaultEvent)
        assert [(e.pid, e.fault) for e in faults] == [(6, "Equivocate")]


class TestScenarioDataclass:
    """Regression guards for the ``dataclasses.replace``-based cloning."""

    EXPECTED_FIELDS = {
        "algorithm",
        "inputs",
        "t",
        "faults",
        "uc",
        "uc_step_cost",
        "latency",
        "scheduler",
        "seed",
        "trace",
        "max_events",
        "engine",
        "event_sink",
        "net_jitter",
        "codec",
        "durability",
        "mesh",
        "config",
    }

    def test_field_set_is_known(self):
        # If this fails you added a Scenario field: extend EXPECTED_FIELDS
        # and check run_many's docstring still holds (replace-based cloning
        # carries new fields automatically — no other code change needed).
        names = {f.name for f in dataclasses.fields(Scenario)}
        assert names == self.EXPECTED_FIELDS

    def test_config_not_an_init_field(self):
        (config_field,) = [
            f for f in dataclasses.fields(Scenario) if f.name == "config"
        ]
        assert not config_field.init

    def test_replace_carries_every_field(self):
        scenario = Scenario(
            dex_freq(),
            unanimous(1, 7),
            faults={6: Silent()},
            uc_step_cost=3,
            seed=4,
            trace=True,
            max_events=5000,
            engine="mc",
        )
        clone = dataclasses.replace(scenario, seed=9, trace=False)
        assert clone.seed == 9 and clone.trace is False
        for name in self.EXPECTED_FIELDS - {"seed", "trace", "config", "faults"}:
            assert getattr(clone, name) == getattr(scenario, name), name
        assert clone.faults == scenario.faults
        assert clone.config == scenario.config

    def test_run_many_respects_engine(self):
        aggregate = Scenario(
            dex_freq(), unanimous(1, 7), engine="sync"
        ).run_many(range(3))
        assert aggregate.runs == 3
        assert aggregate.agreement_violations == 0

    def test_run_many_aggregate_matches_individual_runs(self):
        scenario = Scenario(dex_freq(), split(1, 2, 7, 3))
        aggregate = scenario.run_many(range(4), expected_value=None)
        singles = [
            dataclasses.replace(scenario, seed=seed, trace=False).run()
            for seed in range(4)
        ]
        assert aggregate.runs == 4
        assert aggregate.mean_max_step == pytest.approx(
            sum(r.max_correct_step for r in singles) / 4
        )

    def test_unknown_engine_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown engine"):
            Scenario(dex_freq(), unanimous(1, 7), engine="quantum")

    def test_run_once_still_works(self):
        assert run_once(dex_freq(), unanimous(1, 7)).decided_value == 1
