"""Tests for the analytic expected-step bounds and the crossover solver."""

import pytest

from repro.analysis.expected_steps import (
    bosco_expected_steps,
    crossover_contention,
    dex_freq_expected_steps,
    twostep_expected_steps,
)
from repro.harness import Scenario, dex_freq
from repro.workloads.inputs import ContentionWorkload

N, T = 13, 2


class TestBoundsShape:
    def test_unanimous_limit(self):
        # q -> 1: everything decides in one step
        assert dex_freq_expected_steps(N, T, 0, 1.0) == pytest.approx(1.0)
        assert bosco_expected_steps(N, T, 0, 1.0) == pytest.approx(1.0)

    def test_coin_flip_limit(self):
        # q = 0.5: conditions almost never hold; bounds near the fallback
        assert dex_freq_expected_steps(N, T, 0, 0.5) > 3.3
        assert bosco_expected_steps(N, T, 0, 0.5) > 2.8

    def test_monotone_in_q(self):
        values = [dex_freq_expected_steps(N, T, 0, q) for q in (0.5, 0.7, 0.9, 1.0)]
        assert values == sorted(values, reverse=True)

    def test_monotone_in_f(self):
        values = [dex_freq_expected_steps(N, T, f, 0.9) for f in range(T + 1)]
        assert values == sorted(values)

    def test_uc_cost_scales_fallback(self):
        cheap = dex_freq_expected_steps(N, T, 0, 0.6, uc_cost=2)
        pricey = dex_freq_expected_steps(N, T, 0, 0.6, uc_cost=10)
        assert pricey > cheap
        assert twostep_expected_steps(10) == 10.0


class TestCrossover:
    def test_dex_crossover_in_range(self):
        q_star = crossover_contention(N, T, algorithm="dex")
        assert 0.5 < q_star < 1.0
        # the bound is indeed at/below 2 beyond the crossover
        assert dex_freq_expected_steps(N, T, 0, q_star + 0.01) <= 2.0 + 0.05
        assert dex_freq_expected_steps(N, T, 0, q_star - 0.01) >= 2.0 - 0.05

    def test_bosco_crossover_later_than_dex(self):
        """DEX's two-step scheme lets it tolerate more contention than
        BOSCO before losing to the plain two-step design."""
        q_dex = crossover_contention(N, T, algorithm="dex")
        q_bosco = crossover_contention(N, T, algorithm="bosco")
        assert q_dex < q_bosco

    def test_expensive_uc_moves_crossover_down(self):
        cheap = crossover_contention(N, T, uc_cost=2)
        pricey = crossover_contention(N, T, uc_cost=8)
        assert pricey < cheap

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            crossover_contention(N, T, algorithm="paxos")


class TestBoundsAgainstMeasurement:
    @pytest.mark.parametrize("q", [0.95, 0.8])
    def test_measured_runs_within_per_vector_bound(self, q):
        """For each sampled vector, the measured slowest step must not
        exceed that vector's worst-case bound (1 / 2 / 2+uc by condition
        band) — the per-input statement behind the expectation formula."""
        from repro.conditions.frequency import FrequencyPair
        from repro.conditions.views import View

        pair = FrequencyPair(N, T)
        workload = ContentionWorkload(N, favourite=1, contenders=[2], p=1 - q, seed=7)
        for seed in range(10):
            inputs = workload.vector()
            vector = View(inputs)
            if pair.one_step_level(vector) is not None:
                bound = 1
            elif pair.two_step_level(vector) is not None:
                bound = 2
            else:
                bound = 4
            result = Scenario(dex_freq(), inputs, seed=seed).run()
            assert result.max_correct_step <= bound, (inputs, bound)

    def test_expectation_matches_per_vector_average(self):
        """The closed-form expectation equals the average of per-vector
        bounds over a large sample (law of large numbers, seeded)."""
        from repro.conditions.frequency import FrequencyPair
        from repro.conditions.views import View

        q = 0.85
        pair = FrequencyPair(N, T)
        workload = ContentionWorkload(
            N, favourite=1, contenders=[2], p=1 - q, seed=11
        )
        bounds = []
        for inputs in workload.vectors(4000):
            vector = View(inputs)
            if pair.one_step_level(vector) is not None:
                bounds.append(1)
            elif pair.two_step_level(vector) is not None:
                bounds.append(2)
            else:
                bounds.append(4)
        sampled = sum(bounds) / len(bounds)
        analytic = dex_freq_expected_steps(N, T, 0, q)
        assert abs(sampled - analytic) < 0.1
