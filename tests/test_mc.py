"""Unit tests for the model checker: explorer semantics (delay budgets,
sleep sets, ample collapse), fingerprinting, counterexample minimization
and replay, and the verification suite plumbing."""

import json
from pathlib import Path

import pytest

from repro.mc.counterexample import (
    Counterexample,
    minimize,
    replay_matches,
    replay_on_simulator,
    replay_with_events,
    run_schedule,
)
from repro.mc.explorer import Explorer
from repro.mc.fingerprint import fingerprint
from repro.mc.invariants import Agreement
from repro.mc.scenario import (
    build_invariants,
    build_simulation,
    build_system,
    byzantine_variants,
    dex_scenario,
    idb_scenario,
)
from repro.mc.state import McSystem
from repro.mc.suite import CheckSpec, run_check, suite_checks
from repro.runtime.effects import Broadcast, Decide
from repro.runtime.protocol import Protocol
from repro.types import DecisionKind, SystemConfig

DATA = Path(__file__).parent / "data"


class FirstValue(Protocol):
    """Toy ordering-sensitive protocol: broadcast your id at start, decide
    the first id you receive.  Under FIFO-per-destination delivery every
    process receives p0's broadcast first (p0 starts first), so agreement
    holds at delay budget 0 and breaks as soon as one message may be
    overtaken."""

    def __init__(self, process_id, config):
        super().__init__(process_id, config)
        self.decided = False

    def on_start(self):
        return [Broadcast(("val", self.process_id))]

    def on_message(self, sender, payload):
        if self.decided:
            return []
        self.decided = True
        return [Decide(payload[1], DecisionKind.ONE_STEP)]


def toy_system(n: int = 3) -> McSystem:
    config = SystemConfig(n, 0)
    return McSystem(config, {pid: FirstValue(pid, config) for pid in range(n)})


class TestExplorerDelayBudgets:
    def test_fifo_budget_zero_is_safe(self):
        result = Explorer(toy_system(), [Agreement()], delay_budget=0).run()
        assert result.ok
        assert result.complete

    def test_budget_one_finds_the_overtake_violation(self):
        result = Explorer(toy_system(), [Agreement()], delay_budget=1).run()
        assert not result.ok
        assert result.trace is not None
        assert result.violations[0].invariant == "agreement"

    def test_unbounded_exploration_finds_it_too(self):
        result = Explorer(toy_system(), [Agreement()], delay_budget=None).run()
        assert not result.ok

    def test_adversarial_order_reaches_the_same_verdicts(self):
        for budget, ok in [(0, True), (1, False)]:
            result = Explorer(
                toy_system(), [Agreement()], delay_budget=budget, order="adversarial"
            ).run()
            assert result.ok is ok

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            Explorer(toy_system(), [], order="random")

    def test_state_cap_marks_incomplete(self):
        result = Explorer(
            toy_system(), [], delay_budget=None, max_states=5
        ).run()
        assert not result.complete

    def test_collect_all_violations(self):
        result = Explorer(
            toy_system(),
            [Agreement()],
            delay_budget=1,
            stop_on_violation=False,
        ).run()
        assert len(result.violations) > 1
        assert result.complete

    def test_trace_replays_to_the_violation(self):
        result = Explorer(toy_system(), [Agreement()], delay_budget=1).run()
        final = run_schedule(toy_system(), result.trace)
        assert final is not None
        assert Agreement().check(final) is not None


class TestExplorerAgainstBruteForce:
    """Cross-check the reduced search against naive enumeration on the toy
    system: sleep sets, fingerprint merging and the ample collapse must not
    lose any reachable decision vector within a delay budget."""

    def brute_force_vectors(self, budget):
        """All correct-decision vectors reachable with <= budget overtaken
        messages, by unreduced recursive enumeration (n=2 keeps the
        factorial tree small)."""
        vectors = set()

        def recurse(system, delayed, remaining):
            if system.all_correct_decided() or not system.pending:
                vectors.add(
                    tuple(sorted(
                        (pid, value)
                        for pid, (value, _, _) in system.correct_decisions().items()
                    ))
                )
                return
            for uid, overtakes in system.delivery_overtakes():
                cost = len(set(overtakes) - delayed)
                if remaining is not None and cost > remaining:
                    continue
                token = system.snapshot()
                system.deliver(uid)
                recurse(
                    system,
                    (delayed | set(overtakes)) - {uid},
                    None if remaining is None else remaining - cost,
                )
                system.restore(token)

        system = toy_system(2)
        system.start()
        recurse(system, set(), budget)
        return vectors

    @pytest.mark.parametrize("budget", [0, 1, None])
    def test_violation_existence_matches(self, budget):
        expected = any(
            len({value for _, value in vector}) > 1
            for vector in self.brute_force_vectors(budget)
        )
        result = Explorer(
            toy_system(2), [Agreement()], delay_budget=budget
        ).run()
        assert (not result.ok) is expected

    def test_budget_zero_reaches_exactly_the_fifo_vector(self):
        assert self.brute_force_vectors(0) == {((0, 0), (1, 0))}


class TestFingerprint:
    def test_fresh_systems_agree(self):
        spec = dex_scenario(7, 1, [1, 1, 1, 1, 1, 2, 2])
        a, b = build_system(spec), build_system(spec)
        a.start(), b.start()
        assert a.fingerprint() == b.fingerprint()

    def test_commuting_deliveries_converge(self):
        a, b = toy_system(), toy_system()
        a.start(), b.start()
        # Deliveries to different destinations commute; the fingerprint is
        # uid-independent, so both orders land on the same digest.
        a.deliver(0), a.deliver(4)
        b.deliver(4), b.deliver(0)
        assert a.fingerprint() == b.fingerprint()

    def test_different_states_differ(self):
        a, b = toy_system(), toy_system()
        a.start(), b.start()
        a.deliver(0)
        assert a.fingerprint() != b.fingerprint()

    def test_snapshot_restore_roundtrip(self):
        system = toy_system()
        system.start()
        token = system.snapshot()
        before = system.fingerprint()
        system.deliver(0), system.deliver(4)
        system.restore(token)
        assert system.fingerprint() == before
        # The token survives a second restore.
        system.deliver(0)
        system.restore(token)
        assert system.fingerprint() == before

    def test_fingerprint_covers_nested_containers(self):
        assert fingerprint({"a": [1, {2}]}) == fingerprint({"a": [1, {2}]})
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint([1, 2]) != fingerprint([2, 1])


class TestCounterexample:
    def make_violation(self):
        result = Explorer(toy_system(), [Agreement()], delay_budget=1).run()
        violation = result.violations[0]
        return Counterexample(
            spec={},
            schedule=list(result.trace),
            invariant=violation.invariant,
            detail=violation.detail,
            decisions={
                pid: list(decision)
                for pid, decision in violation.decisions.items()
            },
        )

    def test_json_roundtrip(self):
        ce = self.make_violation()
        back = Counterexample.from_json(ce.to_json())
        assert back.schedule == ce.schedule
        assert back.invariant == ce.invariant
        assert back.decisions == ce.decisions

    def test_minimize_is_one_minimal(self):
        ce = self.make_violation()
        minimized = minimize(
            ce, lambda spec: toy_system(), lambda spec: [Agreement()]
        )
        assert minimized.minimized
        # The toy violation needs exactly two deliveries: one process
        # receiving an overtaking broadcast, another receiving p0's.
        assert len(minimized.schedule) == 2
        final = run_schedule(toy_system(), minimized.schedule)
        assert Agreement().check(final) is not None
        # 1-minimality: dropping any remaining delivery breaks it.
        for index in range(len(minimized.schedule)):
            candidate = (
                minimized.schedule[:index] + minimized.schedule[index + 1 :]
            )
            final = run_schedule(toy_system(), candidate)
            assert final is None or Agreement().check(final) is None

    def test_infeasible_schedule_returns_none(self):
        assert run_schedule(toy_system(), [(9, 9, "nope")]) is None


class TestStoredUnderResilientCounterexample:
    """The checker-discovered n=4 under-resilient attack, stored as data:
    three delayed messages break agreement at crash-grade margins.  The
    trace must replay to the violation on both execution engines."""

    @pytest.fixture()
    def ce(self):
        text = (DATA / "underres_n4_counterexample.json").read_text()
        return Counterexample.from_json(text)

    def test_replays_to_agreement_violation_on_the_checker(self, ce):
        final = run_schedule(build_system(ce.spec), ce.schedule)
        assert final is not None
        assert Agreement().check(final) is not None
        replayed = {
            pid: [value, kind.value, step]
            for pid, (value, kind, step) in final.correct_decisions().items()
        }
        assert replayed == ce.decisions

    def test_replays_identically_on_the_simulator(self, ce):
        result = replay_on_simulator(ce, build_simulation)
        assert not result.agreement_holds()
        assert replay_matches(ce, result)

    def test_minimized_trace_stays_minimal(self, ce):
        again = minimize(ce, build_system, build_invariants)
        assert len(again.schedule) == len(ce.schedule)

    def test_replay_carries_the_shared_event_stream(self, ce):
        # Replaying a stored trace must emit the same typed event stream
        # every execution engine emits, so the violation renders in the
        # cross-engine vocabulary (deliveries + decisions), not
        # checker-internal records.
        from repro.engine.events import DecideEvent, DeliverEvent

        final, log = replay_with_events(ce, build_system)
        assert final is not None
        deliveries = log.of_type(DeliverEvent)
        assert len(deliveries) == len(ce.schedule)
        decided = {
            event.pid: [event.value, event.kind.value, event.step]
            for event in log.of_type(DecideEvent)
            if event.pid in ce.decisions
        }
        assert decided == ce.decisions
        # The log renders the violation itself: two different values.
        assert len({event.value for event in log.of_type(DecideEvent)}) > 1


class TestSuite:
    def test_safety_check_passes_with_tight_bounds(self):
        spec = CheckSpec(
            name="idb-tiny",
            description="tiny idb sweep",
            base_spec=idb_scenario(5, 1, [1, 1, 1, 2, 2]),
            byzantine_pid=4,
            delay_budget=0,
            max_states=2_000,
            variant_budget=2,
        )
        report = run_check(spec)
        assert report.ok
        assert not report.violation_found
        assert len(report.variants) == 2
        assert report.describe()["ok"] is True

    def test_boundary_check_against_stored_attack(self):
        # Seed the boundary check with the stored minimal schedule length:
        # budget 2 must stay clean (the attack needs three delays), which
        # is the cheap half of the iterative-deepening claim.
        base = [c for c in suite_checks() if c.name == "dex-under-resilient-n4"][0]
        result = Explorer(
            build_system(base.base_spec),
            build_invariants(base.base_spec),
            delay_budget=1,
            max_states=20_000,
        ).run()
        assert result.ok

    def test_variant_enumeration_is_deterministic_and_bounded(self):
        spec = dex_scenario(5, 1, [1, 1, 1, 2, 2], enforce_resilience=False)
        all_variants = byzantine_variants(spec, 4)
        assert all_variants == byzantine_variants(spec, 4)
        assert all_variants[0] == {"kind": "silent"}
        assert byzantine_variants(spec, 4, 3) == all_variants[:3]
        assert any(v["kind"] == "saboteur" for v in all_variants)

    def test_smoke_subset_is_small(self):
        smoke = suite_checks(smoke=True)
        assert 0 < len(smoke) < len(suite_checks())
        assert all(check.smoke for check in smoke)


class TestCliCheck:
    def test_check_json_smoke(self, monkeypatch, capsys):
        import repro.mc.suite as suite
        from repro.cli import main
        from repro.mc.suite import CheckReport

        def fake_run_suite(smoke=False):
            assert smoke
            return [
                CheckReport(
                    name="stub",
                    description="stubbed",
                    config="n=5 t=1 kind=idb",
                    expect_violation=False,
                    delay_budget=0,
                )
            ]

        monkeypatch.setattr(suite, "run_suite", fake_run_suite)
        assert main(["check", "--smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["name"] == "stub"
        assert payload[0]["ok"] is True
