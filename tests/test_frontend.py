"""The client-facing frontend: admission control, load gen, sockets.

Five layers, mirroring :mod:`repro.frontend`'s structure:

* pure unit tests for the admission queue's three policies and their
  counters, plus a hypothesis property pinning the conservation law —
  under any seeded arrival/drain interleaving, depth never exceeds the
  bound, FIFO order per shard is preserved, and
  ``submitted == shed + dequeued + dropped + pending``;
* sim-engine :class:`~repro.frontend.api.Frontend` tests: routing via
  ``shard_of``, future resolution, client-observed latency, the typed
  ``frontend.*`` event stream, and per-policy end-to-end behavior;
* seeded load-generator determinism: same seed → identical counters and
  digest checksum, different seed → different stream;
* percentile edge cases for :class:`~repro.metrics.collectors.
  StreamAggregate` / :class:`~repro.shard.metrics.ShardStreamSink` — an
  empty shard, a single-sample shard, and a shed-only run must yield a
  defined number or an explicit ``None``, never a crash;
* ``@pytest.mark.net`` socket round-trips: submit→decide→reply over UDS
  in both the binary and pickle codecs, plus shed rejections mid-session.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import CODEC_BINARY, CODEC_PICKLE
from repro.engine.events import EventLog, LogEvent
from repro.errors import ConfigurationError, ReproError
from repro.frontend import (
    CLIENT,
    POLICIES,
    AdmissionQueue,
    ClientRejected,
    ClientReply,
    Frontend,
    FrontendReport,
    FrontendServer,
    LoadGenerator,
    SocketClient,
    SubmitRejected,
    digest_checksum,
    saturation_sweep,
)
from repro.metrics.collectors import StreamAggregate
from repro.shard import ShardBatcher, ShardedService, shard_of
from repro.shard.metrics import ShardStreamSink
from repro.types import DecisionKind


def keys_of_shard(shard: int, shards: int, count: int) -> list[str]:
    """The first ``count`` keys ``k<i>`` that route to ``shard``."""
    keys = []
    i = 0
    while len(keys) < count:
        if shard_of(f"k{i}", shards) == shard:
            keys.append(f"k{i}")
        i += 1
    return keys


def service(**kwargs) -> ShardedService:
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("seed", 3)
    return ShardedService(7, **kwargs)


# -- admission queue unit tests -------------------------------------------------------


class TestAdmissionQueue:
    def test_shed_rejects_past_the_bound(self):
        queue = AdmissionQueue(shard=1, bound=2, policy="shed")
        assert queue.offer("a", 0) is None
        assert queue.offer("b", 0) is None
        rejection = queue.offer("c", 0)
        assert rejection is not None
        assert (rejection.reason, rejection.shard, rejection.depth) == ("shed", 1, 2)
        stats = queue.stats()
        assert (stats.submitted, stats.shed, stats.pending) == (3, 1, 2)
        assert stats.shed_rate == pytest.approx(1 / 3)

    def test_block_parks_overflow_in_the_backlog(self):
        queue = AdmissionQueue(shard=0, bound=2, policy="block")
        for i in range(5):
            assert queue.offer(i, 0) is None
        assert queue.depth == 2  # bounded queue never exceeds its bound
        assert queue.backlog == 3
        assert queue.pending == 5
        served = [item for item, _, _ in queue.drain(1, 2)]
        assert served == [0, 1]
        assert queue.depth == 2  # backlog refilled the freed slots
        assert queue.backlog == 1
        served += [item for item, _, _ in queue.drain(2, 4)]
        assert served == [0, 1, 2, 3, 4]  # FIFO through the backlog
        assert queue.pending == 0
        assert queue.stats().shed == 0

    def test_deadline_drops_stale_without_consuming_service_slots(self):
        queue = AdmissionQueue(shard=0, bound=8, policy="deadline", deadline=1)
        queue.offer("stale", 0)
        queue.offer("fresh", 2)
        outcomes = list(queue.drain(2, 1))  # rate 1, but the drop is free
        assert [(item, rej is None) for item, _, rej in outcomes] == [
            ("stale", False),
            ("fresh", True),
        ]
        assert outcomes[0][2].reason == "deadline"
        stats = queue.stats()
        assert (stats.dropped, stats.dequeued, stats.pending) == (1, 1, 0)

    def test_high_water_tracks_the_deepest_queue(self):
        queue = AdmissionQueue(shard=0, bound=8, policy="shed")
        for i in range(5):
            queue.offer(i, 0)
        list(queue.drain(1, 5))
        queue.offer("x", 2)
        assert queue.high_water == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(0, bound=0)
        with pytest.raises(ConfigurationError):
            AdmissionQueue(0, bound=4, policy="drop-everything")
        with pytest.raises(ConfigurationError):
            AdmissionQueue(0, bound=4, policy="deadline")  # needs a deadline


@st.composite
def admission_scripts(draw):
    policy = draw(st.sampled_from(POLICIES))
    deadline = draw(st.integers(0, 3)) if policy == "deadline" else None
    bound = draw(st.integers(1, 6))
    ops = draw(
        st.lists(
            st.one_of(
                st.just(("offer",)),
                st.tuples(st.just("drain"), st.integers(1, 5)),
            ),
            max_size=80,
        )
    )
    return policy, deadline, bound, ops


class TestAdmissionProperties:
    @settings(max_examples=120, deadline=None)
    @given(admission_scripts())
    def test_conservation_depth_bound_and_fifo(self, script):
        """Under any arrival/drain interleaving: the bounded depth is never
        exceeded, every submission is in exactly one bucket, and commands
        leave the queue in admission order."""
        policy, deadline, bound, ops = script
        queue = AdmissionQueue(0, bound, policy, deadline)
        now, seq = 0, 0
        admitted: list[int] = []
        left: list[int] = []  # every item drain yielded (served or dropped)
        for op in ops:
            if op[0] == "offer":
                rejection = queue.offer(seq, now)
                if rejection is None:
                    admitted.append(seq)
                else:
                    assert rejection.reason == "shed"
                    assert policy != "block"  # block never rejects
                seq += 1
            else:
                outcomes = list(queue.drain(now, op[1]))
                left.extend(item for item, _, _ in outcomes)
                served = sum(1 for _, _, rej in outcomes if rej is None)
                assert served <= op[1]
                now += 1
            assert queue.depth <= bound
            stats = queue.stats()
            assert stats.submitted == (
                stats.shed + stats.dequeued + stats.dropped + stats.pending
            )
            assert stats.high_water <= bound
        assert left == admitted[: len(left)]  # FIFO, including the backlog


# -- the in-process frontend ----------------------------------------------------------


class TestFrontend:
    def test_submit_routes_by_shard_of(self):
        frontend = Frontend(service())
        for key in ("k0", "k1", "k5", "k11"):
            assert frontend.submit(key).shard == shard_of(key, 2)

    def test_futures_resolve_below_capacity(self):
        frontend = Frontend(service(), queue_bound=16)
        futures = [frontend.submit(f"k{i}") for i in range(8)]
        report = frontend.run()
        assert report.decided == report.submitted == 8
        assert report.shed == report.dropped == 0
        assert not report.shard.divergence
        for future in futures:
            shard, slot = future.result()
            assert shard == future.shard
            assert future.latency is not None and future.latency >= 0
        assert sorted(report.latencies) == sorted(f.latency for f in futures)

    def test_shed_future_raises_submit_rejected(self):
        frontend = Frontend(service(), queue_bound=1)
        keys = keys_of_shard(0, 2, 3)
        first = frontend.submit(keys[0])
        shed = frontend.submit(keys[1])  # same shard, queue already full
        assert shed.rejection is not None and shed.rejection.reason == "shed"
        with pytest.raises(SubmitRejected):
            shed.result()
        report = frontend.run()
        assert report.shed == 1 and first.decided

    def test_duplicate_command_rejected(self):
        frontend = Frontend(service())
        frontend.submit("k0", op=7)
        with pytest.raises(ConfigurationError):
            frontend.submit("k0", op=7)

    def test_frontend_is_single_shot(self):
        frontend = Frontend(service())
        frontend.submit("k0")
        frontend.run()
        with pytest.raises(ReproError):
            frontend.submit("k1")
        with pytest.raises(ReproError):
            frontend.run()

    def test_block_policy_loses_nothing(self):
        frontend = Frontend(service(max_batch=2), queue_bound=2, policy="block")
        for i in range(12):
            frontend.submit(f"k{i}")
        report = frontend.run()
        assert report.shed == report.dropped == 0
        assert report.decided == 12
        assert all(row["pending"] == 0 for row in report.per_shard)

    def test_deadline_policy_drops_stale_commands(self):
        frontend = Frontend(
            service(max_batch=1), queue_bound=16, policy="deadline", deadline=1
        )
        keys = keys_of_shard(0, 2, 6)
        futures = [frontend.submit(key) for key in keys]
        report = frontend.run()  # 1 cmd/tick: commands 2.. wait past deadline
        assert report.dropped > 0
        assert report.decided + report.dropped == 6
        dropped = [f for f in futures if f.rejection is not None]
        assert dropped and all(f.rejection.reason == "deadline" for f in dropped)
        with pytest.raises(SubmitRejected):
            dropped[0].result()

    def test_typed_events_reach_the_sink(self):
        sink = EventLog()
        frontend = Frontend(service(event_sink=sink), queue_bound=1)
        keys = keys_of_shard(0, 2, 3)
        for key in keys:
            frontend.submit(key)
        report = frontend.run()
        logs = [e for e in sink.of_type(LogEvent) if e.event.startswith("frontend.")]
        assert all(e.pid == CLIENT for e in logs)
        by_name = {}
        for e in logs:
            by_name.setdefault(e.event, []).append(e)
        assert len(by_name["frontend.submit"]) == 3
        assert len(by_name["frontend.reject"]) == report.shed == 2
        assert len(by_name["frontend.reply"]) == report.decided == 1
        reply = by_name["frontend.reply"][0]
        assert reply.data["key"] == keys[0] and reply.data["latency"] >= 0


class TestBatcherHeartbeatAging:
    """Regression: heartbeat (empty) decisions must not reset the wait
    clock, or a partial batch below ``max_batch`` never closes and the
    saturation curve's low-load latency inflates to the size bound."""

    def test_empty_acknowledge_keeps_the_clock_running(self):
        batcher = ShardBatcher(max_batch=4, max_wait=2)
        batcher.submit("a", 0)
        batcher.acknowledge((), 1)  # heartbeat slot decided nothing
        assert batcher.ready(2)  # aged max_wait slots from submit, fires

    def test_consuming_acknowledge_restarts_the_clock(self):
        batcher = ShardBatcher(max_batch=4, max_wait=2)
        batcher.submit("a", 0)
        batcher.submit("b", 0)
        batcher.acknowledge(("a",), 5)
        assert not batcher.ready(6)  # the remainder's clock restarted at 5
        assert batcher.ready(7)


# -- seeded load generation -----------------------------------------------------------


class TestLoadGenDeterminism:
    def test_same_seed_same_curve_point(self):
        reports = []
        for _ in range(2):
            frontend = Frontend(service(), queue_bound=16)
            reports.append(LoadGenerator(seed=5).open_loop(frontend, 6.0, 8))
        first, second = reports
        assert first.summary() == second.summary()
        assert digest_checksum(first) == digest_checksum(second)
        assert first.shard.digest == second.shard.digest

    def test_different_seed_different_stream(self):
        checksums = []
        for seed in (5, 6):
            frontend = Frontend(service(), queue_bound=16)
            report = LoadGenerator(seed=seed).open_loop(frontend, 6.0, 8)
            checksums.append((report.submitted, digest_checksum(report)))
        assert checksums[0] != checksums[1]

    def test_closed_loop_self_paces_without_shedding(self):
        frontend = Frontend(service(), queue_bound=16)
        report = LoadGenerator(seed=1).closed_loop(frontend, clients=8, total=24)
        assert report.submitted == report.decided == 24
        assert report.shed == report.dropped == 0

    def test_saturation_sweep_rows_carry_both_latency_curves(self):
        rows = saturation_sweep(
            lambda: service(),
            offered_loads=(2.0, 16.0),
            ticks=6,
            queue_bound=8,
            seed=4,
        )
        assert [row["offered_per_tick"] for row in rows] == [2.0, 16.0]
        below, above = rows
        assert below["shed_rate"] == 0.0
        assert above["shed_rate"] > 0.0  # 2x capacity must shed
        for row in rows:
            assert "p99_client_latency_slots" in row
            assert "consensus_p99_latency" in row
            assert row["divergence"] is False
            assert isinstance(row["digest_crc32"], int)


# -- percentile edge cases ------------------------------------------------------------


class TestPercentileEdges:
    def test_empty_aggregate_is_zero_or_none_never_a_crash(self):
        aggregate = StreamAggregate(label="empty")
        assert aggregate.latency_percentile(0.50) == 0.0
        assert aggregate.latency_percentile_or_none(0.50) is None
        assert aggregate.latency_percentile_or_none(0.99) is None
        summary = aggregate.summary()
        assert summary["runs"] == 0

    def test_single_sample_shard_pins_every_percentile(self):
        sink = ShardStreamSink(shards=2)
        sink.emit(LogEvent(1.0, 0, "shard.open", {"shard": 0, "slot": 0}))
        sink.emit(
            LogEvent(
                3.5,
                0,
                "shard.decide",
                {"shard": 0, "slot": 0, "kind": DecisionKind.ONE_STEP.value},
            )
        )
        per_shard, overall = sink.fold()
        assert per_shard[0].latency_percentile_or_none(0.50) == pytest.approx(2.5)
        assert per_shard[0].latency_percentile(0.99) == pytest.approx(2.5)
        assert overall.latency_percentile(0.50) == pytest.approx(2.5)

    def test_idle_shard_reports_without_samples(self):
        sink = ShardStreamSink(shards=2)
        rows, summary = sink.report()
        assert len(rows) == 2 and summary["slots"] == 0
        per_shard, _ = sink.fold()
        assert per_shard[1].latency_percentile_or_none(0.99) is None

    def test_one_sided_traffic_leaves_the_other_shard_defined(self):
        frontend = Frontend(service(), queue_bound=16)
        busy = keys_of_shard(0, 2, 4)
        for key in busy:
            frontend.submit(key)
        report = frontend.run()
        assert report.decided == 4
        idle = next(row for row in report.per_shard if row["submitted"] == 0)
        assert idle["shed_rate"] == 0.0  # 0/0 is 0, not a ZeroDivisionError

    def test_shed_only_report_has_explicit_none_percentiles(self):
        report = FrontendReport(
            policy="shed",
            queue_bound=1,
            submitted=5,
            accepted=0,
            shed=5,
            dropped=0,
            decided=0,
            ticks=3,
        )
        assert report.latency_percentile(0.50) is None
        summary = report.summary()
        assert summary["p50_client_latency_slots"] is None
        assert summary["p99_client_latency_slots"] is None
        assert summary["shed_rate"] == 1.0
        assert report.throughput_cmds_per_slot == 0.0


# -- the socket frontend --------------------------------------------------------------


def frontend_factory(**kwargs):
    def make() -> Frontend:
        return Frontend(service(), **kwargs)

    return make


@pytest.mark.net
class TestSocketFrontend:
    @pytest.mark.parametrize(
        "codec", [CODEC_BINARY, CODEC_PICKLE], ids=["binary", "pickle"]
    )
    def test_submit_decide_reply_roundtrip_over_uds(self, tmp_path, codec):
        path = str(tmp_path / "frontend.sock")
        server = FrontendServer(
            frontend_factory(queue_bound=32), path=path, codec=codec, tick_every=2
        )
        thread = server.serve_once_in_thread(timeout=30.0)
        try:
            outcomes = SocketClient(path=path, codec=codec).submit_all(
                [(f"k{i}", i) for i in range(12)]
            )
        finally:
            thread.join(timeout=30.0)
            server.close()
        assert set(outcomes) == set(range(12))
        assert all(isinstance(o, ClientReply) for o in outcomes.values())
        assert all(o.slot >= 0 and o.latency >= 0 for o in outcomes.values())
        report = server.last_report
        assert report is not None and report.decided == 12
        assert not report.shard.divergence
        # replies agree with the server-side digest placement
        for request_id, reply in outcomes.items():
            assert reply.shard == shard_of(f"k{request_id}", 2)

    def test_shed_rejections_stream_back_mid_session(self, tmp_path):
        path = str(tmp_path / "shed.sock")
        server = FrontendServer(
            frontend_factory(queue_bound=1),
            path=path,
            tick_every=64,  # no ticks mid-burst: the bound does the work
        )
        thread = server.serve_once_in_thread(timeout=30.0)
        keys = keys_of_shard(0, 2, 6)
        try:
            outcomes = SocketClient(path=path).submit_all(
                [(key, i) for i, key in enumerate(keys)]
            )
        finally:
            thread.join(timeout=30.0)
            server.close()
        replies = [o for o in outcomes.values() if isinstance(o, ClientReply)]
        rejections = [o for o in outcomes.values() if isinstance(o, ClientRejected)]
        assert len(replies) == 1  # queue bound 1, one shard: one survivor
        assert len(rejections) == 5
        assert all(r.reason == "shed" and r.shard == 0 for r in rejections)

    def test_server_requires_exactly_one_transport(self):
        with pytest.raises(ConfigurationError):
            FrontendServer(frontend_factory())
        with pytest.raises(ConfigurationError):
            SocketClient(path="/tmp/x", address=("127.0.0.1", 0))
