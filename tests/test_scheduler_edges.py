"""Edge cases at the scheduler/event-queue boundary: negative extra-delay
clamping, the lazy (flat-entry) heap, and schedule replay fidelity."""

import pytest

from repro.harness import Equivocate, Scenario, dex_freq
from repro.sim.events import Event, EventQueue
from repro.sim.latency import ConstantLatency
from repro.sim.scheduler import (
    DelayMatching,
    DelaySenders,
    DeliveryScheduler,
    PartitionScheduler,
    RandomJitterScheduler,
    ReplayScheduler,
)


class NegativeExtra(DeliveryScheduler):
    """A buggy composition handing back a large negative extra delay."""

    def extra_delay(self, rng, src, dst, payload, time):
        return -100.0


class TestNegativeDelayClamping:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DelaySenders([0], -1.0)
        with pytest.raises(ValueError):
            DelayMatching(lambda s, d, p: True, -0.5)
        with pytest.raises(ValueError):
            RandomJitterScheduler(-2.0)
        with pytest.raises(ValueError):
            PartitionScheduler(lambda p: 0, start=2.0, end=1.0)
        with pytest.raises(ValueError):
            PartitionScheduler(lambda p: 0, start=0.0, end=1.0, jitter=-1.0)

    def test_negative_extra_is_clamped_not_time_travel(self):
        scenario = Scenario(
            dex_freq(),
            [1, 1, 1, 1, 1, 2, 2],
            scheduler=NegativeExtra(),
            trace=True,
        )
        result = scenario.run()
        assert result.all_correct_decided()
        # Clamping pins every delivery at (not before) its send time, so
        # simulated time stays monotone and never goes negative.
        times = [e.time for e in result.tracer.by_event("deliver")]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)
        assert result.end_time >= 0.0

    def test_replay_past_due_records_deliver_immediately(self):
        # A dictating scheduler can return a negative delay when the
        # record's rank is already in the past; the runner clamps to "now".
        replay = ReplayScheduler([(0, 1, "'m'")])
        assert replay.extra_delay(None, 0, 1, "m", 5.0) == pytest.approx(-4.0)


class TestLazyHeap:
    def test_mixed_push_kinds_pop_in_time_order(self):
        q = EventQueue()
        q.push(Event(2.0, "start", dst=7))
        q.push_deliver(1.0, 3, 1, "late", 4)
        q.push_deliver(0.5, 2, 0, "early", 1)
        first, second, third = q.pop(), q.pop(), q.pop()
        assert (first.dst, first.payload) == (2, "early")
        assert (second.dst, second.payload, second.depth) == (3, "late", 4)
        assert (third.kind, third.dst) == ("start", 7)
        assert (q.pushed, q.popped) == (3, 3)

    def test_flat_entries_materialize_as_deliver_events(self):
        q = EventQueue()
        q.push_deliver(1.0, 5, 2, {"k": 1}, 3)
        event = q.pop()
        assert isinstance(event, Event)
        assert event.kind == "deliver"
        assert (event.dst, event.sender, event.payload, event.depth) == (
            5,
            2,
            {"k": 1},
            3,
        )

    def test_pop_entry_preserves_both_layouts(self):
        q = EventQueue()
        q.push(Event(1.0, "start", dst=0))
        q.push_deliver(2.0, 1, 0, "m", 1)
        whole = q.pop_entry()
        flat = q.pop_entry()
        assert len(whole) == 3 and isinstance(whole[2], Event)
        assert len(flat) == 6 and flat[2:] == (1, 0, "m", 1)

    def test_fifo_tie_break_across_push_kinds(self):
        q = EventQueue()
        q.push_deliver(1.0, 0, 9, "first", 1)
        q.push(Event(1.0, "deliver", dst=1, sender=9, payload="second"))
        q.push_deliver(1.0, 2, 9, "third", 1)
        assert [q.pop().dst for _ in range(3)] == [0, 1, 2]


class TestReplayScheduler:
    def test_duplicate_keys_consume_fifo(self):
        replay = ReplayScheduler([(0, 1, "m"), (0, 1, "m")])
        key = lambda payload: payload  # noqa: E731
        replay._key = key
        first = replay.extra_delay(None, 0, 1, "m", 0.0)
        second = replay.extra_delay(None, 0, 1, "m", 0.0)
        assert (first, second) == (1.0, 2.0)
        assert replay.extra_delay(None, 0, 1, "m", 0.0) == float("inf")

    def test_unlisted_messages_never_deliver(self):
        replay = ReplayScheduler([(0, 1, repr("m"))])
        assert replay.extra_delay(None, 2, 1, "m", 0.0) == float("inf")
        assert replay.horizon == 2.0

    def test_replaying_a_traced_run_reproduces_decisions(self):
        """Record one adversarial simulator run's global delivery order,
        replay it through a ReplayScheduler, and require the identical
        decision vector — the scheduler-level half of the counterexample
        replay pipeline."""
        inputs = [1, 1, 1, 1, 1, 2, 2]
        faults = {6: Equivocate(1, 2)}
        original = Scenario(
            dex_freq(), inputs, faults=faults, seed=7, trace=True
        ).run()
        schedule = [
            (e.data["from"], e.pid, repr(e.data["payload"]))
            for e in original.tracer.by_event("deliver")
        ]
        replayed = Scenario(
            dex_freq(),
            inputs,
            faults=faults,
            scheduler=ReplayScheduler(schedule),
            latency=ConstantLatency(0.0),
            seed=999,  # replay is schedule-driven: the seed must not matter
        ).run()
        assert {
            pid: (d.value, d.kind, d.step)
            for pid, d in replayed.correct_decisions.items()
        } == {
            pid: (d.value, d.kind, d.step)
            for pid, d in original.correct_decisions.items()
        }
