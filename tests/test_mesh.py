"""The mesh transport end to end: hub groups, relay, and hub death.

Three layers:

* unmarked unit tests for the pure pieces — :class:`~repro.mesh.topology.
  MeshTopology` validation, the per-hub RNG streams, raw-bytes shard
  attribution (``peek_shard``), and the per-hub projection of link plans;
* an in-thread :class:`~repro.mesh.hub.HubWorker` routing test with stub
  node sockets — no forking, but the real selector loop, so the
  owned-vs-relayed split is asserted frame by frame;
* ``@pytest.mark.net`` integration tests that fork the full mesh (hub
  processes + node processes): sim↔mesh digest parity, per-hub frame
  attribution, a SIGKILLed hub (fail loudly, never hang), and a remote
  TCP hub served by :func:`~repro.mesh.hub.serve_hub`.
"""

import multiprocessing
import os
import pathlib
import signal
import socket
import tempfile
import threading
import time

import pytest

from repro.codec import CODEC_BINARY
from repro.codec.binary import encode
from repro.errors import SimulationError
from repro.harness import Scenario, dex_freq
from repro.mesh import (
    CONTROL_LINK,
    EXIT_HUB_LOST,
    HubHello,
    HubLink,
    HubReady,
    HubStats,
    HubWorker,
    MeshTopology,
    MsgRelay,
    hub_rng,
    peek_shard,
    shard_of_payload,
)
from repro.net.faults import DelayLink, DropLink, LinkPlan
from repro.net.wire import Hello, MsgDeliver, MsgSend, Stop
from repro.runtime.composite import Envelope
from repro.shard.router import hub_of, instance_name
from repro.shard.service import ShardedService
from repro.types import DecisionKind
from repro.workloads.inputs import unanimous

UNATTRIBUTED = -1


def assert_no_mesh_leaks():
    """No hub or node processes, no socket directories left behind."""
    leaked = [
        p
        for p in multiprocessing.active_children()
        if "repro-net" in p.name or "repro-mesh" in p.name
    ]
    assert not leaked, f"leaked processes: {leaked}"
    residue = list(pathlib.Path("/tmp").glob("repro-net-*"))
    assert not residue, f"leaked socket directories: {residue}"


def sharded_payload(shard: int, slot: int = 0):
    """The data-plane shape every sharded frame has: mux → instance → body."""
    return Envelope("mux", Envelope(instance_name(shard, slot), ("body", shard)))


# -- topology / attribution units ------------------------------------------------------


class TestMeshTopology:
    def test_defaults_are_the_star(self):
        topo = MeshTopology()
        assert topo.hubs == 1
        assert topo.route == "direct"
        assert not topo.remote

    def test_rejects_zero_hubs(self):
        with pytest.raises(SimulationError):
            MeshTopology(hubs=0)

    def test_rejects_unknown_route(self):
        with pytest.raises(SimulationError):
            MeshTopology(hubs=2, route="teleport")

    def test_rejects_remote_hub_zero(self):
        # hub 0 is the orchestrator itself; it cannot be remote.
        with pytest.raises(SimulationError):
            MeshTopology(hubs=2, remote={0: ("10.0.0.1", 9000)})

    def test_rejects_remote_index_out_of_range(self):
        with pytest.raises(SimulationError):
            MeshTopology(hubs=2, remote={2: ("10.0.0.1", 9000)})

    def test_rejects_nonpositive_high_water(self):
        with pytest.raises(SimulationError):
            MeshTopology(hubs=2, high_water=0)


class TestHubRng:
    def test_hub_zero_matches_the_star_stream(self):
        # Back-compat anchor: a 1-hub mesh must be bit-identical to the
        # star cluster, so hub 0 draws from the plain seeded stream.
        import random

        assert hub_rng(42, 0).random() == random.Random(42).random()

    def test_streams_differ_per_hub(self):
        draws = {hub_rng(42, k).random() for k in range(4)}
        assert len(draws) == 4

    def test_streams_differ_per_seed(self):
        assert hub_rng(1, 2).random() != hub_rng(2, 2).random()


class TestAttribution:
    def test_hub_of_round_robin(self):
        assert [hub_of(s, 2) for s in range(4)] == [0, 1, 0, 1]
        assert hub_of(5, 1) == 0

    def test_hub_of_rejects_bad_args(self):
        with pytest.raises(ValueError):
            hub_of(0, 0)
        with pytest.raises(ValueError):
            hub_of(-1, 2)

    def test_shard_of_payload_unwraps_envelopes(self):
        for shard in range(4):
            assert shard_of_payload(sharded_payload(shard), 4) == shard

    def test_shard_of_payload_unattributed(self):
        assert shard_of_payload("just a value", 4) == UNATTRIBUTED
        assert shard_of_payload(Envelope("uc", 1), 4) == UNATTRIBUTED

    def test_peek_shard_reads_raw_binary_bytes(self):
        # The data hub's zero-decode path: attribution straight off the
        # encoded frame body, no object materialization.
        for shard in range(4):
            data = encode(sharded_payload(shard, slot=7))
            assert peek_shard(data, 4) == shard

    def test_peek_shard_foreign_bytes_unattributed(self):
        assert peek_shard(encode(("x", 1)), 4) == UNATTRIBUTED
        assert peek_shard(b"", 4) == UNATTRIBUTED
        assert peek_shard(b"\xff\xff\xff", 4) == UNATTRIBUTED


class TestLinkPlanProjection:
    def test_projected_budgets_are_independent(self):
        # Each hub must own a private copy of every fault's mutable state
        # (budgets, counters); otherwise multi-hub runs would share one
        # CutAfter countdown across processes that never see each other.
        import random

        plan = LinkPlan(per_source={1: [DropLink(1.0)]})
        a, b = plan.project(0), plan.project(1)
        assert a.route(1, 2, random.Random(0)) == []
        assert b.route(1, 2, random.Random(0)) == []
        assert a.per_source[1][0] is not plan.per_source[1][0]
        assert a.per_source[1][0] is not b.per_source[1][0]

    def test_projected_delay_still_delays(self):
        import random

        plan = LinkPlan(everywhere=[DelayLink(0.25)])
        projected = plan.project(3)
        assert projected.route(0, 1, random.Random(0)) == [0.25]


# -- the hub worker's selector loop, in a thread ---------------------------------------


def _drain(link: HubLink, count: int, timeout: float = 5.0):
    """Read ``count`` frames off a link, with a hard deadline."""
    got = []
    link.sock.settimeout(0.2)
    deadline = time.monotonic() + timeout
    while len(got) < count:
        assert time.monotonic() < deadline, f"only {len(got)}/{count} frames"
        try:
            data = link.sock.recv(65536)
        except TimeoutError:
            continue
        assert data, "hub closed the connection early"
        got.extend(link.decoder.feed(data))
    return got


class TestHubWorkerRouting:
    def test_owned_delivered_and_foreign_relayed(self, tmp_path):
        """Every frame for shard s arrives only via hub_of(s).

        Hub 1 of a 2-hub, 4-shard mesh: frames for shards 1 and 3 are
        owned (delivered straight to the destination node's socket);
        frames for shards 0 and 2 belong to hub 0 and must leave over the
        control link as ``MsgRelay`` — never toward a node.
        """
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(tmp_path / "hub1.sock"))
        listener.listen(8)
        worker = HubWorker(
            index=1,
            hubs=2,
            shards=4,
            nodes=2,
            listener=listener,
            endpoints=[None, None],
            mean_delay=0.0,
        )
        thread = threading.Thread(target=worker.run, kwargs={"deadline_seconds": 30.0})
        thread.start()
        control = node0 = node1 = None
        try:
            address = str(tmp_path / "hub1.sock")
            control = HubLink.dial(
                socket.AF_UNIX, address, HubHello(CONTROL_LINK), CODEC_BINARY,
                lazy=False,
            )
            node0 = HubLink.dial(
                socket.AF_UNIX, address, Hello(0, CODEC_BINARY), CODEC_BINARY,
                lazy=False,
            )
            node1 = HubLink.dial(
                socket.AF_UNIX, address, Hello(1, CODEC_BINARY), CODEC_BINARY,
                lazy=False,
            )
            (ready,) = _drain(control, 1)
            assert ready == HubReady(1, 2)

            # owned shards (1, 3) → delivered to the destination node
            node0.send(MsgSend(0, 1, sharded_payload(1), 0))
            node0.send(MsgSend(0, 1, sharded_payload(3), 1))
            # foreign shards (0, 2) → relayed over the control link
            node0.send(MsgSend(0, 1, sharded_payload(0), 0))
            node0.send(MsgSend(0, 1, sharded_payload(2), 0))

            # the hub may coalesce co-scheduled deliveries into one
            # MsgDeliverBatch frame; flatten to (sender, payload, depth)
            payloads = []
            deadline = time.monotonic() + 5.0
            while len(payloads) < 2 and time.monotonic() < deadline:
                for frame in _drain(node1, 1):
                    if isinstance(frame, MsgDeliver):
                        payloads.append(frame.payload)
                    else:  # MsgDeliverBatch
                        payloads.extend(p for _, p, _ in frame.entries)
            assert {shard_of_payload(p, 4) for p in payloads} == {1, 3}
            relayed = _drain(control, 2)
            assert all(isinstance(m, MsgRelay) for m in relayed)
            assert {shard_of_payload(m.payload, 4) for m in relayed} == {0, 2}
            # src is authenticated: the hub stamps the connection's pid
            assert {m.src for m in relayed} == {0}

            control.send(Stop())
            (stats,) = [m for m in _drain(control, 1) if isinstance(m, HubStats)]
            assert stats.hub == 1
            assert stats.sent == 4
            assert stats.delivered == 2
            assert stats.relayed == 2
            # both deliveries may share one batched frame
            assert stats.frames >= 1
            assert stats.bytes > 0
        finally:
            for link in (control, node0, node1):
                if link is not None:
                    link.close()
            thread.join(10.0)
            assert not thread.is_alive()


# -- full mesh integration: forked hubs + forked nodes ---------------------------------


@pytest.mark.net
class TestMeshCluster:
    def test_two_hub_run_decides_and_splits_load(self):
        report = ShardedService(
            n=7, shards=4, contention=0.0, seed=11, engine="net",
            mesh=MeshTopology(hubs=2),
        ).run(count=12, timeout=30.0)
        result = report.result
        assert not report.divergence
        assert report.digest is not None
        assert not result.timed_out
        assert set(result.exit_codes.values()) == {0}
        assert result.hub_exit_codes == {1: 0}
        # both hub groups carried node-facing traffic
        assert set(result.hub_frame_counts) == {0, 1}
        assert all(frames > 0 for frames in result.hub_frame_counts.values())
        assert all(n > 0 for n in result.hub_byte_counts.values())
        assert_no_mesh_leaks()

    def test_mesh_digest_matches_sim(self):
        # Cross-engine determinism with the transport split across hub
        # processes: contention 0 keeps proposals timing-independent, so
        # the mesh must land on the simulator's exact digest.
        reports = {}
        for engine, mesh in (("sim", None), ("net", MeshTopology(hubs=2))):
            reports[engine] = ShardedService(
                n=7, shards=4, contention=0.0, seed=11, engine=engine, mesh=mesh
            ).run(count=10, timeout=30.0)
        assert not reports["sim"].divergence
        assert not reports["net"].divergence
        assert reports["sim"].digest == reports["net"].digest is not None
        assert_no_mesh_leaks()

    def test_hub_death_fails_loudly_never_hangs(self):
        # SIGKILL hub 1 mid-run: the orchestrator must notice the lost
        # control link, declare the run stalled, and attribute the death
        # in hub_exit_codes — not hang until the pytest SIGALRM.
        def kill_hub_one():
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                for proc in multiprocessing.active_children():
                    if proc.name == "repro-mesh-hub-1" and proc.pid:
                        time.sleep(0.2)  # let the handshake finish
                        try:
                            os.kill(proc.pid, signal.SIGKILL)
                        except ProcessLookupError:
                            pass
                        return
                time.sleep(0.01)

        killer = threading.Thread(target=kill_hub_one)
        killer.start()
        try:
            report = ShardedService(
                n=7, shards=4, contention=0.0, seed=5, engine="net",
                mesh=MeshTopology(hubs=2),
            ).run(count=64, timeout=12.0)
        finally:
            killer.join(20.0)
        result = report.result
        assert result.hub_exit_codes.get(1) == -signal.SIGKILL
        # the run either noticed in-flight (stalled → timed out) or the
        # kill landed during teardown after every node already decided —
        # both are loud, neither hangs.
        if not result.timed_out:
            assert report.digest is not None
        assert_no_mesh_leaks()

    def test_remote_tcp_hub(self):
        # Hub 1 lives in its own process behind `serve_hub` (what
        # `repro hub` runs on another host); the cluster dials it via
        # MeshTopology.remote instead of forking it.
        from repro.mesh.hub import serve_hub

        queue: multiprocessing.Queue = multiprocessing.Queue()

        def hub_main():
            serve_hub(
                1, 2, 1, 7,
                host="127.0.0.1", port=0,
                deadline_seconds=60.0,
                announce=lambda addr: queue.put(addr[1]),
            )

        proc = multiprocessing.Process(target=hub_main, daemon=True)
        proc.start()
        try:
            port = queue.get(timeout=10.0)
            scenario = Scenario(
                dex_freq(), unanimous(1, 7), seed=3,
                mesh=MeshTopology(hubs=2, remote={1: ("127.0.0.1", port)}),
            )
            result = scenario.run_net(timeout=30.0, transport="tcp")
            assert result.agreement_holds()
            assert {d.kind for d in result.correct_decisions.values()} == {
                DecisionKind.ONE_STEP
            }
            assert set(result.exit_codes.values()) == {0}
            # the remote hub reported its stats over the control link
            assert 1 in result.hub_frame_counts
            # remote hubs are not the cluster's children: no exit code row
            assert 1 not in result.hub_exit_codes
        finally:
            proc.join(15.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(5.0)
        assert_no_mesh_leaks()

    def test_remote_topology_requires_tcp(self):
        scenario = Scenario(
            dex_freq(), unanimous(1, 7), seed=3,
            mesh=MeshTopology(hubs=2, remote={1: ("127.0.0.1", 1)}),
        )
        with pytest.raises(SimulationError):
            scenario.run_net(timeout=5.0)  # UDS transport, remote hub

    def test_node_exit_code_names_the_lost_hub(self):
        # EXIT_HUB_LOST is part of the contract surfaced to operators;
        # pin its value so log scrapers can rely on it.
        assert EXIT_HUB_LOST == 6
