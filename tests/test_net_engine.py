"""The socket engine end to end: real processes, real sockets, real faults.

Two layers:

* unmarked unit tests for the link-fault algebra
  (:class:`~repro.net.faults.LinkPlan`, :func:`plan_from_plane`) and the
  inertness of :class:`~repro.net.faults.ProcessCrash` outside a node
  process — pure, no forking;
* ``@pytest.mark.net`` integration tests that fork node processes and run
  full consensus rounds over UDS/TCP, under a hard SIGALRM timeout (see
  ``conftest.py``) so a hung hub cannot stall the suite.

The parity test replays the frozen ``seed_decisions.json`` scenarios over
real sockets.  The wire engine shares protocols and inputs with the
simulator but not its clock, so per-seed *timing* differs: the assertion is
the paper's safety surface — agreement, validity, termination — not
step-for-step equality.
"""

import json
import multiprocessing
import pathlib
import random

import pytest

from repro.engine.events import (
    DecideEvent,
    DeliverEvent,
    EventLog,
    EventStats,
    SendEvent,
    TeeSink,
)
from repro.engine.faults import Crash, Equivocate, Silent
from repro.harness import (
    ENGINES,
    Scenario,
    bosco_strong,
    bosco_weak,
    brasileiro,
    dex_freq,
    dex_prv,
    izumi,
    twostep,
)
from repro.net import (
    CutAfter,
    DelayLink,
    DropLink,
    DuplicateLink,
    LinkPlan,
    NetCluster,
    ProcessCrash,
    ReorderLink,
    plan_from_plane,
)
from repro.types import DecisionKind
from repro.workloads.inputs import split, unanimous

DATA = pathlib.Path(__file__).parent / "data" / "seed_decisions.json"

# Same registries as the fixture replay in test_incremental_equiv.py: the
# parity test rebuilds the exact scenarios the fixture was recorded from.
SEED_ALGOS = {
    "dex-freq": dex_freq,
    "dex-prv": dex_prv,
    "bosco-weak": bosco_weak,
    "bosco-strong": bosco_strong,
    "izumi": izumi,
    "brasileiro": brasileiro,
    "twostep": twostep,
}
SEED_FAULTS = {
    None: lambda n: {},
    "silent": lambda n: {n - 1: Silent()},
    "crash": lambda n: {n - 1: Crash(budget=3)},
    "equivocate": lambda n: {n - 1: Equivocate(1, 2)},
}
SEED_INPUTS = {
    "unanimous": lambda n: unanimous(1, n),
}


def assert_no_leaks():
    """No worker processes or hub socket dirs left behind."""
    leaked = [p for p in multiprocessing.active_children() if "repro-net" in p.name]
    assert not leaked, f"leaked node processes: {leaked}"
    residue = list(pathlib.Path("/tmp").glob("repro-net-*"))
    assert not residue, f"leaked socket directories: {residue}"


class TestLinkPlan:
    def test_empty_plan_is_falsy_and_passes_everything(self):
        plan = LinkPlan()
        assert not plan
        assert plan.route(0, 1, random.Random(0)) == [0.0]

    def test_drop_link_full_probability_drops(self):
        plan = LinkPlan(per_source={3: [DropLink(1.0)]})
        assert plan.route(3, 0, random.Random(0)) == []
        assert plan.route(0, 3, random.Random(0)) == [0.0]  # inbound unaffected

    def test_drop_link_zero_probability_passes(self):
        plan = LinkPlan(everywhere=[DropLink(0.0)])
        assert plan.route(0, 1, random.Random(0)) == [0.0]

    def test_drop_link_validates_probability(self):
        with pytest.raises(ValueError):
            DropLink(1.5)

    def test_delay_link_adds_latency(self):
        plan = LinkPlan(everywhere=[DelayLink(extra=0.25)])
        assert plan.route(0, 1, random.Random(0)) == [0.25]

    def test_delay_link_rejects_negative(self):
        with pytest.raises(ValueError):
            DelayLink(extra=-0.1)

    def test_duplicate_link_multiplies_copies(self):
        plan = LinkPlan(everywhere=[DuplicateLink(probability=1.0, copies=3)])
        assert len(plan.route(0, 1, random.Random(0))) == 3

    def test_cut_after_budget_is_stateful_per_source(self):
        plan = LinkPlan(per_source={2: [CutAfter(budget=2)]})
        rng = random.Random(0)
        assert plan.route(2, 0, rng) == [0.0]
        assert plan.route(2, 1, rng) == [0.0]
        assert plan.route(2, 0, rng) == []  # budget exhausted
        assert plan.route(2, 1, rng) == []

    def test_faults_compose_drop_then_duplicate(self):
        plan = LinkPlan(
            per_source={0: [DropLink(1.0), DuplicateLink(copies=4)]}
        )
        assert plan.route(0, 1, random.Random(0)) == []

    def test_describe_names_the_chain(self):
        plan = LinkPlan(per_source={1: [DropLink(1.0), CutAfter(5)]})
        described = plan.describe()
        assert "DropLink" in described[1] and "CutAfter" in described[1]


class TestPlanFromPlane:
    def _plane(self, faults, n=7, t=1):
        from repro.engine.faults import FaultPlane
        from repro.types import SystemConfig

        return FaultPlane(SystemConfig(n, t), faults)

    def test_silent_becomes_total_drop(self):
        plan = plan_from_plane(self._plane({6: Silent()}))
        assert plan.route(6, 0, random.Random(0)) == []

    def test_crash_becomes_cut_after_budget(self):
        plan = plan_from_plane(self._plane({6: Crash(budget=2)}))
        rng = random.Random(0)
        assert plan.route(6, 0, rng) == [0.0]
        assert plan.route(6, 1, rng) == [0.0]
        assert plan.route(6, 2, rng) == []

    def test_byzantine_faults_ride_in_node_not_on_the_link(self):
        # Equivocate wraps the protocol inside the worker; the link plan
        # must leave its traffic alone.
        plan = plan_from_plane(self._plane({6: Equivocate(1, 2)}))
        assert plan.route(6, 0, random.Random(0)) == [0.0]

    def test_empty_plane_is_empty_plan(self):
        assert not plan_from_plane(self._plane({}))


class TestProcessCrashInert:
    def test_does_not_kill_outside_a_node_process(self):
        # The env marker is absent in the test process, so this must be a
        # no-op rather than os._exit'ing the pytest runner.
        ProcessCrash(after=0).maybe_kill(sent=100)

    def test_frozen(self):
        crash = ProcessCrash(after=3)
        with pytest.raises(Exception):
            crash.after = 5


@pytest.mark.net
class TestNetSmoke:
    def test_net_is_a_registered_engine(self):
        assert "net" in ENGINES

    def test_uds_n4_unanimous_decides_one_step(self, config4):
        result = Scenario(
            dex_freq(), unanimous(1, 4), seed=7, engine="net"
        ).run()
        assert result.all_correct_decided()
        assert result.agreement_holds()
        assert result.decided_value == 1
        assert_no_leaks()

    def test_uds_n7_unanimous_decides_one_step(self):
        result = Scenario(dex_freq(), unanimous(1, 7), seed=1, engine="net").run()
        assert result.all_correct_decided()
        assert result.decided_value == 1
        assert {d.kind for d in result.correct_decisions.values()} == {
            DecisionKind.ONE_STEP
        }
        assert not result.timed_out
        assert result.exit_codes and all(
            code == 0 for code in result.exit_codes.values()
        )
        assert_no_leaks()

    def test_tcp_transport(self):
        result = Scenario(dex_freq(), unanimous(1, 4), seed=3, engine="net").run_net(
            timeout=20.0, transport="tcp"
        )
        assert result.transport == "tcp"
        assert result.all_correct_decided()
        assert result.decided_value == 1
        assert_no_leaks()

    def test_split_inputs_still_terminate(self):
        result = Scenario(dex_freq(), split(1, 2, 7, 3), seed=5, engine="net").run()
        assert result.all_correct_decided()
        assert result.agreement_holds()
        assert_no_leaks()


@pytest.mark.net
class TestNetEvents:
    def test_event_stream_reaches_sinks(self):
        log, stats = EventLog(), EventStats()
        result = Scenario(
            dex_freq(),
            unanimous(1, 7),
            seed=2,
            engine="net",
            event_sink=TeeSink(log, stats),
        ).run()
        assert result.all_correct_decided()
        assert any(isinstance(e, SendEvent) for e in log.events)
        assert any(isinstance(e, DeliverEvent) for e in log.events)
        decided = [e for e in log.events if isinstance(e, DecideEvent)]
        assert {e.pid for e in decided} == set(result.correct_decisions)
        assert stats.one_step_fraction == 1.0
        # The stream clock is wall-clock offsets from the run start.
        times = [e.time for e in log.events]
        assert times == sorted(times) and all(t >= 0.0 for t in times)


@pytest.mark.net
class TestNetFaults:
    def test_silent_node_over_the_wire(self):
        result = Scenario(
            dex_freq(), unanimous(1, 7), faults={6: Silent()}, seed=4, engine="net"
        ).run()
        assert result.all_correct_decided()
        assert result.decided_value == 1
        assert 6 not in result.correct_decisions
        assert_no_leaks()

    def test_crash_budget_over_the_wire(self):
        result = Scenario(
            dex_freq(), unanimous(1, 7), faults={6: Crash(budget=3)}, seed=4,
            engine="net",
        ).run()
        assert result.all_correct_decided()
        assert result.decided_value == 1
        assert_no_leaks()

    def test_equivocator_over_the_wire(self):
        result = Scenario(
            dex_freq(),
            unanimous(1, 7),
            faults={6: Equivocate(1, 2)},
            seed=4,
            engine="net",
        ).run()
        assert result.all_correct_decided()
        assert result.agreement_holds()
        assert result.decided_value == 1
        assert_no_leaks()

    def test_ambient_link_chaos_still_decides(self):
        # Duplicated and delayed (but not dropped) traffic: liveness and
        # safety must survive; the hub dedups nothing, the protocol must.
        scenario = Scenario(dex_freq(), unanimous(1, 7), seed=9)
        protocols, services = scenario.components()
        cluster = NetCluster(
            scenario.config,
            protocols,
            services=services,
            seed=9,
            link_plan=LinkPlan(
                everywhere=[DuplicateLink(probability=0.5, copies=2), DelayLink(0.001, jitter=0.002)]
            ),
        )
        result = cluster.run(timeout=20.0)
        assert result.all_correct_decided()
        assert result.agreement_holds()
        assert result.decided_value == 1
        assert_no_leaks()


@pytest.mark.net(timeout=120)
class TestNetRobustness:
    def test_crashed_plus_silent_terminates_with_partial_decisions(self):
        # One node killed by chaos at its first outgoing frame, one silent:
        # the hub must detect the stall, return partial decisions, and reap
        # every child.  twostep needs all n-t echoes, so the correct nodes
        # other than the victims still decide; pid 6 never can.
        scenario = Scenario(
            twostep(), unanimous(1, 7), faults={5: Silent()}, seed=11
        )
        protocols, services = scenario.components()
        cluster = NetCluster(
            scenario.config,
            protocols,
            faulty=frozenset({5}),
            services=services,
            seed=11,
            link_plan=plan_from_plane(scenario._plane),
            chaos={6: ProcessCrash(after=0)},
        )
        result = cluster.run(timeout=8.0)
        decided = set(result.correct_decisions)
        assert decided == {0, 1, 2, 3, 4}
        assert result.agreement_holds()
        assert result.decided_value == 1
        assert result.timed_out  # partial: an undecided correct pid remains
        assert result.exit_codes[6] == 17  # ProcessCrash exit_code default
        assert_no_leaks()


@pytest.mark.net(timeout=420)
class TestSeedParityOverSockets:
    """Replay the frozen n=7 fixture scenarios over real sockets.

    Timing-dependent fields (kinds, steps, message counts) may legitimately
    differ from the simulator; agreement, validity, and who decides must
    not.  Every n=7 fixture record is unanimous-input, so validity pins the
    decided value exactly.
    """

    def test_at_least_thirty_scenarios_agree_with_the_simulator(self):
        records = [rec for rec in json.loads(DATA.read_text()) if rec["n"] == 7]
        assert len(records) >= 30
        for rec in records:
            assert rec["inputs"] == "unanimous"  # value pinned by validity
            scenario = Scenario(
                SEED_ALGOS[rec["algorithm"]](),
                SEED_INPUTS[rec["inputs"]](rec["n"]),
                faults=SEED_FAULTS[rec["fault"]](rec["n"]),
                seed=rec["seed"],
                engine="net",
            )
            result = scenario.run()
            context = (rec["algorithm"], rec["fault"], rec["seed"])
            assert result.all_correct_decided(), context
            assert result.agreement_holds(), context
            assert result.decided_value == 1, context
            sim_decided = {int(pid) for pid in rec["decisions"]}
            assert set(result.correct_decisions) == sim_decided, context
        assert_no_leaks()


class TestReorderLink:
    """Pure reordering: every message arrives exactly once, later."""

    def test_full_probability_delays_within_window(self):
        plan = LinkPlan(everywhere=[ReorderLink(1.0, window=0.005)])
        rng = random.Random(0)
        for _ in range(20):
            (delay,) = plan.route(0, 1, rng)
            assert 0.0 <= delay <= 0.005

    def test_zero_probability_passes_immediately(self):
        plan = LinkPlan(everywhere=[ReorderLink(0.0, window=0.005)])
        assert plan.route(0, 1, random.Random(0)) == [0.0]

    def test_never_drops_or_duplicates(self):
        plan = LinkPlan(everywhere=[ReorderLink(0.5, window=0.01)])
        rng = random.Random(1)
        for _ in range(50):
            assert len(plan.route(0, 1, rng)) == 1

    def test_validates_probability_and_window(self):
        with pytest.raises(ValueError):
            ReorderLink(1.5)
        with pytest.raises(ValueError):
            ReorderLink(0.5, window=0.0)

    def test_describe_names_the_parameters(self):
        plan = LinkPlan(per_source={2: [ReorderLink(0.7, window=0.004)]})
        described = plan.describe()
        assert "ReorderLink" in described[2]
        assert "p=0.7" in described[2]


@pytest.mark.net
class TestNetReordering:
    def test_reordering_alone_never_violates_agreement(self):
        # Aggressive reordering on every link of a *contended* round: the
        # algorithm is asynchronous, so pure reordering (no loss, no
        # duplication) must leave agreement and termination intact.
        scenario = Scenario(dex_freq(), split(1, 2, 7, 3), seed=13)
        protocols, services = scenario.components()
        cluster = NetCluster(
            scenario.config,
            protocols,
            services=services,
            seed=13,
            link_plan=LinkPlan(everywhere=[ReorderLink(0.7, window=0.004)]),
        )
        result = cluster.run(timeout=20.0)
        assert result.agreement_holds()
        assert result.all_correct_decided()
        assert result.decided_value in (1, 2)
        assert_no_leaks()


@pytest.mark.net
class TestDeliveryBatching:
    def test_batched_mode_decides_identically_with_fewer_frames(self):
        # Coalescing co-scheduled deliveries into MsgDeliverBatch frames
        # must be invisible to the protocol: same decision either way.
        # (Exact message *counts* are wall-clock dependent — nodes keep
        # gossiping until the hub winds the run down — so the frame
        # assertion is a strict ordering, not a ratio.)
        results = {}
        for batched in (False, True):
            result = Scenario(
                dex_freq(), unanimous(1, 7), seed=21, engine="net"
            ).run_net(timeout=20.0, batch_deliveries=batched)
            assert result.all_correct_decided()
            assert result.decided_value == 1
            results[batched] = result
        # unbatched: one hub frame per delivered message (plus control).
        assert results[False].hub_frames >= results[False].stats.messages_delivered
        # batched: co-scheduled deliveries coalesce, far fewer frames.
        assert results[True].hub_frames < results[True].stats.messages_delivered
        assert results[True].hub_frames < results[False].hub_frames
        assert_no_leaks()


@pytest.mark.net
class TestLognormalJitter:
    def test_lognormal_hub_jitter_runs_to_decision(self):
        result = Scenario(
            dex_freq(), unanimous(1, 7), seed=6, engine="net",
            net_jitter="lognormal",
        ).run()
        assert result.all_correct_decided()
        assert result.decided_value == 1
        assert_no_leaks()
