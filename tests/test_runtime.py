"""Unit tests for the sans-IO runtime: effects, protocol guard, composition."""

from dataclasses import dataclass

import pytest

from repro.runtime.composite import CompositeProtocol, Envelope
from repro.runtime.effects import (
    Broadcast,
    Decide,
    Deliver,
    Log,
    Send,
    ServiceCall,
    logs,
)
from repro.runtime.protocol import Protocol, guarded
from repro.types import DecisionKind, SystemConfig


@dataclass(frozen=True)
class Ping:
    value: int


class Echoer(Protocol):
    """Replies to every Ping with a Ping back (test fixture)."""

    def on_message(self, sender, payload):
        if isinstance(payload, Ping):
            return [Send(sender, Ping(payload.value + 1))]
        raise TypeError(f"unexpected {payload!r}")


class TestEffects:
    def test_service_call_pushed_builds_path(self):
        call = ServiceCall("svc", "req")
        pushed = call.pushed("uc")
        assert pushed.reply_path == ("uc",)
        assert pushed.pushed("outer").reply_path == ("outer", "uc")

    def test_logs_helper_filters(self):
        effects = [Send(0, Ping(1)), Log("a"), Decide(1, DecisionKind.FAST), Log("b")]
        assert [e.event for e in logs(effects)] == ["a", "b"]

    def test_effects_are_frozen(self):
        effect = Send(1, Ping(0))
        with pytest.raises(Exception):
            effect.dst = 2


class TestProtocolBasics:
    def test_helpers(self):
        p = Echoer(3, SystemConfig(7, 2))
        assert p.n == 7
        assert p.t == 2
        assert p.quorum == 5
        assert p.process_id == 3

    def test_log_tags_pid(self):
        p = Echoer(3, SystemConfig(7, 2))
        record = p.log("event", extra=1)
        assert record.data["pid"] == 3
        assert record.data["extra"] == 1

    def test_default_on_start_empty(self):
        assert Echoer(0, SystemConfig(4, 1)).on_start() == []


class TestGuarded:
    def test_passes_good_messages(self):
        p = Echoer(0, SystemConfig(4, 1))
        effects = guarded(p, 1, Ping(5))
        assert effects == [Send(1, Ping(6))]

    def test_swallows_handler_exceptions(self):
        p = Echoer(0, SystemConfig(4, 1))
        effects = guarded(p, 1, "garbage")
        assert len(effects) == 1
        assert isinstance(effects[0], Log)
        assert effects[0].event == "malformed-message-dropped"

    def test_records_sender_in_drop_log(self):
        p = Echoer(0, SystemConfig(4, 1))
        (record,) = guarded(p, 2, object())
        assert record.data["sender"] == 2


class _Child(Protocol):
    """Child that broadcasts on poke and delivers on 'up'."""

    def poke(self):
        return [Broadcast(Ping(0)), ServiceCall("svc", "x")]

    def on_message(self, sender, payload):
        if payload == "up":
            return [Deliver("child-up", sender, payload)]
        return [Send(sender, payload)]


class _Parent(CompositeProtocol):
    def __init__(self, pid, config):
        super().__init__(pid, config)
        self.kid = self.add_child("kid", _Child(pid, config))
        self.upcalls = []

    def poke(self):
        return self.child_call("kid", self.kid.poke())

    def on_own_message(self, sender, payload):
        return [Log("parent-got", {"payload": payload})]

    def on_child_output(self, name, effect):
        self.upcalls.append((name, effect))
        return [Log("upcall", {"from": name})]


class TestComposite:
    def setup_method(self):
        self.parent = _Parent(0, SystemConfig(4, 1))

    def test_child_sends_are_enveloped(self):
        effects = self.parent.poke()
        broadcast = [e for e in effects if isinstance(e, Broadcast)][0]
        assert broadcast.payload == Envelope("kid", Ping(0))

    def test_child_service_calls_get_reply_path(self):
        effects = self.parent.poke()
        call = [e for e in effects if isinstance(e, ServiceCall)][0]
        assert call.reply_path == ("kid",)

    def test_envelope_routing_to_child(self):
        effects = self.parent.on_message(2, Envelope("kid", Ping(7)))
        assert effects == [Send(2, Envelope("kid", Ping(7)))]

    def test_child_deliver_becomes_upcall(self):
        effects = self.parent.on_message(2, Envelope("kid", "up"))
        assert self.parent.upcalls
        name, deliver = self.parent.upcalls[0]
        assert name == "kid"
        assert deliver.tag == "child-up"
        assert any(isinstance(e, Log) and e.event == "upcall" for e in effects)

    def test_unknown_component_logged(self):
        (record,) = self.parent.on_message(1, Envelope("nope", Ping(0)))
        assert isinstance(record, Log)
        assert record.event == "unknown-component"

    def test_plain_payload_goes_to_own_handler(self):
        (record,) = self.parent.on_message(1, "hello")
        assert record.event == "parent-got"

    def test_duplicate_child_name_rejected(self):
        with pytest.raises(ValueError):
            self.parent.add_child("kid", _Child(0, SystemConfig(4, 1)))

    def test_child_lookup(self):
        assert self.parent.child("kid") is self.parent.kid

    def test_nested_composites_envelope_twice(self):
        config = SystemConfig(4, 1)

        class Outer(CompositeProtocol):
            def __init__(self):
                super().__init__(0, config)
                self.inner = self.add_child("inner", _Parent(0, config))

            def poke(self):
                return self.child_call("inner", self.inner.poke())

        outer = Outer()
        effects = outer.poke()
        broadcast = [e for e in effects if isinstance(e, Broadcast)][0]
        assert broadcast.payload == Envelope("inner", Envelope("kid", Ping(0)))
        call = [e for e in effects if isinstance(e, ServiceCall)][0]
        assert call.reply_path == ("inner", "kid")
