"""Cross-module integration tests: the full stack under combined stress."""

import pytest

from repro.harness import (
    Crash,
    Equivocate,
    Garbage,
    Scenario,
    Silent,
    dex_freq,
    dex_prv,
)
from repro.sim.latency import ConstantLatency, ExponentialLatency
from repro.sim.scheduler import DelayMatching, DelaySenders, RandomJitterScheduler
from repro.types import DecisionKind
from repro.workloads.failures import FailureSweep
from repro.workloads.inputs import AdversarialBoundaryWorkload, unanimous

from .conftest import kinds_of


class TestAdversarialSchedules:
    """The asynchronous model lets the adversary pick delivery order; these
    runs verify safety under targeted schedules."""

    @pytest.mark.parametrize("seed", range(4))
    def test_starved_quorum_still_agrees(self, seed):
        # delay 2 of the 1-proposers: first quorums look contended
        inputs = [1, 1, 1, 1, 1, 2, 2]
        result = Scenario(
            dex_freq(),
            inputs,
            scheduler=DelaySenders([0, 1], extra=30.0),
            seed=seed,
        ).run()
        assert result.agreement_holds()
        assert result.decided_value in (1, 2)

    @pytest.mark.parametrize("seed", range(4))
    def test_delayed_idb_layer_only(self, seed):
        """Slowing only the IDB envelopes must not break the one-step path."""
        from repro.runtime.composite import Envelope

        result = Scenario(
            dex_freq(),
            unanimous(1, 7),
            scheduler=DelayMatching(
                lambda s, d, p: isinstance(p, Envelope) and p.component == "idb",
                extra=50.0,
            ),
            seed=seed,
        ).run()
        assert result.decided_value == 1
        assert kinds_of(result) == {DecisionKind.ONE_STEP}

    @pytest.mark.parametrize("seed", range(4))
    def test_heavy_jitter(self, seed):
        inputs = [1, 1, 1, 2, 2, 1, 1]
        result = Scenario(
            dex_freq(),
            inputs,
            latency=ExponentialLatency(0.1, 1.0),
            scheduler=RandomJitterScheduler(3.0),
            seed=seed,
        ).run()
        assert result.agreement_holds()


class TestCombinedFaults:
    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_fault_cocktail(self, seed):
        n, t = 13, 2
        inputs = [1] * 10 + [2] * 3
        result = Scenario(
            dex_freq(),
            inputs,
            t=t,
            faults={11: Equivocate(1, 2), 12: Garbage(seed=seed)},
            seed=seed,
        ).run()
        assert result.agreement_holds()
        assert result.all_correct_decided()

    @pytest.mark.parametrize("seed", range(3))
    def test_crash_plus_equivocate_real_uc(self, seed):
        n = 13
        inputs = [1, 1, 1, 1, 2, 2, 1, 1, 2, 1, 2, 1, 1]
        result = Scenario(
            dex_freq(),
            inputs,
            faults={11: Crash(budget=4), 12: Equivocate(2, 1)},
            uc="real",
            seed=seed,
        ).run()
        assert result.agreement_holds()


class TestAdaptivenessEndToEnd:
    """E3's core claim driven end-to-end: a boundary input decides in one
    step iff the actual failure count is within its condition level."""

    def test_boundary_input_level_sensitivity(self):
        n, t = 13, 2
        workload = AdversarialBoundaryWorkload(n, t)
        inputs = workload.one_step_boundary(1)  # in C¹_1, not C¹_2
        sweep = FailureSweep(n, t)

        # f = 1 <= level: one-step guaranteed
        for f in (0, 1):
            faults = {pid: Silent() for pid in sweep.faulty_ids(f)}
            result = Scenario(dex_freq(), inputs, t=t, faults=faults, seed=f).run()
            assert kinds_of(result) == {DecisionKind.ONE_STEP}, f"f={f}"

        # f = 2 > level: no guarantee; must still agree & terminate
        faults = {pid: Silent() for pid in sweep.faulty_ids(2)}
        result = Scenario(dex_freq(), inputs, t=t, faults=faults, seed=9).run()
        assert result.agreement_holds()
        assert result.all_correct_decided()

    def test_fewer_faults_never_slower_on_boundary(self):
        n, t = 13, 2
        workload = AdversarialBoundaryWorkload(n, t)
        inputs = workload.two_step_boundary(1)
        sweep = FailureSweep(n, t)
        worst_by_f = []
        for f in range(t + 1):
            faults = {pid: Silent() for pid in sweep.faulty_ids(f)}
            result = Scenario(
                dex_freq(), inputs, t=t, faults=faults, seed=20 + f,
                latency=ConstantLatency(1.0),
            ).run()
            worst_by_f.append(result.max_correct_step)
        assert worst_by_f[0] <= worst_by_f[-1]


class TestScaleSweep:
    @pytest.mark.parametrize("n", [7, 13, 19])
    def test_dex_freq_scales(self, n):
        result = Scenario(dex_freq(), unanimous(1, n), seed=n).run()
        assert result.decided_value == 1
        assert kinds_of(result) == {DecisionKind.ONE_STEP}

    @pytest.mark.parametrize("n", [6, 11, 16])
    def test_dex_prv_scales(self, n):
        result = Scenario(dex_prv("C"), unanimous("C", n), seed=n).run()
        assert result.decided_value == "C"

    def test_max_faults_at_scale(self):
        n = 19  # t = 3
        t = 3
        faults = {pid: Equivocate(1, 2) for pid in range(n - t, n)}
        result = Scenario(dex_freq(), unanimous(1, n), t=t, faults=faults, seed=1).run()
        assert result.decided_value == 1
        assert kinds_of(result) == {DecisionKind.ONE_STEP}
