"""Wire-protocol edge cases: framing, caps, codecs, truncation.

Pure in-memory tests of :mod:`repro.net.wire` — no sockets, no processes —
covering the decode paths a hostile or dying peer exercises: split reads
across frame boundaries, oversized declared lengths, streams that end
mid-frame, and version/codec mismatches.
"""

import struct

import pytest

from repro.net.wire import (
    CODEC_JSON,
    CODEC_PICKLE,
    WIRE_VERSION,
    FrameDecoder,
    FrameTooLarge,
    Hello,
    MsgDecide,
    MsgDeliver,
    MsgDeliverBatch,
    MsgSend,
    Start,
    Stop,
    TruncatedStream,
    WireError,
    encode_frame,
)


def decode_all(data: bytes, max_frame: int = 1 << 20) -> list:
    decoder = FrameDecoder(max_frame)
    frames = list(decoder.feed(data))
    decoder.eof()
    return frames


class TestRoundTrip:
    def test_pickle_codec_roundtrips_wire_messages(self):
        messages = [
            Hello(3),
            Start(),
            MsgSend(src=1, dst=2, payload={"value": 7}, depth=4),
            MsgDeliver(sender=0, payload=(1, "x"), depth=1),
            MsgDecide(pid=2, value=1, kind="one-step", step=1),
            Stop(),
        ]
        data = b"".join(encode_frame(m) for m in messages)
        assert decode_all(data) == messages

    def test_json_codec_roundtrips_json_safe_payloads(self):
        payloads = [{"a": 1}, [1, 2, 3], "text", None, True]
        data = b"".join(encode_frame(p, codec=CODEC_JSON) for p in payloads)
        assert decode_all(data) == payloads

    def test_mixed_codecs_on_one_stream(self):
        data = encode_frame({"j": 1}, codec=CODEC_JSON) + encode_frame(Hello(0))
        assert decode_all(data) == [{"j": 1}, Hello(0)]

    def test_unknown_codec_on_encode(self):
        with pytest.raises(WireError, match="unknown codec"):
            encode_frame("x", codec=77)


class TestSplitReads:
    def test_one_byte_at_a_time(self):
        messages = [Hello(1), MsgSend(1, 2, "payload", 0), Stop()]
        data = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        out = []
        for i in range(len(data)):
            out.extend(decoder.feed(data[i : i + 1]))
        decoder.eof()
        assert out == messages

    def test_split_exactly_at_frame_boundary(self):
        first, second = encode_frame(Hello(0)), encode_frame(Hello(1))
        decoder = FrameDecoder()
        assert list(decoder.feed(first)) == [Hello(0)]
        assert decoder.pending_bytes == 0
        assert list(decoder.feed(second)) == [Hello(1)]

    def test_split_inside_length_prefix(self):
        data = encode_frame(Hello(9))
        decoder = FrameDecoder()
        assert list(decoder.feed(data[:2])) == []
        assert decoder.pending_bytes == 2
        assert list(decoder.feed(data[2:])) == [Hello(9)]

    def test_two_frames_and_a_tail_in_one_read(self):
        tail_frame = encode_frame(Stop())
        data = encode_frame(Hello(0)) + encode_frame(Start()) + tail_frame[:3]
        decoder = FrameDecoder()
        assert list(decoder.feed(data)) == [Hello(0), Start()]
        assert decoder.pending_bytes == 3
        assert list(decoder.feed(tail_frame[3:])) == [Stop()]


class TestSizeCaps:
    def test_encode_refuses_oversized_payload(self):
        with pytest.raises(FrameTooLarge):
            encode_frame(b"x" * 100, max_frame=50)

    def test_encode_allows_exactly_max(self):
        frame = encode_frame(b"x" * 100)
        body_len = len(frame) - 4
        assert encode_frame(b"x" * 100, max_frame=body_len)  # boundary is inclusive

    def test_decoder_rejects_declared_oversize_before_the_body_arrives(self):
        # Only the 4-byte length prefix of a "frame" claiming a huge body:
        # the decoder must refuse on the prefix alone, without buffering.
        prefix = struct.pack("!I", 10 * 1024 * 1024)
        decoder = FrameDecoder(max_frame=1024)
        with pytest.raises(FrameTooLarge, match="cap is 1024"):
            list(decoder.feed(prefix))

    def test_decoder_rejects_undersized_body(self):
        data = struct.pack("!I", 1) + bytes([WIRE_VERSION])
        with pytest.raises(WireError, match="too short"):
            list(FrameDecoder().feed(data))


class TestTruncation:
    def test_eof_mid_frame_raises(self):
        data = encode_frame(MsgSend(0, 1, "value", 0))
        decoder = FrameDecoder()
        assert list(decoder.feed(data[:-5])) == []
        with pytest.raises(TruncatedStream):
            decoder.eof()

    def test_eof_on_clean_boundary_is_silent(self):
        decoder = FrameDecoder()
        assert list(decoder.feed(encode_frame(Stop()))) == [Stop()]
        decoder.eof()

    def test_eof_on_empty_stream_is_silent(self):
        FrameDecoder().eof()


class TestVersioning:
    def _frame_with_header(self, version: int, codec: int) -> bytes:
        good = encode_frame("payload", codec=CODEC_PICKLE)
        body = bytearray(good)
        body[4] = version
        body[5] = codec
        return bytes(body)

    def test_version_mismatch_is_rejected(self):
        data = self._frame_with_header(version=WIRE_VERSION + 1, codec=CODEC_PICKLE)
        with pytest.raises(WireError, match="wire version mismatch"):
            list(FrameDecoder().feed(data))

    def test_version_mismatch_names_both_versions(self):
        data = self._frame_with_header(version=9, codec=CODEC_PICKLE)
        with pytest.raises(WireError, match=r"v9.*v1"):
            list(FrameDecoder().feed(data))

    def test_unknown_codec_id_is_rejected(self):
        data = self._frame_with_header(version=WIRE_VERSION, codec=55)
        with pytest.raises(WireError, match="unknown codec id 55"):
            list(FrameDecoder().feed(data))

    def test_frames_after_a_good_one_still_checked(self):
        data = encode_frame(Hello(0)) + self._frame_with_header(99, CODEC_PICKLE)
        decoder = FrameDecoder()
        with pytest.raises(WireError):
            list(decoder.feed(data))


class TestDeliverBatch:
    """Coalesced delivery frames (the hub's delivery-batching path)."""

    def test_batch_roundtrips_preserving_entry_order(self):
        batch = MsgDeliverBatch(
            entries=((0, {"v": 1}, 2), (3, (1, "x"), 0), (0, None, 5))
        )
        assert decode_all(encode_frame(batch)) == [batch]

    def test_batch_mixed_with_plain_delivers_on_one_stream(self):
        messages = [
            MsgDeliver(sender=1, payload="a", depth=0),
            MsgDeliverBatch(entries=((2, "b", 1), (3, "c", 2))),
            MsgDeliver(sender=4, payload="d", depth=3),
        ]
        data = b"".join(encode_frame(m) for m in messages)
        assert decode_all(data) == messages

    def test_oversized_batch_raises_frame_too_large(self):
        # The hub catches this and falls back to per-message frames.
        huge = MsgDeliverBatch(
            entries=tuple((0, f"{i}:" + "x" * 1024, 0) for i in range(64))
        )
        with pytest.raises(FrameTooLarge):
            encode_frame(huge, max_frame=4096)

    def test_batch_is_immutable(self):
        batch = MsgDeliverBatch(entries=((0, "x", 0),))
        with pytest.raises(Exception):
            batch.entries = ()
