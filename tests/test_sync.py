"""Tests for the synchronous engine and the one-round condition-based
consensus (the Mostefaoui et al. Table 1 row)."""

import pytest

from repro.baselines.sync_onestep import (
    SyncOneStepConsensus,
    SyncRound1,
    sync_one_step_level,
)
from repro.conditions.views import View
from repro.errors import SimulationError
from repro.sim.synchronous import (
    CrashEvent,
    SynchronousSimulation,
    SyncProtocol,
)
from repro.types import SystemConfig
from repro.workloads.inputs import split, unanimous, with_frequency_gap


def build(inputs, t, crashes=None, seed=0):
    n = len(inputs)
    config = SystemConfig(n, t)
    protocols = {
        pid: SyncOneStepConsensus(pid, config, inputs[pid])
        for pid in config.processes
    }
    return SynchronousSimulation(config, protocols, crashes, seed=seed)


class _Echo(SyncProtocol):
    """Round-counting fixture protocol."""

    def first_message(self):
        return ("hello", self.process_id)

    def on_round(self, round_, received):
        if round_ >= 2:
            return None, len(received)
        return ("again", self.process_id), None


class TestEngine:
    def test_lockstep_delivery(self):
        config = SystemConfig(4, 1)
        protocols = {pid: _Echo(pid, config) for pid in config.processes}
        result = SynchronousSimulation(config, protocols).run(max_rounds=3)
        # round 2: everyone heard all 4 round-2 messages
        assert all(d.value == 4 for d in result.decisions.values())
        assert all(d.round == 2 for d in result.decisions.values())

    def test_crash_stops_sender(self):
        config = SystemConfig(4, 1)
        protocols = {pid: _Echo(pid, config) for pid in config.processes}
        crashes = {3: CrashEvent(round=2, delivered_to=frozenset())}
        result = SynchronousSimulation(config, protocols, crashes).run(max_rounds=3)
        for pid in range(3):
            assert result.decisions[pid].value == 3  # p3's round-2 message lost

    def test_partial_delivery_on_crash(self):
        config = SystemConfig(4, 1)
        protocols = {pid: _Echo(pid, config) for pid in config.processes}
        crashes = {3: CrashEvent(round=2, delivered_to=frozenset({0}))}
        result = SynchronousSimulation(config, protocols, crashes).run(max_rounds=3)
        assert result.decisions[0].value == 4
        assert result.decisions[1].value == 3

    def test_too_many_crashes_rejected(self):
        config = SystemConfig(4, 1)
        protocols = {pid: _Echo(pid, config) for pid in config.processes}
        with pytest.raises(SimulationError):
            SynchronousSimulation(
                config, protocols, {0: CrashEvent(1), 1: CrashEvent(1)}
            )

    def test_protocol_cover_enforced(self):
        config = SystemConfig(3, 1)
        with pytest.raises(SimulationError):
            SynchronousSimulation(config, {0: _Echo(0, config)})


class TestConditionLevels:
    def test_adaptive_level_shape(self):
        t = 2
        assert sync_one_step_level(View(unanimous(1, 9)), t) == 2  # gap 9 > 6
        assert sync_one_step_level(View(with_frequency_gap(1, 2, 9, 5)), t) == 1
        assert sync_one_step_level(View(with_frequency_gap(1, 2, 9, 3)), t) == 0
        assert sync_one_step_level(View(with_frequency_gap(1, 2, 9, 1)), t) is None


class TestSyncConsensus:
    def test_unanimous_decides_round_one(self):
        result = build(unanimous(1, 5), t=2).run(max_rounds=4)
        assert result.decided_value == 1
        assert {d.round for d in result.correct_decisions.values()} == {1}

    def test_contended_decides_by_t_plus_one(self):
        result = build(split(1, 2, 5, 2), t=2).run(max_rounds=4)
        assert result.agreement_holds()
        assert result.max_decision_round <= 3

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_with_mid_round_crashes(self, seed):
        crashes = {4: CrashEvent(round=1), 3: CrashEvent(round=2)}
        result = build(split(1, 2, 5, 2), t=2, crashes=crashes, seed=seed).run(4)
        assert result.agreement_holds()
        assert result.all_correct_decided()

    @pytest.mark.parametrize("seed", range(6))
    def test_adaptiveness_one_round_iff_f_le_k(self, seed):
        """The same staircase as E3, in the synchronous model: level-k
        inputs decide in round 1 iff f <= k (crashers drawn from the
        majority proposers, the adversarial placement)."""
        n, t = 9, 2
        inputs = with_frequency_gap(1, 2, n, 5)  # level 1: gap > t + 2k
        for f, expect_round_one in [(0, True), (1, True), (2, False)]:
            crashes = {
                pid: CrashEvent(round=1, delivered_to=frozenset())
                for pid in range(f)
            }
            result = build(inputs, t=t, crashes=crashes, seed=seed).run(t + 2)
            rounds = {d.round for d in result.correct_decisions.values()}
            assert result.agreement_holds()
            if expect_round_one:
                assert rounds == {1}, (f, rounds)

    def test_minimal_system_t_plus_one(self):
        """The row's headline: works with n = t + 1 processes."""
        result = build(unanimous(1, 3), t=2).run(max_rounds=4)
        assert result.decided_value == 1
        assert {d.round for d in result.correct_decisions.values()} == {1}

    @pytest.mark.parametrize("seed", range(4))
    def test_fast_decider_crashing_does_not_poison(self, seed):
        """A round-1 decider that crashes immediately afterwards must not
        leave the survivors undecided or disagreeing."""
        n, t = 5, 2
        inputs = with_frequency_gap(1, 2, 5, 3)  # gap 3 > t: round-1-able
        crashes = {
            0: CrashEvent(round=2, delivered_to=frozenset({1})),
            4: CrashEvent(round=1, delivered_to=frozenset()),
        }
        result = build(inputs, t=t, crashes=crashes, seed=seed).run(t + 2)
        assert result.agreement_holds()
        assert result.all_correct_decided()

    def test_validity_value_was_proposed(self):
        for seed in range(4):
            result = build([1, 2, 1, 2, 3], t=2, seed=seed).run(4)
            assert result.decided_value in {1, 2, 3}
