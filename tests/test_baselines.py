"""Tests for the baselines: BOSCO (weak/strong), Brasileiro, two-step."""

import pytest

from repro.baselines.bosco import BoscoConsensus
from repro.errors import ConfigurationError, ResilienceError
from repro.harness import (
    Crash,
    Equivocate,
    Scenario,
    Silent,
    bosco_strong,
    bosco_weak,
    brasileiro,
    twostep,
)
from repro.sim.latency import ConstantLatency
from repro.types import DecisionKind, SystemConfig
from repro.workloads.inputs import split, unanimous

from .conftest import kinds_of, steps_of


class TestBoscoConstruction:
    def test_weak_requires_n_gt_5t(self):
        with pytest.raises(ResilienceError):
            BoscoConsensus(0, SystemConfig(5, 1), 1, "weak")
        BoscoConsensus(0, SystemConfig(6, 1), 1, "weak")

    def test_strong_requires_n_gt_7t(self):
        with pytest.raises(ResilienceError):
            BoscoConsensus(0, SystemConfig(7, 1), 1, "strong")
        BoscoConsensus(0, SystemConfig(8, 1), 1, "strong")

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            BoscoConsensus(0, SystemConfig(8, 1), 1, "medium")


class TestBoscoWeak:
    def test_one_step_on_unanimous_no_faults(self):
        result = Scenario(bosco_weak(), unanimous(1, 6), seed=0).run()
        assert kinds_of(result) == {DecisionKind.FAST}
        assert steps_of(result) == {1}

    def test_three_steps_on_contention(self):
        result = Scenario(
            bosco_weak(), split(1, 2, 6, 3), seed=1, latency=ConstantLatency(1.0)
        ).run()
        assert kinds_of(result) == {DecisionKind.UNDERLYING}
        assert steps_of(result) == {3}  # vote (1) + oracle UC (2)

    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_with_equivocator(self, seed):
        result = Scenario(
            bosco_weak(),
            unanimous(1, 6),
            faults={5: Equivocate(1, 2)},
            seed=seed,
        ).run()
        assert result.agreement_holds()
        assert result.decided_value == 1

    def test_weak_one_step_not_guaranteed_under_fault(self):
        """The weak variant only claims one-step with zero failures; under a
        fault some run should fall back (not a hard guarantee, so we check
        it at least terminates + agrees across seeds and count fallbacks)."""
        fallbacks = 0
        for seed in range(6):
            result = Scenario(
                bosco_weak(), unanimous(1, 6), faults={5: Silent()}, seed=seed
            ).run()
            assert result.agreement_holds()
            if DecisionKind.UNDERLYING in kinds_of(result):
                fallbacks += 1
        # n=6, t=1: quorum 5, threshold > (6+3)/2 = 4.5 -> need all 5 of 5.
        # With the faulty proposer silent, every vote is 1, so BOSCO still
        # fast-decides; fallbacks occur only for laggards. Just assert runs
        # completed; the strong variant's guarantee is tested separately.
        assert fallbacks >= 0


class TestBoscoStrong:
    @pytest.mark.parametrize("seed", range(5))
    def test_one_step_on_agreed_correct_proposals_with_faults(self, seed):
        """Strongly one-step: unanimity among correct processes suffices,
        regardless of the Byzantine one."""
        n = 15  # t = 2 for n > 7t
        result = Scenario(
            bosco_strong(),
            unanimous(1, n),
            faults={13: Equivocate(2, 3), 14: Silent()},
            seed=seed,
        ).run()
        assert result.decided_value == 1
        assert kinds_of(result) == {DecisionKind.FAST}
        assert steps_of(result) == {1}

    def test_contended_falls_back(self):
        result = Scenario(bosco_strong(), split(1, 2, 8, 4), seed=2).run()
        assert kinds_of(result) == {DecisionKind.UNDERLYING}


class TestBrasileiro:
    def test_one_step_on_unanimous(self):
        result = Scenario(brasileiro(), unanimous(1, 4), seed=0).run()
        assert kinds_of(result) == {DecisionKind.FAST}
        assert steps_of(result) == {1}

    def test_fallback_on_contention(self):
        result = Scenario(brasileiro(), split(1, 2, 4, 2), seed=1).run()
        assert result.agreement_holds()
        assert DecisionKind.UNDERLYING in kinds_of(result)

    @pytest.mark.parametrize("seed", range(5))
    def test_crash_faults_tolerated(self, seed):
        result = Scenario(
            brasileiro(), unanimous(1, 7), t=2,
            faults={5: Crash(budget=3), 6: Silent()},
            seed=seed,
        ).run()
        assert result.agreement_holds()
        assert result.decided_value == 1

    def test_byzantine_faults_rejected_by_harness(self):
        with pytest.raises(ConfigurationError, match="crash-model"):
            Scenario(brasileiro(), unanimous(1, 4), faults={3: Equivocate(1, 2)})


class TestTwoStep:
    def test_always_two_steps(self):
        for inputs in (unanimous(1, 4), split(1, 2, 4, 2), [1, 2, 3, 4]):
            result = Scenario(
                twostep(), inputs, seed=0, latency=ConstantLatency(1.0)
            ).run()
            assert kinds_of(result) == {DecisionKind.UNDERLYING}
            assert steps_of(result) == {2}

    def test_unanimity(self):
        result = Scenario(twostep(), unanimous("v", 4), seed=1).run()
        assert result.decided_value == "v"

    @pytest.mark.parametrize("seed", range(3))
    def test_agreement_with_fault(self, seed):
        result = Scenario(
            twostep(), [1, 2, 1, 2], faults={3: Silent()}, seed=seed
        ).run()
        assert result.agreement_holds()

    def test_works_with_real_uc(self):
        result = Scenario(twostep(), [1, 1, 2, 1], uc="real", seed=2).run()
        assert result.agreement_holds()
