"""Tests for Bracha reliable broadcast (validity, agreement, totality)."""

import pytest

from repro.broadcast.bracha import (
    DELIVER_TAG,
    BrachaBroadcast,
    RbcInit,
    RbcReady,
)
from repro.errors import ResilienceError
from repro.runtime.effects import Send
from repro.runtime.protocol import Protocol
from repro.sim.runner import Simulation
from repro.types import SystemConfig


def rbc_system(config, byzantine=None, seed=0):
    byzantine = byzantine or {}
    protocols = {}
    for pid in config.processes:
        protocols[pid] = byzantine.get(pid) or BrachaBroadcast(
            pid, config, initial_value=("m", pid)
        )
    return Simulation(config, protocols, faulty=frozenset(byzantine), seed=seed)


def delivered(result, pid):
    return {d.sender: d.value for d in result.outputs[pid] if d.tag == DELIVER_TAG}


class TestResilience:
    def test_requires_n_gt_3t(self):
        with pytest.raises(ResilienceError):
            BrachaBroadcast(0, SystemConfig(3, 1))
        BrachaBroadcast(0, SystemConfig(4, 1))

    def test_echo_quorum_majority(self):
        node = BrachaBroadcast(0, SystemConfig(7, 2))
        assert node.echo_quorum == 5  # > (7+2)/2 = 4.5


class TestProperties:
    @pytest.mark.parametrize("seed", range(4))
    def test_validity_and_totality_all_correct(self, seed):
        config = SystemConfig(4, 1)
        result = rbc_system(config, seed=seed).run_to_quiescence()
        for pid in config.processes:
            got = delivered(result, pid)
            assert set(got) == set(config.processes)
            assert all(got[j] == ("m", j) for j in got)

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement_under_equivocating_sender(self, seed):
        config = SystemConfig(7, 2)

        class TwoFacedInit(Protocol):
            def on_start(self):
                return [
                    Send(dst, RbcInit("A" if dst < 4 else "B"))
                    for dst in self.config.processes
                ]

            def on_message(self, sender, payload):
                return []

        byz = {6: TwoFacedInit(6, config)}
        result = rbc_system(config, byzantine=byz, seed=seed).run_to_quiescence()
        values = {
            delivered(result, pid)[6]
            for pid in range(6)
            if 6 in delivered(result, pid)
        }
        assert len(values) <= 1

    def test_deliver_once_per_origin(self):
        config = SystemConfig(4, 1)
        result = rbc_system(config, seed=1).run_to_quiescence()
        for pid in config.processes:
            origins = [d.sender for d in result.outputs[pid] if d.tag == DELIVER_TAG]
            assert len(origins) == len(set(origins))

    def test_forged_ready_insufficient(self):
        config = SystemConfig(4, 1)

        class ReadyForger(Protocol):
            def on_start(self):
                return [
                    Send(dst, RbcReady("FAKE", 0)) for dst in self.config.processes
                ]

            def on_message(self, sender, payload):
                return []

        byz = {3: ReadyForger(3, config)}
        result = rbc_system(config, byzantine=byz, seed=2).run_to_quiescence()
        for pid in range(3):
            assert delivered(result, pid).get(0) == ("m", 0)

    def test_delivered_origins_accessor(self):
        config = SystemConfig(4, 1)
        sim = rbc_system(config, seed=3)
        sim.run_to_quiescence()
        node = sim._states[0].protocol
        assert node.delivered_origins == frozenset(config.processes)
