"""Unit tests for conditions: C_freq, C_prv, sequences and pairs (§3.3, §3.4)."""

import pytest

from repro.conditions.base import ConditionSequence, PredicateCondition
from repro.conditions.frequency import FrequencyCondition, FrequencyPair
from repro.conditions.privileged import PrivilegedCondition, PrivilegedPair
from repro.conditions.views import View
from repro.errors import ConfigurationError
from repro.workloads.inputs import split, unanimous, with_frequency_gap


class TestFrequencyCondition:
    def test_membership_by_gap(self):
        condition = FrequencyCondition(2)
        assert condition.contains(View.of(1, 1, 1, 1, 2))  # gap 3 > 2
        assert not condition.contains(View.of(1, 1, 2, 2))  # gap 0

    def test_strict_inequality(self):
        condition = FrequencyCondition(2)
        assert not condition.contains(View.of(1, 1, 1, 2))  # gap exactly 2
        assert condition.contains(View.of(1, 1, 1, 1, 2))  # gap 3

    def test_unanimous_always_in_small_d(self):
        assert FrequencyCondition(6).contains(View(unanimous(1, 7)))

    def test_negative_margin_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyCondition(-1)

    def test_repr(self):
        assert repr(FrequencyCondition(4)) == "C_freq(4)"


class TestPrivilegedCondition:
    def test_membership_by_count(self):
        condition = PrivilegedCondition("m", 2)
        assert condition.contains(View.of("m", "m", "m", "x"))
        assert not condition.contains(View.of("m", "m", "x", "x"))

    def test_other_values_irrelevant(self):
        condition = PrivilegedCondition("m", 1)
        assert condition.contains(View.of("m", "m", "a", "b", "c"))

    def test_negative_margin_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivilegedCondition("m", -1)


class TestConditionSequence:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ConditionSequence([])

    def test_level_of_finds_largest_k(self):
        seq = ConditionSequence(
            [FrequencyCondition(0), FrequencyCondition(2), FrequencyCondition(4)]
        )
        vector = View(with_frequency_gap(1, 2, 7, 3))  # gap 3
        assert seq.level_of(vector) == 1  # 3 > 0, 3 > 2, not > 4

    def test_level_of_none_outside_c0(self):
        seq = ConditionSequence([FrequencyCondition(4)])
        assert seq.level_of(View(split(1, 2, 6, 3))) is None

    def test_level_of_full_sequence(self):
        seq = ConditionSequence([FrequencyCondition(k) for k in range(3)])
        assert seq.level_of(View(unanimous(1, 7))) == 2

    def test_predicate_condition(self):
        condition = PredicateCondition(lambda v: v.known == len(v), "complete")
        assert condition.contains(View.of(1, 2))


class TestFrequencyPair:
    def test_requires_n_gt_6t(self):
        with pytest.raises(ConfigurationError):
            FrequencyPair(6, 1)
        FrequencyPair(7, 1)  # fine

    def test_p1_threshold(self):
        pair = FrequencyPair(7, 1)
        assert pair.p1(View(with_frequency_gap(1, 2, 7, 5)))  # 5 > 4
        assert not pair.p1(View(with_frequency_gap(1, 2, 7, 3)))

    def test_p2_threshold(self):
        pair = FrequencyPair(7, 1)
        assert pair.p2(View(with_frequency_gap(1, 2, 7, 3)))  # 3 > 2
        assert not pair.p2(View(with_frequency_gap(1, 2, 7, 1)))

    def test_p1_implies_p2(self):
        pair = FrequencyPair(7, 1)
        for gap in (1, 3, 5, 7):
            view = View(with_frequency_gap(1, 2, 7, gap))
            if pair.p1(view):
                assert pair.p2(view)

    def test_f_is_first(self):
        pair = FrequencyPair(7, 1)
        assert pair.f(View.of(1, 1, 1, 2, 2, 3, 3)) == 1

    def test_f_undefined_on_all_bottom(self):
        pair = FrequencyPair(7, 1)
        with pytest.raises(ValueError):
            pair.f(View.bottoms(7))

    def test_sequences_have_t_plus_one_levels(self):
        pair = FrequencyPair(13, 2)
        assert len(pair.one_step_sequence()) == 3
        assert len(pair.two_step_sequence()) == 3

    def test_sequence_margins_match_paper(self):
        pair = FrequencyPair(13, 2)
        one = pair.one_step_sequence()
        two = pair.two_step_sequence()
        assert [one[k].d for k in range(3)] == [8, 10, 12]  # 4t + 2k
        assert [two[k].d for k in range(3)] == [4, 6, 8]  # 2t + 2k

    def test_one_step_level_unanimous(self):
        pair = FrequencyPair(13, 2)
        assert pair.one_step_level(View(unanimous(1, 13))) == 2

    def test_adaptiveness_monotone_in_gap(self):
        pair = FrequencyPair(13, 2)
        levels = []
        for gap in (9, 11, 13):
            levels.append(pair.one_step_level(View(with_frequency_gap(1, 2, 13, gap))))
        assert levels == sorted(levels, key=lambda x: (x is None, x))


class TestPrivilegedPair:
    def test_requires_n_gt_5t(self):
        with pytest.raises(ConfigurationError):
            PrivilegedPair(5, 1, privileged=1)
        PrivilegedPair(6, 1, privileged=1)

    def test_p1_p2_thresholds(self):
        pair = PrivilegedPair(6, 1, privileged="m")
        four_m = View.of("m", "m", "m", "m", "x", "y")
        three_m = View.of("m", "m", "m", "x", "y", "z")
        assert pair.p1(four_m)  # 4 > 3t = 3
        assert not pair.p1(three_m)
        assert pair.p2(three_m)  # 3 > 2t = 2
        assert not pair.p2(View.of("m", "m", "x", "y", "z", "w"))

    def test_f_prefers_privileged_above_t(self):
        pair = PrivilegedPair(6, 1, privileged="m")
        # m appears twice (> t = 1) but 'x' is more frequent.
        view = View.of("m", "m", "x", "x", "x", "x")
        assert pair.f(view) == "m"

    def test_f_falls_back_to_most_frequent(self):
        pair = PrivilegedPair(6, 1, privileged="m")
        view = View.of("m", "x", "x", "x", "y", "z")  # m count 1, not > t
        assert pair.f(view) == "x"

    def test_sequence_margins_match_paper(self):
        pair = PrivilegedPair(11, 2, privileged="m")
        one = pair.one_step_sequence()
        two = pair.two_step_sequence()
        assert [one[k].d for k in range(3)] == [6, 7, 8]  # 3t + k
        assert [two[k].d for k in range(3)] == [4, 5, 6]  # 2t + k

    def test_levels_on_commit_heavy_vector(self):
        pair = PrivilegedPair(11, 2, privileged="C")
        vector = View(["C"] * 9 + ["A"] * 2)
        assert pair.one_step_level(vector) == 2  # 9 > 6, 7, 8
        assert pair.two_step_level(vector) == 2

    def test_repr_mentions_privileged_value(self):
        assert "COMMIT" in repr(PrivilegedPair(6, 1, privileged="COMMIT"))
