"""Tests for the asyncio runtime: same protocols, real event loop."""

import pytest

from repro.harness import Equivocate, Scenario, Silent, dex_freq, twostep
from repro.runtime.asyncio_runner import AsyncioRunner
from repro.types import DecisionKind, SystemConfig
from repro.workloads.inputs import split, unanimous


class TestScenarioRunAsync:
    def test_unanimous_one_step(self):
        result = Scenario(dex_freq(), unanimous(1, 7), seed=1).run_async(timeout=15)
        assert not result.timed_out
        assert result.decided_value == 1
        assert result.max_correct_step == 1
        assert {d.kind for d in result.correct_decisions.values()} == {
            DecisionKind.ONE_STEP
        }

    def test_contended_falls_back_and_agrees(self):
        result = Scenario(dex_freq(), split(1, 2, 7, 3), seed=2).run_async(timeout=15)
        assert not result.timed_out
        assert result.agreement_holds()
        assert result.decided_value in (1, 2)

    def test_with_silent_fault(self):
        result = Scenario(
            dex_freq(), unanimous(1, 7), faults={6: Silent()}, seed=3
        ).run_async(timeout=15)
        assert not result.timed_out
        assert result.decided_value == 1

    def test_with_equivocator(self):
        result = Scenario(
            dex_freq(), unanimous(1, 7), faults={6: Equivocate(1, 2)}, seed=4
        ).run_async(timeout=15)
        assert not result.timed_out
        assert result.agreement_holds()

    def test_twostep_baseline(self):
        result = Scenario(twostep(), [1, 2, 3, 4], seed=5).run_async(timeout=15)
        assert not result.timed_out
        assert result.agreement_holds()

    def test_real_uc_stack(self):
        result = Scenario(
            dex_freq(), split(1, 2, 7, 3), uc="real", seed=6
        ).run_async(timeout=20)
        assert not result.timed_out
        assert result.agreement_holds()


class TestRunnerMechanics:
    def test_wrong_cover_rejected(self):
        from repro.runtime.protocol import Protocol

        class Nop(Protocol):
            def on_message(self, sender, payload):
                return []

        config = SystemConfig(3, 0)
        with pytest.raises(Exception):
            AsyncioRunner(config, {0: Nop(0, config)})

    def test_timeout_reported(self):
        from repro.runtime.protocol import Protocol

        class Mute(Protocol):
            def on_message(self, sender, payload):
                return []

        config = SystemConfig(2, 0)
        runner = AsyncioRunner(
            config, {pid: Mute(pid, config) for pid in config.processes}
        )
        result = runner.run_sync(timeout=0.2)
        assert result.timed_out
        assert result.decisions == {}

    def test_message_stats_collected(self):
        result = Scenario(dex_freq(), unanimous(1, 7), seed=7).run_async(timeout=15)
        assert result.stats.messages_sent > 0
        assert result.stats.messages_delivered > 0
