"""Tests for the asyncio runtime: same protocols, real event loop."""

import pytest

from repro.harness import Equivocate, Scenario, Silent, dex_freq, twostep
from repro.runtime.asyncio_runner import AsyncioRunner
from repro.types import DecisionKind, SystemConfig
from repro.workloads.inputs import split, unanimous


class TestScenarioRunAsync:
    def test_unanimous_one_step(self):
        result = Scenario(dex_freq(), unanimous(1, 7), seed=1).run_async(timeout=15)
        assert not result.timed_out
        assert result.decided_value == 1
        assert result.max_correct_step == 1
        assert {d.kind for d in result.correct_decisions.values()} == {
            DecisionKind.ONE_STEP
        }

    def test_contended_falls_back_and_agrees(self):
        result = Scenario(dex_freq(), split(1, 2, 7, 3), seed=2).run_async(timeout=15)
        assert not result.timed_out
        assert result.agreement_holds()
        assert result.decided_value in (1, 2)

    def test_with_silent_fault(self):
        result = Scenario(
            dex_freq(), unanimous(1, 7), faults={6: Silent()}, seed=3
        ).run_async(timeout=15)
        assert not result.timed_out
        assert result.decided_value == 1

    def test_with_equivocator(self):
        result = Scenario(
            dex_freq(), unanimous(1, 7), faults={6: Equivocate(1, 2)}, seed=4
        ).run_async(timeout=15)
        assert not result.timed_out
        assert result.agreement_holds()

    def test_twostep_baseline(self):
        result = Scenario(twostep(), [1, 2, 3, 4], seed=5).run_async(timeout=15)
        assert not result.timed_out
        assert result.agreement_holds()

    def test_real_uc_stack(self):
        result = Scenario(
            dex_freq(), split(1, 2, 7, 3), uc="real", seed=6
        ).run_async(timeout=20)
        assert not result.timed_out
        assert result.agreement_holds()


class TestRunnerMechanics:
    def test_wrong_cover_rejected(self):
        from repro.runtime.protocol import Protocol

        class Nop(Protocol):
            def on_message(self, sender, payload):
                return []

        config = SystemConfig(3, 0)
        with pytest.raises(Exception):
            AsyncioRunner(config, {0: Nop(0, config)})

    def test_timeout_reported(self):
        from repro.runtime.protocol import Protocol

        class Mute(Protocol):
            def on_message(self, sender, payload):
                return []

        config = SystemConfig(2, 0)
        runner = AsyncioRunner(
            config, {pid: Mute(pid, config) for pid in config.processes}
        )
        result = runner.run_sync(timeout=0.2)
        assert result.timed_out
        assert result.decisions == {}

    def test_message_stats_collected(self):
        result = Scenario(dex_freq(), unanimous(1, 7), seed=7).run_async(timeout=15)
        assert result.stats.messages_sent > 0
        assert result.stats.messages_delivered > 0


class TestTimeoutRegression:
    """A timed-out run must clean up after itself and surface what it has."""

    def test_timeout_leaves_no_pending_delivery_tasks(self):
        from repro.runtime.effects import Broadcast
        from repro.runtime.protocol import Protocol

        class Chatter(Protocol):
            """Floods forever, never decides — deliveries are always in flight."""

            def on_start(self):
                return [Broadcast("ping")]

            def on_message(self, sender, payload):
                return [Broadcast("ping")]

        config = SystemConfig(3, 0)
        runner = AsyncioRunner(
            config,
            {pid: Chatter(pid, config) for pid in config.processes},
            mean_delay=0.01,
        )
        result = runner.run_sync(timeout=0.2)
        assert result.timed_out
        # every in-flight delivery task was cancelled and reaped; nothing
        # leaks into (or crashes) a later event loop.
        assert not runner._pending

    def test_timeout_surfaces_partial_decisions(self):
        from repro.runtime.effects import Decide
        from repro.runtime.protocol import Protocol

        class DecideOnStart(Protocol):
            def on_start(self):
                return [Decide(1, DecisionKind.ONE_STEP)]

            def on_message(self, sender, payload):
                return []

        class Mute(Protocol):
            def on_message(self, sender, payload):
                return []

        config = SystemConfig(3, 0)
        runner = AsyncioRunner(
            config,
            {
                0: DecideOnStart(0, config),
                1: Mute(1, config),
                2: Mute(2, config),
            },
        )
        result = runner.run_sync(timeout=0.2)
        assert result.timed_out
        assert set(result.decisions) == {0}
        assert result.undecided_correct == frozenset({1, 2})
        assert not result.all_correct_decided()
        assert result.agreement_holds()  # vacuously — nobody disagreed

    def test_clean_run_reports_no_undecided(self):
        result = Scenario(dex_freq(), unanimous(1, 7), seed=8).run_async(timeout=15)
        assert result.undecided_correct == frozenset()
        assert result.all_correct_decided()


class TestEquivocatorImpact:
    """The fault plane visibly changes asyncio executions, not just sim ones."""

    def test_equivocator_forces_second_step(self):
        # n=13, t=2: one-step needs gap > 4t = 8.  Clean run: {1: 12, 2: 1},
        # gap 11 — even the stingiest n-t view has gap 9, so everyone
        # one-steps.
        inputs = [1] * 10 + [2, 1, 1]
        clean = Scenario(dex_freq(), inputs, seed=11).run_async(timeout=20)
        assert not clean.timed_out
        assert clean.max_correct_step == 1
        # Two byzantine processes argue for 2 on both faces: correct views
        # become {1: 10, 2: up-to-3}, gap at most 8 once a byzantine vote is
        # counted — the one-step predicate fails and the two-step path
        # (gap 7 > 2t) finishes the job.
        faulty = Scenario(
            dex_freq(),
            inputs,
            faults={11: Equivocate(2, 2), 12: Equivocate(2, 2)},
            seed=11,
        ).run_async(timeout=20)
        assert not faulty.timed_out
        assert faulty.agreement_holds()
        assert faulty.decided_value == 1
        assert faulty.max_correct_step >= 2
        assert faulty.max_correct_step > clean.max_correct_step
