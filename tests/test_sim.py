"""Unit tests for the discrete-event simulator: queue, latency, schedulers,
tracing and the runner's semantics (depth accounting, services, stops)."""

import random
from dataclasses import dataclass

import pytest

from repro.errors import SimulationDeadlock, SimulationError
from repro.runtime.effects import (
    Broadcast,
    Decide,
    Deliver,
    Log,
    Send,
    ServiceCall,
)
from repro.runtime.protocol import Protocol
from repro.runtime.services import Service, ServiceReply
from repro.sim.events import Event, EventQueue
from repro.sim.latency import (
    ConstantLatency,
    ExponentialLatency,
    PerLinkLatency,
    UniformLatency,
)
from repro.sim.runner import Simulation
from repro.sim.scheduler import (
    ComposedScheduler,
    DelayMatching,
    DelaySenders,
    RandomJitterScheduler,
)
from repro.sim.trace import Tracer
from repro.types import DecisionKind, SystemConfig


@dataclass(frozen=True)
class Token:
    hops: int


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(Event(2.0, "deliver", dst=0))
        q.push(Event(1.0, "deliver", dst=1))
        assert q.pop().dst == 1

    def test_fifo_tie_break(self):
        q = EventQueue()
        q.push(Event(1.0, "deliver", dst=0))
        q.push(Event(1.0, "deliver", dst=1))
        assert [q.pop().dst, q.pop().dst] == [0, 1]

    def test_counters(self):
        q = EventQueue()
        q.push(Event(0.0, "start", dst=0))
        q.pop()
        assert q.pushed == 1
        assert q.popped == 1
        assert not q


class TestLatencyModels:
    def test_constant(self):
        rng = random.Random(0)
        assert ConstantLatency(2.5).sample(rng, 0, 1) == 2.5

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_range(self):
        model = UniformLatency(1.0, 2.0)
        rng = random.Random(1)
        for _ in range(50):
            assert 1.0 <= model.sample(rng, 0, 1) <= 2.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)

    def test_exponential_above_base(self):
        model = ExponentialLatency(base=0.5, mean=1.0)
        rng = random.Random(2)
        assert all(model.sample(rng, 0, 1) >= 0.5 for _ in range(50))

    def test_per_link_matrix(self):
        model = PerLinkLatency([[0.0, 1.0], [2.0, 0.0]])
        rng = random.Random(3)
        assert model.sample(rng, 0, 1) == 1.0
        assert model.sample(rng, 1, 0) == 2.0

    def test_per_link_jitter(self):
        model = PerLinkLatency([[0.0, 1.0], [1.0, 0.0]], jitter=0.5)
        rng = random.Random(4)
        sample = model.sample(rng, 0, 1)
        assert 1.0 <= sample <= 1.5


class TestSchedulers:
    def test_delay_senders(self):
        scheduler = DelaySenders([3], extra=10.0)
        rng = random.Random(0)
        assert scheduler.extra_delay(rng, 3, 0, None, 0.0) == 10.0
        assert scheduler.extra_delay(rng, 2, 0, None, 0.0) == 0.0

    def test_delay_matching(self):
        scheduler = DelayMatching(lambda s, d, p: p == "slow", extra=5.0)
        rng = random.Random(0)
        assert scheduler.extra_delay(rng, 0, 1, "slow", 0.0) == 5.0
        assert scheduler.extra_delay(rng, 0, 1, "fast", 0.0) == 0.0

    def test_random_jitter_bounded(self):
        scheduler = RandomJitterScheduler(2.0)
        rng = random.Random(5)
        assert all(
            0.0 <= scheduler.extra_delay(rng, 0, 1, None, 0.0) <= 2.0
            for _ in range(50)
        )

    def test_composed_sums(self):
        scheduler = ComposedScheduler(
            [DelaySenders([0], 1.0), DelaySenders([0], 2.0)]
        )
        rng = random.Random(0)
        assert scheduler.extra_delay(rng, 0, 1, None, 0.0) == 3.0


class TestTracer:
    def test_disabled_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.record(0.0, 1, "e")
        assert len(tracer) == 0

    def test_capacity_cap(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(float(i), 0, "e")
        assert len(tracer) == 2

    def test_filters(self):
        tracer = Tracer()
        tracer.record(0.0, 1, "a")
        tracer.record(1.0, 2, "b")
        assert len(tracer.by_event("a")) == 1
        assert len(tracer.by_pid(2)) == 1

    def test_format_renders_lines(self):
        tracer = Tracer()
        tracer.record(0.5, 1, "decide", {"value": 9})
        assert "decide" in tracer.format()


# -- runner semantics ------------------------------------------------------------------


class Relay(Protocol):
    """p0 starts a token; each process forwards to the next; last decides."""

    def on_start(self):
        if self.process_id == 0:
            return [Send(1, Token(hops=1))]
        return []

    def on_message(self, sender, payload):
        if not isinstance(payload, Token):
            return []
        nxt = self.process_id + 1
        if nxt < self.n:
            return [Send(nxt, Token(payload.hops + 1))]
        return [Decide(payload.hops, DecisionKind.FAST)]


class OneShot(Protocol):
    """Broadcasts at start; decides on first delivery."""

    def on_start(self):
        return [Broadcast(Token(0))]

    def on_message(self, sender, payload):
        return [Decide("done", DecisionKind.FAST)]


def build(config, protocol_cls, **kwargs):
    protocols = {pid: protocol_cls(pid, config) for pid in config.processes}
    return Simulation(config, protocols, **kwargs)


class TestRunnerDepthAccounting:
    def test_relay_depth_equals_chain_length(self):
        config = SystemConfig(4, 0)
        protocols = {pid: Relay(pid, config) for pid in config.processes}
        sim = Simulation(
            config,
            protocols,
            latency=ConstantLatency(1.0),
            seed=0,
        )
        result = sim.run_until(lambda s: 3 in s.stats.decisions)
        decision = result.decisions[3]
        assert decision.step == 3  # three message hops
        assert decision.value == 3

    def test_broadcast_self_delivery_depth_one(self):
        config = SystemConfig(3, 0)
        sim = build(config, OneShot, latency=ConstantLatency(1.0))
        result = sim.run_until_decided()
        assert all(d.step == 1 for d in result.decisions.values())

    def test_self_delivery_has_zero_delay(self):
        config = SystemConfig(3, 0)
        sim = build(config, OneShot, latency=ConstantLatency(5.0))
        result = sim.run_until_decided()
        # every process hears itself at t=0, before any remote message
        assert all(d.time == 0.0 for d in result.decisions.values())


class TestRunnerControl:
    def test_determinism_same_seed(self):
        config = SystemConfig(5, 0)
        r1 = build(config, OneShot, seed=42).run_until_decided()
        r2 = build(config, OneShot, seed=42).run_until_decided()
        assert r1.decisions == r2.decisions
        assert r1.end_time == r2.end_time
        assert r1.stats.messages_sent == r2.stats.messages_sent

    def test_deadlock_detection(self):
        class Mute(Protocol):
            def on_message(self, sender, payload):
                return []

        config = SystemConfig(3, 0)
        sim = build(config, Mute)
        with pytest.raises(SimulationDeadlock) as err:
            sim.run_until_decided()
        assert err.value.undecided == frozenset({0, 1, 2})

    def test_max_events_guard(self):
        class PingPong(Protocol):
            def on_start(self):
                return [Send(1 - self.process_id, Token(0))] if self.process_id == 0 else []

            def on_message(self, sender, payload):
                return [Send(sender, Token(0))]

        config = SystemConfig(2, 0)
        protocols = {pid: PingPong(pid, config) for pid in config.processes}
        sim = Simulation(config, protocols, max_events=100)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run_until_decided()

    def test_wrong_protocol_cover_rejected(self):
        config = SystemConfig(3, 0)
        with pytest.raises(SimulationError):
            Simulation(config, {0: Relay(0, config)})

    def test_too_many_faulty_rejected(self):
        config = SystemConfig(3, 1)
        protocols = {pid: Relay(pid, config) for pid in config.processes}
        with pytest.raises(SimulationError):
            Simulation(config, protocols, faulty={0, 1})

    def test_run_to_quiescence_drains(self):
        config = SystemConfig(3, 0)
        sim = build(config, OneShot)
        result = sim.run_to_quiescence()
        assert result.drained
        assert result.stats.messages_delivered == 9  # 3 broadcasts x 3


class TestRunnerOutputsAndServices:
    def test_top_level_deliver_collected(self):
        class Upcaller(Protocol):
            def on_start(self):
                return [Deliver("tag", self.process_id, "v")]

            def on_message(self, sender, payload):
                return []

        config = SystemConfig(2, 0)
        sim = build(config, Upcaller)
        result = sim.run_to_quiescence()
        assert result.outputs[0][0].tag == "tag"
        assert result.outputs[1][0].value == "v"

    def test_service_call_and_reply(self):
        class EchoService(Service):
            def on_call(self, caller, payload, depth, time, reply_path=()):
                return [
                    ServiceReply(
                        caller, ("echo", payload), depth + 1, 0.5, reply_path
                    )
                ]

        class Caller(Protocol):
            def on_start(self):
                return [ServiceCall("echo", "hi")]

            def on_message(self, sender, payload):
                return [Decide(payload, DecisionKind.FAST)]

        config = SystemConfig(1, 0)
        sim = Simulation(
            config,
            {0: Caller(0, config)},
            services={"echo": EchoService()},
        )
        result = sim.run_until_decided()
        assert result.decisions[0].value == ("echo", "hi")
        assert result.decisions[0].step == 1  # call at depth 0, reply depth 1

    def test_missing_service_raises(self):
        class Caller(Protocol):
            def on_start(self):
                return [ServiceCall("nope", "x")]

            def on_message(self, sender, payload):
                return []

        config = SystemConfig(1, 0)
        sim = Simulation(config, {0: Caller(0, config)})
        with pytest.raises(SimulationError, match="no service"):
            sim.run_to_quiescence()

    def test_malformed_payload_logged_not_fatal(self):
        class Strict(Protocol):
            def on_start(self):
                if self.process_id == 0:
                    return [Send(1, "garbage")]
                return []

            def on_message(self, sender, payload):
                raise TypeError("bad")

        config = SystemConfig(2, 0)
        protocols = {pid: Strict(pid, config) for pid in config.processes}
        sim = Simulation(config, protocols, trace=True)
        result = sim.run_to_quiescence()
        assert result.tracer.by_event("malformed-message-dropped")


class TestSchedulerIntegration:
    def test_delayed_sender_arrives_last(self):
        arrivals = []

        class Recorder(Protocol):
            def on_start(self):
                return [Broadcast(Token(0))] if self.process_id != 2 else [Broadcast(Token(99))]

            def on_message(self, sender, payload):
                if self.process_id == 0:
                    arrivals.append(sender)
                return []

        config = SystemConfig(3, 0)
        protocols = {pid: Recorder(pid, config) for pid in config.processes}
        sim = Simulation(
            config,
            protocols,
            latency=ConstantLatency(1.0),
            scheduler=DelaySenders([2], extra=100.0),
        )
        sim.run_to_quiescence()
        assert arrivals[-1] == 2


class TestTimelineFormatting:
    def test_timeline_marks_decisions(self):
        tracer = Tracer()
        tracer.record(0.0, 0, "decide", {"value": 1})
        tracer.record(5.0, 1, "decide", {"value": 1})
        art = tracer.format_timeline([0, 1], width=20)
        lines = art.splitlines()
        assert lines[0].startswith("p0")
        assert "D" in lines[0] and "D" in lines[1]
        assert lines[0].index("D") < lines[1].index("D")

    def test_timeline_empty(self):
        assert "no matching events" in Tracer().format_timeline([0])
