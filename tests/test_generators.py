"""Unit tests for input-space enumeration and sampling."""

import math

import pytest

from repro.conditions.generators import (
    VectorSampler,
    all_vectors,
    all_views,
    perturbations,
)
from repro.conditions.views import View, hamming_distance
from repro.types import BOTTOM


class TestAllVectors:
    def test_count(self):
        assert len(list(all_vectors([0, 1], 4))) == 16

    def test_all_complete(self):
        assert all(v.is_complete for v in all_vectors([0, 1], 3))

    def test_distinct(self):
        vectors = list(all_vectors([0, 1, 2], 3))
        assert len(vectors) == len(set(vectors)) == 27


class TestAllViews:
    def test_count_formula(self):
        # sum_k C(n,k) * |V|^(n-k)
        n, v, k = 4, 2, 2
        expected = sum(math.comb(n, j) * v ** (n - j) for j in range(k + 1))
        assert len(list(all_views([0, 1], n, k))) == expected

    def test_bottom_budget_respected(self):
        assert all(
            view.count(BOTTOM) <= 1 for view in all_views([0, 1], 3, 1)
        )

    def test_zero_bottoms_equals_vectors(self):
        assert set(all_views([0, 1], 3, 0)) == set(all_vectors([0, 1], 3))


class TestPerturbations:
    def test_distance_bound(self):
        base = View.of(1, 1, 1, 1)
        for view in perturbations(base, [1, 2], 2):
            assert hamming_distance(view, base) <= 2

    def test_includes_original(self):
        base = View.of(1, 2)
        assert base in set(perturbations(base, [1, 2], 1))

    def test_includes_bottom_corruption(self):
        base = View.of(1, 1)
        views = set(perturbations(base, [1, 2], 1))
        assert View.of(BOTTOM, 1) in views

    def test_no_bottom_when_disallowed(self):
        base = View.of(1, 1)
        views = set(perturbations(base, [1, 2], 1, allow_bottom=False))
        assert all(v.count(BOTTOM) == 0 for v in views)

    def test_exhaustive_at_distance_one(self):
        base = View.of(1, 1)
        views = set(perturbations(base, [1, 2], 1))
        # original + per position: {2, ⊥} -> 1 + 2*2 = 5
        assert len(views) == 5


class TestVectorSampler:
    def test_deterministic_given_seed(self):
        a = VectorSampler([0, 1, 2], 8, seed=7)
        b = VectorSampler([0, 1, 2], 8, seed=7)
        assert [a.uniform_vector() for _ in range(5)] == [
            b.uniform_vector() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a = VectorSampler([0, 1], 16, seed=1).uniform_vector()
        b = VectorSampler([0, 1], 16, seed=2).uniform_vector()
        assert a != b

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            VectorSampler([], 3)

    def test_skewed_vector_bias(self):
        sampler = VectorSampler([0, 1], 1000, seed=3)
        vector = sampler.skewed_vector(favourite=1, p=0.9)
        assert vector.count(1) > 800

    def test_skewed_vector_extremes(self):
        sampler = VectorSampler([0, 1], 50, seed=3)
        assert sampler.skewed_vector(favourite=1, p=1.0).count(1) == 50
        assert sampler.skewed_vector(favourite=1, p=0.0).count(1) == 0

    def test_random_view_bottom_budget(self):
        sampler = VectorSampler([0, 1], 10, seed=4)
        base = sampler.uniform_vector()
        for _ in range(20):
            assert sampler.random_view(base, 3).count(BOTTOM) <= 3

    def test_corrupted_view_distance(self):
        sampler = VectorSampler([0, 1], 10, seed=5)
        base = sampler.uniform_vector()
        for _ in range(20):
            assert hamming_distance(sampler.corrupted_view(base, 2), base) <= 2
