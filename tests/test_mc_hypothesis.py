"""Property-based bridge between the two execution engines: every schedule
the discrete-event simulator samples is a path in the model checker's tree,
and walking that path through :class:`McSystem` reproduces the simulator's
decisions and outputs exactly.  This is the converse direction of
counterexample replay (checker trace → simulator) and pins the two
semantics together from both sides."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mc.counterexample import run_schedule
from repro.mc.scenario import build_simulation, build_system, dex_scenario, idb_scenario

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def traced_schedule(result):
    """The global delivery order of a traced run, as checker records."""
    return [
        (event.data["from"], event.pid, repr(event.data["payload"]))
        for event in result.tracer.by_event("deliver")
    ]


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_sampled_dex_schedules_reproduce_decisions_on_the_checker(seed):
    spec = dex_scenario(7, 1, [1, 1, 1, 1, 1, 2, 2])
    result = build_simulation(spec, seed=seed, trace=True).run_until_decided()
    system = run_schedule(build_system(spec), traced_schedule(result))
    assert system is not None  # the sampled schedule is a checker path
    assert {
        pid: (value, kind, step)
        for pid, (value, kind, step) in system.correct_decisions().items()
    } == {
        pid: (d.value, d.kind, d.step)
        for pid, d in result.correct_decisions.items()
    }


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_sampled_byzantine_idb_schedules_reproduce_outputs(seed):
    spec = idb_scenario(
        5,
        1,
        [1, 1, 1, 2, 2],
        byzantine={
            4: {"kind": "two-faced", "value_a": 2, "value_b": 1, "group_a": [0, 1]}
        },
    )
    result = build_simulation(spec, seed=seed, trace=True).run_to_quiescence()
    system = run_schedule(build_system(spec), traced_schedule(result))
    assert system is not None
    for pid in system.correct:
        simulated = [
            (effect.tag, effect.sender, effect.value)
            for effect in result.outputs[pid]
        ]
        assert system.outputs[pid] == simulated
