"""Edge-case coverage across modules: error paths, rarely-hit branches,
and API misuse that must fail loudly."""

import pytest

from repro.errors import (
    ConfigurationError,
    LegalityError,
    ReproError,
    ResilienceError,
    SimulationDeadlock,
    SimulationError,
)
from repro.harness import Custom, Garbage, Scenario, dex_freq
from repro.runtime.composite import CompositeProtocol
from repro.runtime.protocol import Protocol
from repro.sim.runner import Simulation
from repro.types import SystemConfig
from repro.workloads.inputs import unanimous


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            ConfigurationError,
            SimulationError,
            LegalityError,
            ResilienceError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_resilience_error_fields(self):
        err = ResilienceError("DEX", 6, 1, "n > 5t")
        assert err.algorithm == "DEX"
        assert err.n == 6
        assert "n > 5t" in str(err)

    def test_deadlock_carries_undecided(self):
        err = SimulationDeadlock(frozenset({1, 2}))
        assert err.undecided == frozenset({1, 2})
        assert "[1, 2]" in str(err)

    def test_legality_error_fields(self):
        err = LegalityError("LT1", "witness here")
        assert err.criterion == "LT1"
        assert "witness here" in str(err)


class TestRunResultEdges:
    def test_decided_value_raises_without_decisions(self):
        result = Scenario(dex_freq(), unanimous(1, 7), seed=0).build()
        run = result.run_until(lambda sim: True)  # stop immediately
        with pytest.raises(SimulationError):
            run.decided_value

    def test_max_correct_step_empty(self):
        sim = Scenario(dex_freq(), unanimous(1, 7), seed=0).build()
        run = sim.run_until(lambda s: True)
        assert run.max_correct_step == 0

    def test_rerun_continues_from_state(self):
        sim = Scenario(dex_freq(), unanimous(1, 7), seed=0).build()
        partial = sim.run_until(lambda s: s.stats.messages_delivered >= 5)
        assert not partial.all_correct_decided()
        final = sim.run_until_decided()
        assert final.all_correct_decided()
        assert final.decided_value == 1


class TestCompositeDefaults:
    def test_default_own_message_logs(self):
        class Bare(CompositeProtocol):
            pass

        effects = Bare(0, SystemConfig(4, 1)).on_message(1, "stray")
        assert effects[0].event == "unexpected-payload"

    def test_default_child_output_empty(self):
        bare = CompositeProtocol(0, SystemConfig(4, 1))
        assert bare.on_child_output("x", None) == []


class TestHarnessFaultEdges:
    def test_custom_fault_factory(self):
        from repro.byzantine.adversary import SilentBehavior

        made = {}

        def factory(pid, config, make_honest, value):
            made["pid"] = pid
            return SilentBehavior(pid, config)

        result = Scenario(
            dex_freq(), unanimous(1, 7), faults={6: Custom(factory)}, seed=1
        ).run()
        assert made["pid"] == 6
        assert result.decided_value == 1

    def test_custom_fault_model_tag(self):
        fault = Custom(lambda *a: None, model="crash")
        assert fault.model == "crash"

    def test_garbage_without_templates_uses_value(self):
        from repro.harness import AlgorithmSpec
        from repro.baselines.twostep import TwoStepConsensus

        bare_spec = AlgorithmSpec(
            name="bare",
            make=lambda pid, config, value, uc_factory: TwoStepConsensus(
                pid, config, value, uc_factory
            ),
            required_ratio=3,
        )
        result = Scenario(
            bare_spec, [1, 1, 1, 2], faults={3: Garbage()}, seed=2
        ).run()
        assert result.agreement_holds()


class TestSimulationApiMisuse:
    def test_protocols_must_match_config(self):
        config = SystemConfig(3, 0)

        class Nop(Protocol):
            def on_message(self, sender, payload):
                return []

        protocols = {pid: Nop(pid, config) for pid in range(4)}
        with pytest.raises(SimulationError):
            Simulation(SystemConfig(4, 0), dict(list(protocols.items())[:3]))

    def test_unknown_effect_rejected(self):
        class Weird(Protocol):
            def on_start(self):
                return ["not-an-effect"]

            def on_message(self, sender, payload):
                return []

        config = SystemConfig(1, 0)
        sim = Simulation(config, {0: Weird(0, config)})
        with pytest.raises(SimulationError, match="unknown effect"):
            sim.run_to_quiescence()


class TestScenarioSeedSweep:
    """A wide safety net: many seeds, assorted faults — cheap but broad."""

    @pytest.mark.parametrize("seed", range(12))
    def test_mixed_inputs_any_seed(self, seed):
        inputs = [1, 2, 1, 1, 2, 1, 1]
        result = Scenario(dex_freq(), inputs, seed=seed).run()
        assert result.agreement_holds()
        assert result.all_correct_decided()
        assert result.decided_value in (1, 2)
