"""Tests for algorithm DEX (Figure 1): decision paths, lemmas, robustness."""

import pytest

from repro.conditions.frequency import FrequencyPair
from repro.conditions.privileged import PrivilegedPair
from repro.core.dex import DexConsensus, DexProposal
from repro.errors import ConfigurationError, ResilienceError
from repro.harness import (
    Crash,
    Equivocate,
    Garbage,
    Scenario,
    Silent,
    dex_freq,
    dex_prv,
)
from repro.sim.latency import ConstantLatency
from repro.sim.scheduler import DelaySenders
from repro.types import BOTTOM, DecisionKind, SystemConfig
from repro.workloads.inputs import split, unanimous, with_frequency_gap

from .conftest import kinds_of, steps_of


class TestConstruction:
    def test_requires_n_gt_5t(self):
        config = SystemConfig(5, 1)
        with pytest.raises(ResilienceError):
            DexConsensus(0, config, PrivilegedPair(6, 1, 1), 1)

    def test_pair_must_match_config(self):
        config = SystemConfig(13, 2)
        with pytest.raises(ConfigurationError):
            DexConsensus(0, config, FrequencyPair(7, 1), 1)

    def test_views_start_at_bottom_except_self(self):
        config = SystemConfig(7, 1)
        node = DexConsensus(3, config, FrequencyPair(7, 1), "v")
        node.on_start()
        assert node.view1[3] == "v"
        assert node.view2[3] == "v"
        assert node.view1[0] is BOTTOM

    def test_first_value_per_sender_binds(self):
        config = SystemConfig(7, 1)
        node = DexConsensus(0, config, FrequencyPair(7, 1), 1)
        node.on_start()
        node.on_message(2, DexProposal("a"))
        node.on_message(2, DexProposal("b"))
        assert node.view1[2] == "a"

    def test_unhashable_proposal_dropped(self):
        config = SystemConfig(7, 1)
        node = DexConsensus(0, config, FrequencyPair(7, 1), 1)
        node.on_start()
        node.on_message(2, DexProposal(["unhashable"]))
        assert node.view1[2] is BOTTOM


class TestDecisionPaths:
    """The three decision lines of Figure 1, each exercised on purpose."""

    def test_line8_one_step(self):
        result = Scenario(dex_freq(), unanimous(1, 7), seed=0).run()
        assert kinds_of(result) == {DecisionKind.ONE_STEP}
        assert steps_of(result) == {1}
        assert result.decided_value == 1

    def test_line17_two_step(self):
        # gap 5 = 4t + 1: inside C²_0 (> 2t) but outside C¹ after one miss;
        # delay one 1-proposer so first quorum gap is 4, P1 fails, P2 holds.
        inputs = with_frequency_gap(1, 2, 7, 5)
        result = Scenario(
            dex_freq(),
            inputs,
            seed=1,
            latency=ConstantLatency(1.0),
            scheduler=DelaySenders([0], extra=50.0),
        ).run()
        assert result.decided_value == 1
        assert DecisionKind.TWO_STEP in kinds_of(result)
        two_steppers = [
            d for d in result.correct_decisions.values()
            if d.kind is DecisionKind.TWO_STEP
        ]
        assert all(d.step == 2 for d in two_steppers)

    def test_line21_underlying(self):
        inputs = split(1, 2, 7, 3)  # gap 1: outside every condition
        result = Scenario(dex_freq(), inputs, seed=2).run()
        assert kinds_of(result) == {DecisionKind.UNDERLYING}
        assert result.decided_value in (1, 2)

    def test_underlying_costs_four_steps(self):
        """The §1.2 trade-off: DEX worst case in well-behaved runs is 4."""
        inputs = split(1, 2, 7, 3)
        result = Scenario(
            dex_freq(), inputs, seed=3, latency=ConstantLatency(1.0)
        ).run()
        assert steps_of(result) == {4}  # propose at depth 2 + UC cost 2

    def test_one_step_when_gap_sufficient(self):
        inputs = with_frequency_gap(1, 2, 7, 5)  # gap 5 > 4t = 4
        result = Scenario(dex_freq(), inputs, seed=4).run()
        assert result.decided_value == 1
        # with fair scheduling all correct processes hear everyone
        assert kinds_of(result) <= {DecisionKind.ONE_STEP, DecisionKind.TWO_STEP}


class TestLemma4OneStep:
    """Lemma 4: I ∈ C¹_k and f ≤ k ⇒ every correct process decides in one
    step — under *any* schedule (we try several adversarial ones)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_unanimous_with_max_silent_faults(self, seed):
        n, t = 13, 2
        faults = {11: Silent(), 12: Silent()}
        result = Scenario(dex_freq(), unanimous(1, n), t=t, faults=faults, seed=seed).run()
        assert kinds_of(result) == {DecisionKind.ONE_STEP}
        assert steps_of(result) == {1}

    @pytest.mark.parametrize("seed", range(5))
    def test_boundary_input_level_one(self, seed):
        # n=13, t=2: gap 4t+2*1+1 = 11 -> C¹_1; with f=1 one-step guaranteed
        n, t = 13, 2
        inputs = with_frequency_gap(1, 2, n, 11)
        result = Scenario(
            dex_freq(), inputs, t=t, faults={12: Silent()}, seed=seed
        ).run()
        assert kinds_of(result) == {DecisionKind.ONE_STEP}

    @pytest.mark.parametrize("seed", range(5))
    def test_equivocators_within_level(self, seed):
        n, t = 13, 2
        result = Scenario(
            dex_freq(),
            unanimous(1, n),
            t=t,
            faults={11: Equivocate(1, 2), 12: Equivocate(2, 3)},
            seed=seed,
        ).run()
        assert result.decided_value == 1
        assert kinds_of(result) == {DecisionKind.ONE_STEP}


class TestLemma5TwoStep:
    """Lemma 5: I ∈ C²_k, f ≤ k ⇒ decision within two steps."""

    @pytest.mark.parametrize("seed", range(5))
    def test_two_step_guarantee(self, seed):
        n, t = 13, 2
        inputs = with_frequency_gap(1, 2, n, 9)  # 9 > 2t + 2k = 8 for k = 2
        result = Scenario(
            dex_freq(),
            inputs,
            t=t,
            faults={11: Silent(), 12: Silent()},
            seed=seed,
        ).run()
        assert result.decided_value == 1
        assert all(d.step <= 2 for d in result.correct_decisions.values())


class TestAgreementUnderAdversaries:
    @pytest.mark.parametrize("seed", range(8))
    def test_equivocator_on_contended_input(self, seed):
        inputs = [1, 1, 1, 1, 2, 2, 2]
        result = Scenario(
            dex_freq(), inputs, faults={6: Equivocate(2, 1)}, seed=seed
        ).run()
        assert result.agreement_holds()
        assert result.all_correct_decided()
        assert result.decided_value in (1, 2)

    @pytest.mark.parametrize("seed", range(8))
    def test_crash_mid_broadcast(self, seed):
        inputs = [1, 1, 1, 1, 2, 2, 2]
        result = Scenario(
            dex_freq(), inputs, faults={6: Crash(budget=3)}, seed=seed
        ).run()
        assert result.agreement_holds()

    @pytest.mark.parametrize("seed", range(8))
    def test_garbage_sprayer(self, seed):
        inputs = [1, 1, 1, 1, 1, 2, 2]
        result = Scenario(
            dex_freq(), inputs, faults={6: Garbage(seed=seed)}, seed=seed
        ).run()
        assert result.agreement_holds()
        assert result.all_correct_decided()

    @pytest.mark.parametrize("seed", range(4))
    def test_unanimity_with_byzantine(self, seed):
        result = Scenario(
            dex_freq(), unanimous(5, 7), faults={6: Equivocate(7, 8)}, seed=seed
        ).run()
        # all correct proposed 5 -> decision must be 5
        assert result.decided_value == 5


class TestPrivilegedInstantiation:
    def test_one_step_on_privileged_majority(self):
        spec = dex_prv(privileged="C")
        inputs = ["C"] * 9 + ["A"] * 2
        result = Scenario(spec, inputs, seed=0).run()
        assert result.decided_value == "C"
        assert kinds_of(result) == {DecisionKind.ONE_STEP}

    def test_privileged_value_wins_close_race(self):
        spec = dex_prv(privileged="C")
        # 5 C's of 11, t=2: #C = 5 > 2t = 4 -> two-step decides C
        inputs = ["C"] * 5 + ["A"] * 6
        result = Scenario(spec, inputs, seed=1).run()
        assert result.decided_value == "C"

    def test_falls_back_when_privileged_scarce(self):
        spec = dex_prv(privileged="C")
        inputs = ["C"] * 2 + ["A"] * 9
        result = Scenario(spec, inputs, seed=2).run()
        assert result.agreement_holds()
        assert result.decided_value == "A"

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement_with_equivocator(self, seed):
        spec = dex_prv(privileged="C")
        inputs = ["C"] * 8 + ["A"] * 3
        result = Scenario(
            spec, inputs, faults={10: Equivocate("A", "C")}, seed=seed
        ).run()
        assert result.agreement_holds()


class TestRealUnderlyingStack:
    @pytest.mark.parametrize("seed", range(3))
    def test_contended_input_with_real_uc(self, seed):
        inputs = [1, 1, 1, 1, 2, 2, 2]
        result = Scenario(dex_freq(), inputs, uc="real", seed=seed).run()
        assert result.agreement_holds()
        assert result.all_correct_decided()

    def test_fast_path_unaffected_by_real_uc(self):
        result = Scenario(dex_freq(), unanimous(1, 7), uc="real", seed=1).run()
        assert kinds_of(result) == {DecisionKind.ONE_STEP}

    @pytest.mark.parametrize("seed", range(2))
    def test_real_uc_with_equivocator(self, seed):
        inputs = [1, 1, 1, 2, 2, 2, 1]
        result = Scenario(
            dex_freq(), inputs, uc="real", faults={6: Equivocate(1, 2)}, seed=seed
        ).run()
        assert result.agreement_holds()


class TestUcProposalDiscipline:
    def test_every_correct_process_proposes_even_after_deciding(self):
        """Line 12-15 fires regardless of a fast decision — others may need
        the underlying consensus (Case 4 of the agreement proof)."""
        sim = Scenario(dex_freq(), unanimous(1, 7), seed=0).build()
        result = sim.run_until_decided()
        assert result.decided_value == 1
        # drain remaining traffic: every correct node must have proposed
        sim.run_to_quiescence()
        for pid in range(7):
            node = sim._states[pid].protocol
            assert node.has_proposed_to_uc
