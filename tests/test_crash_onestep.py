"""Tests for the adaptive crash-model one-step consensus (Izumi row)."""

import pytest

from repro.baselines.crash_onestep import IzumiCrashConsensus, crash_one_step_level
from repro.conditions.views import View
from repro.errors import ConfigurationError, ResilienceError
from repro.harness import Crash, Equivocate, Scenario, Silent, izumi
from repro.types import DecisionKind, SystemConfig
from repro.workloads.inputs import split, unanimous, with_frequency_gap

from .conftest import kinds_of, steps_of


class TestConstruction:
    def test_resilience(self):
        with pytest.raises(ResilienceError):
            IzumiCrashConsensus(0, SystemConfig(3, 1), 1)
        IzumiCrashConsensus(0, SystemConfig(4, 1), 1)

    def test_byzantine_faults_rejected(self):
        with pytest.raises(ConfigurationError, match="crash-model"):
            Scenario(izumi(), unanimous(1, 7), faults={6: Equivocate(1, 2)})


class TestConditionLevels:
    def test_adaptive_sequence_shape(self):
        t = 2
        # C_k = C_freq(t + 2k): thresholds 2, 4, 6
        assert crash_one_step_level(View(with_frequency_gap(1, 2, 9, 3)), t) == 0
        assert crash_one_step_level(View(with_frequency_gap(1, 2, 9, 5)), t) == 1
        assert crash_one_step_level(View(with_frequency_gap(1, 2, 9, 7)), t) == 2
        assert crash_one_step_level(View(with_frequency_gap(1, 2, 9, 1)), t) is None

    def test_wider_than_dex_freq(self):
        """The crash-model conditions are much wider than the Byzantine
        ones (t + 2k vs 4t + 2k): the price of Byzantine tolerance made
        quantitative."""
        from repro.conditions.frequency import FrequencyPair

        n, t = 13, 2
        pair = FrequencyPair(n, t)
        vector = View(with_frequency_gap(1, 2, n, 7))
        assert crash_one_step_level(vector, t) == 2
        assert pair.one_step_level(vector) is None


class TestDecisions:
    def test_unanimous_one_step(self):
        result = Scenario(izumi(), unanimous(1, 7), seed=0).run()
        assert kinds_of(result) == {DecisionKind.ONE_STEP}
        assert steps_of(result) == {1}

    def test_moderate_skew_still_one_step(self):
        # gap 3 > t = 2 (n=7, t=2): in C_0 — one-step with no crashes
        inputs = with_frequency_gap(1, 2, 7, 3)
        result = Scenario(izumi(), inputs, seed=1).run()
        assert result.decided_value == 1
        assert DecisionKind.ONE_STEP in kinds_of(result)

    def test_even_split_falls_back(self):
        result = Scenario(izumi(), split(1, 2, 8, 4), seed=2).run()
        assert result.agreement_holds()
        assert DecisionKind.UNDERLYING in kinds_of(result)

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_with_crashes(self, seed):
        inputs = with_frequency_gap(1, 2, 7, 3)
        result = Scenario(
            izumi(), inputs, faults={5: Crash(budget=2), 6: Silent()}, seed=seed
        ).run()
        assert result.agreement_holds()
        assert result.all_correct_decided()

    @pytest.mark.parametrize("seed", range(4))
    def test_unanimity_with_crashes(self, seed):
        result = Scenario(
            izumi(), unanimous(9, 7), faults={6: Crash(budget=3)}, seed=seed
        ).run()
        assert result.decided_value == 9

    @pytest.mark.parametrize("seed", range(4))
    def test_lemma4_analogue(self, seed):
        """Level-k inputs decide one-step with f <= k silent crashes among
        the majority proposers."""
        n, t = 7, 2
        inputs = with_frequency_gap(1, 2, n, 7)  # level 2
        faults = {0: Silent(), 1: Silent()}
        result = Scenario(izumi(), inputs, faults=faults, seed=seed).run()
        assert kinds_of(result) == {DecisionKind.ONE_STEP}

    def test_works_with_real_uc(self):
        result = Scenario(izumi(), split(1, 2, 7, 3), uc="real", seed=3).run()
        assert result.agreement_holds()
