"""Equivalence suite for the incremental hot-path engine.

Four pillars, mirroring the engine's layers:

* ``ViewStats`` matches the batch :class:`~repro.conditions.views.View`
  observations after *every* one of thousands of randomized single-entry
  updates (including mixed int/str alphabets, ``None`` as a value, and
  rejected re-binds);
* the incremental predicate fast paths (``p1_incremental``/``p2_incremental``
  /``f_incremental``) agree with the batch predicates on random views;
* the multiset-weighted exhaustive enumerator reproduces brute-force
  coverage exactly (same integers, hence bit-identical fractions);
* ``run_many(parallel=True)`` aggregates identically to the serial path,
  and replaying the frozen seed fixture reproduces the pre-engine
  decisions bit-for-bit.
"""

import json
import pathlib
import random
from collections import Counter

import pytest

from repro.analysis.coverage import exact_space_coverage, pair_coverage
from repro.conditions.frequency import FrequencyPair
from repro.conditions.generators import all_vectors, multiset_vectors
from repro.conditions.incremental import ViewStats
from repro.conditions.privileged import PrivilegedPair
from repro.conditions.views import View
from repro.harness import (
    Collapse,
    Crash,
    Equivocate,
    Scenario,
    Silent,
    Spoiler,
    bosco_strong,
    bosco_weak,
    brasileiro,
    dex_freq,
    dex_prv,
    izumi,
    twostep,
)
from repro.types import BOTTOM
from repro.workloads.inputs import split, unanimous

DATA = pathlib.Path(__file__).parent / "data" / "seed_decisions.json"

ALPHABETS = [
    [0, 1],
    [1, 2, 3],
    list(range(7)),
    ["a", "b", "c"],
    [1, 2, "a", "b"],  # mixed: exercises the order_key tie-break fallback
    [None, 1, 2],  # None is a proposable value, distinct from unbound
]


class TestViewStatsEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_batch_view_after_every_update(self, seed):
        rng = random.Random(seed)
        for _ in range(20):
            n = rng.randint(1, 24)
            alphabet = rng.choice(ALPHABETS)
            stats = ViewStats(n)
            entries = [BOTTOM] * n
            # Twice as many attempts as slots: roughly half are re-binds,
            # which must be rejected without perturbing the statistics.
            for _ in range(2 * n):
                index = rng.randrange(n)
                value = rng.choice(alphabet)
                bound = stats.set_entry(index, value)
                assert bound == (entries[index] is BOTTOM)
                if bound:
                    entries[index] = value
                view = View(entries)
                assert stats.known == view.known
                assert stats.first() == view.first()
                assert stats.second() == view.second()
                assert stats.frequency_gap() == view.frequency_gap()
                assert stats.is_complete == view.is_complete
                assert stats.count(BOTTOM) == view.count(BOTTOM)
                for v in alphabet:
                    assert stats.count(v) == view.count(v)
                # Expected top-two counts straight from a histogram: asking
                # the View for count(second()) would inherit the ambiguity
                # of None-as-a-value, which is exactly what ViewStats avoids.
                ordered = sorted(
                    Counter(e for e in entries if e is not BOTTOM).values(),
                    reverse=True,
                )
                assert stats.first_count == (ordered[0] if ordered else 0)
                assert stats.second_count == (
                    ordered[1] if len(ordered) > 1 else 0
                )
                assert stats.as_view() == view
                assert stats.entries == tuple(entries)

    def test_rejects_bottom_and_rebinds(self):
        stats = ViewStats(3)
        with pytest.raises(ValueError):
            stats.set_entry(0, BOTTOM)
        assert stats.set_entry(0, 5)
        assert not stats.set_entry(0, 7)  # binding first write wins
        assert stats.count(5) == 1 and stats.count(7) == 0

    def test_from_entries_roundtrip(self):
        entries = [1, BOTTOM, 2, 1, BOTTOM]
        stats = ViewStats.from_entries(entries)
        assert stats.entries == tuple(entries)
        assert stats.as_view() == View(entries)
        assert stats.first() == 1 and stats.first_count == 2

    def test_empty_view(self):
        stats = ViewStats(4)
        assert stats.first() is None and stats.second() is None
        assert stats.frequency_gap() == 0
        assert stats.first_count == 0 and stats.second_count == 0


class TestIncrementalPredicates:
    @pytest.mark.parametrize("seed", range(4))
    def test_fast_paths_match_batch_predicates(self, seed):
        rng = random.Random(1000 + seed)
        pairs = [FrequencyPair(13, 2), PrivilegedPair(13, 2, privileged=1)]
        for _ in range(200):
            pair = rng.choice(pairs)
            entries = [
                rng.choice([BOTTOM, 1, 2, 3]) for _ in range(pair.n)
            ]
            stats = ViewStats.from_entries(entries)
            view = View(entries)
            assert pair.p1_incremental(stats) == pair.p1(view)
            assert pair.p2_incremental(stats) == pair.p2(view)
            if view.known:
                assert pair.f_incremental(stats) == pair.f(view)

    def test_default_hooks_fall_back_to_batch(self):
        # A custom pair built on the base class overrides no *_incremental
        # hook, so the defaults must route through the as_view() adapter —
        # note it must NOT subclass a shipped pair, whose fast paths it
        # would inherit.
        from repro.conditions.base import (
            ConditionSequence,
            ConditionSequencePair,
            PredicateCondition,
        )

        class OnlyOnes(ConditionSequencePair):
            def p1(self, view):
                return view.count(1) == self.n

            def p2(self, view):
                return view.count(1) >= self.n - self.t

            def f(self, view):
                return 1

            def one_step_sequence(self):
                return ConditionSequence(
                    [PredicateCondition(self.p1)] * (self.t + 1)
                )

            def two_step_sequence(self):
                return ConditionSequence(
                    [PredicateCondition(self.p2)] * (self.t + 1)
                )

        pair = OnlyOnes(7, 1)
        assert not pair.histogram_invariant  # base default: full enumeration
        stats = ViewStats.from_entries([1] * 7)
        assert pair.p1_incremental(stats)
        assert pair.f_incremental(stats) == 1
        stats2 = ViewStats.from_entries([1] * 6 + [2])
        assert not pair.p1_incremental(stats2)
        assert pair.p2_incremental(stats2)


class TestSubclassSafety:
    def test_batch_override_disables_inherited_fast_path(self):
        # The E10 ablation pattern: a shipped-pair subclass that rewrites a
        # batch predicate must not have it bypassed by the parent's O(1)
        # fast path.
        class NoTwoStep(FrequencyPair):
            def p2(self, view):
                return False

        pair = NoTwoStep(13, 2)
        stats = ViewStats.from_entries([1] * 10 + [2] * 3)  # gap 7 > 2t
        assert FrequencyPair(13, 2).p2_incremental(stats)
        assert not pair.p2_incremental(stats)
        # p1 untouched -> the inherited fast path survives
        assert pair.p1_incremental.__func__ is FrequencyPair.p1_incremental

    def test_histogram_claim_not_inherited_past_overrides(self):
        class NoTwoStep(FrequencyPair):
            def p2(self, view):
                return False

        class Redeclared(FrequencyPair):
            histogram_invariant = True

            def p2(self, view):
                return False

        assert not NoTwoStep.histogram_invariant  # claim dropped, safe default
        assert Redeclared.histogram_invariant  # explicit redeclaration wins
        assert FrequencyPair.histogram_invariant


class TestMultisetCoverage:
    @pytest.mark.parametrize(
        "pair",
        [FrequencyPair(7, 1), PrivilegedPair(7, 1, privileged=1)],
        ids=["freq", "prv"],
    )
    def test_matches_brute_force_exactly(self, pair):
        values = [1, 2]
        brute = pair_coverage(
            pair, list(all_vectors(values, pair.n)), range(pair.t + 1)
        )
        multiset = exact_space_coverage(pair, values, range(pair.t + 1))
        assert multiset == brute  # identical floats, not approximately

    def test_three_values(self):
        pair = FrequencyPair(7, 1)
        values = [1, 2, 3]
        brute = pair_coverage(
            pair, list(all_vectors(values, pair.n)), range(pair.t + 1)
        )
        assert exact_space_coverage(pair, values, range(pair.t + 1)) == brute

    def test_weights_sum_to_space_size(self):
        for n, values in [(7, [1, 2]), (5, [1, 2, 3]), (31, [1, 2])]:
            total = sum(w for _, w in multiset_vectors(values, n))
            assert total == len(values) ** n

    def test_multiset_count_is_stars_and_bars(self):
        import math

        for n, k in [(7, 2), (5, 3), (31, 2)]:
            vectors = list(multiset_vectors(list(range(k)), n))
            assert len(vectors) == math.comb(n + k - 1, k - 1)

    def test_custom_pair_falls_back_to_full_enumeration(self):
        class PositionSensitive(FrequencyPair):
            histogram_invariant = False

        pair = PositionSensitive(7, 1)
        fallback = exact_space_coverage(pair, [1, 2], range(2))
        reference = exact_space_coverage(FrequencyPair(7, 1), [1, 2], range(2))
        assert fallback == reference

    def test_parallel_pair_coverage_identical(self):
        pair = FrequencyPair(7, 1)
        vectors = list(all_vectors([1, 2], pair.n))
        serial = pair_coverage(pair, vectors, range(2))
        parallel = pair_coverage(pair, vectors, range(2), parallel=True)
        assert serial == parallel


class TestParallelRunMany:
    def test_parallel_aggregate_identical_to_serial(self):
        scenario = Scenario(dex_freq(), split(1, 2, 13, 3), faults={12: Silent()})
        serial = scenario.run_many(range(10), expected_value=1)
        parallel = scenario.run_many(
            range(10), expected_value=1, parallel=True, max_workers=4
        )
        assert parallel.summary() == serial.summary()
        assert parallel.max_steps == serial.max_steps
        assert parallel.confidence_interval() == serial.confidence_interval()

    def test_parallel_single_seed_and_empty(self):
        scenario = Scenario(dex_freq(), unanimous(1, 7))
        assert scenario.run_many([5], parallel=True).runs == 1
        assert scenario.run_many([], parallel=True).runs == 0


SEED_ALGOS = {
    "dex-freq": dex_freq,
    "dex-prv": dex_prv,
    "bosco-weak": bosco_weak,
    "bosco-strong": bosco_strong,
    "izumi": izumi,
    "brasileiro": brasileiro,
    "twostep": twostep,
}
SEED_FAULTS = {
    None: lambda n: {},
    "silent": lambda n: {n - 1: Silent()},
    "crash": lambda n: {n - 1: Crash(budget=3)},
    "equivocate": lambda n: {n - 1: Equivocate(1, 2)},
    "spoiler": lambda n: {n - 1: Spoiler(fallback=2)},
    "collapse": lambda n: {n - 1: Collapse(2)},
}
SEED_INPUTS = {
    "unanimous": lambda n: unanimous(1, n),
    "split3": lambda n: split(1, 2, n, 3),
    "split5": lambda n: split(1, 2, n, 5),
}


class TestSeedDeterminismRegression:
    """Replay the frozen pre-engine fixture: decisions, decision kinds,
    step counts and message totals must be bit-identical for fixed seeds."""

    def test_fixture_present_and_plural(self):
        records = json.loads(DATA.read_text())
        assert len(records) > 100

    def test_replays_seed_fixture_exactly(self):
        records = json.loads(DATA.read_text())
        for rec in records:
            result = Scenario(
                SEED_ALGOS[rec["algorithm"]](),
                SEED_INPUTS[rec["inputs"]](rec["n"]),
                faults=SEED_FAULTS[rec["fault"]](rec["n"]),
                seed=rec["seed"],
            ).run()
            got = {
                str(pid): [d.value, d.kind.value, d.step]
                for pid, d in sorted(result.correct_decisions.items())
            }
            assert got == rec["decisions"], (
                rec["algorithm"], rec["n"], rec["inputs"], rec["fault"], rec["seed"]
            )
            assert result.stats.messages_sent == rec["messages_sent"]
