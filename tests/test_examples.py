"""Every example script must run clean — examples are executable docs."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate what they show"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship more
