"""Tests for the d-legality decision procedure — making the paper's
citation of [10] ("C_freq(d) and C_prv(m,d) are d-legal") executable."""

import pytest

from repro.conditions.dlegal import (
    DLegalityResult,
    condition_members,
    frequent_values,
    is_d_legal,
)
from repro.conditions.frequency import FrequencyCondition
from repro.conditions.privileged import PrivilegedCondition
from repro.conditions.views import View, hamming_distance


class TestHelpers:
    def test_frequent_values(self):
        vector = View.of(1, 1, 1, 2, 2, 3)
        assert frequent_values(vector, 2) == {1}
        assert frequent_values(vector, 1) == {1, 2}
        assert frequent_values(vector, 5) == set()

    def test_condition_members(self):
        members = condition_members(FrequencyCondition(2), [1, 2], 4)
        # gap > 2 with n=4 means gap 4: unanimous vectors only
        assert set(members) == {View.of(1, 1, 1, 1), View.of(2, 2, 2, 2)}

    def test_negative_d_rejected(self):
        with pytest.raises(ValueError):
            is_d_legal([], -1)

    def test_empty_condition_trivially_legal(self):
        result = is_d_legal([], 2)
        assert result.legal
        assert result.components == 0


class TestPaperCitations:
    """The paper's §3.3/§3.4 claims: both building blocks are d-legal."""

    @pytest.mark.parametrize("d", [0, 1, 2])
    def test_frequency_condition_is_d_legal(self, d):
        members = condition_members(FrequencyCondition(d), [1, 2], 5)
        result = is_d_legal(members, d)
        assert result.legal, result.failure

    @pytest.mark.parametrize("d", [0, 1, 2])
    def test_privileged_condition_is_d_legal(self, d):
        members = condition_members(PrivilegedCondition(1, d), [1, 2], 5)
        result = is_d_legal(members, d)
        assert result.legal, result.failure

    def test_frequency_three_values(self):
        members = condition_members(FrequencyCondition(1), [1, 2, 3], 4)
        result = is_d_legal(members, 1)
        assert result.legal, result.failure

    def test_witness_respects_both_requirements(self):
        d = 1
        members = condition_members(FrequencyCondition(d), [1, 2], 5)
        result = is_d_legal(members, d)
        for vector, value in result.decision.items():
            assert vector.count(value) > d
        # constant on components: any two members within distance d agree
        for a in members:
            for b in members:
                if hamming_distance(a, b) <= d:
                    assert result.decision[a] == result.decision[b]


class TestNonLegalConditions:
    def test_full_space_not_legal(self):
        """V^n itself is not d-legal for d >= 1 (consensus unsolvable with
        arbitrary inputs): the whole space is one component with unanimous
        vectors of different values in it."""
        from repro.conditions.generators import all_vectors

        members = list(all_vectors([1, 2], 4))
        result = is_d_legal(members, 1)
        assert not result.legal
        assert "no common value" in result.failure

    def test_too_weak_margin_not_legal(self):
        """C_freq(d-1) members used with parameter d: the gap-d vectors sit
        too close to opposite-majority vectors."""
        members = condition_members(FrequencyCondition(0), [1, 2], 4)
        result = is_d_legal(members, 2)
        assert not result.legal

    def test_two_unanimous_vectors_legal_when_far(self):
        members = [View.of(1, 1, 1, 1), View.of(2, 2, 2, 2)]
        result = is_d_legal(members, 3)
        assert result.legal
        assert result.components == 2

    def test_two_unanimous_vectors_not_legal_when_connected(self):
        members = [View.of(1, 1, 1, 1), View.of(2, 2, 2, 2)]
        result = is_d_legal(members, 4)  # distance 4 <= d: one component
        assert not result.legal


class TestAdaptiveSequencesAreDLegal:
    """Each level C¹_k = C_freq(4t+2k) is (4t+2k)-legal — the underpinning
    of the adaptive sequences of §3.3."""

    def test_one_step_sequence_levels(self):
        t = 1
        for k in range(t + 1):
            d = 4 * t + 2 * k
            members = condition_members(FrequencyCondition(d), [1, 2], 7)
            result = is_d_legal(members, d)
            assert result.legal, f"level {k}: {result.failure}"

    def test_two_step_sequence_levels(self):
        t = 1
        for k in range(t + 1):
            d = 2 * t + 2 * k
            members = condition_members(FrequencyCondition(d), [1, 2], 7)
            result = is_d_legal(members, d)
            assert result.legal, f"level {k}: {result.failure}"
