"""Tests for pipelined repeated consensus (slot multiplexer + replica)."""

import pytest

from repro.apps.pipeline import (
    SLOT_DECIDED_TAG,
    PipelinedReplica,
    SlotMultiplexer,
    dex_slot_factory,
    run_pipelined,
)
from repro.errors import ConfigurationError
from repro.runtime.composite import Envelope
from repro.types import DecisionKind, SystemConfig


def unanimous_table(n, slots, prefix="c"):
    return {pid: [f"{prefix}{s}" for s in range(slots)] for pid in range(n)}


class TestSlotMultiplexer:
    def make(self, pid=0, n=7, t=1):
        config = SystemConfig(n, t)
        return SlotMultiplexer(pid, config, dex_slot_factory(pid, config))

    def test_propose_creates_child(self):
        mux = self.make()
        effects = mux.propose(0, "v")
        assert effects  # the DEX broadcast + IDB init
        assert "slot0" in mux._children

    def test_propose_idempotent(self):
        mux = self.make()
        mux.propose(0, "v")
        assert mux.propose(0, "w") == []

    def test_remote_message_creates_child_lazily(self):
        from repro.core.dex import DexProposal

        mux = self.make()
        assert "slot3" not in mux._children
        mux.on_message(1, Envelope("slot3", DexProposal("x")))
        assert "slot3" in mux._children
        # created but not started: the instance has not proposed
        assert not mux.child("slot3").has_proposed_to_uc

    def test_slot_number_inflation_guarded(self):
        from repro.core.dex import DexProposal

        mux = self.make()
        mux.on_message(1, Envelope("slot99999999", DexProposal("x")))
        assert "slot99999999" not in mux._children

    def test_malformed_component_names_ignored(self):
        mux = self.make()
        mux.on_message(1, Envelope("slotx", "garbage"))
        mux.on_message(1, Envelope("other", "garbage"))
        assert set(mux._children) == set()


class TestPipelinedReplica:
    def test_window_validation(self):
        config = SystemConfig(7, 1)
        with pytest.raises(ConfigurationError):
            PipelinedReplica(0, config, ["a"], dex_slot_factory(0, config), window=0)

    def test_requires_proposals(self):
        config = SystemConfig(7, 1)
        with pytest.raises(ConfigurationError):
            PipelinedReplica(0, config, [], dex_slot_factory(0, config))

    def test_start_opens_window(self):
        config = SystemConfig(7, 1)
        replica = PipelinedReplica(
            0, config, ["a", "b", "c", "d"], dex_slot_factory(0, config), window=2
        )
        replica.on_start()
        assert replica._next_slot == 2  # only the window is in flight


class TestRunPipelined:
    def test_unanimous_log_identical(self):
        result, logs = run_pipelined(unanimous_table(7, 5), window=3, seed=1)
        assert len(set(logs.values())) == 1
        assert logs[0] == ("c0", "c1", "c2", "c3", "c4")

    def test_contended_slot_resolved_by_fallback(self):
        table = unanimous_table(7, 6)
        for pid in range(3):
            table[pid][3] = "rival"
        result, logs = run_pipelined(table, window=3, seed=2)
        assert len(set(logs.values())) == 1
        log = logs[0]
        assert log[3] in ("c3", "rival")
        assert log[:3] == ("c0", "c1", "c2")

    def test_slot_decisions_reported_per_replica(self):
        result, logs = run_pipelined(unanimous_table(7, 4), window=2, seed=3)
        for pid in range(7):
            slots = sorted(
                d.value[0] for d in result.outputs[pid] if d.tag == SLOT_DECIDED_TAG
            )
            assert slots == [0, 1, 2, 3]

    def test_unanimous_slots_decide_one_step(self):
        result, logs = run_pipelined(unanimous_table(7, 4), window=4, seed=4)
        kinds = {
            d.value[2]
            for pid in range(7)
            for d in result.outputs[pid]
            if d.tag == SLOT_DECIDED_TAG
        }
        assert kinds == {DecisionKind.ONE_STEP}

    def test_window_one_is_sequential(self):
        result, logs = run_pipelined(unanimous_table(7, 3), window=1, seed=5)
        assert logs[0] == ("c0", "c1", "c2")

    def test_pipelining_reduces_makespan(self):
        table = unanimous_table(7, 8)
        sequential, _ = run_pipelined(dict(table), window=1, seed=6)
        pipelined, _ = run_pipelined(dict(table), window=8, seed=6)
        assert pipelined.end_time < sequential.end_time

    def test_mismatched_slot_counts_rejected(self):
        table = unanimous_table(7, 3)
        table[0] = table[0][:2]
        with pytest.raises(ConfigurationError):
            run_pipelined(table)

    def test_sequence_input_accepted(self):
        proposals = [[f"c{s}" for s in range(3)] for _ in range(7)]
        result, logs = run_pipelined(proposals, seed=7)
        assert logs[0] == ("c0", "c1", "c2")

    def test_determinism(self):
        table = unanimous_table(7, 4)
        for pid in range(2):
            table[pid][1] = "rival"
        a, logs_a = run_pipelined(dict(table), seed=8)
        b, logs_b = run_pipelined(dict(table), seed=8)
        assert logs_a == logs_b
        assert a.stats.messages_sent == b.stats.messages_sent


class TestReplyPathRegression:
    """Per-request reply paths: a slot's UC announcement must reach that
    slot's adapter even when the caller has since proposed other slots
    (the bug that motivated carrying reply_path on ServiceReply)."""

    def test_interleaved_slots_with_fallback(self):
        table = unanimous_table(7, 5)
        # several contended slots in flight simultaneously
        for pid in range(3):
            table[pid][1] = "r1"
            table[pid][3] = "r3"
        result, logs = run_pipelined(table, window=5, seed=9)
        assert len(set(logs.values())) == 1
        assert len(logs[0]) == 5


class TestPipelineOnAsyncio:
    """The multi-level reply-path routing must also work on the asyncio
    runtime (same protocols, real event loop)."""

    def test_pipelined_log_on_event_loop(self):
        from repro.apps.pipeline import PipelinedReplica, dex_slot_factory
        from repro.runtime.asyncio_runner import AsyncioRunner
        from repro.types import SystemConfig
        from repro.underlying.oracle import OracleService

        n, slots = 7, 4
        config = SystemConfig(n, 1)
        table = unanimous_table(n, slots)
        for pid in range(3):
            table[pid][2] = "rival"  # exercise the UC path mid-log
        protocols = {
            pid: PipelinedReplica(
                pid, config, table[pid], dex_slot_factory(pid, config), window=3
            )
            for pid in config.processes
        }
        runner = AsyncioRunner(
            config,
            protocols,
            services={"oracle-uc": OracleService(config)},
            seed=5,
        )
        result = runner.run_sync(timeout=30)
        assert not result.timed_out
        assert result.agreement_holds()
        logs = {p: d.value for p, d in result.correct_decisions.items()}
        assert len(set(logs.values())) == 1
        assert len(logs[0]) == slots
