"""Tests for the batch-run API (Scenario.run_many) and CI statistics,
plus the correlated workload generator."""

import pytest

from repro.harness import Scenario, Silent, dex_freq, twostep
from repro.metrics.collectors import RunAggregate
from repro.types import DecisionKind
from repro.workloads.inputs import CorrelatedWorkload
from repro.workloads import unanimous


class TestRunMany:
    def test_aggregates_across_seeds(self):
        aggregate = Scenario(dex_freq(), unanimous(1, 7)).run_many(range(5))
        assert aggregate.runs == 5
        assert aggregate.label == "dex-freq"
        assert aggregate.mean_max_step == 1.0
        assert aggregate.kind_fraction(DecisionKind.ONE_STEP) == 1.0

    def test_unanimity_tracking(self):
        aggregate = Scenario(dex_freq(), unanimous(1, 7)).run_many(
            range(3), expected_value=1
        )
        assert aggregate.unanimity_violations == 0
        wrong = Scenario(dex_freq(), unanimous(1, 7)).run_many(
            range(3), expected_value=2
        )
        assert wrong.unanimity_violations == 3

    def test_faults_carried_through(self):
        aggregate = Scenario(
            dex_freq(), unanimous(1, 7), faults={6: Silent()}
        ).run_many(range(4))
        assert aggregate.runs == 4
        assert aggregate.agreement_violations == 0

    def test_uc_step_cost_carried_through(self):
        from repro.sim.latency import ConstantLatency
        from repro.workloads.inputs import split

        aggregate = Scenario(
            twostep(), split(1, 2, 4, 2), uc_step_cost=7,
            latency=ConstantLatency(1.0),
        ).run_many(range(2))
        assert aggregate.max_steps == [7, 7]


class TestConfidenceInterval:
    def test_degenerate_cases(self):
        aggregate = RunAggregate()
        assert aggregate.confidence_interval() == (0.0, 0.0)
        aggregate.max_steps = [3]
        assert aggregate.confidence_interval() == (3.0, 3.0)

    def test_contains_mean(self):
        aggregate = RunAggregate()
        aggregate.max_steps = [1, 1, 2, 4, 4, 2, 1, 1]
        low, high = aggregate.confidence_interval()
        assert low <= aggregate.mean_max_step <= high
        assert low < high

    def test_narrows_with_z(self):
        aggregate = RunAggregate()
        aggregate.max_steps = [1, 2, 3, 4]
        low95, high95 = aggregate.confidence_interval(1.96)
        low68, high68 = aggregate.confidence_interval(1.0)
        assert (high68 - low68) < (high95 - low95)


class TestCorrelatedWorkload:
    def test_groups_share_opinions(self):
        workload = CorrelatedWorkload(9, groups=3, p=1.0, seed=1)
        vector = workload.vector()
        assert vector[0] == vector[1] == vector[2]
        assert vector[3] == vector[4] == vector[5]
        assert vector[6] == vector[7] == vector[8]

    def test_zero_contention_unanimous(self):
        workload = CorrelatedWorkload(8, groups=4, p=0.0, seed=2)
        assert workload.vector() == [1] * 8

    def test_group_of_contiguous(self):
        workload = CorrelatedWorkload(10, groups=2)
        assert [workload.group_of(p) for p in range(10)] == [0] * 5 + [1] * 5

    def test_deterministic(self):
        a = CorrelatedWorkload(9, groups=3, p=0.5, seed=7).vectors(4)
        b = CorrelatedWorkload(9, groups=3, p=0.5, seed=7).vectors(4)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelatedWorkload(5, groups=0)
        with pytest.raises(ValueError):
            CorrelatedWorkload(5, groups=6)
        with pytest.raises(ValueError):
            CorrelatedWorkload(5, p=2.0)
        with pytest.raises(ValueError):
            CorrelatedWorkload(5, contenders=[])
