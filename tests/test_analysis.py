"""Tests for coverage analysis and Table 1 regeneration."""

import pytest

from repro.analysis.coverage import (
    baseline_coverage,
    bosco_one_step_guaranteed,
    brasileiro_one_step_guaranteed,
    correct_count,
    dex_one_step_guaranteed,
    dex_two_step_guaranteed,
    exact_space_coverage,
    pair_coverage,
)
from repro.analysis.tables import (
    dex_condition_examples,
    paper_table1,
    validate_algorithm,
)
from repro.conditions.frequency import FrequencyPair
from repro.conditions.generators import VectorSampler
from repro.conditions.views import View
from repro.harness import bosco_weak, dex_freq
from repro.types import SystemConfig
from repro.workloads.inputs import split, unanimous, with_frequency_gap


class TestGuaranteeFormulas:
    def test_correct_count_excludes_faulty(self):
        vector = View.of(1, 1, 1, 2)
        assert correct_count(vector, 1, faulty=[0]) == 2
        assert correct_count(vector, 1, faulty=[3]) == 3

    def test_dex_one_step_levels(self):
        pair = FrequencyPair(13, 2)
        vector = View(with_frequency_gap(1, 2, 13, 11))  # level 1
        assert dex_one_step_guaranteed(pair, vector, 0)
        assert dex_one_step_guaranteed(pair, vector, 1)
        assert not dex_one_step_guaranteed(pair, vector, 2)

    def test_dex_two_step_wider_than_one_step(self):
        pair = FrequencyPair(13, 2)
        sampler = VectorSampler([1, 2], 13, seed=0)
        for _ in range(50):
            vector = sampler.uniform_vector()
            for f in range(3):
                if dex_one_step_guaranteed(pair, vector, f):
                    assert dex_two_step_guaranteed(pair, vector, f)

    def test_bosco_guarantee_unanimous_no_faults(self):
        config = SystemConfig(13, 2)
        assert bosco_one_step_guaranteed(View(unanimous(1, 13)), config, 0)

    def test_bosco_guarantee_fails_on_thin_majority(self):
        config = SystemConfig(13, 2)
        vector = View(with_frequency_gap(1, 2, 13, 5))
        assert not bosco_one_step_guaranteed(vector, config, 0)

    def test_brasileiro_guarantee(self):
        config = SystemConfig(4, 1)
        assert brasileiro_one_step_guaranteed(View(unanimous(1, 4)), config, 0)
        assert not brasileiro_one_step_guaranteed(View(split(1, 2, 4, 1)), config, 0)
        # the dissenter being the faulty process restores the guarantee
        assert brasileiro_one_step_guaranteed(
            View(split(1, 2, 4, 1)), config, 1, faulty=[3]
        )


class TestCoverageCurves:
    def test_coverage_decreases_with_f(self):
        pair = FrequencyPair(13, 2)
        sampler = VectorSampler([1, 2], 13, seed=1)
        vectors = [sampler.skewed_vector(1, 0.8) for _ in range(300)]
        points = pair_coverage(pair, vectors, range(3))
        assert points[0].one_step >= points[1].one_step >= points[2].one_step
        assert points[0].two_step >= points[1].two_step >= points[2].two_step

    def test_two_step_at_least_one_step(self):
        pair = FrequencyPair(13, 2)
        sampler = VectorSampler([1, 2, 3], 13, seed=2)
        vectors = [sampler.uniform_vector() for _ in range(200)]
        for point in pair_coverage(pair, vectors, range(3)):
            assert point.two_step >= point.one_step

    def test_dex_covers_at_least_bosco(self):
        """The paper's headline claim (§1.2): the frequency-pair algorithm
        has more chances to decide in one or two steps than BOSCO."""
        n, t = 13, 2
        config = SystemConfig(n, t)
        pair = FrequencyPair(n, t)
        sampler = VectorSampler([1, 2], n, seed=3)
        vectors = [sampler.skewed_vector(1, 0.85) for _ in range(400)]
        dex_points = pair_coverage(pair, vectors, range(t + 1))
        bosco_points = baseline_coverage("bosco", config, vectors, range(t + 1))
        for dex_point, bosco_point in zip(dex_points, bosco_points):
            assert dex_point.one_step >= bosco_point.one_step
            assert dex_point.two_step >= bosco_point.one_step

    def test_exact_space_coverage_small(self):
        pair = FrequencyPair(7, 1)
        points = exact_space_coverage(pair, [1, 2], [0, 1])
        assert 0.0 < points[0].two_step < 1.0
        assert points[0].one_step >= points[1].one_step

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError):
            baseline_coverage("pbft", SystemConfig(7, 1), [], [0])


class TestTable1:
    def test_paper_table_has_all_rows(self):
        rows = paper_table1()
        assert len(rows) == 7  # 6 async implemented (minus twostep) + sync row
        algorithms = [r["algorithm"] for r in rows]
        assert "dex-freq" in algorithms
        assert "izumi" in algorithms
        assert "mostefaoui (sync)" in algorithms

    def test_validate_dex_freq(self):
        outcome = validate_algorithm(dex_freq(), n=7, seeds=range(2))
        assert outcome.ok, outcome.detail

    def test_validate_bosco_weak(self):
        outcome = validate_algorithm(bosco_weak(), n=6, seeds=range(2))
        assert outcome.ok, outcome.detail

    def test_condition_examples_shape(self):
        rows = dex_condition_examples(13)
        assert len(rows) == 4
        assert rows[0]["input"] == "unanimous"
        assert rows[0]["freq 1-step level"] == "2"
