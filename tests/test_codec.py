"""The serialization layer: schema registry, binary codec, golden frames.

Four layers of pinning, from loosest to tightest:

* property tests — for *any* encodable value, ``decode(encode(v)) == v``
  (hypothesis over the full recursive value grammar), and the same for
  every registered record class;
* registry checks — every registered class is a frozen dataclass the
  decoder can rebuild positionally, and the canonical message list below
  covers every registered tag (adding a schema class without extending
  the golden fixture fails here, on purpose);
* golden frames — ``tests/data/codec_frames.bin`` holds the exact wire
  bytes of the canonical messages.  Byte-for-byte equality both ways
  (encode matches the file, the file decodes to the objects) pins the tag
  numbers, field order, varint layout and envelope grammar: any change to
  these is a wire break and must be made append-only;
* relay semantics — lazy decoding yields :class:`repro.codec.Opaque`
  spans whose re-encoding splices the original bytes, the hub's
  zero-decode fast path.

Regenerate the fixture (only after an intentional, append-only schema
change) with::

    PYTHONPATH=src:tests python -c "import test_codec; test_codec.write_golden()"
"""

import os
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bosco import BoscoVote
from repro.baselines.brasileiro import BrasileiroValue
from repro.baselines.crash_onestep import CrashValue
from repro.baselines.sync_onestep import SyncFlood, SyncRound1
from repro.broadcast.idb import IdbEcho, IdbInit
from repro.codec import (
    CODEC_BINARY,
    CODEC_JSON,
    CODEC_PICKLE,
    CodecError,
    Opaque,
    codec_for,
    codec_named,
)
from repro.codec.binary import decode, encode, wrap_opaque
from repro.codec.schema import (
    COMPONENT_TABLE,
    check_registry,
    ensure_registered,
    instance_name,
    parse_instance,
    registered_entries,
)
from repro.core.dex import DexProposal
from repro.durable.recovery import CatchUpReply, CatchUpRequest, SlotDecided
from repro.durable.snapshot import ShardSnapshot
from repro.durable.wal import ApplyRecord, DecideRecord, ProposeRecord
from repro.frontend.socket import ClientRejected, ClientReply, ClientSubmit
from repro.mesh.wire import HubHello, HubReady, HubSaturated, HubStats, MsgRelay
from repro.net.wire import (
    FrameDecoder,
    Hello,
    MsgDecide,
    MsgDeliver,
    MsgDeliverBatch,
    MsgLog,
    MsgOutput,
    MsgSend,
    MsgService,
    Start,
    Stop,
    encode_frame,
)
from repro.runtime.effects import Deliver, Envelope, ServiceCall
from repro.types import BOTTOM, DecisionKind
from repro.underlying.oracle import OracleDecision, OracleProposal

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "codec_frames.bin"


def _consensus_envelope():
    """A realistic data-plane payload: the nested envelope chain of one
    sharded DEX proposal (mux → instance → dex)."""
    return Envelope("mux", Envelope(instance_name(1, 2), Envelope("dex", DexProposal(7))))


def golden_messages():
    """The canonical message list: one instance per registered schema tag,
    in tag order, plus a plain-values frame exercising every value tag.

    APPEND ONLY in spirit: changing an existing entry changes pinned wire
    bytes and is a compatibility break.
    """
    return [
        Hello(3, CODEC_BINARY),                                       # tag 1
        Start(),                                                      # tag 2
        Stop(),                                                       # tag 3
        MsgSend(1, 2, _consensus_envelope(), 3),                      # tag 4
        MsgDeliver(1, _consensus_envelope(), 2),                      # tag 5
        MsgDeliverBatch(((1, "x", 0), (2, None, 1))),                 # tag 6
        MsgDecide(4, (1, 2), DecisionKind.ONE_STEP, 1),               # tag 7
        MsgOutput(2, "idb-deliver", 3, "v"),                          # tag 8
        MsgService(1, ServiceCall("oracle", ((0, 1), 5), ("mux", "uc")), 2),  # 9
        MsgLog(5, "shard.open", {"shard": 0, "slot": 1}),             # tag 10
        ServiceCall("oracle", ((0, 1), 5), ("mux", "uc")),            # tag 11
        Deliver("uc-decide", 2, 5),                                   # tag 12
        DexProposal(1),                                               # tag 16
        IdbInit(2),                                                   # tag 17
        IdbEcho(2, 3),                                                # tag 18
        OracleProposal((0, 1), 5),                                    # tag 19
        OracleDecision((0, 1), 5),                                    # tag 20
        BoscoVote(1),                                                 # tag 21
        BrasileiroValue(0),                                           # tag 22
        CrashValue(9),                                                # tag 23
        SyncRound1(1),                                                # tag 24
        SyncFlood(((0, 1), (2, 0)), (1,)),                            # tag 25
        ProposeRecord(0, 1, (("set", "k", 1),)),                      # tag 32
        DecideRecord(0, 1, "one-step"),                               # tag 33
        ApplyRecord(0, 1, (("set", "k", 1),)),                        # tag 34
        ShardSnapshot({0: 1}, {0: ((("set", "a", 1),),)}, {0: {"a": 1}}, 2),  # 35
        CatchUpRequest(1, ((0, 2),)),                                 # tag 36
        CatchUpReply(1, ((0, 0, (("set", "a", 1),)),), ((0, 1),)),    # tag 37
        SlotDecided(0, 2, (("set", "b", 2),)),                        # tag 38
        ClientSubmit(17, "k3", 42),                                   # tag 48
        ClientReply(17, 1, 5, 2),                                     # tag 49
        ClientRejected(18, "shed", 0),                                # tag 50
        HubHello(-1, CODEC_BINARY),                                   # tag 56
        MsgRelay(1, 2, _consensus_envelope(), 3),                     # tag 57
        HubStats(1, 64, 4096, 32, 30, 2, 0),                          # tag 58
        HubSaturated(1, 513, 512),                                    # tag 59
        HubReady(1, 7),                                               # tag 60
        # one frame of plain values covering the non-struct value tags:
        (None, True, False, 0, -1, 7, 2**40, -(2**40), 3.5, "", "héllo",
         b"\x00\xff", (), (1, (2, 3)), [1, [2]], {"a": 1, 2: None},
         frozenset({1, 2, 3}), BOTTOM, DecisionKind.FAST,
         Envelope("unregistered-component", 1)),
    ]


def golden_bytes():
    return b"".join(encode_frame(m, CODEC_BINARY) for m in golden_messages())


def write_golden():
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_bytes(golden_bytes())
    print(f"wrote {GOLDEN_PATH} ({GOLDEN_PATH.stat().st_size} bytes)")


# -- hypothesis: the round-trip property over the value grammar ------------------------

_scalars = (
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20)
    | st.sampled_from(list(DecisionKind))
    | st.just(BOTTOM)
)

_values = st.recursive(
    _scalars,
    lambda inner: (
        st.lists(inner, max_size=4).map(tuple)
        | st.lists(inner, max_size=4)
        | st.dictionaries(
            st.text(max_size=8) | st.integers(), inner, max_size=4
        )
        | st.frozensets(st.integers() | st.text(max_size=8), max_size=4)
    ),
    max_leaves=12,
)


class TestRoundTripProperty:
    @settings(max_examples=200, deadline=None)
    @given(value=_values)
    def test_any_value_round_trips(self, value):
        assert decode(encode(value)) == value

    @settings(max_examples=100, deadline=None)
    @given(value=_values, depth=st.integers(min_value=0, max_value=7))
    def test_wire_messages_round_trip(self, value, depth):
        msg = MsgDeliver(3, value, depth)
        assert decode(encode(msg)) == msg

    @settings(max_examples=50, deadline=None)
    @given(shard=st.integers(min_value=0, max_value=99),
           slot=st.integers(min_value=0, max_value=9_999),
           value=_values)
    def test_instance_envelopes_round_trip(self, shard, slot, value):
        env = Envelope("mux", Envelope(instance_name(shard, slot), value))
        assert decode(encode(env)) == env
        assert parse_instance(instance_name(shard, slot)) == (shard, slot)

    def test_every_registered_class_round_trips(self):
        """The registry-wide property, on the canonical instances."""
        for msg in golden_messages():
            assert decode(encode(msg)) == msg


# -- the registry ----------------------------------------------------------------------


class TestSchemaRegistry:
    def test_registry_is_sound(self):
        assert check_registry() == []

    def test_canonical_list_covers_every_tag(self):
        """Golden coverage: registering a new schema class without adding
        it to ``golden_messages()`` (and regenerating the fixture) fails
        here — the golden file must always pin the whole registry."""
        ensure_registered()
        registered = {entry.tag for entry in registered_entries()}
        covered = set()
        for msg in golden_messages():
            for entry in registered_entries():
                if type(msg) is entry.cls:
                    covered.add(entry.tag)
        assert covered == registered

    def test_component_table_is_append_only_prefix(self):
        """The first seven entries are pinned by existing golden frames."""
        assert COMPONENT_TABLE[:7] == (
            "mux", "idb", "uc", "dex", "bosco", "brasileiro", "crash"
        )

    def test_instance_grammar(self):
        assert instance_name(0, 0) == "s0.0"
        assert parse_instance("s3.17") == (3, 17)
        assert parse_instance("dex") is None
        assert parse_instance("s3") is None
        assert parse_instance("s-1.2") is None


# -- golden frames ---------------------------------------------------------------------


class TestGoldenFrames:
    def test_fixture_exists(self):
        assert GOLDEN_PATH.exists(), (
            f"golden fixture missing; generate with "
            f"PYTHONPATH=src:tests python -c "
            f"'import test_codec; test_codec.write_golden()'"
        )

    def test_encoding_matches_fixture_byte_for_byte(self):
        assert golden_bytes() == GOLDEN_PATH.read_bytes(), (
            "wire bytes changed for an existing message — this is a wire "
            "format break; schema changes must be append-only"
        )

    def test_fixture_decodes_to_the_canonical_messages(self):
        decoder = FrameDecoder()
        decoded = list(decoder.feed(GOLDEN_PATH.read_bytes()))
        decoder.eof()
        assert decoded == golden_messages()

    def test_fixture_decodes_lazily_too(self):
        """Relay mode: the same bytes parse with blob fields left opaque
        and still splice back to identical wire bytes."""
        decoder = FrameDecoder(lazy=True)
        decoded = list(decoder.feed(GOLDEN_PATH.read_bytes()))
        relayed = b"".join(encode_frame(m, CODEC_BINARY) for m in decoded)
        assert relayed == GOLDEN_PATH.read_bytes()


# -- opaque relay semantics ------------------------------------------------------------


class TestOpaque:
    def test_lazy_decode_yields_opaque_blob(self):
        msg = MsgDeliver(1, _consensus_envelope(), 2)
        lazy = codec_for(CODEC_BINARY, lazy=True).decode(encode(msg))
        assert type(lazy.payload) is Opaque
        assert lazy.payload.decode() == _consensus_envelope()

    def test_opaque_reencodes_by_splicing(self):
        msg = MsgDeliver(1, _consensus_envelope(), 2)
        wire = encode(msg)
        lazy = codec_for(CODEC_BINARY, lazy=True).decode(wire)
        assert encode(lazy) == wire

    def test_wrap_opaque_equals_decoded_value(self):
        payload = _consensus_envelope()
        wrapped = wrap_opaque(payload)
        assert type(wrapped) is Opaque
        assert wrapped.decode() == payload
        assert decode(encode(MsgSend(0, 1, wrapped, 0))) == MsgSend(0, 1, payload, 0)

    def test_opaque_in_batch_entries(self):
        entry_payload = wrap_opaque(DexProposal(4))
        batch = MsgDeliverBatch(((2, entry_payload, 1),))
        materialized = decode(encode(batch))
        assert materialized.entries == ((2, DexProposal(4), 1),)


# -- the escape hatches ----------------------------------------------------------------


class TestFallbackCodecs:
    @pytest.mark.parametrize("codec_id", [CODEC_PICKLE, CODEC_JSON])
    def test_same_interface(self, codec_id):
        codec = codec_for(codec_id)
        value = {"a": [1, 2], "b": None}
        buf = bytearray()
        codec.encode_into(value, buf)
        assert codec.decode(bytes(buf)) == value
        assert codec.decode(codec.encode(value)) == value

    def test_pickle_handles_arbitrary_objects(self):
        codec = codec_for(CODEC_PICKLE)
        assert codec.decode(codec.encode(golden_messages())) == golden_messages()

    def test_unknown_codec_id_rejected(self):
        with pytest.raises(CodecError):
            codec_for(77)

    def test_codec_named(self):
        assert codec_named("binary") == CODEC_BINARY
        assert codec_named("pickle") == CODEC_PICKLE
        assert codec_named("json") == CODEC_JSON
        with pytest.raises(CodecError):
            codec_named("msgpack")


# -- decode robustness -----------------------------------------------------------------


class TestDecodeErrors:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError):
            decode(encode(1) + b"\x00")

    def test_truncated_payload_rejected(self):
        wire = encode(golden_messages()[3])
        with pytest.raises(Exception):
            decode(wire[:-3])

    def test_unknown_value_tag_rejected(self):
        with pytest.raises(Exception):
            decode(b"\x7f\x00")
