"""Tests for Identical Broadcast (paper appendix, Theorem 4 + Figure 2)."""

import pytest

from repro.broadcast.idb import DELIVER_TAG, IdbEcho, IdbInit, IdenticalBroadcast
from repro.errors import ResilienceError
from repro.runtime.effects import Send
from repro.runtime.protocol import Protocol
from repro.sim.latency import ConstantLatency, UniformLatency
from repro.sim.runner import Simulation
from repro.types import SystemConfig


class EquivocatingInitSender(Protocol):
    """Byzantine sender: different ``init`` values to different processes —
    exactly the Figure 2 scenario."""

    def __init__(self, process_id, config, value_for):
        super().__init__(process_id, config)
        self.value_for = value_for

    def on_start(self):
        return [
            Send(dst, IdbInit(self.value_for(dst)))
            for dst in self.config.processes
        ]

    def on_message(self, sender, payload):
        return []


def idb_system(config, byzantine=None, seed=0, latency=None):
    """All-correct IDB nodes broadcasting their pid as value, except
    overridden byzantine behaviors."""
    byzantine = byzantine or {}
    protocols = {}
    for pid in config.processes:
        if pid in byzantine:
            protocols[pid] = byzantine[pid]
        else:
            protocols[pid] = IdenticalBroadcast(pid, config, initial_value=("v", pid))
    return Simulation(
        config,
        protocols,
        faulty=frozenset(byzantine),
        seed=seed,
        latency=latency or UniformLatency(),
    )


def deliveries(result, pid):
    """{origin: value} Id-Received by ``pid``."""
    return {
        d.sender: d.value
        for d in result.outputs[pid]
        if d.tag == DELIVER_TAG
    }


class TestResilience:
    def test_requires_n_gt_4t(self):
        with pytest.raises(ResilienceError):
            IdenticalBroadcast(0, SystemConfig(4, 1))
        IdenticalBroadcast(0, SystemConfig(5, 1))


class TestTermination:
    @pytest.mark.parametrize("n,t", [(5, 1), (9, 2), (7, 1)])
    def test_all_correct_deliver_all_correct_senders(self, n, t):
        config = SystemConfig(n, t)
        result = idb_system(config, seed=n).run_to_quiescence()
        for pid in config.processes:
            got = deliveries(result, pid)
            assert set(got) == set(config.processes)
            assert all(got[j] == ("v", j) for j in config.processes)

    def test_termination_with_silent_faults(self):
        config = SystemConfig(9, 2)

        class Quiet(Protocol):
            def on_message(self, sender, payload):
                return []

        byz = {7: Quiet(7, config), 8: Quiet(8, config)}
        result = idb_system(config, byzantine=byz, seed=3).run_to_quiescence()
        for pid in range(7):
            got = deliveries(result, pid)
            assert set(range(7)) <= set(got)


class TestAgreementFigure2:
    @pytest.mark.parametrize("seed", range(6))
    def test_equivocating_sender_delivers_identically(self, seed):
        """Figure 2: P3 faulty sends different messages to different
        processes, yet all correct processes Id-Receive the same one."""
        config = SystemConfig(5, 1)
        byz_pid = 3
        byz = EquivocatingInitSender(
            byz_pid, config, value_for=lambda dst: "A" if dst % 2 == 0 else "B"
        )
        result = idb_system(config, byzantine={byz_pid: byz}, seed=seed).run_to_quiescence()
        values = set()
        for pid in config.processes:
            if pid == byz_pid:
                continue
            got = deliveries(result, pid)
            if byz_pid in got:
                values.add(got[byz_pid])
        assert len(values) <= 1, f"correct processes accepted {values}"

    @pytest.mark.parametrize("seed", range(4))
    def test_equivocation_larger_system(self, seed):
        config = SystemConfig(9, 2)
        byz = {
            7: EquivocatingInitSender(7, config, lambda d: ("x", d % 2)),
            8: EquivocatingInitSender(8, config, lambda d: ("y", d % 3)),
        }
        result = idb_system(config, byzantine=byz, seed=seed).run_to_quiescence()
        for origin in (7, 8):
            values = {
                deliveries(result, pid)[origin]
                for pid in range(7)
                if origin in deliveries(result, pid)
            }
            assert len(values) <= 1


class TestValidity:
    def test_deliver_at_most_once_per_origin(self):
        config = SystemConfig(5, 1)
        result = idb_system(config, seed=1).run_to_quiescence()
        for pid in config.processes:
            origins = [d.sender for d in result.outputs[pid] if d.tag == DELIVER_TAG]
            assert len(origins) == len(set(origins))

    def test_only_sent_messages_delivered(self):
        config = SystemConfig(5, 1)
        result = idb_system(config, seed=2).run_to_quiescence()
        for pid in config.processes:
            for origin, value in deliveries(result, pid).items():
                assert value == ("v", origin)

    def test_forged_echo_storm_cannot_forge_delivery(self):
        """t Byzantine echoes for a phantom message never reach n - t."""
        config = SystemConfig(5, 1)

        class EchoForger(Protocol):
            def on_start(self):
                # claim that p0 sent "FAKE" — only 1 < n - t witnesses
                return [
                    Send(dst, IdbEcho("FAKE", 0)) for dst in self.config.processes
                ]

            def on_message(self, sender, payload):
                return []

        byz = {4: EchoForger(4, config)}
        result = idb_system(config, byzantine=byz, seed=5).run_to_quiescence()
        for pid in range(4):
            assert deliveries(result, pid).get(0) == ("v", 0)


class TestStepCost:
    def test_id_receive_costs_two_plain_steps(self):
        """The appendix claim: one IDB step = two standard steps."""
        config = SystemConfig(5, 1)
        depths = {}

        class Probe(IdenticalBroadcast):
            def on_message(self, sender, payload):
                return super().on_message(sender, payload)

        protocols = {
            pid: IdenticalBroadcast(pid, config, initial_value=pid)
            for pid in config.processes
        }
        sim = Simulation(config, protocols, latency=ConstantLatency(1.0), trace=True)
        result = sim.run_to_quiescence()
        for pid in config.processes:
            records = [
                e
                for e in result.tracer.by_pid(pid)
                if e.event == f"output:{DELIVER_TAG}"
            ]
            assert records, "no deliveries traced"
        # With constant latency nothing needs echo amplification: every
        # delivery is triggered by a depth-2 echo.
        deliver_events = [
            e for e in result.tracer.events if e.event == "deliver"
        ]
        echo_depths = {
            e.data["depth"]
            for e in deliver_events
            if isinstance(e.data.get("payload"), IdbEcho)
        }
        assert echo_depths == {2}

    def test_message_complexity_quadratic(self):
        """Each broadcast costs one init broadcast + n echo broadcasts."""
        config = SystemConfig(5, 1)
        result = idb_system(config, latency=ConstantLatency(1.0)).run_to_quiescence()
        n = config.n
        # n init broadcasts (n msgs each) + n*n echo broadcasts (n msgs each)
        assert result.stats.messages_sent == n * n + n * n * n


class TestStateAccessors:
    def test_accepted_origins_tracking(self):
        config = SystemConfig(5, 1)
        sim = idb_system(config, seed=9)
        result = sim.run_to_quiescence()
        assert result is not None
        node = sim._states[0].protocol
        assert node.accepted_origins == frozenset(config.processes)
