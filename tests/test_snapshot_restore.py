"""Conformance tests for the ``Protocol.snapshot()/restore()`` contract.

Every shipped protocol — each registry algorithm's full composition
(including byzantine behavior wrappers and trusted services) plus the
standalone broadcast layers — must satisfy: ``restore(snapshot())`` is a
behavioral no-op, one token supports any number of restores, and replaying
the same deliveries from a restored state reproduces the exact same global
state (verified by canonical fingerprint, which walks the full object
graph)."""

import pytest

from repro.broadcast.bracha import BrachaBroadcast
from repro.broadcast.idb import IdenticalBroadcast
from repro.harness import (
    Crash,
    Equivocate,
    Scenario,
    all_algorithms,
)
from repro.mc.fingerprint import fingerprint
from repro.mc.state import McSystem
from repro.runtime.protocol import Protocol
from repro.types import SystemConfig


def mc_system(scenario: Scenario) -> McSystem:
    protocols, services = scenario.components()
    return McSystem(
        scenario.config,
        protocols,
        services=services,
        faulty=frozenset(scenario.faults),
    )


def drive(system: McSystem, steps: int) -> None:
    """Deliver FIFO (lowest pending uid) for up to ``steps`` deliveries."""
    for _ in range(steps):
        if not system.pending:
            return
        system.deliver(min(system.pending))


def scenarios():
    """One mid-sized scenario per registry algorithm, with a fault of the
    strongest class its model covers, so the byzantine wrapper protocols
    are snapshotted too."""
    out = []
    for algorithm in all_algorithms():
        n = algorithm.required_ratio + 1
        inputs = [1 if pid % 2 else 2 for pid in range(n)]
        if algorithm.failure_model == "byzantine":
            faults = {n - 1: Equivocate(1, 2)}
        else:
            faults = {n - 1: Crash(2)}
        out.append(
            pytest.param(
                Scenario(algorithm, inputs, faults=faults),
                id=algorithm.name,
            )
        )
    return out


@pytest.mark.parametrize("scenario", scenarios())
def test_registry_algorithm_conformance(scenario):
    system = mc_system(scenario)
    system.start()
    drive(system, 10)

    token = system.snapshot()
    at_snapshot = system.fingerprint()
    moved = bool(system.pending)
    drive(system, 8)
    after_continue = system.fingerprint()
    if moved:
        assert after_continue != at_snapshot  # the drive actually moved

    system.restore(token)
    assert system.fingerprint() == at_snapshot
    drive(system, 8)
    assert system.fingerprint() == after_continue

    # One token survives any number of restores.
    system.restore(token)
    assert system.fingerprint() == at_snapshot


@pytest.mark.parametrize(
    "make",
    [
        pytest.param(
            lambda pid, config: IdenticalBroadcast(pid, config, initial_value=pid),
            id="idb",
        ),
        pytest.param(
            lambda pid, config: BrachaBroadcast(
                pid, config, initial_value=(pid if pid == 0 else None)
            ),
            id="bracha",
        ),
    ],
)
def test_broadcast_layer_conformance(make):
    config = SystemConfig(5, 1)
    system = McSystem(
        config, {pid: make(pid, config) for pid in config.processes}
    )
    system.start()
    drive(system, 12)
    token = system.snapshot()
    at_snapshot = system.fingerprint()
    drive(system, 12)
    end = system.fingerprint()
    system.restore(token)
    assert system.fingerprint() == at_snapshot
    drive(system, 12)
    assert system.fingerprint() == end


class PlainState(Protocol):
    """Picklable state: the snapshot fast path must return a pickle blob."""

    def __init__(self, process_id, config):
        super().__init__(process_id, config)
        self.values = {1: [2, 3]}
        self.round = 0

    def on_message(self, sender, payload):
        self.round += 1
        self.values.setdefault(sender, []).append(payload)
        return []


class ClosureState(Protocol):
    """Unpicklable state (a lambda): must fall back to deep copies, and the
    per-class memo must remember the choice."""

    def __init__(self, process_id, config):
        super().__init__(process_id, config)
        self.fn = lambda x: x + 1
        self.seen = []

    def on_message(self, sender, payload):
        self.seen.append(self.fn(payload))
        return []


class TestSnapshotEncoding:
    def test_picklable_state_uses_pickle(self):
        proto = PlainState(0, SystemConfig(4, 1))
        token = proto.snapshot()
        assert isinstance(token, bytes)
        assert type(proto)._snapshot_picklable is True

    def test_unpicklable_state_falls_back_to_deepcopy(self):
        proto = ClosureState(0, SystemConfig(4, 1))
        proto.on_message(1, 41)
        token = proto.snapshot()
        assert not isinstance(token, bytes)
        assert type(proto)._snapshot_picklable is False
        # The memo short-circuits the pickle attempt on later snapshots.
        assert not isinstance(proto.snapshot(), bytes)

        proto.on_message(1, 1)
        assert proto.seen == [42, 2]
        proto.restore(token)
        assert proto.seen == [42]
        assert proto.fn(1) == 2

    def test_restore_is_behavioral_noop(self):
        proto = PlainState(3, SystemConfig(4, 1))
        proto.on_message(1, "x")
        token = proto.snapshot()
        fp = fingerprint(proto)
        proto.on_message(2, "y")
        assert fingerprint(proto) != fp
        proto.restore(token)
        assert fingerprint(proto) == fp
        assert proto.process_id == 3  # identity fields never clobbered
        assert proto.config.n == 4

    def test_token_is_reusable_and_isolated(self):
        proto = PlainState(0, SystemConfig(4, 1))
        token = proto.snapshot()
        proto.on_message(1, "x")
        proto.restore(token)
        # Mutating the restored state must not corrupt the token.
        proto.values[1].append(99)
        proto.restore(token)
        assert proto.values == {1: [2, 3]}
