"""Property-based tests (hypothesis) for the broadcast and agreement
substrates: IDB, Bracha RBC and binary agreement under randomised
equivocation patterns, schedules and seeds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.bracha import BrachaBroadcast
from repro.broadcast.bracha import DELIVER_TAG as RBC_TAG
from repro.broadcast.idb import DELIVER_TAG as IDB_TAG
from repro.broadcast.idb import IdbInit, IdenticalBroadcast
from repro.runtime.effects import Send
from repro.runtime.protocol import Protocol
from repro.sim.runner import Simulation
from repro.types import SystemConfig
from repro.underlying.aba import BinaryAgreement
from repro.underlying.coin import CommonCoin

seeds = st.integers(min_value=0, max_value=100_000)


class _ArbitraryInitSender(Protocol):
    """Byzantine broadcaster: an arbitrary per-destination value map."""

    def __init__(self, pid, config, value_map):
        super().__init__(pid, config)
        self.value_map = value_map

    def on_start(self):
        return [
            Send(dst, IdbInit(self.value_map[dst]))
            for dst in self.config.processes
        ]

    def on_message(self, sender, payload):
        return []


@settings(max_examples=30, deadline=None)
@given(
    value_map=st.lists(st.sampled_from(["A", "B", "C"]), min_size=9, max_size=9),
    seed=seeds,
)
def test_idb_agreement_under_arbitrary_equivocation(value_map, seed):
    """IDB agreement: whatever per-destination value pattern the Byzantine
    sender uses, no two correct processes Id-Receive different messages
    from it (n=9, t=2)."""
    config = SystemConfig(9, 2)
    byz = 8
    protocols = {}
    for pid in config.processes:
        if pid == byz:
            protocols[pid] = _ArbitraryInitSender(pid, config, value_map)
        else:
            protocols[pid] = IdenticalBroadcast(pid, config, initial_value=pid)
    result = Simulation(config, protocols, faulty={byz}, seed=seed).run_to_quiescence()
    accepted = set()
    for pid in range(8):
        for deliver in result.outputs[pid]:
            if deliver.tag == IDB_TAG and deliver.sender == byz:
                accepted.add(deliver.value)
    assert len(accepted) <= 1
    # correct senders are always delivered exactly, at every process
    for pid in range(8):
        got = {d.sender: d.value for d in result.outputs[pid] if d.tag == IDB_TAG}
        for origin in range(8):
            assert got.get(origin) == origin


class _RbcArbitraryInit(Protocol):
    def __init__(self, pid, config, value_map):
        super().__init__(pid, config)
        self.value_map = value_map

    def on_start(self):
        from repro.broadcast.bracha import RbcInit

        return [
            Send(dst, RbcInit(self.value_map[dst]))
            for dst in self.config.processes
        ]

    def on_message(self, sender, payload):
        return []


@settings(max_examples=25, deadline=None)
@given(
    value_map=st.lists(st.sampled_from(["A", "B"]), min_size=7, max_size=7),
    seed=seeds,
)
def test_rbc_agreement_and_totality(value_map, seed):
    """Bracha RBC: per-origin agreement under arbitrary equivocation, and
    totality — if any correct process delivered the Byzantine origin, all
    eventually do (n=7, t=2)."""
    config = SystemConfig(7, 2)
    byz = 6
    protocols = {}
    for pid in config.processes:
        if pid == byz:
            protocols[pid] = _RbcArbitraryInit(pid, config, value_map)
        else:
            protocols[pid] = BrachaBroadcast(pid, config, initial_value=pid)
    result = Simulation(config, protocols, faulty={byz}, seed=seed).run_to_quiescence()
    per_process = {
        pid: {d.sender: d.value for d in result.outputs[pid] if d.tag == RBC_TAG}
        for pid in range(6)
    }
    byz_values = {view[byz] for view in per_process.values() if byz in view}
    assert len(byz_values) <= 1
    # totality: delivery of the Byzantine origin is all-or-nothing
    delivered_count = sum(1 for view in per_process.values() if byz in view)
    assert delivered_count in (0, 6)
    # correct origins always delivered everywhere
    for view in per_process.values():
        for origin in range(6):
            assert view.get(origin) == origin


@settings(max_examples=25, deadline=None)
@given(
    inputs=st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4),
    seed=seeds,
    coin_seed=seeds,
)
def test_aba_agreement_and_validity(inputs, seed, coin_seed):
    """Binary agreement: decided value is some correct process's input and
    all correct processes agree (n=4, t=1, fault-free grid — faults are
    covered by the deterministic tests)."""
    from repro.runtime.effects import Decide, Deliver
    from repro.types import DecisionKind
    from repro.underlying.aba import DELIVER_TAG

    config = SystemConfig(4, 1)
    coin = CommonCoin(coin_seed)

    class Node(Protocol):
        def __init__(self, pid, config, value):
            super().__init__(pid, config)
            self.aba = BinaryAgreement(pid, config, coin)
            self.value = value

        def _forward(self, effects):
            out = []
            for e in effects:
                if isinstance(e, Deliver) and e.tag == DELIVER_TAG:
                    out.append(Decide(e.value, DecisionKind.UNDERLYING))
                else:
                    out.append(e)
            return out

        def on_start(self):
            return self._forward(self.aba.propose(self.value))

        def on_message(self, sender, payload):
            return self._forward(self.aba.on_message(sender, payload))

    protocols = {pid: Node(pid, config, inputs[pid]) for pid in config.processes}
    result = Simulation(config, protocols, seed=seed).run_until_decided()
    assert result.agreement_holds()
    assert result.decided_value in set(inputs)
