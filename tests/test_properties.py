"""Property-based tests (hypothesis): the paper's theorems as executable
properties over random inputs, faults, schedules and seeds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.coverage import dex_one_step_guaranteed, dex_two_step_guaranteed
from repro.conditions.frequency import FrequencyPair
from repro.conditions.privileged import PrivilegedPair
from repro.conditions.views import View
from repro.harness import Crash, Equivocate, Scenario, Silent, dex_freq, dex_prv
from repro.types import DecisionKind

N, T = 7, 1
VALUES = [1, 2, 3]

inputs7 = st.lists(
    st.sampled_from(VALUES), min_size=N, max_size=N
)
fault_strategy = st.sampled_from(
    [None, Silent(), Crash(budget=3), Equivocate(1, 2), Equivocate(2, 3)]
)
seeds = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=40, deadline=None)
@given(inputs=inputs7, fault=fault_strategy, seed=seeds)
def test_dex_freq_agreement_and_termination(inputs, fault, seed):
    """Lemmas 1-2: every correct process decides; no two decide differently —
    for arbitrary inputs, faults and schedules."""
    faults = {N - 1: fault} if fault is not None else {}
    result = Scenario(dex_freq(), inputs, faults=faults, seed=seed).run()
    assert result.all_correct_decided()
    assert result.agreement_holds()


@settings(max_examples=40, deadline=None)
@given(inputs=inputs7, fault=fault_strategy, seed=seeds)
def test_dex_freq_validity(inputs, fault, seed):
    """The decision is a proposed value (correct-process proposal or the
    Byzantine face value — never something invented by the protocol)."""
    faults = {N - 1: fault} if fault is not None else {}
    result = Scenario(dex_freq(), inputs, faults=faults, seed=seed).run()
    allowed = set(inputs) | {1, 2, 3}
    assert result.decided_value in allowed


@settings(max_examples=30, deadline=None)
@given(value=st.sampled_from(VALUES), fault=fault_strategy, seed=seeds)
def test_dex_freq_unanimity(value, fault, seed):
    """Lemma 3: all correct processes propose v ⇒ decision is v."""
    inputs = [value] * N
    faults = {N - 1: fault} if fault is not None else {}
    result = Scenario(dex_freq(), inputs, faults=faults, seed=seed).run()
    assert result.decided_value == value


@settings(max_examples=30, deadline=None)
@given(inputs=inputs7, seed=seeds, f=st.integers(min_value=0, max_value=T))
def test_lemma4_one_step_when_input_in_condition(inputs, seed, f):
    """Lemma 4: I ∈ C¹_f and f faults ⇒ every correct process decides in
    one step (silent faults exercise the 'fewest messages' worst case)."""
    pair = FrequencyPair(N, T)
    vector = View(inputs)
    faults = {pid: Silent() for pid in range(N - f, N)}
    result = Scenario(dex_freq(), inputs, faults=faults, seed=seed).run()
    if dex_one_step_guaranteed(pair, vector, f):
        kinds = {d.kind for d in result.correct_decisions.values()}
        assert kinds == {DecisionKind.ONE_STEP}
        assert all(d.step == 1 for d in result.correct_decisions.values())
    assert result.agreement_holds()


@settings(max_examples=30, deadline=None)
@given(inputs=inputs7, seed=seeds, f=st.integers(min_value=0, max_value=T))
def test_lemma5_two_step_when_input_in_condition(inputs, seed, f):
    """Lemma 5: I ∈ C²_f and f faults ⇒ decision within two steps."""
    pair = FrequencyPair(N, T)
    vector = View(inputs)
    faults = {pid: Silent() for pid in range(N - f, N)}
    result = Scenario(dex_freq(), inputs, faults=faults, seed=seed).run()
    if dex_two_step_guaranteed(pair, vector, f):
        assert all(d.step <= 2 for d in result.correct_decisions.values())


@settings(max_examples=30, deadline=None)
@given(
    inputs=st.lists(st.sampled_from(["C", "A", "B"]), min_size=6, max_size=6),
    fault=st.sampled_from([None, Silent(), Equivocate("C", "A")]),
    seed=seeds,
)
def test_dex_prv_agreement(inputs, fault, seed):
    """The privileged-value instantiation upholds the same consensus
    properties (n=6, t=1, m='C')."""
    faults = {5: fault} if fault is not None else {}
    result = Scenario(dex_prv("C"), inputs, faults=faults, seed=seed).run()
    assert result.all_correct_decided()
    assert result.agreement_holds()


@settings(max_examples=25, deadline=None)
@given(
    count_c=st.integers(min_value=0, max_value=6),
    seed=seeds,
)
def test_dex_prv_privileged_guarantee(count_c, seed):
    """#_C(I) > 3t ⇒ one-step decision of C with f = 0 (Lemma 4 for P_prv)."""
    inputs = ["C"] * count_c + ["A"] * (6 - count_c)
    result = Scenario(dex_prv("C"), inputs, seed=seed).run()
    pair = PrivilegedPair(6, 1, "C")
    if pair.one_step_level(View(inputs)) is not None:
        assert result.decided_value == "C"
        assert all(
            d.kind is DecisionKind.ONE_STEP
            for d in result.correct_decisions.values()
        )
    assert result.agreement_holds()


@settings(max_examples=20, deadline=None)
@given(inputs=inputs7, seed=seeds)
def test_simulation_determinism(inputs, seed):
    """Identical (inputs, seed) produce identical decisions and traffic."""
    a = Scenario(dex_freq(), inputs, seed=seed).run()
    b = Scenario(dex_freq(), inputs, seed=seed).run()
    assert a.decisions == b.decisions
    assert a.stats.messages_sent == b.stats.messages_sent
