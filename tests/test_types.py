"""Unit tests for repro.types."""

import pickle

import pytest

from repro.types import (
    BOTTOM,
    Decision,
    DecisionKind,
    RunStats,
    SystemConfig,
    largest,
    order_key,
)


class TestSystemConfig:
    def test_basic_properties(self):
        config = SystemConfig(7, 1)
        assert config.n == 7
        assert config.t == 1
        assert config.quorum == 6
        assert list(config.processes) == list(range(7))

    def test_satisfies_resilience_bounds(self):
        config = SystemConfig(7, 1)
        assert config.satisfies(5)
        assert config.satisfies(6)
        assert not config.satisfies(7)

    def test_zero_faults_allowed(self):
        config = SystemConfig(3, 0)
        assert config.quorum == 3
        assert config.satisfies(100)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            SystemConfig(0, 0)

    def test_rejects_negative_t(self):
        with pytest.raises(ValueError):
            SystemConfig(5, -1)

    def test_rejects_t_at_least_n(self):
        with pytest.raises(ValueError):
            SystemConfig(3, 3)


class TestBottom:
    def test_repr(self):
        assert repr(BOTTOM) == "⊥"

    def test_is_singleton_after_pickle(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM

    def test_distinct_from_none(self):
        assert BOTTOM is not None


class TestDecisionKind:
    def test_expedited_flags(self):
        assert DecisionKind.ONE_STEP.is_expedited
        assert DecisionKind.TWO_STEP.is_expedited
        assert DecisionKind.FAST.is_expedited
        assert not DecisionKind.UNDERLYING.is_expedited


class TestRunStats:
    def test_record_decision_keeps_first(self):
        stats = RunStats()
        first = Decision(1, DecisionKind.ONE_STEP, 1)
        second = Decision(2, DecisionKind.UNDERLYING, 4)
        stats.record_decision(0, first)
        stats.record_decision(0, second)
        assert stats.decisions[0] is first

    def test_max_decision_step(self):
        stats = RunStats()
        stats.record_decision(0, Decision(1, DecisionKind.ONE_STEP, 1))
        stats.record_decision(1, Decision(1, DecisionKind.UNDERLYING, 4))
        assert stats.max_decision_step == 4

    def test_max_decision_step_empty(self):
        assert RunStats().max_decision_step == 0

    def test_decided_values(self):
        stats = RunStats()
        stats.record_decision(0, Decision(1, DecisionKind.ONE_STEP, 1))
        stats.record_decision(1, Decision(1, DecisionKind.TWO_STEP, 2))
        assert stats.decided_values == {1}


class TestOrdering:
    def test_largest_homogeneous_uses_native_order(self):
        assert largest([3, 10, 9]) == 10
        assert largest(["a", "c", "b"]) == "c"

    def test_largest_heterogeneous_is_total(self):
        # Byzantine-injected mixed types must not raise.
        result = largest([1, "x", (2, 3)])
        assert result in {1, "x", (2, 3)}

    def test_largest_heterogeneous_is_deterministic(self):
        values = [1, "x", (2, 3)]
        assert largest(values) == largest(list(reversed(values)))

    def test_largest_empty_raises(self):
        with pytest.raises(ValueError):
            largest([])

    def test_order_key_is_total_over_mixed_types(self):
        keys = sorted([order_key(1), order_key("1"), order_key(None)])
        assert len(keys) == 3
