"""The durability subsystem: WAL, snapshots, crash recovery, rejoin.

Five layers, mirroring :mod:`repro.durable`'s structure plus the fault
plumbing that carries it through the engines:

* WAL unit tests — framing round-trips and the corruption trio a crash
  can leave behind (torn final record, flipped CRC byte, empty file),
  each of which must *self-heal on open*, never raise;
* snapshot tests — atomic-rename save/load and corrupt-snapshot fallback;
* :class:`~repro.durable.recovery.NodeDurability` recovery folding —
  snapshot seeds the frontier, apply records replay idempotently — plus a
  hypothesis property: for any command stream and snapshot cadence, a
  crashed-and-recovered replica reconstructs the byte-identical per-shard
  KV state of a never-crashed one;
* :class:`~repro.durable.recovery.CatchUpTracker` vote counting — the
  ``t + 1`` adoption rule that keeps Byzantine peers out of adopted state;
* engine integration — the :class:`~repro.engine.faults.CrashRecover`
  fault on the simulator (kill mid-run, restart, replay, catch up from
  peers, agree) and over real sockets (SIGKILL a forked worker, re-fork
  it, re-authenticate to the hub), with crash-*stop* regressions pinning
  that ``restart_after=None`` and the legacy faults behave exactly as
  before.
"""

import os
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.rsm import KeyValueStore
from repro.codec import CODEC_BINARY, CODEC_PICKLE
from repro.durable import (
    LEGACY_PICKLE,
    ApplyRecord,
    CatchUpReply,
    CatchUpRequest,
    CatchUpTracker,
    DecideRecord,
    DurabilityConfig,
    ProposeRecord,
    ShardSnapshot,
    SnapshotStore,
    WriteAheadLog,
    codec_label,
    encode_record,
    scan_records,
)
from repro.engine.events import EventLog, RestartEvent
from repro.engine.faults import Crash, CrashRecover, FaultPlane, Silent, restart_plans
from repro.errors import ConfigurationError
from repro.harness import Scenario, dex_freq
from repro.shard.router import shard_of
from repro.shard.service import ShardNode, ShardedService, dex_shard_factory
from repro.types import SystemConfig

from .test_net_engine import assert_no_leaks


# -- WAL framing and corruption --------------------------------------------------------


class TestWalRoundtrip:
    def test_append_then_reopen_returns_records(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        records = [
            ProposeRecord(0, 0, (("set", "k1", 1),)),
            DecideRecord(0, 0, "one-step"),
            ApplyRecord(0, 0, (("set", "k1", 1),)),
        ]
        for record in records:
            wal.append(record)
        wal.close()
        reopened = WriteAheadLog(path)
        assert reopened.recovered == records
        assert reopened.record_count == 3
        assert reopened.truncated_bytes == 0
        reopened.close()

    def test_missing_file_is_an_empty_log(self, tmp_path):
        result = scan_records(str(tmp_path / "absent.log"))
        assert result.records == [] and result.good_bytes == 0
        assert result.codecs == [] and result.codec_counts() == {}

    def test_oversize_record_rejected_before_write(self):
        with pytest.raises(ValueError):
            encode_record(ApplyRecord(0, 0, (("set", "k", 1),) * 10_000),
                          max_record=64)

    def test_reset_drops_everything(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(DecideRecord(0, 0, "one-step"))
        wal.reset()
        assert wal.record_count == 0
        wal.append(DecideRecord(1, 5, "two-step"))
        wal.close()
        reopened = WriteAheadLog(path)
        assert reopened.recovered == [DecideRecord(1, 5, "two-step")]
        reopened.close()


@pytest.mark.parametrize(
    "codec", [CODEC_BINARY, CODEC_PICKLE], ids=["binary", "pickle"]
)
class TestWalCorruption:
    """The crash-damage trio: every case recovers cleanly on open.

    Parametrized over the binary and pickle codecs — the self-healing
    contract is framing-level and must hold whatever the bodies are.
    """

    def _write(self, path, records, codec):
        wal = WriteAheadLog(path, codec=codec)
        for record in records:
            wal.append(record)
        wal.close()

    def test_torn_final_record_truncated(self, tmp_path, codec):
        path = str(tmp_path / "wal.log")
        good = [ApplyRecord(0, s, (("set", "k", s),)) for s in range(3)]
        self._write(path, good, codec)
        intact = os.path.getsize(path)
        with open(path, "ab") as fh:  # crash mid-append: half a record
            fh.write(
                encode_record(ApplyRecord(0, 3, (("set", "k", 3),)), codec=codec)[:-5]
            )
        wal = WriteAheadLog(path, codec=codec)
        assert wal.recovered == good
        assert wal.recovered_codec_counts() == {codec_label(codec): 3}
        assert wal.truncated_bytes > 0
        assert os.path.getsize(path) == intact  # tail healed away
        wal.append(ApplyRecord(0, 3, (("set", "k", 3),)))  # append-ready again
        wal.close()
        assert WriteAheadLog(path).recovered == good + [
            ApplyRecord(0, 3, (("set", "k", 3),))
        ]

    def test_flipped_crc_byte_stops_the_scan(self, tmp_path, codec):
        path = str(tmp_path / "wal.log")
        records = [DecideRecord(0, s, "one-step") for s in range(3)]
        self._write(path, records, codec)
        first = len(encode_record(records[0], codec=codec))
        data = bytearray(pathlib.Path(path).read_bytes())
        data[first + 10] ^= 0xFF  # flip a byte inside the second record
        pathlib.Path(path).write_bytes(bytes(data))
        wal = WriteAheadLog(path, codec=codec)
        assert wal.recovered == records[:1]  # nothing after the hole is trusted
        assert wal.truncated_bytes > 0
        assert os.path.getsize(path) == first
        wal.close()

    def test_empty_file_recovers_to_genesis(self, tmp_path, codec):
        path = str(tmp_path / "wal.log")
        pathlib.Path(path).touch()
        wal = WriteAheadLog(path, codec=codec)
        assert wal.recovered == [] and wal.truncated_bytes == 0
        wal.append(DecideRecord(0, 0, "one-step"))
        wal.close()

    def test_implausible_length_header_stops_the_scan(self, tmp_path, codec):
        path = str(tmp_path / "wal.log")
        self._write(path, [DecideRecord(0, 0, "one-step")], codec)
        with open(path, "ab") as fh:
            fh.write(b"\xff\xff\xff\xff\x00\x00\x00\x00garbage")
        wal = WriteAheadLog(path, codec=codec)
        assert wal.recovered == [DecideRecord(0, 0, "one-step")]
        wal.close()


class TestWalCodecCompat:
    """The read-side shim: old logs keep reading, accounting says so."""

    def _legacy_frame(self, record):
        """A pre-codec frame: raw pickle payload, no codec byte."""
        import pickle
        import struct
        import zlib

        payload = pickle.dumps(record, pickle.HIGHEST_PROTOCOL)
        return struct.pack("!II", len(payload), zlib.crc32(payload)) + payload

    def test_legacy_raw_pickle_log_still_reads(self, tmp_path):
        path = str(tmp_path / "wal.log")
        records = [DecideRecord(0, s, "one-step") for s in range(3)]
        with open(path, "wb") as fh:
            for record in records:
                fh.write(self._legacy_frame(record))
        wal = WriteAheadLog(path)
        assert wal.recovered == records
        assert wal.recovered_codecs == [LEGACY_PICKLE] * 3
        assert wal.recovered_codec_counts() == {"legacy-pickle": 3}
        wal.close()

    def test_mixed_codec_log_accounts_per_record(self, tmp_path):
        """A log written across a version upgrade: legacy records, then
        pickle-codec records, then binary — one file, three codecs, each
        record decoded by what it declares."""
        path = str(tmp_path / "wal.log")
        legacy = DecideRecord(0, 0, "one-step")
        with open(path, "wb") as fh:
            fh.write(self._legacy_frame(legacy))
        wal = WriteAheadLog(path, codec=CODEC_PICKLE)
        wal.append(DecideRecord(0, 1, "two-step"))
        wal.close()
        wal = WriteAheadLog(path, codec=CODEC_BINARY)
        wal.append(DecideRecord(0, 2, "one-step"))
        wal.close()
        result = scan_records(path)
        assert [r.slot for r in result.records] == [0, 1, 2]
        assert result.codecs == [LEGACY_PICKLE, CODEC_PICKLE, CODEC_BINARY]
        assert result.codec_counts() == {
            "legacy-pickle": 1, "pickle": 1, "binary": 1,
        }

    def test_recovered_state_reports_wal_codecs(self, tmp_path):
        config = DurabilityConfig(str(tmp_path), snapshot_every=0)
        writer = config.node(0)
        writer.commit(0, 0, (("set", "a", 1),), "one-step")
        writer.close()
        state = config.node(0).recover(1)
        assert state.wal_codecs == {"binary": 2}  # decide + apply records

    def test_legacy_pickle_snapshot_still_loads(self, tmp_path):
        """A pre-codec snapshot file (raw pickle payload) reads back."""
        import pickle
        import struct
        import zlib

        store = SnapshotStore(str(tmp_path))
        snapshot = ShardSnapshot(slots={0: 2}, seq=1)
        payload = pickle.dumps(snapshot, pickle.HIGHEST_PROTOCOL)
        blob = struct.pack("!II", len(payload), zlib.crc32(payload)) + payload
        pathlib.Path(store.path).write_bytes(blob)
        assert store.load() == snapshot


# -- snapshots -------------------------------------------------------------------------


class TestSnapshotStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        snapshot = ShardSnapshot(
            slots={0: 2, 1: 1},
            applied={0: ((("set", "a", 1),), ()), 1: ((("set", "b", 2),),)},
            kv={0: {"a": 1}, 1: {"b": 2}},
            seq=3,
        )
        store.save(snapshot)
        assert store.load() == snapshot
        assert not os.path.exists(str(tmp_path / "snapshot.tmp"))  # rename, not copy

    def test_missing_and_corrupt_load_as_none(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        assert store.load() is None
        store.save(ShardSnapshot(slots={0: 1}))
        data = bytearray(pathlib.Path(store.path).read_bytes())
        data[-1] ^= 0xFF
        pathlib.Path(store.path).write_bytes(bytes(data))
        assert store.load() is None  # fall back to genesis + log replay

    def test_newer_save_replaces(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        store.save(ShardSnapshot(seq=1))
        store.save(ShardSnapshot(slots={0: 5}, seq=2))
        assert store.load().seq == 2


# -- recovery folding ------------------------------------------------------------------


def _commit_stream(durability, batches_by_shard):
    """Drive a NodeDurability exactly like ShardNode._settle does."""
    shards = sorted(batches_by_shard)
    slots = {s: 0 for s in shards}
    applied = {s: [] for s in shards}
    kv = {s: {} for s in shards}
    stores = {s: KeyValueStore() for s in shards}
    for shard in shards:
        for slot, batch in enumerate(batches_by_shard[shard]):
            durability.commit(shard, slot, batch, "one-step")
            for command in batch:
                stores[shard].apply(command)
            applied[shard].append(batch)
            kv[shard] = dict(stores[shard].data)
            slots[shard] = slot + 1
            durability.maybe_snapshot(slots, applied, kv)
    return slots, applied


class TestNodeDurability:
    def test_fresh_directory_recovers_none(self, tmp_path):
        node = DurabilityConfig(str(tmp_path)).node(0)
        assert node.recover(2) is None
        node.close()

    def test_commits_replay_without_snapshot(self, tmp_path):
        config = DurabilityConfig(str(tmp_path), snapshot_every=0)
        writer = config.node(0)
        slots, applied = _commit_stream(
            writer, {0: [(("set", "a", 1),), ()], 1: [(("set", "b", 2),)]}
        )
        writer.close()
        state = config.node(0).recover(2)
        assert state.slots == slots
        assert state.applied == applied
        assert state.replayed_records == 3
        assert not state.from_snapshot

    def test_snapshot_bounds_replay(self, tmp_path):
        config = DurabilityConfig(str(tmp_path), snapshot_every=2)
        writer = config.node(0)
        batches = [(("set", f"k{s}", s),) for s in range(6)]
        slots, applied = _commit_stream(writer, {0: batches})
        writer.close()
        state = config.node(0).recover(1)
        assert state.slots == slots and state.applied == applied
        assert state.from_snapshot
        assert state.replayed_records == 0  # 6 commits, cadence 2: log is empty

    def test_stale_apply_records_skipped(self, tmp_path):
        config = DurabilityConfig(str(tmp_path), snapshot_every=0)
        writer = config.node(0)
        writer.commit(0, 0, (("set", "a", 1),), "one-step")
        writer.wal.append(ApplyRecord(0, 0, (("set", "a", 99),)))  # duplicate slot
        writer.wal.append(ApplyRecord(0, 5, (("set", "b", 2),)))  # hole ahead
        writer.close()
        state = config.node(0).recover(1)
        assert state.slots == {0: 1}
        assert state.applied == {0: [(("set", "a", 1),)]}

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DurabilityConfig("")
        with pytest.raises(ConfigurationError):
            DurabilityConfig("/tmp/x", snapshot_every=-1)


# -- the snapshot-then-replay property (hypothesis) ------------------------------------

_commands = st.lists(
    st.tuples(
        st.just("set"),
        st.sampled_from([f"k{i}" for i in range(8)]),
        st.integers(min_value=0, max_value=99),
    ),
    max_size=24,
)


class TestReplayProperty:
    @settings(max_examples=40, deadline=None)
    @given(commands=_commands, snapshot_every=st.integers(min_value=0, max_value=4),
           batch_size=st.integers(min_value=1, max_value=4))
    def test_recovered_node_matches_never_crashed_kv(
        self, tmp_path_factory, commands, snapshot_every, batch_size
    ):
        """Crash-and-recover == never crashed, for any stream and cadence.

        Commands are batched per shard, committed through the same
        :class:`NodeDurability` calls :class:`ShardNode` makes, then a
        *fresh* :class:`ShardNode` is built over the same directory: its
        ``on_start`` must resume from disk with the byte-identical
        per-shard KV contents and applied-batch digest of a replica that
        simply applied every batch with no crash in between.
        """
        shards = 2
        root = tmp_path_factory.mktemp("durable-prop")
        by_shard = {s: [] for s in range(shards)}
        for command in commands:
            by_shard[shard_of(command[1], shards)].append(command)
        batches_by_shard = {
            s: [tuple(cmds[i : i + batch_size])
                for i in range(0, len(cmds), batch_size)]
            for s, cmds in by_shard.items()
        }
        config = DurabilityConfig(str(root), snapshot_every=snapshot_every)
        writer = config.node(0)
        _commit_stream(writer, batches_by_shard)
        writer.close()

        sys_config = SystemConfig(7, 1)
        node = ShardNode(
            0, sys_config, shards, [], dex_shard_factory(0, sys_config),
            durability=config.node(0),
        )
        node.on_start()  # resumes from disk, then asks peers (effects unused)

        reference = {s: KeyValueStore() for s in range(shards)}
        for shard, batches in batches_by_shard.items():
            for batch in batches:
                for command in batch:
                    reference[shard].apply(command)
        for shard in range(shards):
            assert node.stores[shard].data == reference[shard].data
            assert node.applied[shard] == batches_by_shard[shard]
            assert node._slot[shard] == len(batches_by_shard[shard])


# -- catch-up vote counting ------------------------------------------------------------


def _reply(round_no, entries=(), frontier=()):
    return CatchUpReply(round_no, tuple(entries), tuple(frontier))


class TestCatchUpTracker:
    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            CatchUpTracker(0)

    def test_adoption_needs_threshold_distinct_voters(self):
        tracker = CatchUpTracker(2)
        tracker.new_round()
        batch = (("set", "a", 1),)
        assert tracker.absorb(1, _reply(1, [(0, 0, batch)]))
        assert tracker.verified(0, 0) is None  # one voucher is not enough
        assert tracker.absorb(2, _reply(1, [(0, 0, batch)]))
        assert tracker.verified(0, 0) == batch

    def test_divergent_batches_do_not_pool(self):
        tracker = CatchUpTracker(2)
        tracker.new_round()
        tracker.absorb(1, _reply(1, [(0, 0, (("set", "a", 1),))]))
        tracker.absorb(2, _reply(1, [(0, 0, (("set", "a", 2),))]))  # Byzantine lie
        assert tracker.verified(0, 0) is None

    def test_stale_round_and_repeat_sender_rejected(self):
        tracker = CatchUpTracker(1)
        tracker.new_round()
        assert not tracker.absorb(1, _reply(0))  # stale round
        assert tracker.absorb(1, _reply(1))
        assert not tracker.absorb(1, _reply(1))  # repeat sender
        assert tracker.replies == 1

    def test_votes_persist_across_rounds_replies_reset(self):
        tracker = CatchUpTracker(2)
        tracker.new_round()
        batch = (("set", "a", 1),)
        tracker.absorb(1, _reply(1, [(0, 0, batch)]))
        tracker.new_round()
        assert tracker.replies == 0
        tracker.absorb(2, _reply(2, [(0, 0, batch)]))
        assert tracker.verified(0, 0) == batch  # round-1 vote still counts

    def test_malformed_and_inflated_entries_skipped(self):
        tracker = CatchUpTracker(1)
        tracker.new_round()
        assert tracker.absorb(
            1,
            _reply(
                1,
                entries=[
                    "garbage",
                    (0, "not-an-int", ()),
                    (0, 999_999_999, ()),  # slot inflation
                    (0, 1, "not-a-tuple"),
                    (0, 1, (("set", "a", 1),)),  # the one good entry
                ],
                frontier=["junk", (0, -5), (0, 999_999_999), (0, 3)],
            ),
        )
        assert tracker.verified(0, 1) == (("set", "a", 1),)
        assert tracker.verified(0, 999_999_999) is None
        assert not tracker.frontier_reached({0: 2})  # the sane (0, 3) counted
        assert tracker.frontier_reached({0: 3})

    def test_frontier_reached_on_empty_round(self):
        tracker = CatchUpTracker(1)
        tracker.new_round()
        assert tracker.frontier_reached({0: 0})


# -- the rejoin liveness race ----------------------------------------------------------


def _shard_node(tmp_path, pid, name="race"):
    from repro.types import SystemConfig

    config = DurabilityConfig(str(tmp_path / f"{name}{pid}"), snapshot_every=0)
    sys_config = SystemConfig(7, 1)
    return ShardNode(
        0 if pid is None else pid,
        sys_config,
        1,
        [],
        dex_shard_factory(pid, sys_config),
        durability=config.node(pid),
    )


def _instance_envelope(slot, payload="stale-probe"):
    from repro.runtime.effects import Envelope

    return Envelope("mux", Envelope(f"s0.{slot}", payload))


class TestRejoinRace:
    """The residual stall: a replica finishes catch-up, proposes into a
    slot its peers decided *between* its catch-up rounds — their instances
    already went quiet, so without re-serving, its instance never hears
    another message.  The schedule below reproduces that stall
    deterministically and pins both closing triggers."""

    BATCH = (("set", "a", 1),)

    def _settled_peer(self, tmp_path, pid):
        """A peer that has already decided and applied slot 0."""
        peer = _shard_node(tmp_path, pid)
        peer._settle(0, 0, self.BATCH, "one-step")
        return peer

    def test_stale_envelope_triggers_one_reserve(self, tmp_path):
        from repro.durable import SlotDecided
        from repro.runtime.effects import Send

        peer = self._settled_peer(tmp_path, 1)
        effects = peer.on_message(0, _instance_envelope(0))
        sends = [e for e in effects if isinstance(e, Send) and e.dst == 0
                 and isinstance(e.payload, SlotDecided)]
        assert sends and sends[0].payload == SlotDecided(0, 0, self.BATCH)
        # once per (sender, shard, slot): a repeat probe is not re-served
        again = peer.on_message(0, _instance_envelope(0))
        assert not [e for e in again if isinstance(e, Send)
                    and isinstance(e.payload, SlotDecided)]

    def test_current_envelope_is_not_reserved(self, tmp_path):
        from repro.durable import SlotDecided
        from repro.runtime.effects import Send

        peer = self._settled_peer(tmp_path, 1)
        effects = peer.on_message(0, _instance_envelope(1))  # at the frontier
        assert not [e for e in effects if isinstance(e, Send)
                    and isinstance(e.payload, SlotDecided)]

    def test_settle_pushes_to_rejoining_peer(self, tmp_path):
        """Trigger 2: the decision that lands between catch-up rounds is
        pushed to the peer whose request is still outstanding."""
        from repro.durable import SlotDecided
        from repro.runtime.effects import Decide, Send
        from repro.types import DecisionKind

        peer = _shard_node(tmp_path, 1)
        peer.on_own_message(0, CatchUpRequest(1, ((0, 0),)))  # 0 is rejoining
        effects = peer._commit(
            0, 0, self.BATCH, DecisionKind.ONE_STEP,
            Decide(self.BATCH, DecisionKind.ONE_STEP),
        )
        pushed = [e for e in effects if isinstance(e, Send) and e.dst == 0
                  and isinstance(e.payload, SlotDecided)]
        assert pushed and pushed[0].payload == SlotDecided(0, 0, self.BATCH)

    def test_adoption_needs_t_plus_one_identical_notices(self, tmp_path):
        from repro.durable import SlotDecided

        node = _shard_node(tmp_path, 0)
        assert node.on_own_message(1, SlotDecided(0, 0, self.BATCH)) == []
        assert node._slot[0] == 0  # one voucher is not enough (t=1)
        # a divergent (Byzantine) notice does not pool with the honest one
        node.on_own_message(2, SlotDecided(0, 0, (("set", "a", 99),)))
        assert node._slot[0] == 0
        effects = node.on_own_message(3, SlotDecided(0, 0, self.BATCH))
        assert node._slot[0] == 1  # t + 1 identical: adopted and settled
        assert node.applied[0] == [self.BATCH]
        assert effects  # the unstuck node logs the slot and moves on
        # repeats for the settled slot are old news
        assert node.on_own_message(4, SlotDecided(0, 0, self.BATCH)) == []

    def test_malformed_notice_rejected(self, tmp_path):
        from repro.durable import SlotDecided

        node = _shard_node(tmp_path, 0)
        for bad in [
            SlotDecided("x", 0, self.BATCH),     # shard not an int
            SlotDecided(5, 0, self.BATCH),       # shard out of range
            SlotDecided(0, -1, self.BATCH),      # negative slot
            SlotDecided(0, 10**9, self.BATCH),   # slot inflation
            SlotDecided(0, 0, "not-a-tuple"),    # batch not a tuple
        ]:
            assert node.on_own_message(1, bad) == []
        assert node._slot[0] == 0 and not node._slot_votes


# -- the CrashRecover fault ------------------------------------------------------------


class TestCrashRecoverFault:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrashRecover(at=-1.0)
        with pytest.raises(ConfigurationError):
            CrashRecover(at=1.0, restart_after=-0.5)

    def test_recovers_property_and_describe(self):
        assert CrashRecover(at=1.0, restart_after=2.0).recovers
        assert not CrashRecover(at=1.0).recovers
        assert "restart_after" in CrashRecover(at=1.0, restart_after=2.0).describe()

    def test_plane_recovering_needs_restart_after(self):
        config = SystemConfig(13, 2)
        plane = FaultPlane(
            config,
            {1: CrashRecover(at=1.0, restart_after=2.0), 2: CrashRecover(at=1.0)},
            failure_model="byzantine",
            algorithm_name="dex",
        )
        assert plane.recovering() == frozenset({1})

    def test_restart_plans_only_for_crash_recover(self):
        config = SystemConfig(13, 2)
        plane = FaultPlane(
            config,
            {1: CrashRecover(at=1.0, restart_after=2.0), 2: Silent()},
            failure_model="byzantine",
            algorithm_name="dex",
        )
        plans = restart_plans(plane, lambda pid: lambda: None)
        assert set(plans) == {1}
        assert plans[1].at == 1.0 and plans[1].restart_after == 2.0

    @pytest.mark.parametrize("engine", ["sync", "mc", "asyncio"])
    def test_rejected_off_sim_and_net(self, engine):
        scenario = Scenario(
            dex_freq(),
            [i % 2 for i in range(7)],
            faults={3: CrashRecover(at=0.1, restart_after=0.2)},
            seed=5,
            engine=engine,
        )
        with pytest.raises(ConfigurationError, match="crash-recovery"):
            scenario.run()


# -- simulator integration -------------------------------------------------------------


class TestSimRecovery:
    def _service(self, tmp_path, **kwargs):
        log = EventLog()
        service = ShardedService(
            n=7,
            shards=2,
            seed=3,
            durability=DurabilityConfig(str(tmp_path), snapshot_every=2),
            event_sink=log,
            **kwargs,
        )
        return service, log

    def test_kill_restart_replay_catchup_agree(self, tmp_path):
        """The acceptance scenario on virtual time: a replica dies mid-run,
        restarts, replays its WAL + snapshot, catches missed slots up from
        peers, and the cross-node digest agreement still holds."""
        service, log = self._service(
            tmp_path, faults={2: CrashRecover(at=1.0, restart_after=1.0)}
        )
        report = service.run(count=12)
        assert not report.divergence
        assert report.commands == 12
        assert sorted(report.result.correct_decisions) == list(range(7))
        assert any(isinstance(e, RestartEvent) and e.pid == 2 for e in log.events)
        recovery = [
            e.event
            for e in log.events
            if getattr(e, "pid", None) == 2
            and getattr(e, "event", "").startswith("recovery.")
        ]
        assert "recovery.replayed" in recovery
        assert "recovery.caught_up" in recovery
        assert (tmp_path / "node2" / "wal.log").exists()

    def test_wal_replay_from_snapshot_mid_history(self, tmp_path):
        service, log = self._service(
            tmp_path, faults={2: CrashRecover(at=2.0, restart_after=1.5)}
        )
        report = service.run(count=12)
        assert not report.divergence
        replayed = [
            e.data
            for e in log.events
            if getattr(e, "event", "") == "recovery.replayed"
        ]
        assert replayed and replayed[0]["snapshot"]  # resumed from a snapshot
        assert any(v > 0 for v in replayed[0]["slots"].values())

    def test_seeded_run_is_deterministic(self, tmp_path):
        digests = []
        for attempt in range(2):
            root = tmp_path / f"run{attempt}"
            service, _ = self._service(
                root, faults={2: CrashRecover(at=1.0, restart_after=1.0)}
            )
            digests.append(service.run(count=12).digest)
        assert digests[0] == digests[1]

    def test_crash_stop_without_restart_stays_dead(self, tmp_path):
        """``restart_after=None`` is crash-stop: the replica never comes
        back and is counted faulty, exactly like the legacy faults."""
        service, log = self._service(
            tmp_path, faults={2: CrashRecover(at=0.5)}
        )
        report = service.run(count=12)
        assert not report.divergence
        assert 2 not in report.result.correct_decisions
        assert not any(isinstance(e, RestartEvent) for e in log.events)

    def test_legacy_faults_unchanged_by_the_restart_plumbing(self):
        """Crash-stop regression pin: a seeded sim run with a legacy fault
        and no durability decides the identical digest whether or not the
        (empty) restart machinery rides along in the deployment."""
        digests = []
        for _ in range(2):
            service = ShardedService(n=7, shards=2, seed=3, faults={2: Silent()})
            digests.append(service.run(count=12).digest)
        assert digests[0] == digests[1] is not None

    def test_scenario_amnesiac_restart_on_plain_consensus(self):
        """Without durability the restart is amnesiac (fresh protocol):
        live when the crash lands before the peers' proposals did."""
        scenario = Scenario(
            dex_freq(),
            [i % 2 for i in range(7)],
            faults={3: CrashRecover(at=0.1, restart_after=0.2)},
            seed=5,
        )
        result = scenario.run()
        assert result.agreement_holds()
        assert sorted(result.correct_decisions) == list(range(7))


# -- socket-engine integration ---------------------------------------------------------


@pytest.mark.net
class TestNetRecovery:
    def test_sigkill_refork_rejoin_agree(self, tmp_path):
        """The acceptance scenario over real sockets: a forked worker is
        SIGKILLed mid-run, re-forked after a delay, replays its on-disk
        state in the child, re-authenticates to the hub, catches up from
        peers, and every replica reports the identical digest."""
        log = EventLog()
        service = ShardedService(
            n=7,
            shards=4,
            seed=3,
            rate=8,
            engine="net",
            faults={2: CrashRecover(at=0.05, restart_after=0.3)},
            durability=DurabilityConfig(str(tmp_path), snapshot_every=2),
            event_sink=log,
        )
        report = service.run(count=48, timeout=45.0)
        assert not report.divergence
        assert report.commands == 48
        assert sorted(report.result.correct_decisions) == list(range(7))
        assert any(isinstance(e, RestartEvent) and e.pid == 2 for e in log.events)
        caught_up = [
            e for e in log.events
            if getattr(e, "event", "") == "recovery.caught_up"
            and getattr(e, "pid", None) == 2
        ]
        assert caught_up, "the restarted worker never finished catching up"
        assert (tmp_path / "node2" / "wal.log").exists()
        assert_no_leaks()

    def test_process_crash_without_restart_stays_dead(self):
        """ProcessCrash regression pin: a budgeted crash with no
        ``restart_after`` is still dead-forever — run completes, the
        crashed node reports no decision, nobody relaunches it."""
        log = EventLog()
        service = ShardedService(
            n=7, shards=2, seed=3, engine="net",
            faults={2: Crash(budget=2)}, event_sink=log,
        )
        report = service.run(count=8, timeout=45.0)
        assert not report.divergence
        assert 2 not in report.result.correct_decisions
        assert not any(isinstance(e, RestartEvent) for e in log.events)
        assert_no_leaks()


# -- bench shape -----------------------------------------------------------------------


class TestRecoveryBench:
    def test_report_shape_without_net(self):
        from repro.metrics.bench import run_recovery_bench

        report = run_recovery_bench(
            log_lengths=(8,), fsync_records=8, repeats=1, net_cell=False
        )
        assert report["benchmark"] == "recovery"
        assert {row["snapshot_every"] for row in report["replay"]} == {0, 64}
        assert [row["fsync"] for row in report["fsync"]] == [False, True]
        assert all(row["recover_seconds"] >= 0 for row in report["replay"])
        assert report["net"] is None


# -- CLI surface -----------------------------------------------------------------------


class TestCliRecover:
    def test_parse_recover_fault(self):
        from repro.cli import _parse_fault

        pid, fault = _parse_fault("2:recover:0.5:1.5")
        assert pid == 2
        assert isinstance(fault, CrashRecover)
        assert fault.at == 0.5 and fault.restart_after == 1.5
        _, fault = _parse_fault("3:recover:0.5")
        assert fault.at == 0.5 and fault.restart_after is None

    def test_recover_needs_a_crash_time(self):
        import argparse

        from repro.cli import _parse_fault

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault("2:recover")
