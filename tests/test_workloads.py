"""Tests for workload generators (inputs and failure patterns)."""

import pytest

from repro.conditions.views import View
from repro.harness import Crash, Equivocate, Silent
from repro.workloads.failures import (
    FailureSweep,
    crash_faults,
    equivocating_faults,
    silent_faults,
)
from repro.workloads.inputs import (
    AdversarialBoundaryWorkload,
    ContentionWorkload,
    ZipfWorkload,
    split,
    unanimous,
    with_frequency_gap,
)


class TestStaticVectors:
    def test_unanimous(self):
        assert unanimous("v", 3) == ["v", "v", "v"]

    def test_split_counts(self):
        vector = split(1, 2, 7, 3)
        assert vector.count(1) == 4
        assert vector.count(2) == 3

    def test_split_bounds(self):
        with pytest.raises(ValueError):
            split(1, 2, 5, 6)

    def test_with_frequency_gap_exact(self):
        for n, gap in [(7, 5), (7, 3), (13, 9), (12, 4)]:
            vector = View(with_frequency_gap(1, 2, n, gap))
            assert vector.frequency_gap() == gap

    def test_with_frequency_gap_parity_error(self):
        with pytest.raises(ValueError):
            with_frequency_gap(1, 2, 7, 4)  # n - gap odd

    def test_gap_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            with_frequency_gap(1, 2, 5, 7)


class TestContentionWorkload:
    def test_zero_contention_is_unanimous(self):
        w = ContentionWorkload(10, favourite=1, p=0.0, seed=1)
        assert w.vector() == unanimous(1, 10)

    def test_full_contention_never_favourite(self):
        w = ContentionWorkload(50, favourite=1, contenders=[2], p=1.0, seed=2)
        assert 1 not in w.vector()

    def test_deterministic(self):
        a = ContentionWorkload(10, p=0.5, seed=3).vectors(5)
        b = ContentionWorkload(10, p=0.5, seed=3).vectors(5)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ContentionWorkload(5, p=1.5)
        with pytest.raises(ValueError):
            ContentionWorkload(5, contenders=[])


class TestZipfWorkload:
    def test_weights_normalised(self):
        w = ZipfWorkload(5, [1, 2, 3], alpha=1.0)
        assert abs(sum(w.weights) - 1.0) < 1e-9

    def test_rank_one_dominates(self):
        w = ZipfWorkload(2000, ["hot", "warm", "cold"], alpha=2.0, seed=4)
        vector = View(w.vector())
        assert vector.count("hot") > vector.count("cold")

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfWorkload(5, [])
        with pytest.raises(ValueError):
            ZipfWorkload(5, [1], alpha=-1)


class TestBoundaryWorkload:
    def test_one_step_boundary_levels(self):
        from repro.conditions.frequency import FrequencyPair

        n, t = 13, 2
        pair = FrequencyPair(n, t)
        workload = AdversarialBoundaryWorkload(n, t)
        for k in range(t):
            vector = View(workload.one_step_boundary(k))
            assert pair.one_step_level(vector) == k

    def test_two_step_boundary_levels(self):
        from repro.conditions.frequency import FrequencyPair

        n, t = 13, 2
        pair = FrequencyPair(n, t)
        workload = AdversarialBoundaryWorkload(n, t)
        for k in range(t):
            vector = View(workload.two_step_boundary(k))
            assert pair.two_step_level(vector) == k


class TestFailureFactories:
    def test_silent_faults(self):
        faults = silent_faults([1, 2])
        assert set(faults) == {1, 2}
        assert all(isinstance(f, Silent) for f in faults.values())

    def test_crash_faults_budget(self):
        faults = crash_faults([0], budget=5)
        assert isinstance(faults[0], Crash)
        assert faults[0].budget == 5

    def test_equivocating_faults(self):
        faults = equivocating_faults([3], "a", "b")
        assert isinstance(faults[3], Equivocate)
        assert faults[3].value_a == "a"


class TestFailureSweep:
    def test_default_picks_highest_ids(self):
        sweep = FailureSweep(10, 3)
        assert sweep.faulty_ids(2) == [8, 9]

    def test_f_zero_empty(self):
        assert FailureSweep(10, 3).faulty_ids(0) == []

    def test_f_bounds(self):
        with pytest.raises(ValueError):
            FailureSweep(10, 2).faulty_ids(3)

    def test_randomized_within_range(self):
        sweep = FailureSweep(10, 3, randomize=True, seed=1)
        ids = sweep.faulty_ids(3)
        assert len(ids) == 3
        assert all(0 <= i < 10 for i in ids)

    def test_patterns(self):
        sweep = FailureSweep(10, 2)
        patterns = sweep.patterns(lambda pid: Silent())
        assert [f for f, _ in patterns] == [0, 1, 2]
        assert len(patterns[2][1]) == 2

    def test_t_ge_n_rejected(self):
        with pytest.raises(ValueError):
            FailureSweep(3, 3)
