"""Tests for the Byzantine behavior framework and mutators."""

from dataclasses import dataclass

import pytest

from repro.byzantine.adversary import (
    CrashBehavior,
    MutatingBehavior,
    SilentBehavior,
    TwoFacedBehavior,
    expand_broadcasts,
)
from repro.byzantine.behaviors import (
    RandomGarbageBehavior,
    compose_mutators,
    dropping_mutator,
    equivocating_mutator,
    rewrite_value,
    split_mutator,
)
from repro.runtime.composite import Envelope
from repro.runtime.effects import Broadcast, Decide, Send
from repro.runtime.protocol import Protocol
from repro.types import DecisionKind, SystemConfig


@dataclass(frozen=True)
class Msg:
    value: int


@dataclass(frozen=True)
class NoValue:
    data: int


class Chatty(Protocol):
    """Broadcasts its value at start; decides on any message."""

    def __init__(self, pid, config, value=0):
        super().__init__(pid, config)
        self.value = value

    def on_start(self):
        return [Broadcast(Msg(self.value))]

    def on_message(self, sender, payload):
        return [Decide(payload, DecisionKind.FAST), Broadcast(Msg(self.value))]


CONFIG = SystemConfig(4, 1)


class TestExpandBroadcasts:
    def test_expands_in_id_order(self):
        effects = expand_broadcasts([Broadcast(Msg(1))], CONFIG)
        assert [e.dst for e in effects] == [0, 1, 2, 3]

    def test_leaves_sends_alone(self):
        effects = expand_broadcasts([Send(2, Msg(1))], CONFIG)
        assert effects == [Send(2, Msg(1))]


class TestRewriteValue:
    def test_rewrites_value_field(self):
        assert rewrite_value(Msg(1), 9) == Msg(9)

    def test_descends_envelopes(self):
        wrapped = Envelope("a", Envelope("b", Msg(1)))
        assert rewrite_value(wrapped, 9) == Envelope("a", Envelope("b", Msg(9)))

    def test_payload_without_value_unchanged(self):
        assert rewrite_value(NoValue(3), 9) == NoValue(3)

    def test_non_dataclass_unchanged(self):
        assert rewrite_value("raw", 9) == "raw"


class TestMutators:
    def test_split_mutator_by_parity(self):
        mutate = split_mutator("A", "B")
        assert mutate(0, Msg(1)) == Msg("A")
        assert mutate(1, Msg(1)) == Msg("B")

    def test_equivocating_mutator_custom(self):
        mutate = equivocating_mutator(lambda dst: dst * 10)
        assert mutate(3, Msg(0)) == Msg(30)

    def test_dropping_mutator(self):
        mutate = dropping_mutator({1, 2})
        assert mutate(1, Msg(0)) is None
        assert mutate(0, Msg(0)) == Msg(0)

    def test_compose_short_circuits_on_drop(self):
        mutate = compose_mutators(dropping_mutator({0}), split_mutator("A", "B"))
        assert mutate(0, Msg(1)) is None
        assert mutate(2, Msg(1)) == Msg("A")


class TestSilent:
    def test_never_sends(self):
        behavior = SilentBehavior(0, CONFIG)
        assert behavior.on_start() == []
        assert behavior.on_message(1, Msg(0)) == []


class TestCrashBehavior:
    def test_budget_cuts_broadcast(self):
        behavior = CrashBehavior(Chatty(0, CONFIG, 5), budget=2)
        effects = behavior.on_start()
        sends = [e for e in effects if isinstance(e, Send)]
        assert [e.dst for e in sends] == [0, 1]

    def test_crashed_stays_crashed(self):
        behavior = CrashBehavior(Chatty(0, CONFIG, 5), budget=1)
        behavior.on_start()
        assert behavior.crashed
        assert behavior.on_message(1, Msg(0)) == []

    def test_inner_decides_are_suppressed(self):
        behavior = CrashBehavior(Chatty(0, CONFIG, 5), budget=100)
        effects = behavior.on_message(1, Msg(0))
        assert not any(isinstance(e, Decide) for e in effects)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            CrashBehavior(Chatty(0, CONFIG), budget=-1)


class TestMutatingBehavior:
    def test_per_destination_values(self):
        behavior = MutatingBehavior(Chatty(0, CONFIG, 5), split_mutator("A", "B"))
        sends = [e for e in behavior.on_start() if isinstance(e, Send)]
        assert sends[0].payload == Msg("A")
        assert sends[1].payload == Msg("B")

    def test_drops_are_honoured(self):
        behavior = MutatingBehavior(Chatty(0, CONFIG, 5), dropping_mutator({0, 1, 2, 3}))
        assert [e for e in behavior.on_start() if isinstance(e, Send)] == []

    def test_decides_suppressed(self):
        behavior = MutatingBehavior(Chatty(0, CONFIG, 5), lambda d, p: p)
        effects = behavior.on_message(1, Msg(9))
        assert not any(isinstance(e, Decide) for e in effects)


class TestTwoFaced:
    def test_each_group_sees_one_face(self):
        behavior = TwoFacedBehavior(Chatty(0, CONFIG, "A"), Chatty(0, CONFIG, "B"))
        sends = [e for e in behavior.on_start() if isinstance(e, Send)]
        for send in sends:
            expected = "A" if send.dst % 2 == 0 else "B"
            assert send.payload == Msg(expected)

    def test_custom_grouping(self):
        behavior = TwoFacedBehavior(
            Chatty(0, CONFIG, "A"),
            Chatty(0, CONFIG, "B"),
            group_of=lambda dst: "a" if dst < 2 else "b",
        )
        sends = [e for e in behavior.on_start() if isinstance(e, Send)]
        assert {e.dst for e in sends if e.payload == Msg("A")} == {0, 1}
        assert {e.dst for e in sends if e.payload == Msg("B")} == {2, 3}

    def test_both_faces_receive_messages(self):
        behavior = TwoFacedBehavior(Chatty(0, CONFIG, "A"), Chatty(0, CONFIG, "B"))
        effects = behavior.on_message(1, Msg(0))
        # both faces rebroadcast, each filtered to its own group
        payloads = {e.payload for e in effects if isinstance(e, Send)}
        assert payloads == {Msg("A"), Msg("B")}


class TestRandomGarbage:
    def test_deterministic_given_seed(self):
        a = RandomGarbageBehavior(0, CONFIG, [Msg(0)], [1, 2, 3], seed=5)
        b = RandomGarbageBehavior(0, CONFIG, [Msg(0)], [1, 2, 3], seed=5)
        assert a.on_start() == b.on_start()

    def test_sends_wire_shaped_payloads(self):
        behavior = RandomGarbageBehavior(0, CONFIG, [Msg(0)], [7], fanout=5, seed=1)
        sends = [e for e in behavior.on_start() if isinstance(e, Send)]
        assert len(sends) == 5
        assert all(isinstance(e.payload, Msg) for e in sends)
        assert all(e.payload.value == 7 for e in sends)

    def test_requires_templates_and_values(self):
        with pytest.raises(ValueError):
            RandomGarbageBehavior(0, CONFIG, [], [1])
        with pytest.raises(ValueError):
            RandomGarbageBehavior(0, CONFIG, [Msg(0)], [])
