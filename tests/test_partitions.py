"""Tests for partition schedules: safety during, liveness after the heal."""

import pytest

from repro.harness import Equivocate, Scenario, Silent, dex_freq, twostep
from repro.sim.latency import ConstantLatency
from repro.sim.scheduler import PartitionScheduler
from repro.workloads.inputs import split, unanimous


def minority_majority(n, cut):
    """Group 0 = pids < cut, group 1 = the rest."""
    return lambda pid: 0 if pid < cut else 1


class TestPartitionScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionScheduler(minority_majority(7, 3), start=5.0, end=1.0)
        with pytest.raises(ValueError):
            PartitionScheduler(minority_majority(7, 3), 0.0, 1.0, jitter=-1)

    def test_cross_traffic_held_until_heal(self):
        import random

        scheduler = PartitionScheduler(minority_majority(4, 2), 0.0, 10.0, jitter=0.0)
        rng = random.Random(0)
        assert scheduler.extra_delay(rng, 0, 3, None, 5.0) == 5.0
        assert scheduler.extra_delay(rng, 0, 1, None, 5.0) == 0.0
        assert scheduler.extra_delay(rng, 0, 3, None, 12.0) == 0.0


class TestConsensusAcrossPartitions:
    @pytest.mark.parametrize("seed", range(4))
    def test_dex_decides_after_heal(self, seed):
        """A 2-5 partition during the whole first phase: the minority
        cannot assemble quorums until the heal; agreement still holds."""
        scheduler = PartitionScheduler(minority_majority(7, 2), 0.0, 20.0)
        result = Scenario(
            dex_freq(),
            unanimous(1, 7),
            seed=seed,
            latency=ConstantLatency(1.0),
            scheduler=scheduler,
        ).run()
        assert result.agreement_holds()
        assert result.decided_value == 1
        # the minority could not have decided before the heal
        minority_times = [result.decisions[p].time for p in (0, 1)]
        assert all(t >= 20.0 for t in minority_times)

    @pytest.mark.parametrize("seed", range(4))
    def test_contended_input_with_partition_and_fault(self, seed):
        scheduler = PartitionScheduler(minority_majority(7, 3), 2.0, 15.0)
        result = Scenario(
            dex_freq(),
            split(1, 2, 7, 3),
            faults={6: Equivocate(1, 2)},
            seed=seed,
            scheduler=scheduler,
        ).run()
        assert result.agreement_holds()
        assert result.all_correct_decided()

    def test_majority_side_can_decide_during_partition(self):
        """5 of 7 processes stay connected: n - t = 6 > 5, so even the
        majority side must wait for the heal (the paper's quorums span
        partitions) — unless the partition leaves n - t together."""
        # leave 6 together: they can reach quorum during the partition
        scheduler = PartitionScheduler(minority_majority(7, 1), 0.0, 50.0)
        result = Scenario(
            dex_freq(),
            unanimous(1, 7),
            seed=1,
            latency=ConstantLatency(1.0),
            scheduler=scheduler,
        ).run()
        majority_times = [result.decisions[p].time for p in range(1, 7)]
        assert all(t < 50.0 for t in majority_times)
        assert result.decisions[0].time >= 50.0

    @pytest.mark.parametrize("seed", range(3))
    def test_twostep_baseline_survives_partition(self, seed):
        scheduler = PartitionScheduler(minority_majority(4, 2), 0.0, 10.0)
        result = Scenario(
            twostep(), [1, 2, 1, 2], seed=seed, scheduler=scheduler
        ).run()
        assert result.agreement_holds()

    @pytest.mark.parametrize("seed", range(3))
    def test_real_uc_survives_partition(self, seed):
        scheduler = PartitionScheduler(minority_majority(7, 3), 1.0, 12.0)
        result = Scenario(
            dex_freq(),
            split(1, 2, 7, 3),
            uc="real",
            faults={6: Silent()},
            seed=seed,
            scheduler=scheduler,
        ).run()
        assert result.agreement_holds()
        assert result.all_correct_decided()
