"""Schema-registry drift audit: the wire format as a pinned table.

The golden-frames fixture (``tests/test_codec.py``) pins the *bytes* of
one canonical instance per record; this module pins the *registry* —
every tag's class identity, field order, and blob markings — as a plain
data table.  The two fail differently: a golden-frame mismatch says
"these bytes changed", this table says exactly *which* tag moved, which
field was renamed or reordered, which blob marking was dropped.  Either
way, schema drift fails tier-1 (``pytest -x -q``), not just the
codec-smoke CI job.

On an intentional, append-only schema change: add the new tag rows here,
add canonical instances to ``golden_messages()`` in ``test_codec.py``,
and regenerate the fixture.  Never edit an existing row — that is a wire
break.
"""

from repro.codec.schema import check_registry, registered_entries

#: The pinned wire registry: tag -> (qualified class name, field order,
#: blob fields).  APPEND ONLY — editing an existing row is a wire break.
#: Tag blocks: 1-12 wire control plane, 16-25 protocol payloads, 32-38
#: durable records, 48-50 client-facing frontend protocol, 56-60 mesh
#: hub-to-hub protocol.
PINNED_REGISTRY = {
    1: ("repro.net.wire.Hello", ("pid", "codec"), ()),
    2: ("repro.net.wire.Start", (), ()),
    3: ("repro.net.wire.Stop", (), ()),
    4: ("repro.net.wire.MsgSend", ("src", "dst", "payload", "depth"), ("payload",)),
    5: ("repro.net.wire.MsgDeliver", ("sender", "payload", "depth"), ("payload",)),
    6: ("repro.net.wire.MsgDeliverBatch", ("entries",), ()),
    7: ("repro.net.wire.MsgDecide", ("pid", "value", "kind", "step"), ()),
    8: ("repro.net.wire.MsgOutput", ("pid", "tag", "sender", "value"), ()),
    9: ("repro.net.wire.MsgService", ("pid", "call", "depth"), ()),
    10: ("repro.net.wire.MsgLog", ("pid", "event", "data"), ()),
    11: ("repro.runtime.effects.ServiceCall", ("service", "payload", "reply_path"), ()),
    12: ("repro.runtime.effects.Deliver", ("tag", "sender", "value"), ()),
    16: ("repro.core.dex.DexProposal", ("value",), ()),
    17: ("repro.broadcast.idb.IdbInit", ("value",), ()),
    18: ("repro.broadcast.idb.IdbEcho", ("value", "origin"), ()),
    19: ("repro.underlying.oracle.OracleProposal", ("instance", "value"), ()),
    20: ("repro.underlying.oracle.OracleDecision", ("instance", "value"), ()),
    21: ("repro.baselines.bosco.BoscoVote", ("value",), ()),
    22: ("repro.baselines.brasileiro.BrasileiroValue", ("value",), ()),
    23: ("repro.baselines.crash_onestep.CrashValue", ("value",), ()),
    24: ("repro.baselines.sync_onestep.SyncRound1", ("value",), ()),
    25: ("repro.baselines.sync_onestep.SyncFlood", ("known", "decided"), ()),
    32: ("repro.durable.wal.ProposeRecord", ("shard", "slot", "batch"), ()),
    33: ("repro.durable.wal.DecideRecord", ("shard", "slot", "kind"), ()),
    34: ("repro.durable.wal.ApplyRecord", ("shard", "slot", "batch"), ()),
    35: ("repro.durable.snapshot.ShardSnapshot", ("slots", "applied", "kv", "seq"), ()),
    36: ("repro.durable.recovery.CatchUpRequest", ("round", "frontier"), ()),
    37: ("repro.durable.recovery.CatchUpReply", ("round", "entries", "frontier"), ()),
    38: ("repro.durable.recovery.SlotDecided", ("shard", "slot", "batch"), ()),
    48: ("repro.frontend.socket.ClientSubmit", ("request_id", "key", "op"), ()),
    49: (
        "repro.frontend.socket.ClientReply",
        ("request_id", "shard", "slot", "latency"),
        (),
    ),
    50: ("repro.frontend.socket.ClientRejected", ("request_id", "reason", "shard"), ()),
    56: ("repro.mesh.wire.HubHello", ("hub", "codec"), ()),
    57: ("repro.mesh.wire.MsgRelay", ("src", "dst", "payload", "depth"), ("payload",)),
    58: (
        "repro.mesh.wire.HubStats",
        ("hub", "frames", "bytes", "sent", "delivered", "relayed", "saturated"),
        (),
    ),
    59: ("repro.mesh.wire.HubSaturated", ("hub", "depth", "high_water"), ()),
    60: ("repro.mesh.wire.HubReady", ("hub", "nodes"), ()),
}


class TestRegistryDrift:
    def test_check_registry_reports_no_problems(self):
        """The CLI-facing audit, as a tier-1 test: every registered class
        is a frozen dataclass the decoder can rebuild positionally."""
        assert check_registry() == []

    def test_registry_matches_the_pinned_table(self):
        """Tag assignments, field order and blob markings are wire format:
        any diff against the pinned table is a compatibility break (or a
        new tag missing its pin)."""
        actual = {
            entry.tag: (
                f"{entry.cls.__module__}.{entry.cls.__qualname__}",
                tuple(entry.fields),
                tuple(sorted(entry.blobs)),
            )
            for entry in registered_entries()
        }
        assert actual == PINNED_REGISTRY

    def test_tag_blocks_stay_in_their_lanes(self):
        """The block layout is a convention worth enforcing: control plane
        < 16, protocol payloads < 32, durable records < 48, client block
        48-55, mesh block 56+ — so future tags land in the right
        neighborhood."""
        lanes = {
            "repro.net.wire": range(1, 16),
            "repro.runtime.effects": range(1, 16),
            "repro.durable": range(32, 48),
            "repro.frontend": range(48, 56),
            "repro.mesh": range(56, 64),
        }
        for entry in registered_entries():
            module = entry.cls.__module__
            for prefix, lane in lanes.items():
                if module.startswith(prefix):
                    assert entry.tag in lane, (
                        f"tag {entry.tag} ({entry.cls.__qualname__}) is "
                        f"outside its module's block {lane}"
                    )
                    break
