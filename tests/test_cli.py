"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_fault, _parse_inputs, _parse_value, main
from repro.harness import Collapse, Crash, Equivocate, Garbage, Silent, Spoiler


class TestParsing:
    def test_parse_value(self):
        assert _parse_value("3") == 3
        assert _parse_value("COMMIT") == "COMMIT"

    def test_parse_inputs(self):
        assert _parse_inputs("1,2,x") == [1, 2, "x"]
        assert _parse_inputs("1,,2") == [1, 2]

    def test_parse_fault_kinds(self):
        assert isinstance(_parse_fault("5:silent")[1], Silent)
        pid, crash = _parse_fault("2:crash:4")
        assert pid == 2 and isinstance(crash, Crash) and crash.budget == 4
        _, eq = _parse_fault("6:equivocate:1:2")
        assert isinstance(eq, Equivocate) and (eq.value_a, eq.value_b) == (1, 2)
        assert isinstance(_parse_fault("3:garbage")[1], Garbage)
        assert isinstance(_parse_fault("3:spoiler:2")[1], Spoiler)
        assert isinstance(_parse_fault("3:collapse:2")[1], Collapse)

    def test_parse_fault_errors(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault("5")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault("5:unknown")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault("5:equivocate:1")


class TestCommands:
    def test_run_unanimous(self, capsys):
        code = main(["run", "-i", "1,1,1,1,1,1,1", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "one-step" in out
        assert "agreement=ok" in out

    def test_run_with_fault_and_algorithm(self, capsys):
        code = main([
            "run", "-a", "bosco-weak", "-i", "1,1,1,1,1,1",
            "-f", "5:silent", "--seed", "2",
        ])
        assert code == 0
        assert "bosco-weak" in capsys.readouterr().out

    def test_run_trace(self, capsys):
        code = main(["run", "-i", "1,1,1,1,1,1,1", "--trace", "--seed", "1"])
        assert code == 0
        assert "decide" in capsys.readouterr().out

    def test_run_bad_algorithm(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "-a", "paxos", "-i", "1,1,1"])

    def test_run_configuration_error_exit_code(self, capsys):
        # 6 processes cannot host dex-freq with t = 1
        code = main(["run", "-i", "1,1,1,1,1,1", "--t", "1"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_run_help_lists_all_five_engines(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--help"])
        out = capsys.readouterr().out
        for engine in ("sim", "asyncio", "sync", "mc", "net"):
            assert engine in out

    def test_unknown_engine_is_a_one_line_error(self, capsys):
        code = main(["run", "-i", "1,1,1,1,1,1,1", "--engine", "bogus"])
        err = capsys.readouterr().err
        assert code == 2
        assert err.count("\n") == 1  # one line, not a traceback
        assert "unknown engine 'bogus'" in err
        assert "sim" in err and "net" in err  # names the valid choices

    @pytest.mark.net
    def test_run_engine_net(self, capsys):
        code = main([
            "run", "-i", "1,1,1,1", "--engine", "net", "--seed", "7",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement=ok" in out

    def test_bench_engine_choices_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "--engine", "bogus"])
        assert "hotpath" in capsys.readouterr().err

    def test_table1_static(self, capsys):
        code = main(["table1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dex-freq" in out
        assert "6t+1" in out

    def test_coverage(self, capsys):
        code = main(["coverage", "--n", "13", "--t", "2", "--q", "0.9"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dex-freq 1-step" in out

    def test_legality_freq(self, capsys):
        code = main(["legality", "--pair", "freq", "--n", "7", "--t", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "legal=yes" in out

    def test_legality_prv(self, capsys):
        code = main(["legality", "--pair", "prv", "--n", "6", "--t", "1"])
        assert code == 0

    def test_conditions_explicit_input(self, capsys):
        code = main(["conditions", "-i", "1,1,1,1,1,1,1,1,1,1,1,1,1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "gap" in out

    def test_conditions_examples(self, capsys):
        code = main(["conditions", "--n", "13"])
        assert code == 0
        assert "unanimous" in capsys.readouterr().out


class TestRunMany:
    def test_runs_flag_aggregates(self, capsys):
        code = main(["run", "-i", "1,1,1,1,1,1,1", "--runs", "3", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean slowest step" in out
        assert "95% CI" in out

    def test_runs_with_real_uc(self, capsys):
        code = main([
            "run", "-i", "1,1,1,1,2,2,2", "--uc", "real", "--seed", "2",
        ])
        assert code == 0
        assert "agreement=ok" in capsys.readouterr().out
