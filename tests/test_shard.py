"""The sharded multi-consensus service: routing, batching, multiplexing.

Four layers, mirroring :mod:`repro.shard`'s structure:

* pure unit tests for the key→shard mapping and the per-shard batcher;
* multiplexer tests with stub children, pinning the isolation invariant —
  two shards' messages never cross instances — and the Byzantine
  inflation guards;
* sim-engine service tests: exactly-once application, determinism (same
  seed → identical applied batches), contention loser re-proposal,
  open-loop heartbeats, faulty replicas;
* ``@pytest.mark.net`` cross-engine parity: the same seeded stream
  decides the *identical* digest on the simulator and over real sockets.
"""

import pytest

from repro.engine.faults import Silent
from repro.harness import Scenario, dex_freq
from repro.runtime.composite import Envelope
from repro.runtime.effects import Broadcast, Decide, Deliver, Log
from repro.runtime.protocol import Protocol
from repro.shard import (
    INSTANCE_DECIDED_TAG,
    ShardBatcher,
    ShardMultiplexer,
    ShardedService,
    instance_name,
    parse_instance,
    shard_of,
    shard_workload,
    step_of_kind,
)
from repro.types import DecisionKind, SystemConfig
from repro.workloads.inputs import unanimous

from .test_net_engine import assert_no_leaks


class TestShardOf:
    def test_stable_across_calls_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for key in ("k0", "k1", "x", 42):
                shard = shard_of(key, shards)
                assert 0 <= shard < shards
                assert shard == shard_of(key, shards)

    def test_single_shard_owns_everything(self):
        assert all(shard_of(f"k{i}", 1) == 0 for i in range(50))

    def test_keyspace_spreads_over_shards(self):
        owners = {shard_of(f"k{i}", 4) for i in range(64)}
        assert owners == {0, 1, 2, 3}

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_of("k0", 0)

    def test_instance_name_roundtrip(self):
        assert instance_name(3, 17) == "s3.17"
        assert parse_instance("s3.17") == (3, 17)
        assert parse_instance("mux") is None
        assert parse_instance("s3") is None
        assert parse_instance("s3.x") is None


class TestShardBatcher:
    def test_size_bound_closes_full_batch(self):
        batcher = ShardBatcher(max_batch=3, max_wait=5)
        for j in range(3):
            batcher.submit(("set", "k", j), now=0)
        assert batcher.ready(now=0)
        assert batcher.head_batch() == (("set", "k", 0), ("set", "k", 1), ("set", "k", 2))

    def test_time_bound_closes_aged_partial_batch(self):
        batcher = ShardBatcher(max_batch=4, max_wait=2)
        batcher.submit(("set", "k", 0), now=0)
        assert not batcher.ready(now=0)
        assert not batcher.ready(now=1)
        assert batcher.ready(now=2)  # waited max_wait slots

    def test_empty_queue_is_never_ready(self):
        assert not ShardBatcher().ready(now=100)

    def test_rival_batch_is_shifted_by_one(self):
        batcher = ShardBatcher(max_batch=2)
        for j in range(3):
            batcher.submit(j, now=0)
        assert batcher.head_batch() == (0, 1)
        assert batcher.rival_batch() == (1, 2)

    def test_rival_equals_head_when_no_concurrency_possible(self):
        batcher = ShardBatcher(max_batch=4)
        batcher.submit(0, now=0)
        assert batcher.rival_batch() == batcher.head_batch() == (0,)

    def test_acknowledge_removes_decided_keeps_losers(self):
        batcher = ShardBatcher(max_batch=2, max_wait=0)
        for j in range(3):
            batcher.submit(j, now=0)
        batcher.acknowledge((1, 2), now=1)  # the rival batch won
        assert batcher.pending == (0,)  # loser stays queued for re-proposal

    def test_acknowledge_ignores_foreign_commands(self):
        batcher = ShardBatcher()
        batcher.submit(0, now=0)
        batcher.acknowledge(("never-queued", 0), now=1)  # Byzantine injection
        assert len(batcher) == 0

    def test_acknowledge_restarts_wait_clock_of_remainder(self):
        batcher = ShardBatcher(max_batch=2, max_wait=2)
        for j in range(3):
            batcher.submit(j, now=0)
        batcher.acknowledge((0, 1), now=5)
        assert not batcher.ready(now=6)  # the survivor's clock restarted at 5
        assert batcher.ready(now=7)

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            ShardBatcher(max_batch=0)
        with pytest.raises(ValueError):
            ShardBatcher(max_wait=-1)


class _Recorder(Protocol):
    """Stub consensus instance: records every delivery, broadcasts once."""

    def __init__(self, process_id, config, proposal=None):
        super().__init__(process_id, config)
        self.proposal = proposal
        self.received = []

    def on_start(self):
        return [Broadcast(("echo", self.proposal))]

    def on_message(self, sender, payload):
        self.received.append((sender, payload))
        return []


class _InstantDecider(_Recorder):
    """Stub instance that decides its proposal immediately on start."""

    def on_start(self):
        return [Decide(self.proposal, DecisionKind.ONE_STEP)]

    def decide_again(self):
        return [Decide(("duplicate", self.proposal), DecisionKind.TWO_STEP)]


class TestShardMultiplexer:
    CONFIG = SystemConfig(4, 0)

    def _mux(self, shards=2, factory=None):
        make = factory or (
            lambda shard, slot, proposal: _Recorder(0, self.CONFIG, proposal)
        )
        return ShardMultiplexer(0, self.CONFIG, make, shards=shards)

    def test_propose_wraps_child_traffic_in_instance_envelope(self):
        mux = self._mux()
        effects = mux.propose(0, 0, "a")
        (broadcast,) = [e for e in effects if isinstance(e, Broadcast)]
        assert isinstance(broadcast.payload, Envelope)
        assert broadcast.payload.component == instance_name(0, 0)

    def test_repeated_propose_is_idempotent(self):
        mux = self._mux()
        assert mux.propose(1, 0, "a")
        assert mux.propose(1, 0, "b") == []

    def test_messages_never_cross_instances(self):
        # The isolation invariant: two shards' (and two slots') envelopes
        # reach exactly the addressed instance, never a neighbour.
        mux = self._mux()
        mux.propose(0, 0, "a")
        mux.propose(1, 0, "b")
        mux.propose(0, 1, "c")
        mux.on_message(2, Envelope(instance_name(0, 0), ("vote", "x")))
        mux.on_message(3, Envelope(instance_name(1, 0), ("vote", "y")))
        received = {
            name: mux.child(name).received
            for name in (instance_name(0, 0), instance_name(1, 0), instance_name(0, 1))
        }
        assert received[instance_name(0, 0)] == [(2, ("vote", "x"))]
        assert received[instance_name(1, 0)] == [(3, ("vote", "y"))]
        assert received[instance_name(0, 1)] == []

    def test_remote_envelope_creates_lagging_instance_without_proposal(self):
        mux = self._mux()
        mux.on_message(1, Envelope(instance_name(1, 3), ("vote", "z")))
        child = mux.child(instance_name(1, 3))
        assert child.proposal is None  # participating, not proposing
        assert child.received == [(1, ("vote", "z"))]

    def test_shard_inflation_guard_rejects_out_of_range_instances(self):
        mux = self._mux(shards=2)
        effects = mux.on_message(1, Envelope("s7.0", ("vote", "evil")))
        assert "s7.0" not in mux._children
        assert all(isinstance(e, Log) for e in effects)

    def test_slot_inflation_guard_rejects_huge_slots(self):
        mux = self._mux()
        mux.on_message(1, Envelope(instance_name(0, 10_000_000), ("vote", "evil")))
        assert instance_name(0, 10_000_000) not in mux._children

    def test_first_decide_surfaces_as_tagged_upcall(self):
        mux = self._mux(
            factory=lambda shard, slot, proposal: _InstantDecider(
                0, self.CONFIG, proposal
            )
        )
        effects = mux.propose(1, 2, ("batch",))
        (upcall,) = [e for e in effects if isinstance(e, Deliver)]
        assert upcall.tag == INSTANCE_DECIDED_TAG
        assert upcall.value == (1, 2, ("batch",), DecisionKind.ONE_STEP)
        assert mux.decided[(1, 2)] == (("batch",), DecisionKind.ONE_STEP)

    def test_duplicate_decides_are_dropped(self):
        mux = self._mux(
            factory=lambda shard, slot, proposal: _InstantDecider(
                0, self.CONFIG, proposal
            )
        )
        mux.propose(0, 0, ("batch",))
        name = instance_name(0, 0)
        again = mux.child_call(name, mux.child(name).decide_again())
        assert again == []
        assert mux.decided[(0, 0)] == (("batch",), DecisionKind.ONE_STEP)


class TestShardWorkload:
    def test_same_seed_same_stream(self):
        assert shard_workload(40, seed=9) == shard_workload(40, seed=9)
        assert shard_workload(40, seed=9) != shard_workload(40, seed=10)

    def test_closed_loop_arrives_at_slot_zero(self):
        assert all(arrival == 0 for arrival, _ in shard_workload(20, seed=1))

    def test_open_loop_paces_arrivals_by_rate(self):
        stream = shard_workload(10, rate=3, seed=1)
        assert [arrival for arrival, _ in stream] == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]

    def test_values_are_the_command_index(self):
        stream = shard_workload(5, seed=2)
        assert [cmd[2] for _, cmd in stream] == [0, 1, 2, 3, 4]

    def test_zipf_concentrates_on_hot_keys(self):
        counts = {}
        for _, (_, key, _) in shard_workload(
            200, keyspace=16, skew="zipf", zipf_alpha=2.0, seed=3
        ):
            counts[key] = counts.get(key, 0) + 1
        # rank-0 weight under alpha=2 is ~63%; uniform would give 12.5/200.
        assert max(counts.values()) > 50

    def test_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            shard_workload(10, skew="pareto")
        with pytest.raises(ConfigurationError):
            shard_workload(10, rate=0)
        with pytest.raises(ConfigurationError):
            shard_workload(10, keyspace=0)


class TestStepOfKind:
    def test_fast_paths_cost_one(self):
        assert step_of_kind(DecisionKind.ONE_STEP) == 1
        assert step_of_kind(DecisionKind.FAST) == 1

    def test_two_step_costs_two(self):
        assert step_of_kind(DecisionKind.TWO_STEP) == 2

    def test_underlying_adds_uc_cost(self):
        assert step_of_kind(DecisionKind.UNDERLYING, uc_step_cost=2) == 4
        assert step_of_kind(DecisionKind.UNDERLYING, uc_step_cost=5) == 7


def _applied_commands(report):
    return sorted(
        command
        for _, batches in report.digest
        for batch in batches
        for command in batch
    )


class TestShardedServiceSim:
    def test_closed_loop_applies_every_command_exactly_once(self):
        service = ShardedService(n=7, shards=2, seed=3)
        report = service.run(count=12)
        assert not report.divergence
        assert report.commands == 12
        workload = [cmd for _, cmd in shard_workload(12, seed=3)]
        assert _applied_commands(report) == sorted(workload)

    def test_states_replay_the_digest(self):
        report = ShardedService(n=7, shards=2, seed=4).run(count=10)
        expected = {}
        for _, (kind, key, value) in shard_workload(10, seed=4):
            expected.setdefault(shard_of(key, 2), {})[key] = value
        for shard, state in report.states.items():
            assert state == expected.get(shard, {})

    def test_shards_partition_the_keyspace(self):
        report = ShardedService(n=7, shards=4, seed=5).run(count=24)
        for shard, batches in report.digest:
            for batch in batches:
                for _, key, _ in batch:
                    assert shard_of(key, 4) == shard

    def test_same_seed_identical_digest_under_contention(self):
        # The shard-tagged determinism claim: same seed → identical applied
        # batches, even when half the slots are contended.
        runs = [
            ShardedService(n=7, shards=2, contention=0.5, seed=5).run(count=16)
            for _ in range(2)
        ]
        assert runs[0].digest == runs[1].digest
        assert not runs[0].divergence

    def test_full_contention_still_applies_exactly_once(self):
        report = ShardedService(n=7, shards=2, contention=1.0, seed=6).run(count=12)
        assert not report.divergence
        assert report.commands == 12
        assert _applied_commands(report) == sorted(
            cmd for _, cmd in shard_workload(12, seed=6)
        )

    def test_open_loop_heartbeats_terminate_and_drain(self):
        report = ShardedService(n=7, shards=2, rate=2, seed=7).run(count=10)
        assert not report.divergence
        assert report.commands == 10
        # trickling arrivals force more (smaller or empty) slots than the
        # closed-loop minimum of ceil(commands_per_shard / max_batch).
        assert report.slots >= 4

    def test_silent_replica_tolerated(self):
        report = ShardedService(n=7, shards=2, faults={6: Silent()}, seed=8).run(
            count=8
        )
        assert not report.divergence
        assert report.commands == 8

    def test_report_metrics_shape(self):
        report = ShardedService(n=7, shards=2, seed=9).run(count=12)
        assert len(report.per_shard) == 2
        for row in report.per_shard:
            assert row["slots"] >= 1
            assert row["runs"] == row["slots"]  # one folded stats per slot
        agg = report.aggregate
        assert agg["shards"] == 2
        assert agg["commands"] == 12
        assert agg["throughput_cmds"] > 0
        assert 0.0 <= agg["one_step_frac"] <= 1.0
        assert agg["sends"] > 0 and agg["delivers"] > 0

    def test_uncontended_slots_take_the_one_step_path(self):
        report = ShardedService(n=7, shards=2, contention=0.0, seed=10).run(count=12)
        assert report.aggregate["one_step_frac"] == 1.0
        assert report.aggregate["mean_step"] == 1.0

    def test_sim_and_sync_engines_agree_on_the_digest(self):
        digests = [
            ShardedService(n=7, shards=2, contention=0.3, seed=11, engine=engine)
            .run(count=8)
            .digest
            for engine in ("sim", "sync")
        ]
        assert digests[0] == digests[1] is not None

    def test_rejects_insufficient_resilience(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="n > 6t"):
            ShardedService(n=7, t=2)

    def test_shard_scenario_field_reaches_net_run(self):
        # Scenario grew a net_jitter knob for the shard benchmarks; it must
        # validate eagerly like engine does.
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown net jitter"):
            Scenario(dex_freq(), unanimous(1, 7), net_jitter="gamma")


@pytest.mark.net
class TestShardedServiceNet:
    def test_sim_and_net_decide_identical_batches(self):
        # Cross-engine determinism over real forked processes: contention 0
        # keeps proposals timing-independent, so validity pins every batch
        # and the two engines must produce byte-identical digests.
        reports = {
            engine: ShardedService(
                n=7, shards=2, contention=0.0, seed=11, engine=engine
            ).run(count=10, timeout=25.0)
            for engine in ("sim", "net")
        }
        assert not reports["sim"].divergence
        assert not reports["net"].divergence
        assert reports["sim"].digest == reports["net"].digest is not None
        assert reports["net"].commands == 10
        assert_no_leaks()
