"""Atomic-rename snapshots: compaction for the write-ahead log.

A snapshot captures one :class:`~repro.shard.service.ShardNode`'s durable
state — the per-shard slot frontier, the ordered applied-batch history
(the material of the digest-of-applied-batches decision), and the KV
contents — at a point where every WAL record at or before it is
redundant.  Writing one lets :meth:`~repro.durable.recovery.
NodeDurability.maybe_snapshot` reset the log, bounding replay length.

Crash safety is the classic two-step: serialize into ``snapshot.tmp``,
flush (and optionally fsync), then ``os.replace`` onto ``snapshot.bin``.
``os.replace`` is atomic on POSIX, so a reader observes either the old
complete snapshot or the new complete snapshot, never a torn hybrid — a
crash mid-write loses at most the *new* snapshot, and the WAL records it
would have compacted are still on disk.  The payload carries the same
``length | crc32 | codec id`` framing as a WAL record (struct-packed
binary by default, with the same legacy raw-pickle read shim), so a
corrupt snapshot is detected and ignored (recovery then falls back to
genesis + full log replay) instead of poisoning the restarted node.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field

from ..codec import CODEC_BINARY, CODEC_IDS, codec_for
from ..codec.schema import wire_record

__all__ = ["ShardSnapshot", "SnapshotStore", "SNAPSHOT_NAME"]

#: File names inside a node's durability directory.
SNAPSHOT_NAME = "snapshot.bin"
SNAPSHOT_TMP = "snapshot.tmp"

_HEADER = struct.Struct("!II")


@wire_record(tag=35)
@dataclass(frozen=True)
class ShardSnapshot:
    """Point-in-time durable state of one sharded replica.

    Attributes:
        slots: next undecided slot per shard (the frontier).
        applied: ordered applied batches per shard — index = slot; this is
            the *full* history because the replica's top-level decision is
            the digest over it.
        kv: per-shard key→value contents at the frontier (redundant with
            ``applied``, kept as a cheap cross-check for tests and tools).
        seq: monotone snapshot counter (0 = never snapshotted).
    """

    slots: dict[int, int] = field(default_factory=dict)
    applied: dict[int, tuple] = field(default_factory=dict)
    kv: dict[int, dict[str, int]] = field(default_factory=dict)
    seq: int = 0


class SnapshotStore:
    """Reads and atomically writes one node's snapshot file.

    Args:
        directory: the node's durability directory (must exist).
        fsync: flush the temp file to stable storage before the rename.
        codec: :mod:`repro.codec` id for new snapshots (binary default);
            the read side decodes whatever the file declares.
    """

    def __init__(
        self, directory: str, fsync: bool = False, codec: int = CODEC_BINARY
    ) -> None:
        self.directory = directory
        self.fsync = fsync
        self.codec = codec
        self.path = os.path.join(directory, SNAPSHOT_NAME)
        self._tmp = os.path.join(directory, SNAPSHOT_TMP)

    def save(self, snapshot: ShardSnapshot) -> None:
        """Write ``snapshot`` atomically (write temp → flush → rename)."""
        payload = bytes((self.codec,)) + codec_for(self.codec).encode(snapshot)
        blob = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        with open(self._tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        os.replace(self._tmp, self.path)

    def load(self) -> ShardSnapshot | None:
        """The last complete snapshot, or ``None``.

        Missing, truncated, CRC-failing and unpicklable files all return
        ``None`` — recovery falls back to genesis + log replay rather than
        trusting a damaged snapshot.
        """
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        if len(data) < _HEADER.size:
            return None
        length, crc = _HEADER.unpack_from(data)
        payload = data[_HEADER.size : _HEADER.size + length]
        if len(payload) != length or len(payload) == 0 or zlib.crc32(payload) != crc:
            return None
        try:
            # Same discrimination as the WAL shim: a codec-id first byte
            # vs. a legacy raw pickle's 0x80 PROTO opcode.
            if payload[0] in CODEC_IDS:
                snapshot = codec_for(payload[0]).decode(payload[1:])
            else:
                snapshot = pickle.loads(payload)
        except Exception:
            return None
        return snapshot if isinstance(snapshot, ShardSnapshot) else None
