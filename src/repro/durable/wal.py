"""Append-only, CRC-checked per-node write-ahead log.

The durability layer's ground truth: every record a replica must be able
to reconstruct after a crash is appended here *before* the in-memory state
advances.  The on-disk format reuses the framing idioms of
:mod:`repro.net.wire` — a big-endian length prefix, a strict size cap
checked before a single payload byte is trusted, and sans-IO decoding —
with a CRC-32 in place of the wire version/codec header (a log is read
back by the process family that wrote it, but the *bytes* may be torn by
the crash that makes the log matter)::

    +----------------+----------------+----------------+--------------+
    | length (4B BE) | crc32 (4B BE)  | codec id (1B)  | body (bytes) |
    +----------------+----------------+----------------+--------------+

``length`` counts the payload (codec byte + body); the body is one record
dataclass encoded by the named :mod:`repro.codec` codec — struct-packed
binary by default.  Pre-codec logs carried a raw pickle with no codec
byte; since a pickle at ``HIGHEST_PROTOCOL`` always begins with the
``0x80`` PROTO opcode and codec ids are small integers, the first payload
byte discriminates the two soundly and old logs keep reading
(:data:`LEGACY_PICKLE` in the :class:`ReadResult` accounting marks them).
Recovery never raises on a damaged log: :func:`scan_records` walks
records until the first hole — a torn final record (the classic
crash-mid-append), a flipped CRC byte, an implausible length, an
undecodable payload — and everything from the hole onward is discarded,
because nothing after a corrupt record can be trusted to be aligned.
:class:`WriteAheadLog` then truncates the file back to the last good
record, so the log is append-ready again.

Durability is two-tier, like every real WAL: ``flush`` (the default)
survives process death — the write is in the page cache the moment
``append`` returns, which is exactly the crash model of the net engine's
killed workers — while ``fsync=True`` additionally survives the machine,
at the steady-state throughput cost experiment E20 measures.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any

from ..codec import CODEC_BINARY, CODEC_IDS, codec_for
from ..codec.schema import wire_record

__all__ = [
    "ProposeRecord",
    "DecideRecord",
    "ApplyRecord",
    "ReadResult",
    "LEGACY_PICKLE",
    "codec_label",
    "encode_record",
    "scan_records",
    "WriteAheadLog",
]

#: Pseudo codec id for pre-codec records (raw pickle, no codec byte).
LEGACY_PICKLE = 0

_CODEC_LABELS = {LEGACY_PICKLE: "legacy-pickle", 1: "pickle", 2: "json", 3: "binary"}


def codec_label(codec_id: int) -> str:
    """Human-readable name of a per-record codec id."""
    return _CODEC_LABELS.get(codec_id, f"codec-{codec_id}")

#: Cap on one record's payload — mirrors the wire-frame cap: a batch of
#: client commands is a few hundred bytes, so anything near this is
#: corruption, not data.
DEFAULT_MAX_RECORD = 1 << 20

_HEADER = struct.Struct("!II")  # payload length, crc32(payload)


@wire_record(tag=32)
@dataclass(frozen=True, slots=True)
class ProposeRecord:
    """This replica proposed ``batch`` for ``(shard, slot)``.

    Logged before the proposal leaves the process, so a recovered replica
    knows which slots it may already have spoken in.
    """

    shard: int
    slot: int
    batch: tuple


@wire_record(tag=33)
@dataclass(frozen=True, slots=True)
class DecideRecord:
    """Slot ``(shard, slot)`` decided; ``kind`` is the decision path
    (a :class:`~repro.types.DecisionKind` value, or ``"catchup"`` for
    slots adopted from peers during recovery)."""

    shard: int
    slot: int
    kind: str


@wire_record(tag=34)
@dataclass(frozen=True, slots=True)
class ApplyRecord:
    """``batch`` was applied to ``(shard, slot)``'s state machine.

    The replay unit: recovery folds these, in order, into fresh stores.
    """

    shard: int
    slot: int
    batch: tuple


def encode_record(
    record: Any, max_record: int = DEFAULT_MAX_RECORD, codec: int = CODEC_BINARY
) -> bytes:
    """One record as a complete on-disk frame (codec byte + encoded body).

    Raises:
        ValueError: the encoded payload exceeds ``max_record``.
    """
    payload = bytes((codec,)) + codec_for(codec).encode(record)
    if len(payload) > max_record:
        raise ValueError(
            f"record payload of {len(payload)} bytes exceeds the cap of {max_record}"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class ReadResult:
    """What a log scan trusted, with per-record codec accounting.

    Attributes:
        records: every record up to the first hole, in append order.
        good_bytes: offset of the first byte that cannot be trusted (the
            self-healing truncation point).
        codecs: per-record codec ids, parallel to ``records`` —
            :data:`LEGACY_PICKLE` marks pre-codec raw-pickle records read
            through the compatibility shim.
    """

    records: list[Any] = field(default_factory=list)
    good_bytes: int = 0
    codecs: list[int] = field(default_factory=list)

    def codec_counts(self) -> dict[str, int]:
        """Records per codec, by label (e.g. ``{"binary": 12}``)."""
        counts: dict[str, int] = {}
        for codec_id in self.codecs:
            label = codec_label(codec_id)
            counts[label] = counts.get(label, 0) + 1
        return counts


def _decode_payload(payload: bytes) -> tuple[Any, int]:
    """One payload → (record, codec id); the read-side compatibility shim.

    A codec-prefixed payload starts with a small codec id; a legacy raw
    pickle starts with the ``0x80`` PROTO opcode.  Ambiguity is impossible
    because the sets are disjoint.
    """
    first = payload[0]
    if first in CODEC_IDS:
        return codec_for(first).decode(payload[1:]), first
    return pickle.loads(payload), LEGACY_PICKLE


def scan_records(path: str, max_record: int = DEFAULT_MAX_RECORD) -> ReadResult:
    """Read every trustworthy record off a log file.

    Returns a :class:`ReadResult`; a missing file is an empty log.
    Corruption is a *stop*, never an exception: a torn tail, a failed CRC,
    an implausible length and an undecodable payload all end the scan at
    the last good record — bytes after a hole have no reliable framing and
    are dropped wholesale.
    """
    result = ReadResult()
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return result
    offset = 0
    header = _HEADER.size
    while offset + header <= len(data):
        length, crc = _HEADER.unpack_from(data, offset)
        if length > max_record or length == 0:
            break  # implausible length: corrupt header
        end = offset + header + length
        if end > len(data):
            break  # torn tail: the crash hit mid-append
        payload = data[offset + header : end]
        if zlib.crc32(payload) != crc:
            break  # bit rot or a torn overwrite
        try:
            record, codec_id = _decode_payload(payload)
        except Exception:
            break  # CRC collided with garbage; do not trust the rest
        result.records.append(record)
        result.codecs.append(codec_id)
        offset = end
    result.good_bytes = offset
    return result


class WriteAheadLog:
    """One node's append-only log, self-healing on open.

    Opening scans the existing file (if any), truncates any damaged tail
    back to the last good record, and leaves the file open for appends.
    The records that survived the scan are exposed as :attr:`recovered`
    for the recovery layer to replay.

    Args:
        path: log file path (created if missing).
        fsync: force every append to stable storage (survives the
            machine, not just the process) — the knob experiment E20
            prices.
        max_record: per-record payload cap, enforced both ways.
        codec: :mod:`repro.codec` id for *new* appends (binary default);
            the read side decodes whatever each record declares, so a log
            may mix codecs across a version upgrade.
    """

    def __init__(
        self,
        path: str,
        fsync: bool = False,
        max_record: int = DEFAULT_MAX_RECORD,
        codec: int = CODEC_BINARY,
    ) -> None:
        self.path = path
        self.fsync = fsync
        self.max_record = max_record
        self.codec = codec
        scan = scan_records(path, max_record)
        self.recovered: list[Any] = scan.records
        #: per-record codec ids of the recovered records (parallel list);
        #: :func:`ReadResult.codec_counts`-style summary via
        #: :meth:`recovered_codec_counts`.
        self.recovered_codecs: list[int] = scan.codecs
        self.truncated_bytes = 0
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size > scan.good_bytes:
            self.truncated_bytes = size - scan.good_bytes
            with open(path, "r+b") as fh:
                fh.truncate(scan.good_bytes)
        self._file = open(path, "ab")
        self.record_count = len(scan.records)

    def recovered_codec_counts(self) -> dict[str, int]:
        """Recovered records per codec, by label (the read-side shim's
        accounting: e.g. ``{"legacy-pickle": 3, "binary": 12}``)."""
        counts: dict[str, int] = {}
        for codec_id in self.recovered_codecs:
            label = codec_label(codec_id)
            counts[label] = counts.get(label, 0) + 1
        return counts

    def append(self, record: Any) -> None:
        """Durably append one record (flushed; fsynced when configured)."""
        self._file.write(encode_record(record, self.max_record, self.codec))
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.record_count += 1

    def reset(self) -> None:
        """Drop every record (called after a snapshot made them redundant)."""
        self._file.truncate(0)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.record_count = 0
        self.recovered = []
        self.recovered_codecs = []

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
