"""Append-only, CRC-checked per-node write-ahead log.

The durability layer's ground truth: every record a replica must be able
to reconstruct after a crash is appended here *before* the in-memory state
advances.  The on-disk format reuses the framing idioms of
:mod:`repro.net.wire` — a big-endian length prefix, a strict size cap
checked before a single payload byte is trusted, and sans-IO decoding —
with a CRC-32 in place of the wire version/codec header (a log is read
back by the process family that wrote it, but the *bytes* may be torn by
the crash that makes the log matter)::

    +----------------+----------------+-----------------+
    | length (4B BE) | crc32 (4B BE)  | payload (bytes) |
    +----------------+----------------+-----------------+

``length`` counts the payload only; the payload is one pickled record
dataclass.  Recovery never raises on a damaged log: :func:`scan_records`
walks records until the first hole — a torn final record (the classic
crash-mid-append), a flipped CRC byte, an implausible length, an
unpicklable payload — and everything from the hole onward is discarded,
because nothing after a corrupt record can be trusted to be aligned.
:class:`WriteAheadLog` then truncates the file back to the last good
record, so the log is append-ready again.

Durability is two-tier, like every real WAL: ``flush`` (the default)
survives process death — the write is in the page cache the moment
``append`` returns, which is exactly the crash model of the net engine's
killed workers — while ``fsync=True`` additionally survives the machine,
at the steady-state throughput cost experiment E20 measures.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Any

__all__ = [
    "ProposeRecord",
    "DecideRecord",
    "ApplyRecord",
    "encode_record",
    "scan_records",
    "WriteAheadLog",
]

#: Cap on one record's payload — mirrors the wire-frame cap: a batch of
#: client commands is a few hundred bytes, so anything near this is
#: corruption, not data.
DEFAULT_MAX_RECORD = 1 << 20

_HEADER = struct.Struct("!II")  # payload length, crc32(payload)


@dataclass(frozen=True, slots=True)
class ProposeRecord:
    """This replica proposed ``batch`` for ``(shard, slot)``.

    Logged before the proposal leaves the process, so a recovered replica
    knows which slots it may already have spoken in.
    """

    shard: int
    slot: int
    batch: tuple


@dataclass(frozen=True, slots=True)
class DecideRecord:
    """Slot ``(shard, slot)`` decided; ``kind`` is the decision path
    (a :class:`~repro.types.DecisionKind` value, or ``"catchup"`` for
    slots adopted from peers during recovery)."""

    shard: int
    slot: int
    kind: str


@dataclass(frozen=True, slots=True)
class ApplyRecord:
    """``batch`` was applied to ``(shard, slot)``'s state machine.

    The replay unit: recovery folds these, in order, into fresh stores.
    """

    shard: int
    slot: int
    batch: tuple


def encode_record(record: Any, max_record: int = DEFAULT_MAX_RECORD) -> bytes:
    """One record as a complete on-disk frame.

    Raises:
        ValueError: the pickled payload exceeds ``max_record``.
    """
    payload = pickle.dumps(record, pickle.HIGHEST_PROTOCOL)
    if len(payload) > max_record:
        raise ValueError(
            f"record payload of {len(payload)} bytes exceeds the cap of {max_record}"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_records(
    path: str, max_record: int = DEFAULT_MAX_RECORD
) -> tuple[list[Any], int]:
    """Read every trustworthy record off a log file.

    Returns ``(records, good_bytes)`` where ``good_bytes`` is the offset
    of the first byte that cannot be trusted.  A missing file is an empty
    log.  Corruption is a *stop*, never an exception: a torn tail, a
    failed CRC, an implausible length and an unpicklable payload all end
    the scan at the last good record — bytes after a hole have no reliable
    framing and are dropped wholesale.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return [], 0
    records: list[Any] = []
    offset = 0
    header = _HEADER.size
    while offset + header <= len(data):
        length, crc = _HEADER.unpack_from(data, offset)
        if length > max_record:
            break  # implausible length: corrupt header
        end = offset + header + length
        if end > len(data):
            break  # torn tail: the crash hit mid-append
        payload = data[offset + header : end]
        if zlib.crc32(payload) != crc:
            break  # bit rot or a torn overwrite
        try:
            record = pickle.loads(payload)
        except Exception:
            break  # CRC collided with garbage; do not trust the rest
        records.append(record)
        offset = end
    return records, offset


class WriteAheadLog:
    """One node's append-only log, self-healing on open.

    Opening scans the existing file (if any), truncates any damaged tail
    back to the last good record, and leaves the file open for appends.
    The records that survived the scan are exposed as :attr:`recovered`
    for the recovery layer to replay.

    Args:
        path: log file path (created if missing).
        fsync: force every append to stable storage (survives the
            machine, not just the process) — the knob experiment E20
            prices.
        max_record: per-record payload cap, enforced both ways.
    """

    def __init__(
        self, path: str, fsync: bool = False, max_record: int = DEFAULT_MAX_RECORD
    ) -> None:
        self.path = path
        self.fsync = fsync
        self.max_record = max_record
        records, good = scan_records(path, max_record)
        self.recovered: list[Any] = records
        self.truncated_bytes = 0
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size > good:
            self.truncated_bytes = size - good
            with open(path, "r+b") as fh:
                fh.truncate(good)
        self._file = open(path, "ab")
        self.record_count = len(records)

    def append(self, record: Any) -> None:
        """Durably append one record (flushed; fsynced when configured)."""
        self._file.write(encode_record(record, self.max_record))
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.record_count += 1

    def reset(self) -> None:
        """Drop every record (called after a snapshot made them redundant)."""
        self._file.truncate(0)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.record_count = 0
        self.recovered = []

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
