"""Crash-*recovery*: replay what was persisted, fetch what was missed.

Three pieces turn the WAL (:mod:`repro.durable.wal`) and the snapshots
(:mod:`repro.durable.snapshot`) into a rejoin path:

* :class:`DurabilityConfig` / :class:`NodeDurability` — per-node
  persistence handles.  A replica commits every decided slot through
  :meth:`NodeDurability.commit` *before* advancing in memory, and on
  restart :meth:`NodeDurability.recover` folds snapshot + log back into
  the slot frontier and applied-batch history.  Periodic snapshots
  (:meth:`NodeDurability.maybe_snapshot`) reset the log so replay length
  stays bounded.
* :class:`CatchUpRequest` / :class:`CatchUpReply` — the rejoin wire
  vocabulary.  Disk only holds what the replica saw *before* dying;
  decisions taken while it was down must come from peers.  A recovering
  replica broadcasts its per-shard frontier; peers answer with the
  ``(shard, slot, batch)`` entries past it plus their own frontiers.
* :class:`CatchUpTracker` — Byzantine-safe vote counting over the
  replies.  An entry is adopted only once ``t + 1`` distinct peers vouch
  for the *identical* batch (at least one of them is correct, and a
  correct peer only reports batches its consensus instance decided — so
  an adopted batch equals the decided batch, which is exactly the
  verification-against-the-digest the recovered replica needs before it
  may resume proposing).  Rounds repeat until a quorum of replies reports
  no frontier ahead of ours.

Everything here is sans-IO and engine-agnostic: the shard service drives
it with ordinary :class:`~repro.runtime.effects.Send` effects, so the
same rejoin runs on the simulator (virtual time, deterministic) and on
the socket engine (a re-forked OS process re-authenticating to the hub).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping

from ..codec import CODEC_NAMES
from ..codec.schema import wire_record
from ..errors import ConfigurationError
from ..types import ProcessId
from .snapshot import ShardSnapshot, SnapshotStore
from .wal import ApplyRecord, DecideRecord, ProposeRecord, WriteAheadLog

__all__ = [
    "DurabilityConfig",
    "NodeDurability",
    "RecoveredState",
    "CatchUpRequest",
    "CatchUpReply",
    "SlotDecided",
    "CatchUpTracker",
    "MAX_CATCHUP_ENTRIES",
]

#: Cap on entries absorbed from one reply — a Byzantine peer cannot
#: balloon the tracker with fabricated slot numbers.
MAX_CATCHUP_ENTRIES = 4096

#: Slot numbers above this are rejected as inflation (mirrors the
#: multiplexer's ``max_slots`` guard).
MAX_CATCHUP_SLOT = 10_000


@dataclass(frozen=True)
class DurabilityConfig:
    """Where and how a deployment persists.

    Args:
        root: directory holding one subdirectory per node (created on
            demand); point different runs at different roots.
        fsync: force every WAL append and snapshot to stable storage
            (machine-crash durability; process-crash durability — the
            engines' fault model — needs only the default flush).
        snapshot_every: decided slots between snapshots (0 = never
            snapshot, replay the whole log).
        codec: :mod:`repro.codec` name for new WAL records and snapshots
            ("binary" default); reads accept any codec the files declare.
    """

    root: str
    fsync: bool = False
    snapshot_every: int = 8
    codec: str = "binary"

    def __post_init__(self) -> None:
        if not self.root:
            raise ConfigurationError("durability root must be a directory path")
        if self.snapshot_every < 0:
            raise ConfigurationError("snapshot_every must be non-negative")
        if self.codec not in CODEC_NAMES:
            raise ConfigurationError(
                f"unknown codec {self.codec!r}; expected one of {sorted(CODEC_NAMES)}"
            )

    def node_dir(self, pid: ProcessId) -> str:
        return os.path.join(self.root, f"node{pid}")

    def node(self, pid: ProcessId) -> "NodeDurability":
        """The persistence handle of one replica (directory created)."""
        return NodeDurability(self, pid)


@dataclass(frozen=True)
class RecoveredState:
    """What disk gave back: the state to resume from.

    ``wal_codecs`` reports which codec each recovered WAL record used
    (label → count, e.g. ``{"legacy-pickle": 3, "binary": 12}``) — the
    read-side shim's accounting, so an upgrade that left mixed logs
    behind is visible rather than silent.
    """

    slots: dict[int, int]
    applied: dict[int, list[tuple]]
    replayed_records: int
    from_snapshot: bool
    truncated_bytes: int = 0
    wal_codecs: dict[str, int] = field(default_factory=dict)


class NodeDurability:
    """One replica's WAL + snapshot store, opened and self-healed.

    Opening scans the WAL (truncating any damaged tail) and loads the
    last complete snapshot; :meth:`recover` folds both into a
    :class:`RecoveredState`, or ``None`` when the directory holds no
    state — which is how a replica distinguishes first boot from restart
    without any flag: recovery is simply "resume from whatever exists".
    """

    def __init__(self, config: DurabilityConfig, pid: ProcessId) -> None:
        self.config = config
        self.pid = pid
        self.directory = config.node_dir(pid)
        os.makedirs(self.directory, exist_ok=True)
        codec_id = CODEC_NAMES[config.codec]
        self.snapshots = SnapshotStore(
            self.directory, fsync=config.fsync, codec=codec_id
        )
        self.wal = WriteAheadLog(
            os.path.join(self.directory, "wal.log"),
            fsync=config.fsync,
            codec=codec_id,
        )
        self._seq = 0
        self._since_snapshot = 0

    # -- write path ------------------------------------------------------------------

    def log_propose(self, shard: int, slot: int, batch: tuple) -> None:
        """Record a proposal before it leaves the process."""
        self.wal.append(ProposeRecord(shard, slot, batch))

    def commit(self, shard: int, slot: int, batch: tuple, kind: str) -> None:
        """Persist one decided-and-applied slot (decide + apply records)."""
        self.wal.append(DecideRecord(shard, slot, kind))
        self.wal.append(ApplyRecord(shard, slot, batch))
        self._since_snapshot += 1

    def maybe_snapshot(
        self,
        slots: Mapping[int, int],
        applied: Mapping[int, list],
        kv: Mapping[int, Mapping[str, int]],
    ) -> bool:
        """Snapshot and reset the WAL if enough slots accumulated."""
        every = self.config.snapshot_every
        if every <= 0 or self._since_snapshot < every:
            return False
        self._seq += 1
        self.snapshots.save(
            ShardSnapshot(
                slots=dict(slots),
                applied={s: tuple(batches) for s, batches in applied.items()},
                kv={s: dict(data) for s, data in kv.items()},
                seq=self._seq,
            )
        )
        self.wal.reset()
        self._since_snapshot = 0
        return True

    # -- read path -------------------------------------------------------------------

    def recover(self, shards: int) -> RecoveredState | None:
        """Fold snapshot + WAL into a resumable state (``None`` = fresh).

        The snapshot (if any) seeds the frontier; apply records then
        replay strictly in slot order — a record for any slot other than
        the shard's current frontier is a duplicate or a remnant of a
        pre-snapshot log and is skipped, so replay is idempotent.
        """
        snapshot = self.snapshots.load()
        records = self.wal.recovered
        if snapshot is None and not records:
            return None
        slots = {s: 0 for s in range(shards)}
        applied: dict[int, list[tuple]] = {s: [] for s in range(shards)}
        if snapshot is not None:
            self._seq = snapshot.seq
            for shard in range(shards):
                history = tuple(snapshot.applied.get(shard, ()))
                applied[shard] = list(history)
                slots[shard] = len(history)
        replayed = 0
        for record in records:
            if not isinstance(record, ApplyRecord):
                continue
            shard = record.shard
            if shard not in slots or record.slot != slots[shard]:
                continue
            batch = record.batch if isinstance(record.batch, tuple) else ()
            applied[shard].append(batch)
            slots[shard] += 1
            replayed += 1
        return RecoveredState(
            slots=slots,
            applied=applied,
            replayed_records=replayed,
            from_snapshot=snapshot is not None,
            truncated_bytes=self.wal.truncated_bytes,
            wal_codecs=self.wal.recovered_codec_counts(),
        )

    def close(self) -> None:
        self.wal.close()


# -- the rejoin wire vocabulary --------------------------------------------------------


@wire_record(tag=36)
@dataclass(frozen=True, slots=True)
class CatchUpRequest:
    """Recovering replica → peers: "what decided past my frontier?"

    ``frontier`` is ``((shard, next_undecided_slot), …)``; ``round``
    echoes back in replies so stale answers from earlier rounds are
    recognizable.
    """

    round: int
    frontier: tuple[tuple[int, int], ...]


@wire_record(tag=37)
@dataclass(frozen=True, slots=True)
class CatchUpReply:
    """Peer → recovering replica: decided entries past the requested
    frontier, plus the peer's own frontier (the recovery-done check)."""

    round: int
    entries: tuple[tuple[int, int, tuple], ...]
    frontier: tuple[tuple[int, int], ...]


@wire_record(tag=38)
@dataclass(frozen=True, slots=True)
class SlotDecided:
    """Peer → lagging replica: "this slot already decided; here is the
    batch."

    Sent unsolicited in two situations a :class:`CatchUpReply` cannot
    cover: a consensus envelope arrives for an instance the receiver has
    already settled (the sender is visibly behind), and a slot settles
    while a peer's :class:`CatchUpRequest` is still outstanding (the
    decision landed *between* catch-up rounds).  Adoption follows the
    same ``t + 1`` identical-batch rule as catch-up replies — a single
    Byzantine ``SlotDecided`` can never plant state.
    """

    shard: int
    slot: int
    batch: tuple


class CatchUpTracker:
    """Vote counting over catch-up replies, round by round.

    Args:
        threshold: votes required to adopt an entry — ``t + 1``, so at
            least one voucher is correct.
    """

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ConfigurationError("catch-up threshold must be at least 1")
        self.threshold = threshold
        self.round = 0
        #: ``(shard, slot) -> batch -> voters`` — votes persist across
        #: rounds (a peer re-reporting the same entry re-counts once).
        self._votes: dict[tuple[int, int], dict[tuple, set[ProcessId]]] = {}
        self._replies: set[ProcessId] = set()
        self._frontiers: dict[int, int] = {}

    @property
    def replies(self) -> int:
        """Distinct peers answering the current round."""
        return len(self._replies)

    def new_round(self) -> int:
        """Start a round: reply and frontier books reset, votes kept."""
        self.round += 1
        self._replies.clear()
        self._frontiers.clear()
        return self.round

    def absorb(self, sender: ProcessId, reply: CatchUpReply) -> bool:
        """Fold one reply in; ``False`` for stale-round or repeat replies.

        Every field is validated defensively — the reply may come from a
        Byzantine peer: malformed entries are skipped, entry count and
        slot numbers are capped, and frontiers only *raise* the recorded
        maximum (a liar can delay recovery completion by one round, never
        corrupt adopted state — that is the ``t + 1`` vote rule's job).
        """
        if reply.round != self.round or sender in self._replies:
            return False
        self._replies.add(sender)
        frontier = reply.frontier if isinstance(reply.frontier, tuple) else ()
        for pair in frontier[:MAX_CATCHUP_ENTRIES]:
            if (
                isinstance(pair, tuple)
                and len(pair) == 2
                and isinstance(pair[0], int)
                and isinstance(pair[1], int)
                and 0 <= pair[1] <= MAX_CATCHUP_SLOT
            ):
                shard, slot = pair
                self._frontiers[shard] = max(self._frontiers.get(shard, 0), slot)
        entries = reply.entries if isinstance(reply.entries, tuple) else ()
        for entry in entries[:MAX_CATCHUP_ENTRIES]:
            if not (isinstance(entry, tuple) and len(entry) == 3):
                continue
            shard, slot, batch = entry
            if not (
                isinstance(shard, int)
                and isinstance(slot, int)
                and 0 <= slot < MAX_CATCHUP_SLOT
                and isinstance(batch, tuple)
            ):
                continue
            by_batch = self._votes.setdefault((shard, slot), {})
            by_batch.setdefault(batch, set()).add(sender)
        return True

    def verified(self, shard: int, slot: int) -> tuple | None:
        """The batch ``t + 1`` distinct peers vouch for, or ``None``."""
        for batch, voters in self._votes.get((shard, slot), {}).items():
            if len(voters) >= self.threshold:
                return batch
        return None

    def frontier_reached(self, slots: Mapping[int, int]) -> bool:
        """No replier of this round reported a frontier ahead of ours."""
        return all(
            reported <= slots.get(shard, 0)
            for shard, reported in self._frontiers.items()
        )
