"""repro.durable — write-ahead log, snapshots, and crash-recovery.

The persistence and rejoin subsystem: :mod:`~repro.durable.wal` is the
append-only CRC-checked ground truth, :mod:`~repro.durable.snapshot`
bounds its replay length, and :mod:`~repro.durable.recovery` turns both
plus a peer catch-up protocol into a full kill → restart → rejoin →
still-agree path for the sharded service, on the simulator and the
socket engine alike.
"""

from .recovery import (
    MAX_CATCHUP_ENTRIES,
    CatchUpReply,
    CatchUpRequest,
    CatchUpTracker,
    DurabilityConfig,
    NodeDurability,
    RecoveredState,
    SlotDecided,
)
from .snapshot import SNAPSHOT_NAME, ShardSnapshot, SnapshotStore
from .wal import (
    DEFAULT_MAX_RECORD,
    LEGACY_PICKLE,
    ApplyRecord,
    DecideRecord,
    ProposeRecord,
    ReadResult,
    WriteAheadLog,
    codec_label,
    encode_record,
    scan_records,
)

__all__ = [
    "ApplyRecord",
    "CatchUpReply",
    "CatchUpRequest",
    "CatchUpTracker",
    "DEFAULT_MAX_RECORD",
    "DecideRecord",
    "DurabilityConfig",
    "LEGACY_PICKLE",
    "MAX_CATCHUP_ENTRIES",
    "NodeDurability",
    "ProposeRecord",
    "ReadResult",
    "RecoveredState",
    "SNAPSHOT_NAME",
    "ShardSnapshot",
    "SlotDecided",
    "SnapshotStore",
    "WriteAheadLog",
    "codec_label",
    "encode_record",
    "scan_records",
]
