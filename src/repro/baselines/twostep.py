"""Plain two-step baseline: go straight to the underlying consensus.

The zero-degradation reference point: no fast path at all, every run costs
exactly the underlying consensus' latency (two steps under the oracle
abstraction with its default ``step_cost=2`` — the failure-free optimum of
[9]).  Against this baseline the benchmarks show both sides of the paper's
trade-off: the fast paths win whenever an input lies inside a condition,
and DEX's pipelined fallback (4 steps) loses to it when the input doesn't.
"""

from __future__ import annotations

from typing import Any, Callable

from ..runtime.composite import CompositeProtocol
from ..runtime.effects import Decide, Deliver, Effect
from ..types import DecisionKind, ProcessId, SystemConfig, Value
from ..underlying.base import UC_DECIDE_TAG, UnderlyingConsensus
from ..underlying.oracle import OracleConsensus

UcFactory = Callable[[ProcessId, SystemConfig], UnderlyingConsensus]


class TwoStepConsensus(CompositeProtocol):
    """Propose to the underlying consensus at start; adopt its decision."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        proposal: Value,
        uc_factory: UcFactory | None = None,
    ) -> None:
        super().__init__(process_id, config)
        self.proposal = proposal
        make_uc = uc_factory or (lambda pid, cfg: OracleConsensus(pid, cfg))
        self._uc = self.add_child("uc", make_uc(process_id, config))
        self.decided = False
        self.decision_kind: DecisionKind | None = None

    def on_start(self) -> list[Effect]:
        return self.child_call("uc", self._uc.propose(self.proposal))

    def on_own_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        return []

    def on_child_output(self, name: str, effect) -> list[Effect]:
        if (
            name == "uc"
            and isinstance(effect, Deliver)
            and effect.tag == UC_DECIDE_TAG
            and not self.decided
        ):
            self.decided = True
            self.decision_kind = DecisionKind.UNDERLYING
            return [Decide(effect.value, DecisionKind.UNDERLYING)]
        return []
