"""Brasileiro et al.'s one-step converter (SRDS 2001) — crash-model baseline.

The first one-step scheme (Table 1, row "Brasileiro et.al [2]"): a wrapper
that turns any crash-tolerant consensus into one deciding in a single step
when all processes propose the same value, for ``n > 3t`` crash failures:

1. broadcast the initial value, collect the first ``n − t`` values;
2. if **all** ``n − t`` values equal ``v``: decide ``v`` (one step);
3. if at least ``n − 2t`` of them equal ``v``: propose ``v`` to the
   underlying consensus, otherwise propose the own value;
4. adopt the underlying consensus' decision if step 2 didn't fire.

Safety rests on crash semantics (a faulty process may stop but never lies),
so deployments of this baseline must restrict the fault injection to
:class:`~repro.byzantine.adversary.CrashBehavior` /
:class:`~repro.byzantine.adversary.SilentBehavior` — which the experiment
harness (:mod:`repro.harness`) enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..conditions.incremental import ViewStats
from ..errors import ResilienceError
from ..runtime.composite import CompositeProtocol
from ..runtime.effects import Broadcast, Decide, Deliver, Effect
from ..types import DecisionKind, ProcessId, SystemConfig, Value
from ..underlying.base import UC_DECIDE_TAG, UnderlyingConsensus
from ..underlying.oracle import OracleConsensus
from ..codec.schema import wire_record

UcFactory = Callable[[ProcessId, SystemConfig], UnderlyingConsensus]


@wire_record(tag=22)
@dataclass(frozen=True, slots=True)
class BrasileiroValue:
    """The single broadcast message of the converter."""

    value: Value


class BrasileiroConsensus(CompositeProtocol):
    """One process's instance of the crash-model one-step converter.

    Args:
        process_id: hosting process.
        config: must satisfy ``n > 3t`` (crash failures).
        proposal: the initial value.
        uc_factory: underlying-consensus child factory.
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        proposal: Value,
        uc_factory: UcFactory | None = None,
    ) -> None:
        if not config.satisfies(3):
            raise ResilienceError("Brasileiro", config.n, config.t, "n > 3t")
        super().__init__(process_id, config)
        self.proposal = proposal
        make_uc = uc_factory or (lambda pid, cfg: OracleConsensus(pid, cfg))
        self._uc = self.add_child("uc", make_uc(process_id, config))
        # Incremental tally (values are binding per sender): the one-shot
        # evaluation reads the running top count instead of building a
        # Counter over all n−t received values.
        self._values = ViewStats(config.n)
        self._evaluated = False
        self.decided = False
        self.decision_kind: DecisionKind | None = None

    def on_start(self) -> list[Effect]:
        return [Broadcast(BrasileiroValue(self.proposal))]

    def on_own_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if not isinstance(payload, BrasileiroValue):
            return [self.log("brasileiro-ignored", sender=sender)]
        try:
            hash(payload.value)
        except TypeError:
            return [self.log("brasileiro-unhashable-dropped", sender=sender)]
        self._values.set_entry(sender, payload.value)
        if self._values.known >= self.quorum and not self._evaluated:
            return self._evaluate()
        return []

    def _evaluate(self) -> list[Effect]:
        # Both thresholds need more than half of the n−t received values
        # (n − 2t > (n−t)/2 ⇔ n > 3t, which the constructor enforces), so
        # only the maintained most-frequent value can clear them.
        self._evaluated = True
        top_value = self._values.first()
        top_count = self._values.first_count
        effects: list[Effect] = []
        if top_count >= self.quorum:  # all n−t received values identical
            effects.extend(self._decide(top_value, DecisionKind.FAST))
        if top_count >= self.n - 2 * self.t:
            next_proposal = top_value
        else:
            next_proposal = self.proposal
        effects.extend(self.child_call("uc", self._uc.propose(next_proposal)))
        return effects

    def on_child_output(self, name: str, effect) -> list[Effect]:
        if (
            name == "uc"
            and isinstance(effect, Deliver)
            and effect.tag == UC_DECIDE_TAG
            and not self.decided
        ):
            return self._decide(effect.value, DecisionKind.UNDERLYING)
        return []

    def _decide(self, value: Value, kind: DecisionKind) -> list[Effect]:
        self.decided = True
        self.decision_kind = kind
        return [Decide(value, kind)]
