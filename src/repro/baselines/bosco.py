"""BOSCO — one-step Byzantine consensus (Song & van Renesse, DISC 2008).

The comparison point of the paper's Table 1 (row "Yee et.al [12] (Bosco)").
Every process broadcasts a vote; **at the moment the ``n − t``-th vote
arrives** the process evaluates, exactly once:

* if *more than* ``(n + 3t) / 2`` votes carry the same value ``v``, decide
  ``v`` immediately (one step);
* if more than ``(n − t) / 2`` votes carry the same value ``v`` — necessarily
  unique — propose ``v`` to the underlying consensus, otherwise propose the
  own initial value;
* adopt the underlying consensus' decision if none was made.

With ``n > 5t`` BOSCO is *weakly* one-step (one-step decision when all
processes propose the same value and no process is faulty); with ``n > 7t``
the same algorithm is *strongly* one-step (one-step decision whenever all
*correct* processes propose the same value, any number ``≤ t`` of faults).

The instructive contrast with DEX: BOSCO's predicate is evaluated on the
*first* ``n − t`` votes only, whereas DEX keeps re-evaluating as further
(correct) proposals arrive — the adaptiveness gap that experiment E1
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..conditions.incremental import ViewStats
from ..errors import ResilienceError
from ..runtime.composite import CompositeProtocol
from ..runtime.effects import Broadcast, Decide, Deliver, Effect
from ..types import DecisionKind, ProcessId, SystemConfig, Value
from ..underlying.base import UC_DECIDE_TAG, UnderlyingConsensus
from ..underlying.oracle import OracleConsensus
from ..codec.schema import wire_record

UcFactory = Callable[[ProcessId, SystemConfig], UnderlyingConsensus]


@wire_record(tag=21)
@dataclass(frozen=True, slots=True)
class BoscoVote:
    """The single broadcast message of BOSCO."""

    value: Value


class BoscoConsensus(CompositeProtocol):
    """One process's BOSCO instance.

    Args:
        process_id: hosting process.
        config: ``n > 5t`` for ``variant="weak"``, ``n > 7t`` for
            ``variant="strong"``.
        proposal: the initial value.
        variant: which one-step property the deployment claims; the message
            flow is identical, only the resilience check differs.
        uc_factory: underlying-consensus child factory (defaults to the
            oracle abstraction, as for DEX).
    """

    RATIOS = {"weak": 5, "strong": 7}

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        proposal: Value,
        variant: str = "weak",
        uc_factory: UcFactory | None = None,
    ) -> None:
        if variant not in self.RATIOS:
            raise ValueError(f"variant must be 'weak' or 'strong', got {variant!r}")
        ratio = self.RATIOS[variant]
        if not config.satisfies(ratio):
            raise ResilienceError(
                f"BOSCO ({variant})", config.n, config.t, f"n > {ratio}t"
            )
        super().__init__(process_id, config)
        self.proposal = proposal
        self.variant = variant
        make_uc = uc_factory or (lambda pid, cfg: OracleConsensus(pid, cfg))
        self._uc = self.add_child("uc", make_uc(process_id, config))
        # Incremental tally: votes are binding per sender, so the running
        # top-count statistics make the one-shot evaluation O(1).
        self._votes = ViewStats(config.n)
        self._evaluated = False
        self.decided = False
        self.decision_kind: DecisionKind | None = None

    def on_start(self) -> list[Effect]:
        return [Broadcast(BoscoVote(self.proposal))]

    def on_own_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if not isinstance(payload, BoscoVote):
            return [self.log("bosco-ignored", sender=sender, payload=repr(payload))]
        try:
            hash(payload.value)
        except TypeError:
            return [self.log("bosco-unhashable-dropped", sender=sender)]
        self._votes.set_entry(sender, payload.value)
        if self._votes.known >= self.quorum and not self._evaluated:
            return self._evaluate()
        return []

    def _evaluate(self) -> list[Effect]:
        """The once-only threshold logic, on exactly the first ``n−t`` votes.

        Both thresholds exceed half of the ``n − t`` votes received, so at
        most one value can clear either and, when one does, it is the
        maintained most-frequent value — no scan over the tally needed.
        """
        self._evaluated = True
        top_value = self._votes.first()
        top_count = self._votes.first_count
        effects: list[Effect] = []
        if 2 * top_count > self.n + 3 * self.t:
            effects.extend(self._decide(top_value, DecisionKind.FAST))
        if 2 * top_count > self.n - self.t:
            next_proposal = top_value
        else:
            next_proposal = self.proposal
        effects.extend(self.child_call("uc", self._uc.propose(next_proposal)))
        return effects

    def on_child_output(self, name: str, effect) -> list[Effect]:
        if (
            name == "uc"
            and isinstance(effect, Deliver)
            and effect.tag == UC_DECIDE_TAG
            and not self.decided
        ):
            return self._decide(effect.value, DecisionKind.UNDERLYING)
        return []

    def _decide(self, value: Value, kind: DecisionKind) -> list[Effect]:
        self.decided = True
        self.decision_kind = kind
        return [Decide(value, kind)]
