"""Baseline consensus algorithms compared against DEX (paper Table 1)."""

from .bosco import BoscoConsensus, BoscoVote
from .brasileiro import BrasileiroConsensus, BrasileiroValue
from .crash_onestep import CrashValue, IzumiCrashConsensus, crash_one_step_level
from .sync_onestep import (
    SyncFlood,
    SyncOneStepConsensus,
    SyncRound1,
    sync_one_step_level,
)
from .twostep import TwoStepConsensus

__all__ = [
    "BoscoConsensus",
    "BoscoVote",
    "BrasileiroConsensus",
    "BrasileiroValue",
    "TwoStepConsensus",
    "IzumiCrashConsensus",
    "CrashValue",
    "crash_one_step_level",
    "SyncOneStepConsensus",
    "SyncRound1",
    "SyncFlood",
    "sync_one_step_level",
]
