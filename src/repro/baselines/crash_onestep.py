"""Adaptive condition-based one-step consensus for crash failures.

The Table 1 row "Izumi et.al [8]" (asynchronous, crash, ``3t+1``,
condition-based one-step): the adaptive condition-based approach was
introduced there, and DEX is its Byzantine descendant.  This implementation
is the crash-model skeleton of DEX — one view, one fast path, the
underlying consensus as fallback:

* broadcast the proposal; maintain the view ``J`` of first values;
* on every update with ``|J| ≥ n − t``: propose ``1st(J)`` to the
  underlying consensus (once), and decide ``1st(J)`` immediately when

  .. math:: \\#_{1st(J)}(J) - \\#_{2nd(J)}(J) > t + \\#_\\bot(J)

Why this predicate is safe under crashes (no lies, so every view is a
sub-vector of the input ``I``): if ``p`` decides ``a`` with ``k_p`` missing
entries, then in ``I`` the gap of ``a`` over any ``x`` exceeds
``t + k_p − k_p = t``; any other view ``J'`` misses at most ``t`` entries,
so ``a`` still leads by more than ``t − k' ≥ 0`` — every process's ``1st``
is ``a``, making both other fast deciders and every underlying-consensus
proposal agree with ``p``.

The guaranteed-fast-decision condition is adaptive exactly like DEX's:
with ``f`` actual crashes the view eventually misses only ``f`` entries,
so one-step decision is guaranteed for ``I ∈ C_freq(t + 2f)`` — the
sequence ``C_k = C_freq(t + 2k)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..conditions.incremental import ViewStats
from ..conditions.views import View
from ..errors import ResilienceError
from ..runtime.composite import CompositeProtocol
from ..runtime.effects import Broadcast, Decide, Deliver, Effect
from ..types import DecisionKind, ProcessId, SystemConfig, Value
from ..underlying.base import UC_DECIDE_TAG, UnderlyingConsensus
from ..underlying.oracle import OracleConsensus
from ..codec.schema import wire_record

UcFactory = Callable[[ProcessId, SystemConfig], UnderlyingConsensus]


@wire_record(tag=23)
@dataclass(frozen=True, slots=True)
class CrashValue:
    """The single broadcast message."""

    value: Value


def crash_one_step_level(vector: View, t: int) -> int | None:
    """Largest ``k`` with ``vector ∈ C_freq(t + 2k)`` (``k ≤ t``), i.e. the
    adaptive level of the crash-model one-step guarantee."""
    best = None
    for k in range(t + 1):
        if vector.frequency_gap() > t + 2 * k:
            best = k
        else:
            break
    return best


class IzumiCrashConsensus(CompositeProtocol):
    """One process's instance of the adaptive crash-model one-step scheme.

    Args:
        process_id: hosting process.
        config: must satisfy ``n > 3t`` (the Table 1 resilience of the row;
            the fast path itself only needs ``n > t``).
        proposal: initial value.
        uc_factory: underlying-consensus child factory.
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        proposal: Value,
        uc_factory: UcFactory | None = None,
    ) -> None:
        if not config.satisfies(3):
            raise ResilienceError("IzumiCrashConsensus", config.n, config.t, "n > 3t")
        super().__init__(process_id, config)
        self.proposal = proposal
        make_uc = uc_factory or (lambda pid, cfg: OracleConsensus(pid, cfg))
        self._uc = self.add_child("uc", make_uc(process_id, config))
        # Running view statistics — the predicate re-fires on every arrival
        # (the crash-model skeleton of DEX), so it pays the same O(1) way.
        self._stats = ViewStats(config.n)
        self.decided = False
        self.decision_kind: DecisionKind | None = None

    @property
    def view(self) -> View:
        return self._stats.as_view()

    def on_start(self) -> list[Effect]:
        self._stats.set_entry(self.process_id, self.proposal)
        return [Broadcast(CrashValue(self.proposal))] + self._check()

    def on_own_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if not isinstance(payload, CrashValue):
            return [self.log("izumi-ignored", sender=sender)]
        try:
            hash(payload.value)
        except TypeError:
            return [self.log("izumi-unhashable-dropped", sender=sender)]
        self._stats.set_entry(sender, payload.value)
        if self.decided and self._uc.has_proposed:
            return []
        return self._check()

    def _check(self) -> list[Effect]:
        stats = self._stats
        if stats.known < self.quorum:
            return []
        effects: list[Effect] = []
        if not self._uc.has_proposed:
            effects.extend(self.child_call("uc", self._uc.propose(stats.first())))
        missing = self.n - stats.known
        if not self.decided and stats.frequency_gap() > self.t + missing:
            effects.extend(self._decide(stats.first(), DecisionKind.ONE_STEP))
        return effects

    def on_child_output(self, name: str, effect) -> list[Effect]:
        if (
            name == "uc"
            and isinstance(effect, Deliver)
            and effect.tag == UC_DECIDE_TAG
            and not self.decided
        ):
            return self._decide(effect.value, DecisionKind.UNDERLYING)
        return []

    def _decide(self, value: Value, kind: DecisionKind) -> list[Effect]:
        self.decided = True
        self.decision_kind = kind
        return [Decide(value, kind)]
