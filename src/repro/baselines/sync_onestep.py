"""One-round condition-based consensus in the synchronous crash model.

The Table 1 row "Mostefaoui et.al [11]" (synchronous, crash, ``t+1``
processes, condition-based one-step decision).  Algorithm (runs on
:class:`repro.sim.synchronous.SynchronousSimulation`):

* **round 1** — broadcast the proposal; build the view ``V`` (``⊥`` for
  senders whose message was lost to a crash).  Decide ``1st(V)`` right at
  the end of round 1 when

  .. math:: \\#_{1st(V)}(V) - \\#_{2nd(V)}(V) > t + \\#_\\bot(V)

* **rounds 2 … t+1** — flood everything known (values per process and any
  decision already made); adopt a flooded decision immediately;
* **end of round t+1** — decide ``1st`` of the flooded view (classic
  synchronous flooding: with at most ``t`` crashes, some round is
  crash-free, so all correct processes share an identical final view).

Safety of the fast path (views are sub-vectors of the input under
crashes): a round-1 decision on ``a`` implies ``a`` leads every other
value by more than ``t`` in the full input, so every other round-1 view
still ranks ``a`` strictly first, and the flooded final view — which can
miss at most the ``t − 1`` other faulty entries of the decider's view —
still ranks ``a`` first as well.  With ``f`` actual crashes the round-1
view misses at most ``f`` entries, so one-round decision is guaranteed for
``I ∈ C_freq(t + 2f)`` — again the adaptive sequence ``C_k =
C_freq(t + 2k)``, now with resilience ``n > t``.

Validity is the standard synchronous-crash one (the decision was proposed
by *some* process); the stronger unanimity over correct proposals
additionally needs ``n > 2f``, since the model cannot distinguish a
crashed majority's proposals from correct ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..conditions.views import View
from ..sim.synchronous import SyncProtocol
from ..types import BOTTOM, ProcessId, SystemConfig, Value
from ..codec.schema import wire_record


@wire_record(tag=24)
@dataclass(frozen=True, slots=True)
class SyncRound1:
    """Round-1 proposal."""

    value: Value


@wire_record(tag=25)
@dataclass(frozen=True, slots=True)
class SyncFlood:
    """Flooding message for rounds ``2 … t+1``."""

    known: tuple[tuple[ProcessId, Value], ...]
    decided: tuple[Value] | None = None


def sync_one_step_level(vector: View, t: int) -> int | None:
    """Adaptive level of the synchronous one-round guarantee
    (``C_k = C_freq(t + 2k)``)."""
    best = None
    for k in range(t + 1):
        if vector.frequency_gap() > t + 2 * k:
            best = k
        else:
            break
    return best


class SyncOneStepConsensus(SyncProtocol):
    """One process of the synchronous one-round condition-based consensus."""

    def __init__(self, process_id: ProcessId, config: SystemConfig, proposal: Value) -> None:
        super().__init__(process_id, config)
        self.proposal = proposal
        self.known: dict[ProcessId, Value] = {process_id: proposal}
        self.decision: Value | None = None
        self.decided_round: int | None = None

    # -- helpers ----------------------------------------------------------------

    def _view(self) -> View:
        entries: list[Value] = [BOTTOM] * self.config.n
        for pid, value in self.known.items():
            entries[pid] = value
        return View(entries)

    def _flood(self) -> SyncFlood:
        return SyncFlood(
            known=tuple(sorted(self.known.items())),
            decided=(self.decision,) if self.decision is not None else None,
        )

    def _decide(self, value: Value, round_: int) -> None:
        if self.decision is None:
            self.decision = value
            self.decided_round = round_

    # -- SyncProtocol interface ---------------------------------------------------

    def first_message(self) -> SyncRound1:
        return SyncRound1(self.proposal)

    def on_round(
        self, round_: int, received: Mapping[ProcessId, Any]
    ) -> tuple[Any, Value | None]:
        if round_ == 1:
            for sender, message in received.items():
                if isinstance(message, SyncRound1):
                    self.known.setdefault(sender, message.value)
            view = self._view()
            missing = self.config.n - view.known
            if view.frequency_gap() > self.config.t + missing:
                self._decide(view.first(), round_)
        else:
            for sender, message in received.items():
                if not isinstance(message, SyncFlood):
                    continue
                for pid, value in message.known:
                    if isinstance(pid, int) and 0 <= pid < self.config.n:
                        self.known.setdefault(pid, value)
                if message.decided is not None:
                    self._decide(message.decided[0], round_)
            if round_ >= self.config.t + 1 and self.decision is None:
                self._decide(self._view().first(), round_)
        # Keep flooding even after deciding: laggards need the values.
        decision_now = self.decision if self.decided_round == round_ else None
        return self._flood(), decision_now
