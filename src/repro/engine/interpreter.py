"""The one effect interpreter shared by every execution backend.

Historically each runtime — the discrete-event :class:`~repro.sim.runner.
Simulation`, the :class:`~repro.runtime.asyncio_runner.AsyncioRunner`, the
model checker's :class:`~repro.mc.state.McSystem`, and the Byzantine
behavior wrappers — privately re-parsed the effect vocabulary of
:mod:`repro.runtime.effects`.  Four copies of ``isinstance(effect, Send)``
meant four places where the fast path and the fallback could drift apart,
which is fatal for a speculative-path consensus reproduction: the paper's
guarantees hold only if every engine gives effects *identical* semantics.

This module is now the only place that inspects effect types:

* :func:`interpret` turns an effect list into calls on an
  :class:`ExecutionPorts` implementation — the small port interface
  (``send``/``broadcast``/``decide``/``output``/``service_call``/
  ``log_record``) each backend provides.  Backends decide *scheduling*
  (virtual clock, event loop, pending multiset, lockstep rounds); the
  *meaning* of each effect is decided here, once.
* :func:`dispatch_service_call` owns the trusted-service calling
  convention (lookup, reply-path envelope wrapping) every backend shares.
* :class:`EffectRewriter` is the matching single dispatch path for code
  that *transforms* effect lists rather than executing them: Byzantine
  behavior wrappers (mutate/drop sends, censor upcalls) and composite
  protocols (wrap child traffic in envelopes, intercept child upcalls).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..errors import SimulationError
from ..runtime.effects import (
    Broadcast,
    Decide,
    Deliver,
    Effect,
    Envelope,
    Log,
    Send,
    ServiceCall,
)
from ..runtime.services import Service, ServiceReply
from ..types import ProcessId


class ExecutionPorts:
    """The port interface a backend implements to execute effects.

    Implementations must expose a ``config`` attribute (a
    :class:`~repro.types.SystemConfig`); the default :meth:`broadcast`
    fans out over ``config.processes`` in process-id order, which is the
    semantics every backend shares — a broadcast includes the sender's
    self-copy and enumerates destinations deterministically.

    The ``depth`` argument of :meth:`send`/:meth:`broadcast` is the causal
    depth *carried by the outgoing message* (the triggering event's depth
    plus one — :func:`interpret` adds the one); for the remaining ports it
    is the depth of the event being handled.
    """

    def send(self, src: ProcessId, dst: ProcessId, payload: Any, depth: int) -> None:
        """Ship one point-to-point message."""
        raise NotImplementedError

    def broadcast(self, src: ProcessId, payload: Any, depth: int) -> None:
        """Ship one message to every process, the sender included."""
        for dst in self.config.processes:  # type: ignore[attr-defined]
            self.send(src, dst, payload, depth)

    def decide(self, pid: ProcessId, value: Any, kind: Any, depth: int) -> None:
        """Record a terminal decision (backends keep first-decision-only)."""
        raise NotImplementedError

    def output(self, pid: ProcessId, effect: Deliver, depth: int) -> None:
        """Record a top-level protocol upcall."""
        raise NotImplementedError

    def service_call(self, pid: ProcessId, call: ServiceCall, depth: int) -> None:
        """Invoke a trusted service (usually via :func:`dispatch_service_call`)."""
        raise NotImplementedError

    def log_record(self, pid: ProcessId, record: Log, depth: int) -> None:
        """Record a structured trace effect; backends may drop it."""

    # -- convenience ---------------------------------------------------------------

    def interpret(self, pid: ProcessId, effects: list[Effect], depth: int) -> None:
        """Run :func:`interpret` against this backend."""
        interpret(self, pid, effects, depth)


def interpret(
    ports: ExecutionPorts, pid: ProcessId, effects: list[Effect], depth: int
) -> None:
    """Execute ``effects`` emitted by process ``pid`` at causal ``depth``.

    This is the single effect-interpretation code path of the library:
    every backend routes its handler results through here, so a new effect
    type (or a semantics fix) lands in exactly one place.
    """
    for effect in effects:
        if isinstance(effect, Send):
            ports.send(pid, effect.dst, effect.payload, depth + 1)
        elif isinstance(effect, Broadcast):
            ports.broadcast(pid, effect.payload, depth + 1)
        elif isinstance(effect, Decide):
            ports.decide(pid, effect.value, effect.kind, depth)
        elif isinstance(effect, Deliver):
            ports.output(pid, effect, depth)
        elif isinstance(effect, ServiceCall):
            ports.service_call(pid, effect, depth)
        elif isinstance(effect, Log):
            ports.log_record(pid, effect, depth)
        else:
            raise SimulationError(f"unknown effect {effect!r}")


def dispatch_service_call(
    services: Mapping[str, Service],
    pid: ProcessId,
    call: ServiceCall,
    depth: int,
    now: float,
    deliver_reply: Callable[[ServiceReply, Any], None],
) -> None:
    """The shared trusted-service calling convention.

    Looks up the service, executes the call synchronously, wraps each
    reply's payload in envelopes per its ``reply_path`` (outermost first on
    the wire, so wrapping iterates the path innermost-first), and hands
    ``(reply, wrapped_payload)`` to the backend's ``deliver_reply`` for
    scheduling.
    """
    service = services.get(call.service)
    if service is None:
        raise SimulationError(f"no service registered under {call.service!r}")
    for reply in service.on_call(pid, call.payload, depth, now, call.reply_path):
        payload: Any = reply.payload
        for component in reversed(reply.reply_path):
            payload = Envelope(component, payload)
        deliver_reply(reply, payload)


def expand_broadcasts(effects: list[Effect] | Any, config) -> list[Effect]:
    """Replace every ``Broadcast`` with one ``Send`` per process (id order).

    Used by adversary wrappers whose perturbations differ per receiver.
    """
    out: list[Effect] = []
    for effect in effects:
        if isinstance(effect, Broadcast):
            out.extend(Send(dst, effect.payload) for dst in config.processes)
        else:
            out.append(effect)
    return out


class EffectRewriter:
    """Single dispatch path for *transforming* effect lists.

    Subclasses override the ``rewrite_*`` visitors they care about; each
    visitor returns an effect (kept), ``None`` (dropped), or a list of
    effects (spliced in).  The defaults keep everything unchanged, so a
    rewriter only states its deviations from honest pass-through.

    With :attr:`rewriter_expands_broadcasts` set, every ``Broadcast`` is
    expanded into per-destination ``Send`` effects (process-id order,
    self-copy included) *before* visiting, so per-receiver perturbations —
    equivocation, selective omission, partial crashes — see each
    destination individually.  Expansion reads ``self.config``, which the
    Byzantine behavior wrappers (protocols) already carry.

    :meth:`stop_rewrite` aborts the current rewrite after the running
    visitor's result is applied — how a crashing process drops the tail of
    its own output.  The stop flag is saved and restored around each
    rewrite, so re-entrant rewrites (a composite routing a child's upcall
    into another child) cannot clobber an outer rewrite's state.
    """

    rewriter_expands_broadcasts = False

    def rewrite_effects(self, effects: list[Effect]) -> list[Effect]:
        outer = getattr(self, "_rewrite_stopped", False)
        self._rewrite_stopped = False
        out: list[Effect] = []
        try:
            for effect in effects:
                if self._rewrite_stopped:
                    break
                if self.rewriter_expands_broadcasts and isinstance(effect, Broadcast):
                    for dst in self.config.processes:  # type: ignore[attr-defined]
                        if self._rewrite_stopped:
                            break
                        self._emit(out, self.rewrite_send(Send(dst, effect.payload)))
                    continue
                self._emit(out, self._dispatch(effect))
        finally:
            self._rewrite_stopped = outer
        return out

    def stop_rewrite(self) -> None:
        """Drop every effect after the currently visited one."""
        self._rewrite_stopped = True

    # -- dispatch ------------------------------------------------------------------

    def _dispatch(self, effect: Effect) -> Effect | list[Effect] | None:
        if isinstance(effect, Send):
            return self.rewrite_send(effect)
        if isinstance(effect, Broadcast):
            return self.rewrite_broadcast(effect)
        if isinstance(effect, Decide):
            return self.rewrite_decide(effect)
        if isinstance(effect, Deliver):
            return self.rewrite_deliver(effect)
        if isinstance(effect, ServiceCall):
            return self.rewrite_service_call(effect)
        if isinstance(effect, Log):
            return self.rewrite_log(effect)
        return self.rewrite_other(effect)

    @staticmethod
    def _emit(out: list[Effect], result: Effect | list[Effect] | None) -> None:
        if result is None:
            return
        if isinstance(result, Effect):
            out.append(result)
        else:
            out.extend(result)

    # -- visitors (defaults: identity) -----------------------------------------------

    def rewrite_send(self, effect: Send) -> Effect | list[Effect] | None:
        return effect

    def rewrite_broadcast(self, effect: Broadcast) -> Effect | list[Effect] | None:
        return effect

    def rewrite_decide(self, effect: Decide) -> Effect | list[Effect] | None:
        return effect

    def rewrite_deliver(self, effect: Deliver) -> Effect | list[Effect] | None:
        return effect

    def rewrite_service_call(self, effect: ServiceCall) -> Effect | list[Effect] | None:
        return effect

    def rewrite_log(self, effect: Log) -> Effect | list[Effect] | None:
        return effect

    def rewrite_other(self, effect: Effect) -> Effect | list[Effect] | None:
        return effect


class CensoringRewriter(EffectRewriter):
    """Rewriter base for faulty-process wrappers: a Byzantine process's
    ``Decide``/``Deliver`` upcalls are meaningless to the experiment and
    are censored; everything else passes through the visitors."""

    def rewrite_decide(self, effect: Decide) -> None:
        return None

    def rewrite_deliver(self, effect: Deliver) -> None:
        return None
