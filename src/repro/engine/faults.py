"""The unified fault plane: one pluggable fault spec for every backend.

A :class:`Fault` says how one faulty process misbehaves; a
:class:`FaultPlane` owns a scenario's full fault mapping — validation
against the system bound and the algorithm's failure model, construction
of the per-process behavior protocols (identical wiring on the
discrete-event, asyncio, lockstep and model-checking backends), the
projection onto the synchronous round engine's crash schedule, and fault
activation announcements on the structured event stream.

Before this module the same concepts were split three ways:
``harness.Fault`` subclasses (moved here, re-exported from
:mod:`repro.harness` for compatibility), the wrapper protocols of
:mod:`repro.byzantine` (still the mechanism — faults *build* them), and
the pattern generators of :mod:`repro.workloads.failures` (now thin
constructors over these classes).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ..errors import ConfigurationError
from ..runtime.protocol import Protocol
from ..types import ProcessId, SystemConfig, Value
from .events import EventSink, FaultEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..harness import AlgorithmSpec

#: builds an honest protocol instance for a given initial value.
HonestFactory = Callable[[Value], Protocol]

__all__ = [
    "HonestFactory",
    "Fault",
    "Silent",
    "Crash",
    "CrashRecover",
    "Equivocate",
    "Garbage",
    "Spoiler",
    "Collapse",
    "Saboteur",
    "Custom",
    "FaultPlane",
    "RestartPlan",
    "restart_plans",
]


class Fault(abc.ABC):
    """How one faulty process misbehaves in a scenario."""

    #: fault class for model compatibility checks.
    model: str = "byzantine"

    @abc.abstractmethod
    def build(
        self,
        pid: ProcessId,
        config: SystemConfig,
        make_honest: HonestFactory,
        value: Value,
        spec: "AlgorithmSpec",
    ) -> Protocol:
        """Construct the behavior protocol for process ``pid``."""

    def describe(self) -> str:
        """One-line description for :class:`~repro.engine.events.FaultEvent`."""
        return ""


class Silent(Fault):
    """Crashed from the start: never sends a message."""

    model = "crash"

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        from ..byzantine.adversary import SilentBehavior

        return SilentBehavior(pid, config)


class Crash(Fault):
    """Run honestly, then crash after ``budget`` point-to-point messages.

    ``budget`` between ``1`` and ``n − 1`` crashes mid-broadcast of the
    initial proposal.
    """

    model = "crash"

    def __init__(self, budget: int) -> None:
        self.budget = budget

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        from ..byzantine.adversary import CrashBehavior

        return CrashBehavior(make_honest(value), self.budget)

    def describe(self) -> str:
        return f"budget={self.budget}"


class CrashRecover(Fault):
    """Crash at time ``at``, then (optionally) restart and rejoin.

    The crash-*recovery* fault class: unlike :class:`Crash`, which kills a
    process forever, the process comes back ``restart_after`` time units
    later with a freshly built protocol instance.  What the restarted
    instance remembers is the protocol's business — an in-memory protocol
    restarts amnesiac, a :class:`~repro.shard.service.ShardNode` with a
    :class:`~repro.durable.recovery.NodeDurability` replays its snapshot
    and WAL, then catches missed slots up from peers.

    Until the crash fires the process runs fully honestly, so ``build``
    simply returns the honest protocol; the *scheduling* of the kill and
    the relaunch is engine work (the sim queue's ``crash``/``restart``
    events, the net cluster's timed SIGKILL + re-fork), driven by the
    :class:`RestartPlan` projection below.

    Args:
        at: engine time of the kill (virtual seconds on the simulator,
            wall-clock seconds after Start on the net engine).
        restart_after: delay from kill to relaunch; ``None`` means the
            process stays down (pure timed crash-stop).
    """

    model = "crash"

    def __init__(self, at: float, restart_after: float | None = None) -> None:
        if at < 0:
            raise ConfigurationError("CrashRecover.at must be non-negative")
        if restart_after is not None and restart_after < 0:
            raise ConfigurationError(
                "CrashRecover.restart_after must be non-negative"
            )
        self.at = at
        self.restart_after = restart_after

    @property
    def recovers(self) -> bool:
        return self.restart_after is not None

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        return make_honest(value)

    def describe(self) -> str:
        if self.restart_after is None:
            return f"at={self.at}"
        return f"at={self.at} restart_after={self.restart_after}"


class Equivocate(Fault):
    """Two-faced: behave like an honest process proposing ``value_a`` to one
    half of the system and ``value_b`` to the other (Figure 2's attack,
    consistently applied at every protocol layer)."""

    def __init__(self, value_a: Value, value_b: Value) -> None:
        self.value_a = value_a
        self.value_b = value_b

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        from ..byzantine.adversary import TwoFacedBehavior

        return TwoFacedBehavior(make_honest(self.value_a), make_honest(self.value_b))

    def describe(self) -> str:
        return f"faces=({self.value_a!r}, {self.value_b!r})"


class Garbage(Fault):
    """Spray wire-shaped random payloads (robustness stressor)."""

    def __init__(
        self, values: Sequence[Value] = (0, 1, 2), fanout: int = 3, seed: int = 0
    ) -> None:
        self.values = list(values)
        self.fanout = fanout
        self.seed = seed

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        from ..byzantine.behaviors import RandomGarbageBehavior

        templates = list(spec.garbage_templates) or [value]
        return RandomGarbageBehavior(
            pid, config, templates, self.values, self.fanout, self.seed + pid
        )

    def describe(self) -> str:
        return f"fanout={self.fanout}"


class Spoiler(Fault):
    """Adaptive attack on the frequency conditions: observe the proposals,
    then vote for the runner-up value on both DEX layers (see
    :class:`repro.byzantine.targeted.SpoilerBehavior`)."""

    def __init__(self, fallback: Value, watch_threshold: int | None = None) -> None:
        self.fallback = fallback
        self.watch_threshold = watch_threshold

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        from ..byzantine.targeted import SpoilerBehavior

        return SpoilerBehavior(pid, config, self.fallback, self.watch_threshold)

    def describe(self) -> str:
        return f"fallback={self.fallback!r}"


class Collapse(Fault):
    """A priori gap collapser: immediately votes ``value`` on both DEX
    layers (see :class:`repro.byzantine.targeted.GapCollapser`)."""

    def __init__(self, value: Value) -> None:
        self.value = value

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        from ..byzantine.targeted import GapCollapser

        return GapCollapser(pid, config, self.value)

    def describe(self) -> str:
        return f"value={self.value!r}"


class Saboteur(Fault):
    """Poison the underlying consensus, then act honest: races an
    arbitrary ``UC_propose`` for ``uc_value`` before running the honest
    start code (see :class:`repro.byzantine.targeted.FallbackSaboteur`).
    Above the resilience bound this is provably harmless — which is
    exactly what scenarios deploying it are meant to confirm."""

    def __init__(self, uc_value: Value) -> None:
        self.uc_value = uc_value

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        from ..byzantine.targeted import FallbackSaboteur

        return FallbackSaboteur(make_honest(value), self.uc_value)

    def describe(self) -> str:
        return f"uc_value={self.uc_value!r}"


class Custom(Fault):
    """Escape hatch: any ``(pid, config, make_honest, value) -> Protocol``."""

    def __init__(self, factory: Callable[..., Protocol], model: str = "byzantine") -> None:
        self.factory = factory
        self.model = model

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        return self.factory(pid, config, make_honest, value)


class FaultPlane:
    """A scenario's validated fault mapping, applied uniformly everywhere.

    Args:
        config: system parameters (bounds the mapping's size by ``t``).
        faults: fault spec per faulty process id.
        failure_model: the deployed algorithm's failure model
            (``"byzantine"`` accepts every fault; ``"crash"`` rejects
            Byzantine ones — a crash-model algorithm run against a
            Byzantine adversary proves nothing).
        algorithm_name: used in error messages only.
    """

    def __init__(
        self,
        config: SystemConfig,
        faults: Mapping[ProcessId, Fault] | None = None,
        failure_model: str = "byzantine",
        algorithm_name: str = "<algorithm>",
    ) -> None:
        faults = dict(faults or {})
        if len(faults) > config.t:
            raise ConfigurationError(
                f"{len(faults)} faults exceed the declared bound t={config.t}"
            )
        for pid in faults:
            if pid not in range(config.n):
                raise ConfigurationError(
                    f"fault on p{pid} outside the process space of n={config.n}"
                )
        if failure_model == "crash":
            for pid, fault in faults.items():
                if fault.model != "crash":
                    raise ConfigurationError(
                        f"{algorithm_name} is a crash-model algorithm; fault "
                        f"{type(fault).__name__} on p{pid} is Byzantine"
                    )
        self.config = config
        self.faults = faults

    @property
    def faulty(self) -> frozenset[ProcessId]:
        return frozenset(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def get(self, pid: ProcessId) -> Fault | None:
        return self.faults.get(pid)

    def build(
        self,
        pid: ProcessId,
        make_honest: HonestFactory,
        value: Value,
        spec: "AlgorithmSpec",
    ) -> Protocol:
        """Build process ``pid``'s protocol: honest, or its fault's behavior."""
        fault = self.faults.get(pid)
        if fault is None:
            return make_honest(value)
        return fault.build(pid, self.config, make_honest, value, spec)

    def crash_schedule(self) -> dict[ProcessId, Any]:
        """Project the plane onto the synchronous round engine.

        Only crash-model faults have a projection: ``Silent`` becomes a
        round-1 crash delivered to nobody, ``Crash(budget)`` a round-1
        crash whose final message reaches the first ``budget`` processes —
        the same "prefix of the broadcast got out" asymmetry the
        message-budget semantics produce on the asynchronous backends.
        """
        from ..sim.synchronous import CrashEvent

        schedule: dict[ProcessId, CrashEvent] = {}
        for pid, fault in self.faults.items():
            if isinstance(fault, Silent):
                schedule[pid] = CrashEvent(round=1, delivered_to=frozenset())
            elif isinstance(fault, Crash):
                schedule[pid] = CrashEvent(
                    round=1,
                    delivered_to=frozenset(range(min(fault.budget, self.config.n))),
                )
            else:
                raise ConfigurationError(
                    f"fault {type(fault).__name__} on p{pid} has no synchronous "
                    "round-model projection (crash-model faults only)"
                )
        return schedule

    def announce(self, sink: EventSink | None, time: float = 0.0) -> None:
        """Emit one :class:`FaultEvent` per configured fault."""
        if sink is None:
            return
        for pid in sorted(self.faults):
            fault = self.faults[pid]
            sink.emit(
                FaultEvent(time, pid, fault=type(fault).__name__, detail=fault.describe())
            )

    def recovering(self) -> frozenset[ProcessId]:
        """Processes that crash but come back (``CrashRecover`` with a
        restart) — engines wait for their decisions and agreement checks
        include them, unlike crash-stop faulty processes."""
        return frozenset(
            pid
            for pid, fault in self.faults.items()
            if isinstance(fault, CrashRecover) and fault.recovers
        )


class RestartPlan:
    """One process's kill/relaunch schedule, projected off the fault plane.

    Args:
        at: engine time of the kill (``None`` = no scheduled kill; the
            plan only supplies the relaunch ``factory``, e.g. for chaos
            :class:`~repro.net.faults.ProcessCrash` restarts).
        restart_after: kill-to-relaunch delay (``None`` = stays down).
        factory: zero-argument builder of the restarted protocol instance
            — called *at restart time* (in the restarted child process on
            the net engine), so a durable protocol scans its disk state
            inside the factory.
    """

    def __init__(
        self,
        at: float | None,
        restart_after: float | None,
        factory: Callable[[], Protocol],
    ) -> None:
        self.at = at
        self.restart_after = restart_after
        self.factory = factory


def restart_plans(
    plane: FaultPlane, factory_for: Callable[[ProcessId], Callable[[], Protocol]]
) -> dict[ProcessId, RestartPlan]:
    """The engine-facing restart schedule for a plane's ``CrashRecover``
    faults.  ``factory_for(pid)`` supplies the relaunch builder."""
    plans: dict[ProcessId, RestartPlan] = {}
    for pid, fault in plane.faults.items():
        if isinstance(fault, CrashRecover):
            plans[pid] = RestartPlan(fault.at, fault.restart_after, factory_for(pid))
    return plans
