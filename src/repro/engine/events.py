"""Structured run events — the cross-engine observability layer.

Every backend emits the same typed events (message sent, message
delivered, decision, service call, fault activation, …) into an
:class:`EventSink`.  The legacy :class:`~repro.sim.trace.Tracer` is fed by
:class:`TracerSink` (exact record-for-record parity with the old inline
``tracer.record`` calls), metrics can be computed online by
:class:`EventStats`, and the model checker's counterexample replays record
an :class:`EventLog` instead of a backend-specific trace.

Events are frozen slotted dataclasses, so a recorded stream is hashable,
comparable and cheap; ``time`` is whatever clock the backend runs
(virtual simulated time, wall-clock offsets on asyncio, delivery index in
the model checker, round number in lockstep mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..types import DecisionKind, ProcessId

__all__ = [
    "RunEvent",
    "SendEvent",
    "DeliverEvent",
    "DecideEvent",
    "OutputEvent",
    "ServiceEvent",
    "FaultEvent",
    "HubSaturatedEvent",
    "LogEvent",
    "RestartEvent",
    "RoundEvent",
    "EventSink",
    "EventLog",
    "TracerSink",
    "TeeSink",
    "EventStats",
    "combine",
]


@dataclass(frozen=True, slots=True)
class RunEvent:
    """Base class: something observable happened at ``time`` on ``pid``."""

    time: float
    pid: ProcessId


@dataclass(frozen=True, slots=True)
class SendEvent(RunEvent):
    """``pid`` shipped a message to ``dst`` (once per destination)."""

    dst: ProcessId
    payload: Any
    depth: int


@dataclass(frozen=True, slots=True)
class DeliverEvent(RunEvent):
    """``pid`` received (and handled) a message from ``sender``."""

    sender: ProcessId
    payload: Any
    depth: int


@dataclass(frozen=True, slots=True)
class DecideEvent(RunEvent):
    """``pid`` decided ``value`` at causal ``step`` (first decision only)."""

    value: Any
    kind: DecisionKind
    step: int


@dataclass(frozen=True, slots=True)
class OutputEvent(RunEvent):
    """A top-level protocol upcall (e.g. a standalone IDB delivery)."""

    tag: str
    sender: ProcessId
    value: Any


@dataclass(frozen=True, slots=True)
class ServiceEvent(RunEvent):
    """``pid`` invoked trusted service ``service``."""

    service: str
    payload: Any


@dataclass(frozen=True, slots=True)
class FaultEvent(RunEvent):
    """A configured fault became active on ``pid``."""

    fault: str
    detail: str = ""


@dataclass(frozen=True, slots=True)
class LogEvent(RunEvent):
    """A protocol-level :class:`~repro.runtime.effects.Log` record."""

    event: str
    data: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class RestartEvent(RunEvent):
    """``pid`` came back from a crash-recovery restart (``node.restart``):
    the process is live again with a freshly built protocol instance and
    is about to replay and rejoin."""

    detail: str = ""


@dataclass(frozen=True, slots=True)
class RoundEvent(RunEvent):
    """The lockstep/synchronous engines advanced to ``round`` (pid is -1)."""

    round: int


@dataclass(frozen=True, slots=True)
class HubSaturatedEvent(RunEvent):
    """A transport hub's ready-queue depth crossed its high-water mark.

    ``pid`` is the *hub index* (hub 0 is the star/orchestrator hub; a mesh
    run has one per hub group), not a process id.  Emitted once per
    crossing — the hub latches and only re-arms after its queue drains
    below half the mark — so the stream records saturation *episodes*,
    not per-frame noise.  This is the observability behind the parallel-
    hub work: it says which hub, if any, is the bottleneck.
    """

    depth: int
    high_water: int


class EventSink:
    """Receives run events; the base class swallows everything.

    Backends call :meth:`emit` once per event.  Implement :meth:`emit` for
    a catch-all sink, or rely on a dispatching subclass.
    """

    def emit(self, event: RunEvent) -> None:  # pragma: no cover - interface
        pass


class EventLog(EventSink):
    """Record every event in order (list access via ``.events``)."""

    def __init__(self) -> None:
        self.events: list[RunEvent] = []

    def emit(self, event: RunEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_type(self, kind: type) -> list[RunEvent]:
        """The recorded events of one type, in emission order."""
        return [e for e in self.events if isinstance(e, kind)]

    def decisions(self) -> dict[ProcessId, DecideEvent]:
        """First decision per process."""
        out: dict[ProcessId, DecideEvent] = {}
        for e in self.events:
            if isinstance(e, DecideEvent) and e.pid not in out:
                out[e.pid] = e
        return out


class TracerSink(EventSink):
    """Adapt the event stream onto the legacy :class:`~repro.sim.trace.
    Tracer` record format, record for record identical to the inline
    ``tracer.record`` calls the runners used to make.  ``SendEvent``,
    ``FaultEvent`` and ``RoundEvent`` have no legacy counterpart and are
    dropped."""

    def __init__(self, tracer) -> None:
        self.tracer = tracer

    def emit(self, event: RunEvent) -> None:
        if isinstance(event, DeliverEvent):
            self.tracer.record(
                event.time,
                event.pid,
                "deliver",
                {"from": event.sender, "payload": event.payload, "depth": event.depth},
            )
        elif isinstance(event, DecideEvent):
            self.tracer.record(
                event.time,
                event.pid,
                "decide",
                {"value": event.value, "kind": event.kind.value, "step": event.step},
            )
        elif isinstance(event, OutputEvent):
            self.tracer.record(
                event.time,
                event.pid,
                f"output:{event.tag}",
                {"sender": event.sender, "value": event.value},
            )
        elif isinstance(event, ServiceEvent):
            self.tracer.record(
                event.time, event.pid, f"service-call:{event.service}", {"payload": event.payload}
            )
        elif isinstance(event, LogEvent):
            self.tracer.record(
                event.time, event.data.get("pid", event.pid), event.event, event.data
            )


class TeeSink(EventSink):
    """Fan one event stream out to several sinks."""

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def emit(self, event: RunEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)


class EventStats(EventSink):
    """Online per-run counters computed from the event stream alone —
    usable identically on every backend (see
    :mod:`repro.metrics.collectors`)."""

    def __init__(self) -> None:
        self.sends = 0
        self.delivers = 0
        self.service_calls = 0
        self.fault_activations = 0
        self.restarts = 0
        self.decide_steps: dict[ProcessId, int] = {}
        self.decide_kinds: dict[Any, int] = {}
        self.decide_times: dict[ProcessId, float] = {}

    def emit(self, event: RunEvent) -> None:
        if isinstance(event, SendEvent):
            self.sends += 1
        elif isinstance(event, DeliverEvent):
            self.delivers += 1
        elif isinstance(event, ServiceEvent):
            self.service_calls += 1
        elif isinstance(event, FaultEvent):
            self.fault_activations += 1
        elif isinstance(event, RestartEvent):
            self.restarts += 1
        elif isinstance(event, DecideEvent):
            if event.pid not in self.decide_steps:
                self.decide_steps[event.pid] = event.step
                self.decide_times[event.pid] = event.time
                self.decide_kinds[event.kind] = self.decide_kinds.get(event.kind, 0) + 1

    @property
    def one_step_fraction(self) -> float:
        """Fraction of deciders that decided in one communication step."""
        if not self.decide_steps:
            return 0.0
        fast = sum(1 for s in self.decide_steps.values() if s <= 1)
        return fast / len(self.decide_steps)


def combine(*sinks: EventSink | None) -> EventSink | None:
    """Collapse optional sinks: ``None`` if none given, the sink itself if
    exactly one, a :class:`TeeSink` otherwise.  Backends keep a single
    ``sink is not None`` check on their hot path."""
    real = [s for s in sinks if s is not None]
    if not real:
        return None
    if len(real) == 1:
        return real[0]
    return TeeSink(*real)
