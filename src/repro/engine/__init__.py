"""The shared execution substrate behind every runner.

Four backends execute the same sans-IO protocols — the deterministic
discrete-event :class:`~repro.sim.runner.Simulation`, the
:class:`~repro.runtime.asyncio_runner.AsyncioRunner`, the lockstep
:class:`~repro.sim.synchronous.LockstepSimulation` and the model checker's
:class:`~repro.mc.state.McSystem`.  This package owns what they share:

* :mod:`repro.engine.interpreter` — the single effect-interpretation code
  path (:func:`interpret` over the :class:`ExecutionPorts` interface) and
  the single effect-rewriting path (:class:`EffectRewriter`);
* :mod:`repro.engine.faults` — the unified fault plane;
* :mod:`repro.engine.events` — the typed run-event stream every backend
  emits into pluggable sinks.

Import discipline: this package imports only :mod:`repro.runtime`,
:mod:`repro.types` and :mod:`repro.errors` at module scope (backends and
behavior modules are imported lazily where needed), so every backend can
import the engine without cycles.
"""

from .events import (
    DecideEvent,
    DeliverEvent,
    EventLog,
    EventSink,
    EventStats,
    FaultEvent,
    LogEvent,
    OutputEvent,
    RoundEvent,
    RunEvent,
    SendEvent,
    ServiceEvent,
    TeeSink,
    TracerSink,
    combine,
)
from .faults import (
    Collapse,
    Crash,
    Custom,
    Equivocate,
    Fault,
    FaultPlane,
    Garbage,
    Saboteur,
    Silent,
    Spoiler,
)
from .interpreter import (
    CensoringRewriter,
    EffectRewriter,
    ExecutionPorts,
    dispatch_service_call,
    expand_broadcasts,
    interpret,
)

__all__ = [
    # interpreter
    "ExecutionPorts",
    "interpret",
    "dispatch_service_call",
    "expand_broadcasts",
    "EffectRewriter",
    "CensoringRewriter",
    # events
    "RunEvent",
    "SendEvent",
    "DeliverEvent",
    "DecideEvent",
    "OutputEvent",
    "ServiceEvent",
    "FaultEvent",
    "LogEvent",
    "RoundEvent",
    "EventSink",
    "EventLog",
    "EventStats",
    "TracerSink",
    "TeeSink",
    "combine",
    # faults
    "Fault",
    "FaultPlane",
    "Silent",
    "Crash",
    "Equivocate",
    "Garbage",
    "Spoiler",
    "Collapse",
    "Saboteur",
    "Custom",
]
