"""The hub group worker: one shard-slice hub as its own process.

A mesh run forks one :class:`HubWorker` per hub group ``1..hubs-1`` (hub 0
stays inside the orchestrator).  Each worker owns a listener that three
kinds of peers dial:

* **nodes** — every node holds one connection per hub and opens with the
  standard :class:`~repro.net.wire.Hello`; the worker routes their
  ``MsgSend`` frames exactly like the star hub (link-authenticated source,
  projected link plan, seeded jitter, delivery batching);
* **peer hubs** — open with :class:`~repro.mesh.wire.HubHello`; frames for
  a shard this hub owns arrive as :class:`~repro.mesh.wire.MsgRelay` and
  are delivered locally without re-checking ownership (attribution is
  deterministic, so a re-check could only agree — skipping it also makes
  relay loops impossible);
* **the orchestrator** — one control link (``HubHello(CONTROL_LINK)``)
  carrying lifecycle traffic (``Stop`` down, :class:`HubReady`/
  :class:`HubStats`/:class:`HubSaturated` up) and doubling as the relay
  route of last resort: a frame for a hub with no dialable endpoint goes
  up the control link and the orchestrator re-relays it.

What the worker deliberately does *not* do is observability: no event
sink, no payload materialization — binary payloads stay
:class:`~repro.codec.Opaque` spans end to end (``peek_shard`` reads the
shard tag off the raw bytes).  That is the mesh's scaling lever on a
single machine: hub 0 keeps the full event stream for the control plane,
data hubs do nothing per frame but route bytes.  Per-hub counters come
back in one :class:`HubStats` frame at teardown instead.
"""

from __future__ import annotations

import heapq
import os
import selectors
import socket
import time
from dataclasses import dataclass
from typing import Any

from ..codec import CODEC_IDS
from ..net.cluster import DEFAULT_HIGH_WATER, materialize_for
from ..net.faults import LinkPlan
from ..net.node import (
    EXIT_INTERNAL_ERROR,
    EXIT_OK,
    EXIT_RECV_TIMEOUT,
    connect_with_retry,
)
from ..net.wire import (
    CODEC_BINARY,
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    FrameTooLarge,
    Hello,
    MsgDeliver,
    MsgSend,
    Stop,
    batch_frames,
    encode_frame_into,
)
from ..errors import SimulationError
from ..shard.router import hub_of
from ..sim.latency import LognormalLatency
from ..types import ProcessId
from .topology import UNATTRIBUTED, hub_rng, shard_of_payload
from .wire import CONTROL_LINK, HubHello, HubReady, HubSaturated, HubStats, MsgRelay

__all__ = ["HubLink", "HubWorker", "hub_worker_main", "serve_hub"]

#: ``(family, address)`` of a dialable hub listener, or ``None`` when the
#: hub is reachable only through the orchestrator's control link.
Endpoint = tuple[int, Any] | None


class HubLink:
    """One dialed hub-facing link: framed sends through a reusable buffer.

    The dial-side counterpart of a hub's accepted connections — mesh nodes
    hold one per hub, hubs dial peers and the orchestrator dials its
    control links.  ``send`` reports failure instead of raising so callers
    decide per link whether a dead peer is fatal.
    """

    __slots__ = ("sock", "decoder", "codec", "max_frame", "_buf")

    def __init__(
        self,
        sock: socket.socket,
        codec: int,
        max_frame: int = DEFAULT_MAX_FRAME,
        lazy: bool = True,
    ) -> None:
        self.sock = sock
        self.codec = codec
        self.max_frame = max_frame
        self.decoder = FrameDecoder(max_frame, lazy=lazy)
        self._buf = bytearray()

    @classmethod
    def dial(
        cls,
        family: int,
        address: Any,
        hello: Any,
        codec: int,
        max_frame: int = DEFAULT_MAX_FRAME,
        lazy: bool = True,
    ) -> "HubLink":
        """Connect, announce with ``hello``, return the live link.

        Raises:
            SimulationError: the endpoint never accepted.
        """
        sock = connect_with_retry(family, address)
        link = cls(sock, codec, max_frame, lazy)
        link.send(hello)
        return link

    def send(self, msg: Any) -> bool:
        buf = self._buf
        buf.clear()
        try:
            encode_frame_into(msg, buf, self.codec, self.max_frame)
            self.sock.sendall(buf)
            return True
        except OSError:
            return False

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


@dataclass
class _HubConn:
    """One accepted (or dialed) connection, classified by its first frame."""

    sock: socket.socket
    decoder: FrameDecoder
    kind: str = "pending"  # pending | node | peer | control
    pid: ProcessId = -1
    hub: int = -2
    codec: int = CODEC_BINARY


class HubWorker:
    """The event loop of one hub group.

    Args:
        index: this hub's index (``>= 1``; hub 0 is the orchestrator).
        hubs: total hub groups in the mesh.
        shards: shard count (attribution needs it to bound shard tags).
        nodes: node connections to expect before reporting
            :class:`~repro.mesh.wire.HubReady`.
        listener: pre-bound listening socket (bound by the orchestrator
            before the fork, or by :func:`serve_hub` for a remote hub).
        endpoints: per-hub dialable addresses for peer relays (``None``
            entries route through the orchestrator's control link).
        seed: cluster seed; this hub draws from :func:`~repro.mesh.
            topology.hub_rng` stream ``index``.
        link_plan: the *full* cluster plan — projected onto this hub here,
            so per-fault budgets count only frames this hub routed.
    """

    def __init__(
        self,
        index: int,
        hubs: int,
        shards: int,
        nodes: int,
        listener: socket.socket,
        endpoints: list[Endpoint],
        seed: int = 0,
        mean_delay: float = 0.0005,
        jitter: str = "uniform",
        codec: int = CODEC_BINARY,
        max_frame: int = DEFAULT_MAX_FRAME,
        link_plan: LinkPlan | None = None,
        high_water: int = DEFAULT_HIGH_WATER,
    ) -> None:
        self.index = index
        self.hubs = hubs
        self.shards = shards
        self.nodes = nodes
        self.listener = listener
        self.endpoints = endpoints
        self.rng = hub_rng(seed, index)
        self.mean_delay = mean_delay
        self._lognormal = (
            LognormalLatency(mean_delay) if jitter == "lognormal" and mean_delay > 0
            else None
        )
        self.codec = codec
        self.max_frame = max_frame
        self.plan = (link_plan if link_plan is not None else LinkPlan()).project(index)
        self.high_water = high_water
        self._saturated = False
        # HubStats counters
        self.frames = 0  # frames written to node sockets
        self.bytes = 0  # bytes written to node sockets
        self.sent = 0  # MsgSend frames ingressed from nodes
        self.delivered = 0  # deliveries written (per message, not per frame)
        self.relayed = 0  # frames forwarded toward another hub
        self.saturation_episodes = 0
        self._node_conns: dict[ProcessId, _HubConn] = {}
        self._peer_conns: dict[int, _HubConn] = {}
        self._control: _HubConn | None = None
        self._ready_sent = False
        self._sel: selectors.BaseSelector | None = None
        self._send_buf = bytearray()
        # delay heap entries: (due, seq, dst, sender, payload, depth)
        self._heap: list[tuple[float, int, ProcessId, ProcessId, Any, int]] = []
        self._seq = 0

    # -- wiring ----------------------------------------------------------------------

    def _accept(self) -> None:
        try:
            sock, _ = self.listener.accept()
        except (TimeoutError, BlockingIOError, OSError):
            return
        sock.settimeout(1.0)
        if sock.family == socket.AF_INET:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _HubConn(sock, FrameDecoder(self.max_frame, lazy=True))
        assert self._sel is not None
        self._sel.register(sock, selectors.EVENT_READ, conn)

    def _classify(self, conn: _HubConn, msg: Any) -> None:
        """First frame on a fresh connection decides what it is."""
        if isinstance(msg, Hello):
            conn.kind = "node"
            conn.pid = msg.pid
            conn.codec = msg.codec if msg.codec in CODEC_IDS else self.codec
            old = self._node_conns.get(msg.pid)
            if old is not None:  # a restarted node re-dialed this hub
                self._drop(old)
            self._node_conns[msg.pid] = conn
            self._maybe_ready()
        elif isinstance(msg, HubHello):
            conn.codec = msg.codec if msg.codec in CODEC_IDS else self.codec
            if msg.hub == CONTROL_LINK:
                conn.kind = "control"
                self._control = conn
                self._maybe_ready()
            else:
                conn.kind = "peer"
                conn.hub = msg.hub
                self._peer_conns.setdefault(msg.hub, conn)
        else:
            self._drop(conn)

    def _maybe_ready(self) -> None:
        if (
            not self._ready_sent
            and self._control is not None
            and len(self._node_conns) >= self.nodes
        ):
            self._ready_sent = True
            self._write_conn(self._control, HubReady(self.index, len(self._node_conns)))

    def _drop(self, conn: _HubConn) -> None:
        if self._sel is not None:
            try:
                self._sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
        try:
            conn.sock.close()
        except OSError:
            pass
        if conn.kind == "node" and self._node_conns.get(conn.pid) is conn:
            del self._node_conns[conn.pid]
        elif conn.kind == "peer" and self._peer_conns.get(conn.hub) is conn:
            del self._peer_conns[conn.hub]
        elif conn.kind == "control" and self._control is conn:
            self._control = None

    # -- frame plumbing --------------------------------------------------------------

    def _write_conn(self, conn: _HubConn, msg: Any) -> bool:
        buf = self._send_buf
        buf.clear()
        try:
            encode_frame_into(
                materialize_for(conn.codec, msg), buf, conn.codec, self.max_frame
            )
            conn.sock.sendall(buf)
            return True
        except FrameTooLarge:
            raise
        except OSError:
            self._drop(conn)
            return False

    def _write_node(self, conn: _HubConn, msgs: list[Any]) -> bool:
        """Coalesce several frames to one node in a single ``sendall``."""
        buf = self._send_buf
        buf.clear()
        codec = conn.codec
        for msg in msgs:
            encode_frame_into(
                materialize_for(codec, msg), buf, codec, self.max_frame
            )
        try:
            conn.sock.sendall(buf)
            self.frames += len(msgs)
            self.bytes += len(buf)
            return True
        except OSError:
            self._drop(conn)
            return False

    def _jitter(self) -> float:
        if self._lognormal is not None:
            return self._lognormal.sample(self.rng, 0, 0)
        return self.rng.uniform(0.5, 1.5) * self.mean_delay

    def _schedule(
        self, dst: ProcessId, sender: ProcessId, payload: Any, depth: int, delay: float
    ) -> None:
        self._seq += 1
        heapq.heappush(
            self._heap,
            (time.monotonic() + delay, self._seq, dst, sender, payload, depth),
        )
        if not self._saturated and len(self._heap) >= self.high_water:
            self._saturated = True
            self.saturation_episodes += 1
            if self._control is not None:
                self._write_conn(
                    self._control,
                    HubSaturated(self.index, len(self._heap), self.high_water),
                )

    def _ingress(self, src: ProcessId, dst: ProcessId, payload: Any, depth: int) -> None:
        """One ``MsgSend`` off a node link: attribute, keep or relay."""
        self.sent += 1
        shard = shard_of_payload(payload, self.shards)
        owner = 0 if shard == UNATTRIBUTED else hub_of(shard, self.hubs)
        if owner != self.index:
            self._relay(owner, MsgRelay(src, dst, payload, depth))
            return
        self._deliver_in(src, dst, payload, depth)

    def _deliver_in(self, src: ProcessId, dst: ProcessId, payload: Any, depth: int) -> None:
        """Queue one owned message for delivery (fault plan + jitter)."""
        for extra in self.plan.route(src, dst, self.rng):
            base = 0.0 if dst == src else self._jitter()
            self._schedule(dst, src, payload, depth, base + extra)

    def _relay(self, owner: int, msg: MsgRelay) -> None:
        self.relayed += 1
        conn = self._peer_conns.get(owner)
        if conn is None and owner != 0:
            conn = self._dial_peer(owner)
        if conn is None:
            conn = self._control  # route of last resort: up to the orchestrator
        if conn is not None:
            try:
                self._write_conn(conn, msg)
            except FrameTooLarge:
                pass  # relay framing pushed it over the cap: drop the message

    def _dial_peer(self, owner: int) -> _HubConn | None:
        endpoint = (
            self.endpoints[owner] if 0 <= owner < len(self.endpoints) else None
        )
        if endpoint is None:
            return None
        try:
            link = HubLink.dial(
                endpoint[0],
                endpoint[1],
                HubHello(self.index, self.codec),
                self.codec,
                self.max_frame,
            )
        except SimulationError:
            return None
        conn = _HubConn(link.sock, link.decoder, "peer", hub=owner, codec=self.codec)
        self._peer_conns[owner] = conn
        assert self._sel is not None
        self._sel.register(conn.sock, selectors.EVENT_READ, conn)
        return conn

    def _deliver_due(self, now: float) -> None:
        if self._saturated and len(self._heap) <= self.high_water // 2:
            self._saturated = False  # episode over: re-arm the latch
        batches: dict[ProcessId, list[tuple[ProcessId, Any, int]]] = {}
        order: list[ProcessId] = []
        while self._heap and self._heap[0][0] <= now:
            _, _, dst, sender, payload, depth = heapq.heappop(self._heap)
            if dst not in batches:
                batches[dst] = []
                order.append(dst)
            batches[dst].append((sender, payload, depth))
        for dst in order:
            conn = self._node_conns.get(dst)
            if conn is None:
                continue  # dead or never-connected destination: drop, as the star does
            entries = batches[dst]
            frames, per_frame = batch_frames(entries)
            try:
                if self._write_node(conn, frames):
                    self.delivered += len(entries)
            except FrameTooLarge:
                # huge payloads: fall back to one frame per message
                for chunk in per_frame:
                    for entry in chunk:
                        live = self._node_conns.get(dst)
                        if live is None:
                            break
                        try:
                            if self._write_node(live, [MsgDeliver(*entry)]):
                                self.delivered += 1
                        except FrameTooLarge:
                            pass  # a single oversized frame: drop that message

    # -- frame handling --------------------------------------------------------------

    def _handle(self, conn: _HubConn, msg: Any) -> int | None:
        """Process one frame; a non-``None`` return exits the run loop."""
        if conn.kind == "pending":
            self._classify(conn, msg)
            return None
        if conn.kind == "node":
            if isinstance(msg, MsgSend):
                # src override: link-authenticated sender, as at the star hub
                self._ingress(conn.pid, msg.dst, msg.payload, msg.depth)
            # Control-plane frames belong on the node's hub-0 link; anything
            # else arriving here is misdirected and dropped.
            return None
        # control or peer link
        if isinstance(msg, MsgRelay):
            # Ownership was decided by the relaying hub with the same
            # deterministic attribution — deliver locally, never re-relay
            # (which also makes relay loops structurally impossible).
            self._deliver_in(msg.src, msg.dst, msg.payload, msg.depth)
        elif isinstance(msg, Stop) and conn.kind == "control":
            self._write_conn(
                conn,
                HubStats(
                    self.index,
                    self.frames,
                    self.bytes,
                    self.sent,
                    self.delivered,
                    self.relayed,
                    self.saturation_episodes,
                ),
            )
            return EXIT_OK
        return None

    def _pump(self, conn: _HubConn) -> int | None:
        try:
            data = conn.sock.recv(65536)
        except TimeoutError:
            return None
        except OSError:
            data = b""
        if not data:
            was_control = conn.kind == "control"
            self._drop(conn)
            # Orchestrator gone without a Stop: the run is over either way.
            return EXIT_OK if was_control else None
        for msg in conn.decoder.feed(data):
            code = self._handle(conn, msg)
            if code is not None:
                return code
        return None

    # -- the run ---------------------------------------------------------------------

    def run(self, deadline_seconds: float = 120.0) -> int:
        """Accept, route and deliver until Stop (or the failsafe deadline).

        The deadline exists for the same reason as the node's receive
        timeout: an orchestrator that died without closing its sockets
        must not wedge a forked hub forever.
        """
        sel = selectors.DefaultSelector()
        self._sel = sel
        self.listener.settimeout(0.0)
        sel.register(self.listener, selectors.EVENT_READ, None)
        deadline = time.monotonic() + deadline_seconds
        try:
            while True:
                now = time.monotonic()
                if now >= deadline:
                    return EXIT_RECV_TIMEOUT
                wait = min(deadline - now, 0.05)
                if self._heap:
                    wait = min(wait, max(self._heap[0][0] - now, 0.0))
                for key, _ in sel.select(wait):
                    if key.data is None:
                        self._accept()
                    else:
                        code = self._pump(key.data)
                        if code is not None:
                            return code
                self._deliver_due(time.monotonic())
        finally:
            for conn in list(self._node_conns.values()):
                self._drop(conn)
            for conn in list(self._peer_conns.values()):
                self._drop(conn)
            if self._control is not None:
                self._drop(self._control)
            sel.close()
            self._sel = None
            try:
                self.listener.close()
            except OSError:
                pass


def hub_worker_main(
    index: int,
    hubs: int,
    shards: int,
    nodes: int,
    listener: socket.socket,
    endpoints: list[Endpoint],
    seed: int,
    mean_delay: float,
    jitter: str,
    codec: int,
    max_frame: int,
    link_plan: LinkPlan | None,
    high_water: int,
    deadline_seconds: float,
) -> None:
    """Entry point of a forked hub worker process (never returns).

    Like :func:`~repro.net.node.node_main` it leaves via ``os._exit`` so a
    forked child cannot re-run the orchestrator's cleanup handlers.  The
    link plan is projected *here*, in the child, so the parent's pristine
    plan state is never mutated.
    """
    code = EXIT_INTERNAL_ERROR
    try:
        worker = HubWorker(
            index,
            hubs,
            shards,
            nodes,
            listener,
            endpoints,
            seed=seed,
            mean_delay=mean_delay,
            jitter=jitter,
            codec=codec,
            max_frame=max_frame,
            link_plan=link_plan,
            high_water=high_water,
        )
        code = worker.run(deadline_seconds)
    except Exception:
        code = EXIT_INTERNAL_ERROR
    os._exit(code)


def serve_hub(
    index: int,
    hubs: int,
    shards: int,
    nodes: int,
    host: str = "127.0.0.1",
    port: int = 0,
    peers: dict[int, tuple[str, int]] | None = None,
    seed: int = 0,
    mean_delay: float = 0.0005,
    jitter: str = "uniform",
    codec: int = CODEC_BINARY,
    max_frame: int = DEFAULT_MAX_FRAME,
    high_water: int = DEFAULT_HIGH_WATER,
    deadline_seconds: float = 300.0,
    announce: Any = None,
) -> int:
    """Run one hub group as a standalone TCP server (the ``repro hub``
    subcommand; multi-host meshes point ``MeshTopology.remote`` at it).

    ``announce`` is called with the bound ``(host, port)`` once listening
    — tests and shell scripts use it to learn an ephemeral port.  Returns
    the worker's exit code.  A remote hub gets no link plan: transport
    fault injection stays with hubs the orchestrator controls.
    """
    if index < 1 or index >= hubs:
        raise SimulationError(f"hub index {index} out of range [1, {hubs})")
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(nodes + hubs + 2)
    if announce is not None:
        announce(listener.getsockname())
    endpoints: list[Endpoint] = [None] * hubs
    for peer, address in (peers or {}).items():
        if 0 <= peer < hubs:
            endpoints[peer] = (socket.AF_INET, tuple(address))
    worker = HubWorker(
        index,
        hubs,
        shards,
        nodes,
        listener,
        endpoints,
        seed=seed,
        mean_delay=mean_delay,
        jitter=jitter,
        codec=codec,
        max_frame=max_frame,
        high_water=high_water,
    )
    return worker.run(deadline_seconds)
