"""The mesh orchestrator: hub 0 plus forked hub groups under one run.

:class:`MeshCluster` extends the star topology's :class:`~repro.net.
cluster.NetCluster` rather than replacing it — hub 0 *is* the base class:
the orchestrator keeps the listener, the event stream, the trusted
services, the fault plans, the liveness deadline and the crash-recovery
machinery, all unchanged.  The mesh adds, around that core:

* pre-bound listeners and forked :class:`~repro.mesh.hub.HubWorker`
  processes for hubs ``1..hubs-1`` (or dialed addresses for hubs the
  operator runs elsewhere via ``repro hub`` — ``MeshTopology.remote``);
* one control link per hub, registered in the same selector loop as the
  node connections — carrying :class:`~repro.mesh.wire.HubReady` (the
  Start barrier), :class:`~repro.mesh.wire.HubSaturated` (surfaced as
  typed events), relayed frames, and the final :class:`~repro.mesh.wire.
  HubStats`;
* mesh-aware node workers (:func:`~repro.mesh.node.mesh_node_main`) that
  dial every hub and steer data frames by shard;
* loud hub-failure semantics: a dead control link marks the hub failed,
  stalls the run (``timed_out``), and the post-mortem carries the hub's
  own exit code (``-9`` for a SIGKILLed hub) in
  ``NetRunResult.hub_exit_codes`` — a hub death can never hang a run.

With ``hubs == 1`` every override is a no-op and the cluster *is* a
``NetCluster``: same worker entry point, same RNG stream, same digests.

One observability caveat is inherent to the split: data hubs emit no
per-message events (that skipped work is the scaling win), so
``SendEvent``/``DeliverEvent`` streams cover hub-0 traffic only.
Per-slot latency metrics still work — ``shard.open``/``shard.decide``
log records are control traffic and land on hub 0 — and the per-hub
frame counters in the result prove where the load went.
"""

from __future__ import annotations

import multiprocessing
import os
import selectors
import socket
import time
from typing import Any, Mapping

from ..errors import SimulationError
from ..net.cluster import NetCluster, NetRunResult
from ..net.wire import MsgSend, Stop, WireError
from ..runtime.protocol import Protocol
from ..shard.router import hub_of
from ..types import ProcessId, SystemConfig
from .hub import Endpoint, HubLink, hub_worker_main
from .node import mesh_node_main
from .topology import UNATTRIBUTED, MeshTopology, shard_of_payload
from .wire import CONTROL_LINK, HubHello, HubReady, HubSaturated, HubStats, MsgRelay

__all__ = ["MeshCluster"]


class _HubCtl:
    """Orchestrator-side control link to one hub group."""

    __slots__ = ("hub", "link", "remote")

    def __init__(self, hub: int, link: HubLink, remote: bool) -> None:
        self.hub = hub
        self.link = link
        self.remote = remote

    @property
    def sock(self) -> socket.socket:
        return self.link.sock

    @property
    def decoder(self):
        return self.link.decoder


class MeshCluster(NetCluster):
    """A :class:`~repro.net.cluster.NetCluster` with parallel hub groups.

    Args:
        mesh: the :class:`~repro.mesh.topology.MeshTopology` — hub count,
            node-side routing mode, remote hub addresses, saturation
            watermark.
        shards: shard count of the workload; shard→hub attribution needs
            it on the orchestrator, every hub, and every node.
        (remaining arguments exactly as for ``NetCluster``.)
    """

    def __init__(
        self,
        config: SystemConfig,
        protocols: Mapping[ProcessId, Protocol],
        mesh: MeshTopology | None = None,
        shards: int = 1,
        **kwargs: Any,
    ) -> None:
        mesh = mesh if mesh is not None else MeshTopology()
        if mesh.remote and kwargs.get("transport", "uds") != "tcp":
            raise SimulationError("remote hubs need transport='tcp'")
        kwargs.setdefault("high_water", mesh.high_water)
        super().__init__(config, protocols, **kwargs)
        self.mesh = mesh
        self.shards = shards
        self._seed = kwargs.get("seed", 0)
        #: dialable per-hub endpoints, index 0 = the orchestrator's listener.
        self._endpoints: list[tuple[int, Any]] = []
        self._hub_ctl: dict[int, _HubCtl] = {}
        self._hub_procs: dict[int, Any] = {}
        self._hub_ready: set[int] = set()
        self._hub_stats: dict[int, HubStats] = {}
        self._hub_exit_codes: dict[int, int | None] = {}
        self._failed_hubs: set[int] = set()
        self._run_timeout = 30.0

    # -- wiring ----------------------------------------------------------------------

    def _make_listener(self) -> tuple[socket.socket, int, Any]:
        listener, family, address = super()._make_listener()
        self._endpoints = [(family, address)]
        if self.mesh.hubs > 1:
            self._start_hubs(family)
        return listener, family, address

    def _bind_hub_listener(self, hub: int, family: int) -> tuple[socket.socket, Any]:
        if family == socket.AF_UNIX:
            assert self._uds_dir is not None
            path = os.path.join(self._uds_dir, f"hub{hub}.sock")
            hub_listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            hub_listener.bind(path)
            hub_address: Any = path
        else:
            hub_listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            hub_listener.bind(("127.0.0.1", 0))
            hub_address = hub_listener.getsockname()
        hub_listener.listen(self.config.n + self.mesh.hubs + 2)
        return hub_listener, hub_address

    def _start_hubs(self, family: int) -> None:
        """Bind, fork (or record) every data hub, then dial control links.

        Listeners are bound *in the parent* before the fork, so a node's
        dial can never race a hub that has not bound yet — the kernel
        backlog holds the connection until the child's accept loop runs
        (the :class:`~repro.mesh.wire.HubReady` barrier then holds Start
        until the child finished its handshakes)."""
        ctx = multiprocessing.get_context("fork")
        deadline = self._run_timeout + self.connect_timeout + 30.0
        pending: list[tuple[int, socket.socket]] = []
        for hub in range(1, self.mesh.hubs):
            remote = self.mesh.remote.get(hub)
            if remote is not None:
                self._endpoints.append((socket.AF_INET, tuple(remote)))
                continue
            hub_listener, hub_address = self._bind_hub_listener(hub, family)
            self._endpoints.append((family, hub_address))
            pending.append((hub, hub_listener))
        # Peer endpoints as the hubs see them: hub 0 routes via control.
        peer_endpoints: list[Endpoint] = [None] + [
            self._endpoints[h] for h in range(1, self.mesh.hubs)
        ]
        for hub, hub_listener in pending:
            proc = ctx.Process(
                target=hub_worker_main,
                args=(
                    hub,
                    self.mesh.hubs,
                    self.shards,
                    self.config.n,
                    hub_listener,
                    peer_endpoints,
                    self._seed,
                    self.mean_delay,
                    self.jitter,
                    self.codec,
                    self.max_frame,
                    self.link_plan,
                    self.high_water,
                    deadline,
                ),
                daemon=True,
                name=f"repro-mesh-hub-{hub}",
            )
            proc.start()
            self._hub_procs[hub] = proc
            hub_listener.close()  # the child owns it now
        for hub in range(1, self.mesh.hubs):
            fam, addr = self._endpoints[hub]
            try:
                link = HubLink.dial(
                    fam,
                    addr,
                    HubHello(CONTROL_LINK, self.codec),
                    self.codec,
                    self.max_frame,
                )
            except SimulationError:
                self._failed_hubs.add(hub)
                self.events.fault(hub, "hub-lost", "control dial failed")
                continue
            link.sock.settimeout(1.0)
            self._hub_ctl[hub] = _HubCtl(hub, link, hub in self.mesh.remote)

    def _spawn(self, family: int, address: Any) -> dict[ProcessId, Any]:
        if self.mesh.hubs == 1:
            return super()._spawn(family, address)
        ctx = multiprocessing.get_context("fork")
        children = {}
        for pid in self.config.processes:
            proc = ctx.Process(
                target=mesh_node_main,
                args=(pid, self.protocols[pid], list(self._endpoints), self.shards),
                kwargs={
                    "route": self.mesh.route,
                    "codec": self.codec,
                    "max_frame": self.max_frame,
                    "crash": self.chaos.get(pid),
                },
                daemon=True,
                name=f"repro-mesh-node-{pid}",
            )
            proc.start()
            children[pid] = proc
        self._children = children
        return children

    def _relaunch(self, pid: ProcessId) -> None:
        if self.mesh.hubs == 1:
            super()._relaunch(pid)
            return
        plan = self.restarts.get(pid)
        ctx = multiprocessing.get_context("fork")
        if plan is not None:
            args: tuple[Any, ...] = (pid, None, list(self._endpoints), self.shards)
            kwargs: dict[str, Any] = {"build": plan.factory}
        else:
            args = (pid, self.protocols[pid], list(self._endpoints), self.shards)
            kwargs = {}
        proc = ctx.Process(
            target=mesh_node_main,
            args=args,
            kwargs={
                "route": self.mesh.route,
                "codec": self.codec,
                "max_frame": self.max_frame,
                **kwargs,
            },
            daemon=True,
            name=f"repro-mesh-node-{pid}-r",
        )
        proc.start()
        self._children[pid] = proc

    def _accept_all(self, listener: socket.socket) -> None:
        super()._accept_all(listener)
        self._await_hub_ready()

    def _await_hub_ready(self) -> None:
        """The Start barrier: hold until every hub reports its handshakes
        complete (a hub that never does is marked failed, which stalls the
        run loudly instead of dropping early frames silently)."""
        deadline = time.monotonic() + self.connect_timeout
        while time.monotonic() < deadline:
            pending = [
                hub
                for hub in self._hub_ctl
                if hub not in self._hub_ready and hub not in self._failed_hubs
            ]
            if not pending:
                break
            for hub in pending:
                ctl = self._hub_ctl.get(hub)
                if ctl is None:
                    continue
                ctl.sock.settimeout(0.1)
                try:
                    data = ctl.sock.recv(4096)
                except TimeoutError:
                    continue
                except OSError:
                    data = b""
                if not data:
                    self._hub_lost(ctl)
                    continue
                for msg in ctl.decoder.feed(data):
                    self._handle_hub(ctl, msg)
        for hub in self._hub_ctl:
            if hub not in self._hub_ready and hub not in self._failed_hubs:
                self._failed_hubs.add(hub)
                self.events.fault(hub, "hub-lost", "never reported ready")
        for ctl in self._hub_ctl.values():
            ctl.sock.settimeout(1.0)

    def _register_extra(self) -> None:
        assert self._selector is not None
        for hub, ctl in self._hub_ctl.items():
            if hub not in self._failed_hubs:
                self._selector.register(ctl.sock, selectors.EVENT_READ, ctl)

    # -- routing ---------------------------------------------------------------------

    def _owner_of(self, payload: Any) -> int:
        shard = shard_of_payload(payload, self.shards)
        return 0 if shard == UNATTRIBUTED else hub_of(shard, self.mesh.hubs)

    def _route(self, src: ProcessId, msg: MsgSend) -> None:
        if self.mesh.hubs > 1:
            owner = self._owner_of(msg.payload)
            if owner != 0:
                # A node handed hub 0 a frame another hub owns (the
                # ``hub0`` routing mode, or an unsteered client): count
                # and observe it here — the data hub won't — then relay.
                self.stats.messages_sent += 1
                self.events.send(src, msg.dst, msg.payload, msg.depth)
                ctl = self._hub_ctl.get(owner)
                if ctl is not None and owner not in self._failed_hubs:
                    ctl.link.send(MsgRelay(src, msg.dst, msg.payload, msg.depth))
                return
        super()._route(src, msg)

    def _ingress_relay(self, msg: MsgRelay) -> None:
        """A relayed frame arriving on a control link: deliver if hub 0
        owns it, forward to the owner's control link otherwise (the
        orchestrator is the relay switchboard for hubs without a direct
        peer endpoint)."""
        owner = self._owner_of(msg.payload)
        if owner == 0:
            # Already counted as sent by the ingressing hub; the fault
            # plan and jitter apply here because hub 0 owns delivery.
            for extra in self.link_plan.route(msg.src, msg.dst, self.rng):
                base = 0.0 if msg.dst == msg.src else self._jitter()
                self._schedule(msg.dst, msg.src, msg.payload, msg.depth, base + extra)
            return
        ctl = self._hub_ctl.get(owner)
        if ctl is not None and owner not in self._failed_hubs:
            ctl.link.send(msg)

    # -- hub control links -----------------------------------------------------------

    def _pump(self, conn: Any) -> None:
        if isinstance(conn, _HubCtl):
            self._pump_hub(conn)
            return
        super()._pump(conn)

    def _pump_hub(self, ctl: _HubCtl) -> None:
        try:
            data = ctl.sock.recv(65536)
        except TimeoutError:
            return
        except OSError:
            data = b""
        if not data:
            self._hub_lost(ctl)
            return
        for msg in ctl.decoder.feed(data):
            self._handle_hub(ctl, msg)

    def _handle_hub(self, ctl: _HubCtl, msg: Any) -> None:
        if isinstance(msg, MsgRelay):
            self._ingress_relay(msg)
        elif isinstance(msg, HubReady):
            self._hub_ready.add(msg.hub)
        elif isinstance(msg, HubSaturated):
            self.events.saturated(msg.hub, msg.depth, msg.high_water)
        elif isinstance(msg, HubStats):
            self._hub_stats[msg.hub] = msg

    def _hub_lost(self, ctl: _HubCtl) -> None:
        """A control link died mid-run: the hub is gone.  Mark it failed —
        the stall check then ends the run as timed out with the hub's exit
        code attributed in the post-mortem — never hang waiting on frames
        that can no longer arrive."""
        if ctl.hub in self._failed_hubs:
            return
        self._failed_hubs.add(ctl.hub)
        self.events.fault(ctl.hub, "hub-lost", f"control link to hub {ctl.hub} died")
        if self._selector is not None:
            try:
                self._selector.unregister(ctl.sock)
            except (KeyError, ValueError):
                pass
        ctl.link.close()

    # -- liveness --------------------------------------------------------------------

    def _stalled(self) -> bool:
        if self._failed_hubs and self.mesh.hubs > 1:
            return True  # a dead hub group cannot be routed around
        return super()._stalled()

    # -- teardown --------------------------------------------------------------------

    def _shutdown(self, listener: socket.socket) -> None:
        uds_dir = self._uds_dir
        super()._shutdown(listener)  # nodes get Stop; hub-0 housekeeping
        if self.mesh.hubs > 1:
            self._teardown_hubs()
            if uds_dir is not None:
                for hub in range(1, self.mesh.hubs):
                    try:
                        os.unlink(os.path.join(uds_dir, f"hub{hub}.sock"))
                    except OSError:
                        pass
                try:
                    os.rmdir(uds_dir)
                except OSError:
                    pass

    def _teardown_hubs(self) -> None:
        """Stop every hub, collect its :class:`HubStats`, reap the forked
        workers and record their exit codes."""
        # Let the node workers finish first (they exit promptly on the
        # Stop/EOF the base shutdown just issued) so a clean teardown
        # never looks like a hub death from a node's perspective.
        for proc in self._children.values():
            try:
                proc.join(timeout=1.0)
            except (ValueError, AssertionError):
                pass
        for hub, ctl in sorted(self._hub_ctl.items()):
            if hub in self._failed_hubs:
                continue
            ctl.link.send(Stop())
            deadline = time.monotonic() + 2.0
            ctl.sock.settimeout(0.5)
            while hub not in self._hub_stats and time.monotonic() < deadline:
                try:
                    data = ctl.sock.recv(4096)
                except (TimeoutError, OSError):
                    break
                if not data:
                    break
                try:
                    for msg in ctl.decoder.feed(data):
                        self._handle_hub(ctl, msg)
                except WireError:
                    break
            ctl.link.close()
        for hub, proc in sorted(self._hub_procs.items()):
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
            self._hub_exit_codes[hub] = proc.exitcode
            proc.close()
        self._hub_procs.clear()

    # -- the run ---------------------------------------------------------------------

    def run(self, timeout: float = 30.0) -> NetRunResult:
        self._run_timeout = timeout
        result = super().run(timeout)
        for hub, stats in sorted(self._hub_stats.items()):
            result.hub_frame_counts[hub] = stats.frames
            result.hub_byte_counts[hub] = stats.bytes
            result.hub_frames += stats.frames
            result.hub_bytes += stats.bytes
            result.stats.messages_sent += stats.sent
            result.stats.messages_delivered += stats.delivered
        result.hub_exit_codes.update(self._hub_exit_codes)
        return result
