"""Mesh control-plane records: hub handshakes, relay, and hub telemetry.

These travel on *hub-facing* links — the orchestrator's control link to
each hub worker, peer hub↔hub links, and a remote ``repro hub`` process's
listener — never on node links, which speak only the :mod:`repro.net.wire`
vocabulary.  Registered in the codec schema under a fresh tag block
(56–60) so golden frames pin them byte-for-byte like every other record.

A link's first frame classifies it: nodes open with
:class:`~repro.net.wire.Hello`, hubs and the orchestrator open with
:class:`HubHello`.  The orchestrator's control link (``hub == CONTROL_
LINK``) doubles as the relay channel for frames whose owning hub has no
direct endpoint, and carries the lifecycle traffic — ``Start``/``Stop``
downstream, :class:`HubReady`/:class:`HubStats`/:class:`HubSaturated`
upstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..codec.schema import wire_record
from ..types import ProcessId

__all__ = [
    "CONTROL_LINK",
    "HubHello",
    "MsgRelay",
    "HubStats",
    "HubSaturated",
    "HubReady",
]

#: ``HubHello.hub`` value announcing the orchestrator's control link
#: (distinct from every real hub index; zigzag varints encode it fine).
CONTROL_LINK = -1


@wire_record(tag=56)
@dataclass(frozen=True, slots=True)
class HubHello:
    """First frame on a hub-facing link; identifies the dialing side.

    ``hub`` is the dialer's hub index — :data:`CONTROL_LINK` when the
    dialer is the orchestrator.  ``codec`` announces the dialer's wire
    codec exactly like :attr:`~repro.net.wire.Hello.codec`."""

    hub: int
    codec: int = 0


@wire_record(tag=57, blobs=("payload",))
@dataclass(frozen=True, slots=True)
class MsgRelay:
    """Hub ↔ hub: one node→node message in flight to its owning hub.

    ``src`` is already link-authenticated by the hub that received the
    original :class:`~repro.net.wire.MsgSend` from the node — hubs trust
    each other (they are infrastructure we forked or the operator
    started), nodes are the Byzantine parties.  The payload is a blob
    field, so a relay hop splices the span without decoding it."""

    src: ProcessId
    dst: ProcessId
    payload: Any
    depth: int


@wire_record(tag=58)
@dataclass(frozen=True, slots=True)
class HubStats:
    """Hub → orchestrator: final per-hub counters, sent in reply to Stop.

    Folded into :class:`~repro.net.cluster.NetRunResult` —
    ``hub_frame_counts``/``hub_byte_counts`` per hub, totals into
    ``hub_frames``/``hub_bytes`` and the run stats."""

    hub: int
    frames: int
    bytes: int
    sent: int
    delivered: int
    relayed: int
    saturated: int


@wire_record(tag=59)
@dataclass(frozen=True, slots=True)
class HubSaturated:
    """Hub → orchestrator: the hub's ready queue crossed its high-water
    mark (latched per episode — see :class:`~repro.engine.events.
    HubSaturatedEvent`, which the orchestrator emits on receipt)."""

    hub: int
    depth: int
    high_water: int


@wire_record(tag=60)
@dataclass(frozen=True, slots=True)
class HubReady:
    """Hub → orchestrator: every expected node registered on this hub.

    The Start barrier: the orchestrator holds Start until all hubs report
    ready, so no node can race its peers' traffic ahead of a hub that has
    not finished its handshakes."""

    hub: int
    nodes: int
