"""Mesh topology configuration and the shard→hub routing contract.

A mesh run splits the star topology's single hub into *hub groups*: hub 0
stays inside the orchestrator (all control traffic — decisions, service
calls, logs, catch-up — lands there), while hubs ``1..hubs-1`` are forked
worker processes that each own a slice of the shard space.  Everything
that must agree across nodes, hubs and metrics lives here:

* :class:`MeshTopology` — the user-facing config surfaced through
  ``Scenario(mesh=...)`` / ``bench --hubs N``;
* :func:`hub_rng` — per-hub seeded RNG streams, so jitter and link-fault
  draws stay bit-identical run to run *per hub* regardless of arrival
  interleaving across hubs (and hub 0's stream equals the star hub's,
  keeping single-hub digests unchanged);
* :func:`shard_of_payload` / :func:`peek_shard` — shard attribution for a
  materialized envelope chain and for a raw binary-codec span, so a data
  hub can steer a frame without decoding its payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any

from ..codec import Opaque
from ..codec.binary import (
    TAG_ENVELOPE,
    CodecError,
    _COMPONENT_INSTANCE,
    _COMPONENT_STR,
    _COMPONENT_TABLE_BASE,
    _read_varint,
)
from ..codec.schema import parse_instance
from ..errors import SimulationError
from ..runtime.composite import Envelope

__all__ = [
    "ROUTES",
    "UNATTRIBUTED",
    "MeshTopology",
    "hub_rng",
    "shard_of_payload",
    "peek_shard",
]

#: How mesh nodes pick a hub for outgoing data frames.
#: ``"direct"`` — steer each frame to ``hub_of(shard)`` (the scaling path);
#: ``"hub0"`` — ship everything to hub 0 and let the hubs relay (exercises
#: the hub-to-hub forwarding path end to end).
ROUTES = ("direct", "hub0")

#: Shard index meaning "no shard tag found" — control traffic, pinned to hub 0.
UNATTRIBUTED = -1


@dataclass(frozen=True)
class MeshTopology:
    """Parallel-hub layout for the socket engine.

    Args:
        hubs: number of hub groups.  ``1`` degenerates to the star
            topology (no hub workers are forked).
        route: node-side steering mode (see :data:`ROUTES`).
        remote: hub index → ``(host, port)`` for hubs served by a separate
            process/host (started with ``repro hub`` — see
            :func:`repro.mesh.hub.serve_hub`).  The orchestrator dials
            these over TCP instead of forking them; hub 0 can never be
            remote (it *is* the orchestrator).
        high_water: per-hub ready-queue saturation watermark (see
            :class:`~repro.engine.events.HubSaturatedEvent`).
    """

    hubs: int = 1
    route: str = "direct"
    remote: dict[int, tuple[str, int]] = field(default_factory=dict)
    high_water: int = 512

    def __post_init__(self) -> None:
        if self.hubs < 1:
            raise SimulationError("a mesh needs at least one hub group")
        if self.route not in ROUTES:
            raise SimulationError(
                f"unknown mesh route {self.route!r} (one of: {', '.join(ROUTES)})"
            )
        for hub in self.remote:
            if not 1 <= hub < self.hubs:
                raise SimulationError(
                    f"remote hub index {hub} out of range [1, {self.hubs})"
                    " — hub 0 is the orchestrator and cannot be remote"
                )
        if self.high_water < 1:
            raise SimulationError("high_water must be positive")


def hub_rng(seed: int, hub: int) -> Random:
    """The seeded RNG stream of one hub.

    Hub 0's stream is exactly ``Random(seed)`` — the star hub's stream —
    so a one-hub mesh (and hub 0 of any mesh) draws the identical jitter
    sequence as a plain net run and digests stay comparable.  Other hubs
    get independent streams derived from the seed and their index, so a
    multi-hub run is deterministic per hub no matter how frame arrivals
    interleave across hubs.
    """
    if hub == 0:
        return Random(seed)
    return Random((seed + 1) * 1_000_003 + hub)


def shard_of_payload(payload: Any, shards: int) -> int:
    """Shard owning a materialized payload, or :data:`UNATTRIBUTED`.

    Unwraps the envelope chain (``Envelope("mux", Envelope("s<shard>.
    <slot>", …))``) exactly like the metrics layer; an
    :class:`~repro.codec.Opaque` span is peeked without materializing.
    """
    if type(payload) is Opaque:
        return peek_shard(payload.data, shards)
    seen = 0
    while isinstance(payload, Envelope) and seen < 8:
        key = parse_instance(payload.component)
        if key is not None and 0 <= key[0] < shards:
            return key[0]
        payload = payload.payload
        seen += 1
    return UNATTRIBUTED


def peek_shard(data: bytes, shards: int) -> int:
    """Read the shard tag off a raw binary-codec span without decoding.

    The span of an enveloped payload starts with ``TAG_ENVELOPE`` and its
    component; an instance component (``s<shard>.<slot>``) is two varints
    right there in the header, so steering costs a few byte reads instead
    of a payload decode.  Non-instance components (interned table names
    like ``"mux"``, or raw strings) are skipped and the nested payload is
    peeked, mirroring the envelope-chain walk on materialized values.
    Anything unrecognized — including a truncated or hostile span —
    answers :data:`UNATTRIBUTED`, never raises: unattributable traffic
    goes to hub 0 like any control frame.
    """
    pos = 0
    try:
        for _ in range(8):
            if pos >= len(data) or data[pos] != TAG_ENVELOPE:
                return UNATTRIBUTED
            pos += 1
            kind = data[pos]
            pos += 1
            if kind == _COMPONENT_INSTANCE:
                shard, pos = _read_varint(data, pos)
                return shard if 0 <= shard < shards else UNATTRIBUTED
            if kind == _COMPONENT_STR:
                length, pos = _read_varint(data, pos)
                pos += length
            elif kind < _COMPONENT_TABLE_BASE:
                return UNATTRIBUTED
            # table component: the single kind byte was the whole encoding
    except (IndexError, CodecError):
        return UNATTRIBUTED
    return UNATTRIBUTED
