"""The mesh node worker: one protocol, one socket per hub group.

:class:`MeshNodeWorker` extends the star topology's
:class:`~repro.net.node.NodeWorker` with hub steering: the node holds one
connection per hub (``socks[0]`` is hub 0, the orchestrator) and routes
each outgoing data frame to the hub owning its shard, while everything
control-plane — decisions, outputs, service calls, log records, and every
unattributable payload — stays pinned to hub 0, where the orchestrator's
event stream and services live.  Frame *semantics* are untouched: the
worker reuses the base class's ``_dispatch`` for inbound frames and
``_write_to`` for outbound ones, so the mesh cannot drift from the star
on anything but which socket a frame takes.

The failure contract is deliberately loud: EOF on the hub-0 link means
the run is over (exit 0, as on the star), but EOF on a *data* hub link is
:data:`EXIT_HUB_LOST` — a node that lost its shard traffic must not keep
limping on the control link, and the distinct exit code lets the
orchestrator's post-mortem attribute the death to the hub, not the node.
"""

from __future__ import annotations

import os
import selectors
import socket
import time
from typing import Any

from ..errors import SimulationError
from ..net.faults import NODE_ENV_MARKER, ProcessCrash
from ..net.node import (
    EXIT_CONNECT_FAILED,
    EXIT_INTERNAL_ERROR,
    EXIT_OK,
    EXIT_RECV_TIMEOUT,
    NodeWorker,
    connect_with_retry,
)
from ..net.wire import (
    CODEC_BINARY,
    CODEC_PICKLE,
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    Hello,
    MsgSend,
)
from ..codec.binary import wrap_opaque
from ..runtime.protocol import Protocol
from ..shard.router import hub_of
from ..types import ProcessId
from .topology import UNATTRIBUTED, shard_of_payload

__all__ = ["EXIT_HUB_LOST", "MeshNodeWorker", "mesh_node_main"]

#: The node lost a data-hub connection mid-run.  Distinct from every
#: star-topology exit code so hub failures attribute to the hub.
EXIT_HUB_LOST = 6


class MeshNodeWorker(NodeWorker):
    """A node worker steering data frames across several hub links.

    Args:
        socks: one connected socket per hub, indexed by hub; ``socks[0]``
            is the orchestrator and becomes the base class's ``sock`` (so
            every inherited control-plane write lands on hub 0).
        shards: shard count for payload attribution.
        route: ``"direct"`` steers by shard; ``"hub0"`` sends everything
            to hub 0 (exercising the hub-to-hub relay path end to end).
    """

    def __init__(
        self,
        pid: ProcessId,
        protocol: Protocol,
        socks: list[socket.socket],
        shards: int,
        route: str = "direct",
        codec: int = CODEC_PICKLE,
        max_frame: int = DEFAULT_MAX_FRAME,
        crash: ProcessCrash | None = None,
    ) -> None:
        if not socks:
            raise SimulationError("a mesh node needs at least the hub-0 socket")
        super().__init__(pid, protocol, socks[0], codec, max_frame, crash)
        self.socks = socks
        self.shards = shards
        self.route = route

    def _data_sock(self, payload: Any) -> socket.socket:
        """The hub link this payload travels on (attribution pre-wrap:
        the payload is still a real envelope chain here, so steering never
        needs to peek encoded bytes on the node side)."""
        if self.route != "direct" or len(self.socks) == 1:
            return self.socks[0]
        shard = shard_of_payload(payload, self.shards)
        if shard == UNATTRIBUTED:
            return self.socks[0]
        return self.socks[hub_of(shard, len(self.socks))]

    def send(self, src: ProcessId, dst: ProcessId, payload: Any, depth: int) -> None:
        sock = self._data_sock(payload)
        if self.codec == CODEC_BINARY:
            if payload is not self._cached_payload:
                self._cached_payload = payload
                self._cached_opaque = wrap_opaque(payload)
            payload = self._cached_opaque
        self._write_to(sock, MsgSend(src, dst, payload, depth))

    def run(self, recv_timeout: float = 60.0) -> int:
        """Select over every hub link; frames dispatch exactly as on the
        star.  The receive timeout spans *all* links — any inbound frame
        re-arms it — because an idle data hub is normal while the failsafe
        still has to catch a wholly dead cluster."""
        sel = selectors.DefaultSelector()
        try:
            for hub, sock in enumerate(self.socks):
                sock.settimeout(recv_timeout)
                sel.register(
                    sock, selectors.EVENT_READ, (hub, FrameDecoder(self.max_frame))
                )
            for sock in self.socks:
                self._write_to(sock, Hello(self.pid, self.codec))
            self._hello_sent = True
            self._sent = 0
            deadline = time.monotonic() + recv_timeout
            while True:
                now = time.monotonic()
                if now >= deadline:
                    return EXIT_RECV_TIMEOUT
                for key, _ in sel.select(min(deadline - now, 0.5)):
                    hub, decoder = key.data
                    try:
                        data = key.fileobj.recv(65536)
                    except TimeoutError:
                        continue
                    except OSError:
                        return EXIT_OK if hub == 0 else EXIT_HUB_LOST
                    if not data:
                        # Hub 0 closing = orderly end of run; a data hub
                        # closing = the hub died out from under us.
                        return EXIT_OK if hub == 0 else EXIT_HUB_LOST
                    deadline = time.monotonic() + recv_timeout
                    for msg in decoder.feed(data):
                        if not self._dispatch(msg):
                            return EXIT_OK
        finally:
            sel.close()


def mesh_node_main(
    pid: ProcessId,
    protocol: Protocol | None,
    endpoints: list[tuple[int, Any]],
    shards: int,
    route: str = "direct",
    codec: int = CODEC_PICKLE,
    max_frame: int = DEFAULT_MAX_FRAME,
    crash: ProcessCrash | None = None,
    recv_timeout: float = 60.0,
    build: Any = None,
) -> None:
    """Entry point of a forked mesh worker (never returns) — the mesh
    counterpart of :func:`~repro.net.node.node_main`, dialing every hub
    endpoint in index order before running."""
    os.environ[NODE_ENV_MARKER] = "1"
    code = EXIT_INTERNAL_ERROR
    socks: list[socket.socket] = []
    try:
        if build is not None:
            protocol = build()
        for family, address in endpoints:
            socks.append(connect_with_retry(family, address))
        worker = MeshNodeWorker(
            pid, protocol, socks, shards, route, codec, max_frame, crash
        )
        code = worker.run(recv_timeout)
    except SimulationError:
        code = EXIT_CONNECT_FAILED
    except OSError:
        code = EXIT_OK  # a hub went away mid-write: the run is over
    except Exception:
        code = EXIT_INTERNAL_ERROR
    finally:
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
    os._exit(code)
