"""repro.mesh — parallel hub groups and multi-host transport.

The socket engine's answer to the single-hub ceiling (EXPERIMENTS E19):
instead of one orchestrator process routing every frame, a mesh run
splits the shard space across *hub groups* — hub 0 stays inside the
orchestrator and keeps the control plane (events, services, liveness,
fault plans), while each extra hub is its own process routing only the
shard traffic it owns, relaying stray frames hub-to-hub.  Hubs can live
on other hosts (``repro hub`` + :attr:`MeshTopology.remote`), which is
what the versioned per-frame codec negotiation was for.

Entry points: :class:`MeshTopology` (surfaced as ``Scenario(mesh=...)``
and ``--hubs N`` on the CLI) and :class:`MeshCluster` (constructed by the
harness when a topology is present).
"""

from .cluster import MeshCluster
from .hub import HubLink, HubWorker, serve_hub
from .node import EXIT_HUB_LOST, MeshNodeWorker, mesh_node_main
from .topology import MeshTopology, hub_rng, peek_shard, shard_of_payload
from .wire import CONTROL_LINK, HubHello, HubReady, HubSaturated, HubStats, MsgRelay

__all__ = [
    "MeshTopology",
    "MeshCluster",
    "HubWorker",
    "HubLink",
    "serve_hub",
    "MeshNodeWorker",
    "mesh_node_main",
    "EXIT_HUB_LOST",
    "hub_rng",
    "peek_shard",
    "shard_of_payload",
    "CONTROL_LINK",
    "HubHello",
    "HubReady",
    "HubSaturated",
    "HubStats",
    "MsgRelay",
]
