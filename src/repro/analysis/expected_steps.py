"""Closed-form expected decision-step bounds under the two-value model.

Combining the guarantee probabilities of
:mod:`repro.analysis.closed_form` with each algorithm's step structure
(E13) gives an analytic counterpart of the E2 latency curves.  Using
*guarantees* (worst-case schedules) rather than opportunistic behavior,
the numbers are upper bounds on the slowest correct decision step:

* DEX-freq:   ``1·P(C¹_f) + 2·(P(C²_f) − P(C¹_f)) + (2 + u)·(1 − P(C²_f))``
* BOSCO:      ``1·P(G_f)  + (1 + u)·(1 − P(G_f))``
* two-step:   ``u`` always,

where ``u`` is the underlying consensus' step cost (2 = failure-free
optimum) and ``P(G_f)`` BOSCO's worst-case one-step guarantee.  The bench
E2 measures schedules more favourable than worst case, so measured means
must sit at or below these bounds — a consistency check the test suite
enforces — and the :func:`crossover_contention` solver locates the
workload where DEX's bound crosses the two-step baseline, the analytic
version of E2's crossover.
"""

from __future__ import annotations

from .closed_form import (
    bosco_one_step,
    dex_freq_one_step,
    dex_freq_two_step,
)


def dex_freq_expected_steps(
    n: int, t: int, f: int, q: float, uc_cost: int = 2
) -> float:
    """Upper bound on DEX-freq's expected slowest decision step."""
    p1 = dex_freq_one_step(n, t, f, q)
    p2 = dex_freq_two_step(n, t, f, q)
    return 1.0 * p1 + 2.0 * (p2 - p1) + (2.0 + uc_cost) * (1.0 - p2)


def bosco_expected_steps(n: int, t: int, f: int, q: float, uc_cost: int = 2) -> float:
    """Upper bound on BOSCO's expected slowest decision step."""
    p = bosco_one_step(n, t, f, q)
    return 1.0 * p + (1.0 + uc_cost) * (1.0 - p)


def twostep_expected_steps(uc_cost: int = 2) -> float:
    """The zero-degradation baseline: always the underlying cost."""
    return float(uc_cost)


def crossover_contention(
    n: int,
    t: int,
    f: int = 0,
    uc_cost: int = 2,
    algorithm: str = "dex",
    tolerance: float = 1e-4,
) -> float:
    """The favourite-probability ``q*`` where the algorithm's expected-step
    bound equals the two-step baseline's.

    For ``q > q*`` the fast-path algorithm's *worst-case bound* beats the
    plain two-step design; below it, the fallback dominates.  Solved by
    bisection (the bounds are monotone in ``q`` on ``[0.5, 1]``).

    Args:
        algorithm: ``"dex"`` or ``"bosco"``.
    """
    if algorithm == "dex":
        bound = lambda q: dex_freq_expected_steps(n, t, f, q, uc_cost)  # noqa: E731
    elif algorithm == "bosco":
        bound = lambda q: bosco_expected_steps(n, t, f, q, uc_cost)  # noqa: E731
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    target = twostep_expected_steps(uc_cost)
    low, high = 0.5, 1.0
    if bound(high) > target:
        return 1.0  # never beats the baseline (in the worst-case bound)
    if bound(low) <= target:
        return 0.5  # always at or below the baseline
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if bound(mid) <= target:
            high = mid
        else:
            low = mid
    return (low + high) / 2.0
