"""Condition coverage: *which inputs* decide fast, and for how many faults.

The paper's central quantitative claim (§1.2, Table 1) is that DEX's
condition-based fast paths cover **more inputs** than the
agreed-proposal fast paths of prior one-step algorithms, and that the
coverage *adapts* — it grows as the actual failure count ``f`` shrinks.
This module computes that coverage two ways:

* **analytically** — worst-case-schedule guarantees derived from the
  conditions themselves (Lemmas 4/5 for DEX) and from the thresholds of
  the baselines;
* **exactly / by Monte-Carlo** — fractions of the input space (or of a
  workload distribution) covered, enumerated exhaustively for small
  ``(n, |V|)`` and sampled otherwise.

Guarantee formulas (``c_v`` = copies of ``v`` among **correct** entries,
adversary controls schedule and Byzantine entries):

* DEX one-/two-step: input ``I ∈ C¹_f`` / ``I ∈ C²_f`` (Lemmas 4 and 5);
* BOSCO: decide requires more than ``(n + 3t)/2`` matching votes among the
  first ``n − t``; the adversary delays ``t`` honest ``v``-voters and
  makes all ``f`` Byzantine processes vote otherwise, so the guarantee is
  ``c_v − t > (n + 3t)/2``;
* Brasileiro (crash): all first ``n − t`` values must match with crashes
  only, so ``c_v − t ≥ n − t``, i.e. every correct process proposes ``v``
  (the classic "agreed proposals" situation).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..conditions.base import ConditionSequencePair
from ..conditions.generators import all_vectors, multiset_vectors
from ..conditions.views import View
from ..types import BOTTOM, SystemConfig, Value


def correct_count(vector: View, value: Value, faulty: Iterable[int]) -> int:
    """Copies of ``value`` among the non-faulty entries of ``vector``."""
    faulty_set = frozenset(faulty)
    return sum(
        1 for i, v in enumerate(vector) if v == value and i not in faulty_set
    )


# -- per-vector guarantees ------------------------------------------------------------


def dex_one_step_guaranteed(pair: ConditionSequencePair, vector: View, f: int) -> bool:
    """Lemma 4: one-step decision guaranteed iff ``I ∈ C¹_f`` (``f ≤ t``)."""
    level = pair.one_step_level(vector)
    return level is not None and level >= f


def dex_two_step_guaranteed(pair: ConditionSequencePair, vector: View, f: int) -> bool:
    """Lemma 5: two-step decision guaranteed iff ``I ∈ C²_f`` (``f ≤ t``)."""
    level = pair.two_step_level(vector)
    return level is not None and level >= f


def bosco_one_step_guaranteed(
    vector: View, config: SystemConfig, f: int, faulty: Sequence[int] | None = None
) -> bool:
    """Worst-case-schedule one-step guarantee for BOSCO (both variants run
    the same threshold; only the claimed resilience differs).

    Args:
        vector: intended proposals (faulty entries are meaningless — the
            adversary replaces them).
        config: system parameters.
        f: actual number of Byzantine processes.
        faulty: which processes are Byzantine; defaults to the last ``f``.
    """
    faulty_set = (
        frozenset(faulty) if faulty is not None else frozenset(range(config.n - f, config.n))
    )
    # One pass over the entries: tally correct copies per value, take the max.
    counts: dict[Value, int] = {}
    for i, v in enumerate(vector):
        if v is not BOTTOM and i not in faulty_set:
            counts[v] = counts.get(v, 0) + 1
    best = max(counts.values(), default=0)
    # The adversary can keep t honest votes out of the first n − t and makes
    # every Byzantine vote disagree.
    return 2 * (best - config.t) > config.n + 3 * config.t


def brasileiro_one_step_guaranteed(
    vector: View, config: SystemConfig, f: int, faulty: Sequence[int] | None = None
) -> bool:
    """Crash-model guarantee: every correct process proposes the same value
    (any crashed subset of the first ``n − t`` still matches)."""
    faulty_ids = set(faulty) if faulty is not None else set(range(config.n - f, config.n))
    correct_values = {v for i, v in enumerate(vector) if i not in faulty_ids}
    return len(correct_values) == 1


# -- coverage over spaces and workloads ---------------------------------------------------


@dataclass(frozen=True, slots=True)
class CoveragePoint:
    """Coverage fractions at one actual failure count."""

    f: int
    one_step: float
    two_step: float


def _level_points(
    levels: Sequence[tuple[int | None, int | None]],
    weights: Sequence[int] | None,
    f_values: Iterable[int],
) -> list[CoveragePoint]:
    """Threshold pre-computed ``(one_level, two_level)`` pairs across ``f``.

    ``level ≥ f`` is exactly the Lemma 4/5 guarantee, so each vector's two
    adaptive levels — computed **once** — answer every failure count; the
    per-``f`` work is a weighted counting pass.
    """
    if weights is None:
        total = len(levels)
        weights = [1] * total
    else:
        total = sum(weights)
    points = []
    for f in f_values:
        one = 0
        two = 0
        for (one_level, two_level), w in zip(levels, weights):
            if one_level is not None and one_level >= f:
                one += w
                two += w  # C¹_f ⊆ C²_f: one-step inputs count as ≤ two-step
            elif two_level is not None and two_level >= f:
                two += w
        points.append(CoveragePoint(f, one / total, two / total))
    return points


def pair_coverage(
    pair: ConditionSequencePair,
    vectors: Sequence[View],
    f_values: Iterable[int],
    weights: Sequence[int] | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
) -> list[CoveragePoint]:
    """Fraction of ``vectors`` guaranteed to decide in ≤1 / ≤2 steps per
    failure count.

    ``two_step`` is cumulative — it counts inputs deciding in *at most* two
    steps (``C¹_f ⊆ C²_f`` for both shipped pairs).  Each vector's adaptive
    levels are computed once and thresholded across all ``f`` values, not
    recomputed per ``(vector, f)`` pair.

    Args:
        weights: optional per-vector multiplicities (used by the multiset
            enumerator); fractions are then weighted by ``w / sum(weights)``.
        parallel: compute the per-vector levels on a thread pool (chunked,
            order-preserving — the points are identical to the serial ones).
        max_workers: pool size when ``parallel`` (``None`` = default).
    """
    if parallel and len(vectors) > 1:
        from ..sim.parallel import parallel_map

        chunk = max(1, len(vectors) // 32)
        chunks = [vectors[i : i + chunk] for i in range(0, len(vectors), chunk)]
        levels = [
            pair_levels
            for chunk_levels in parallel_map(
                lambda vs: [
                    (pair.one_step_level(v), pair.two_step_level(v)) for v in vs
                ],
                chunks,
                max_workers=max_workers,
            )
            for pair_levels in chunk_levels
        ]
    else:
        levels = [
            (pair.one_step_level(v), pair.two_step_level(v)) for v in vectors
        ]
    return _level_points(levels, weights, f_values)


def baseline_coverage(
    name: str,
    config: SystemConfig,
    vectors: Sequence[View],
    f_values: Iterable[int],
) -> list[CoveragePoint]:
    """Fast-path coverage for ``"bosco"`` or ``"brasileiro"`` (no two-step
    scheme exists for either, so ``two_step == one_step``)."""
    if name == "bosco":
        check = bosco_one_step_guaranteed
    elif name == "brasileiro":
        check = brasileiro_one_step_guaranteed
    else:
        raise ValueError(f"unknown baseline {name!r}")
    total = len(vectors)
    points = []
    for f in f_values:
        one = sum(1 for v in vectors if check(v, config, f))
        points.append(CoveragePoint(f, one / total, one / total))
    return points


def exact_space_coverage(
    pair: ConditionSequencePair, values: Sequence[Value], f_values: Iterable[int]
) -> list[CoveragePoint]:
    """Exhaustive coverage of the whole space ``V^n``.

    For histogram-invariant pairs (both shipped pairs) the space is
    enumerated as multisets with multinomial weights —
    ``C(n+|V|−1, |V|−1)`` checks instead of ``|V|^n`` — which makes exact
    coverage tractable at e.g. ``n = 31``.  The weighted fractions are
    identical (the counted integers are the same), not approximations.
    Custom position-sensitive pairs fall back to full enumeration.
    """
    if pair.histogram_invariant:
        weighted = list(multiset_vectors(values, pair.n))
        vectors = [v for v, _ in weighted]
        weights = [w for _, w in weighted]
        return pair_coverage(pair, vectors, f_values, weights=weights)
    vectors = list(all_vectors(values, pair.n))
    return pair_coverage(pair, vectors, f_values)
