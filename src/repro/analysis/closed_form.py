"""Closed-form coverage for the two-value i.i.d. workload model.

Under the workload model of the coverage experiments — each process
proposes the favourite value with probability ``q``, the contender
otherwise, independently — every guarantee of
:mod:`repro.analysis.coverage` has an exact binomial expression:

* the favourite count is ``X ~ Binomial(n, q)``;
* the frequency gap of the full vector is ``|2X − n|``, so
  ``P(I ∈ C_freq(d)) = P(|2X − n| > d)``;
* the privileged count is ``X`` itself, so
  ``P(I ∈ C_prv(m, d)) = P(X > d)``;
* BOSCO's worst-case guarantee (``f`` Byzantine among the last ids)
  needs ``max(Y, (n − f) − Y) > (n + 5t)/2`` with
  ``Y ~ Binomial(n − f, q)`` correct favourite votes.

These formulas serve two purposes: they cross-validate the Monte-Carlo
estimators of experiment E1 (the test suite checks agreement within
binomial confidence bounds), and they let benchmarks sweep coverage curves
at sizes where sampling would be slow.
"""

from __future__ import annotations

from scipy.stats import binom


def _check(n: int, q: float) -> None:
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be a probability, got {q}")


def gap_exceeds_probability(n: int, q: float, d: int) -> float:
    """``P(|2X − n| > d)`` for ``X ~ Binomial(n, q)`` — membership in
    ``C_freq(d)`` for a random two-value input."""
    _check(n, q)
    if d < 0:
        return 1.0
    # |2X - n| > d  <=>  X > (n + d)/2  or  X < (n - d)/2
    upper = (n + d) / 2.0
    lower = (n - d) / 2.0
    import math

    p_high = binom.sf(math.floor(upper), n, q)  # P(X > upper)
    p_low = binom.cdf(math.ceil(lower) - 1, n, q)  # P(X < lower)
    return float(p_high + p_low)


def count_exceeds_probability(n: int, q: float, d: int) -> float:
    """``P(X > d)`` for ``X ~ Binomial(n, q)`` — membership in
    ``C_prv(favourite, d)``."""
    _check(n, q)
    return float(binom.sf(d, n, q))


def dex_freq_one_step(n: int, t: int, f: int, q: float) -> float:
    """Probability a random input is one-step-guaranteed for DEX-freq at
    actual failure count ``f`` (``I ∈ C¹_f = C_freq(4t + 2f)``)."""
    return gap_exceeds_probability(n, q, 4 * t + 2 * f)


def dex_freq_two_step(n: int, t: int, f: int, q: float) -> float:
    """``P(I ∈ C²_f = C_freq(2t + 2f))``."""
    return gap_exceeds_probability(n, q, 2 * t + 2 * f)


def dex_prv_one_step(n: int, t: int, f: int, q: float) -> float:
    """``P(I ∈ C¹_f = C_prv(m, 3t + f))`` with ``m`` the favourite."""
    return count_exceeds_probability(n, q, 3 * t + f)


def dex_prv_two_step(n: int, t: int, f: int, q: float) -> float:
    """``P(I ∈ C²_f = C_prv(m, 2t + f))``."""
    return count_exceeds_probability(n, q, 2 * t + f)


def bosco_one_step(n: int, t: int, f: int, q: float) -> float:
    """Probability of BOSCO's worst-case one-step guarantee.

    ``f`` Byzantine processes hold the last ids (matching the Monte-Carlo
    default); the ``n − f`` correct proposals are i.i.d., and the guarantee
    is ``max(Y, (n − f) − Y) − t > (n + 3t)/2``.
    """
    _check(n, q)
    if f < 0 or f > n:
        raise ValueError(f"f must be in [0, {n}], got {f}")
    correct = n - f
    threshold = (n + 5 * t) / 2.0  # c_v > (n + 3t)/2 + t
    import math

    floor_thr = math.floor(threshold)
    p_fav = binom.sf(floor_thr, correct, q)  # P(Y > threshold)
    p_con = binom.sf(floor_thr, correct, 1.0 - q)  # P(correct - Y > threshold)
    return float(p_fav + p_con)
