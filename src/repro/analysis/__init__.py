"""Analysis: condition coverage and regeneration of the paper's tables."""

from .closed_form import (
    bosco_one_step,
    count_exceeds_probability,
    dex_freq_one_step,
    dex_freq_two_step,
    dex_prv_one_step,
    dex_prv_two_step,
    gap_exceeds_probability,
)
from .expected_steps import (
    bosco_expected_steps,
    crossover_contention,
    dex_freq_expected_steps,
    twostep_expected_steps,
)
from .coverage import (
    CoveragePoint,
    baseline_coverage,
    bosco_one_step_guaranteed,
    brasileiro_one_step_guaranteed,
    correct_count,
    dex_one_step_guaranteed,
    dex_two_step_guaranteed,
    exact_space_coverage,
    pair_coverage,
)
from .tables import (
    ValidationOutcome,
    dex_condition_examples,
    paper_table1,
    validate_algorithm,
    validated_table1,
)

__all__ = [
    "gap_exceeds_probability",
    "count_exceeds_probability",
    "dex_freq_one_step",
    "dex_freq_two_step",
    "dex_prv_one_step",
    "dex_prv_two_step",
    "bosco_one_step",
    "dex_freq_expected_steps",
    "bosco_expected_steps",
    "twostep_expected_steps",
    "crossover_contention",
    "CoveragePoint",
    "pair_coverage",
    "baseline_coverage",
    "exact_space_coverage",
    "dex_one_step_guaranteed",
    "dex_two_step_guaranteed",
    "bosco_one_step_guaranteed",
    "brasileiro_one_step_guaranteed",
    "correct_count",
    "paper_table1",
    "validated_table1",
    "validate_algorithm",
    "ValidationOutcome",
    "dex_condition_examples",
]
