"""Regeneration of the paper's Table 1 — with empirical validation.

Table 1 of the paper is a *property* table: for each algorithm it states
the system model, failure type, resilience and the situations in which
one-/two-step decision is feasible.  :func:`paper_table1` reprints those
rows from the algorithm registry; :func:`validated_table1` goes further
and **checks each implemented row empirically**: for every algorithm it
runs the scenarios its feasibility claims describe (on-condition inputs
must decide fast, off-condition inputs must still terminate and agree)
and appends a measured-validation column.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..conditions.frequency import FrequencyPair
from ..conditions.privileged import PrivilegedPair
from ..conditions.views import View
from ..harness import (
    AlgorithmSpec,
    Scenario,
    Silent,
    all_algorithms,
)
from ..types import DecisionKind, SystemConfig
from ..workloads.inputs import split, unanimous, with_frequency_gap

#: The synchronous row runs on the round-based engine rather than the
#: asynchronous harness; its static row is kept here and its validation is
#: :func:`validate_sync_row`.
SYNC_ROW = {
    "algorithm": "mostefaoui (sync)",
    "system": "Syn.",
    "failures": "Crash",
    "processes": "t+1",
    "one_step": "Condition-Based (adaptive)",
    "two_step": "—",
}


def paper_table1() -> list[dict[str, str]]:
    """The comparison table, straight from the registry metadata."""
    rows = []
    for spec in all_algorithms():
        if spec.name == "twostep":
            continue  # our own reference point, not a paper row
        rows.append({"algorithm": spec.name, **spec.table1, "validated": ""})
    rows.insert(2, {**SYNC_ROW, "validated": ""})
    return rows


def validate_sync_row(n: int = 5, t: int = 2, seeds: range = range(3)) -> ValidationOutcome:
    """Empirically validate the synchronous-model row on the round engine.

    Checks: unanimous inputs decide in round 1; contended inputs agree and
    terminate within ``t + 1`` rounds; crashes mid-round-1 never break
    agreement; a level-``k`` condition input decides in round 1 with
    ``f ≤ k`` crashes.
    """
    from ..baselines.sync_onestep import SyncOneStepConsensus, sync_one_step_level
    from ..conditions.views import View
    from ..sim.synchronous import CrashEvent, SynchronousSimulation

    config = SystemConfig(n, t)
    fast = True
    terminates = True
    agreement = True
    details = []

    def run(inputs, crashes, seed):
        protocols = {
            pid: SyncOneStepConsensus(pid, config, inputs[pid])
            for pid in config.processes
        }
        sim = SynchronousSimulation(config, protocols, crashes, seed=seed)
        return sim.run(max_rounds=t + 2)

    for seed in seeds:
        result = run(unanimous(1, n), {}, seed)
        agreement &= result.agreement_holds()
        if {d.round for d in result.correct_decisions.values()} != {1}:
            fast = False
            details.append(f"seed {seed}: unanimous not one-round")

        contended = split(1, 2, n, n // 2)
        result = run(contended, {}, seed)
        agreement &= result.agreement_holds()
        terminates &= result.all_correct_decided()
        terminates &= result.max_decision_round <= t + 1

        crashes = {n - 1: CrashEvent(round=1), n - 2: CrashEvent(round=2)}
        result = run(unanimous(1, n), crashes, seed)
        agreement &= result.agreement_holds()
        level = sync_one_step_level(View(unanimous(1, n)), t)
        if level is not None and level >= 2:
            if {d.round for d in result.correct_decisions.values()} != {1}:
                fast = False
                details.append(f"seed {seed}: f=2 unanimous not one-round")

    return ValidationOutcome(
        algorithm="mostefaoui (sync)",
        n=n,
        t=t,
        fast_on_claimed=fast,
        terminates_off_condition=terminates,
        agreement_everywhere=agreement,
        detail="; ".join(details) or "ok",
    )


@dataclass
class ValidationOutcome:
    """Result of empirically checking one algorithm's Table 1 claims."""

    algorithm: str
    n: int
    t: int
    fast_on_claimed: bool
    terminates_off_condition: bool
    agreement_everywhere: bool
    detail: str

    @property
    def ok(self) -> bool:
        return (
            self.fast_on_claimed
            and self.terminates_off_condition
            and self.agreement_everywhere
        )


def _expected_fast_kinds(spec: AlgorithmSpec) -> set[DecisionKind]:
    if spec.name.startswith("dex") or spec.name == "izumi":
        return {DecisionKind.ONE_STEP}
    return {DecisionKind.FAST}


def validate_algorithm(spec: AlgorithmSpec, n: int, seeds: range = range(3)) -> ValidationOutcome:
    """Empirically check one algorithm's feasibility claims at size ``n``.

    Three scenarios per seed:

    1. **claimed fast input** — unanimous proposals (the weakest claim every
       row makes); all correct processes must decide in one step;
    2. **off-condition input** — a maximally contended vector; the run must
       terminate with agreement (fast decision not required);
    3. **claimed input with failures** — unanimous with ``f = t`` silent
       processes; DEX/BOSCO-strong still claim the fast path here, the
       others only agreement + termination.
    """
    t = spec.max_t(n)
    fast_on_claimed = True
    terminates = True
    agreement = True
    details = []
    fast_kinds = _expected_fast_kinds(spec)

    for seed in seeds:
        unanimous_result = Scenario(spec, unanimous(1, n), t=t, seed=seed).run()
        kinds = {d.kind for d in unanimous_result.correct_decisions.values()}
        steps = {d.step for d in unanimous_result.correct_decisions.values()}
        if not kinds <= fast_kinds or steps != {1}:
            fast_on_claimed = False
            details.append(f"seed {seed}: unanimous decided {kinds}/{steps}")
        agreement &= unanimous_result.agreement_holds()

        contended = split(1, 2, n, n // 2)
        contended_result = Scenario(spec, contended, t=t, seed=seed).run()
        terminates &= contended_result.all_correct_decided()
        agreement &= contended_result.agreement_holds()

        if t > 0:
            faults = {pid: Silent() for pid in range(n - t, n)}
            faulty_result = Scenario(
                spec, unanimous(1, n), t=t, faults=faults, seed=seed
            ).run()
            agreement &= faulty_result.agreement_holds()
            terminates &= faulty_result.all_correct_decided()
            claims_fast_under_faults = spec.name in (
                "dex-freq",
                "dex-prv",
                "bosco-strong",
                "izumi",
            )
            if claims_fast_under_faults:
                kinds = {d.kind for d in faulty_result.correct_decisions.values()}
                if not kinds <= fast_kinds:
                    fast_on_claimed = False
                    details.append(f"seed {seed}: f={t} unanimous decided {kinds}")

    return ValidationOutcome(
        algorithm=spec.name,
        n=n,
        t=t,
        fast_on_claimed=fast_on_claimed,
        terminates_off_condition=terminates,
        agreement_everywhere=agreement,
        detail="; ".join(details) or "ok",
    )


def validated_table1(n_by_ratio: dict[int, int] | None = None) -> list[dict[str, str]]:
    """Table 1 with a measured-validation column for every implemented row.

    Args:
        n_by_ratio: system size per resilience ratio; defaults to the
            smallest size exercising ``t = 1`` for each row
            (``n = ratio + 2`` keeps ``(n − gap)`` parities simple).
    """
    sizes = n_by_ratio or {3: 7, 5: 11, 6: 13, 7: 15}
    rows = []
    for spec in all_algorithms():
        if spec.name == "twostep":
            continue
        n = sizes.get(spec.required_ratio, spec.required_ratio * 2 + 1)
        outcome = validate_algorithm(spec, n)
        rows.append(
            {
                "algorithm": spec.name,
                **spec.table1,
                "validated": "yes" if outcome.ok else f"NO: {outcome.detail}",
            }
        )
    sync_outcome = validate_sync_row()
    rows.insert(
        2,
        {
            **SYNC_ROW,
            "validated": "yes" if sync_outcome.ok else f"NO: {sync_outcome.detail}",
        },
    )
    return rows


def dex_condition_examples(n: int = 13) -> list[dict[str, str]]:
    """Worked examples of the adaptive conditions at size ``n`` — the rows
    that make Table 1's "Condition-Based" entries concrete."""
    config = SystemConfig(n, (n - 1) // 6)
    t = config.t
    freq = FrequencyPair(n, t)
    prv = PrivilegedPair(n, t, privileged=1)
    rows = []
    for label, vector in [
        ("unanimous", View(unanimous(1, n))),
        ("gap 4t+2", View(with_frequency_gap(1, 2, n, 4 * t + 2 if (n - 4 * t - 2) % 2 == 0 else 4 * t + 3))),
        ("gap 2t+2", View(with_frequency_gap(1, 2, n, 2 * t + 2 if (n - 2 * t - 2) % 2 == 0 else 2 * t + 3))),
        ("even split", View(split(1, 2, n, n // 2))),
    ]:
        rows.append(
            {
                "input": label,
                "gap": str(vector.frequency_gap()),
                "freq 1-step level": str(freq.one_step_level(vector)),
                "freq 2-step level": str(freq.two_step_level(vector)),
                "prv 1-step level": str(prv.one_step_level(vector)),
                "prv 2-step level": str(prv.two_step_level(vector)),
            }
        )
    return rows
