"""Sans-IO protocol runtime: effects, protocol interface, composition,
trusted services and the asyncio transport.

Protocols written against this package run unchanged under the
deterministic simulator (:mod:`repro.sim`) and the asyncio in-memory
network (:mod:`repro.runtime.asyncio_runner`).
"""

from .composite import CompositeProtocol, Envelope
from .effects import (
    SERVICE_SENDER,
    Broadcast,
    Decide,
    Deliver,
    Effect,
    Log,
    Send,
    ServiceCall,
)
from .protocol import Protocol, guarded
from .services import Service, ServiceReply

__all__ = [
    "CompositeProtocol",
    "Envelope",
    "SERVICE_SENDER",
    "Broadcast",
    "Decide",
    "Deliver",
    "Effect",
    "Log",
    "Send",
    "ServiceCall",
    "Protocol",
    "guarded",
    "Service",
    "ServiceReply",
]
