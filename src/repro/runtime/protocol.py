"""The sans-IO protocol interface every algorithm in this library implements.

A :class:`Protocol` is a deterministic state machine: the runtime calls
:meth:`Protocol.on_start` once and :meth:`Protocol.on_message` for every
delivered payload; both return lists of :class:`~repro.runtime.effects.Effect`.

Handlers must never raise on malformed input — Byzantine processes may send
arbitrary payloads, and robust protocols treat garbage as silence.  The
:func:`tolerant` decorator (applied by the runtimes around every handler
call) enforces this by converting unexpected exceptions into a dropped
message plus a trace record, so a malicious payload can crash neither the
process nor the experiment.
"""

from __future__ import annotations

import abc
from typing import Any

from ..types import ProcessId, SystemConfig
from .effects import Effect, Log


class Protocol(abc.ABC):
    """Base class for sans-IO protocol state machines.

    Args:
        process_id: the identifier of the process hosting this instance.
        config: the static ``(n, t)`` system parameters.
    """

    def __init__(self, process_id: ProcessId, config: SystemConfig) -> None:
        self.process_id = process_id
        self.config = config

    # -- runtime-facing interface ----------------------------------------------

    def on_start(self) -> list[Effect]:
        """Called exactly once, before any message delivery."""
        return []

    @abc.abstractmethod
    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        """Handle one delivered payload from ``sender``.

        ``sender`` is the authenticated process id: the runtime models
        reliable authenticated point-to-point links (paper §2.1), so a
        Byzantine process cannot forge another sender's identity — only the
        payload is untrusted.
        """

    # -- shared helpers ---------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes."""
        return self.config.n

    @property
    def t(self) -> int:
        """Failure upper bound known to every process."""
        return self.config.t

    @property
    def quorum(self) -> int:
        """The ubiquitous ``n - t`` reception threshold."""
        return self.config.quorum

    def log(self, event: str, **data: Any) -> Log:
        """Build a trace record tagged with this process id."""
        return Log(event, {"pid": self.process_id, **data})


def guarded(protocol: Protocol, sender: ProcessId, payload: Any) -> list[Effect]:
    """Invoke ``protocol.on_message`` treating handler exceptions as garbage.

    Byzantine payloads that trip a type error inside a handler are logged
    and dropped rather than propagated: a faulty process must not be able to
    crash a correct one.  Runtimes call handlers through this function.
    """
    try:
        return protocol.on_message(sender, payload)
    except Exception as exc:  # noqa: BLE001 - byzantine input is arbitrary
        return [
            Log(
                "malformed-message-dropped",
                {
                    "pid": protocol.process_id,
                    "sender": sender,
                    "payload": repr(payload),
                    "error": repr(exc),
                },
            )
        ]
