"""The sans-IO protocol interface every algorithm in this library implements.

A :class:`Protocol` is a deterministic state machine: the runtime calls
:meth:`Protocol.on_start` once and :meth:`Protocol.on_message` for every
delivered payload; both return lists of :class:`~repro.runtime.effects.Effect`.

Handlers must never raise on malformed input — Byzantine processes may send
arbitrary payloads, and robust protocols treat garbage as silence.  The
:func:`tolerant` decorator (applied by the runtimes around every handler
call) enforces this by converting unexpected exceptions into a dropped
message plus a trace record, so a malicious payload can crash neither the
process nor the experiment.
"""

from __future__ import annotations

import abc
import copy
import pickle
from typing import Any

from ..types import ProcessId, SystemConfig
from .effects import Effect, Log


class Protocol(abc.ABC):
    """Base class for sans-IO protocol state machines.

    Args:
        process_id: the identifier of the process hosting this instance.
        config: the static ``(n, t)`` system parameters.
    """

    def __init__(self, process_id: ProcessId, config: SystemConfig) -> None:
        self.process_id = process_id
        self.config = config

    # -- runtime-facing interface ----------------------------------------------

    def on_start(self) -> list[Effect]:
        """Called exactly once, before any message delivery."""
        return []

    @abc.abstractmethod
    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        """Handle one delivered payload from ``sender``.

        ``sender`` is the authenticated process id: the runtime models
        reliable authenticated point-to-point links (paper §2.1), so a
        Byzantine process cannot forge another sender's identity — only the
        payload is untrusted.
        """

    # -- state capture (model checking, time travel) -----------------------------

    #: Attributes excluded from the default snapshot: immutable identity that
    #: :meth:`restore` must never clobber.
    _SNAPSHOT_EXCLUDE: frozenset[str] = frozenset({"process_id", "config"})

    #: Per-class memo: can this protocol's state be pickled?  ``None`` until
    #: the first snapshot attempt decides.
    _snapshot_picklable: bool | None = None

    def snapshot(self) -> Any:
        """Capture this protocol's mutable state as an opaque token.

        The default captures every instance attribute except the identity
        fields, which covers every protocol in this library (their state is
        plain attributes holding containers and scalars).  Pickling is
        several times faster than :func:`copy.deepcopy` and branching
        explorers snapshot at nearly every state, so the token is a pickle
        blob whenever the state supports it; protocols whose state holds
        unpicklables (e.g. behavior closures) fall back to deep copies, the
        choice memoized per class.  Protocols with large but
        simply-structured state may override ``snapshot``/:meth:`restore`
        with a cheaper encoding — the only contract is that
        ``restore(snapshot())`` is a behavioral no-op and that a token stays
        valid across multiple restores.
        """
        state = {
            k: v
            for k, v in self.__dict__.items()
            if k not in self._SNAPSHOT_EXCLUDE
        }
        cls = type(self)
        if cls._snapshot_picklable is not False:
            try:
                blob = pickle.dumps(state, pickle.HIGHEST_PROTOCOL)
            except Exception:
                cls._snapshot_picklable = False
            else:
                cls._snapshot_picklable = True
                return blob
        return copy.deepcopy(state)

    def restore(self, token: Any) -> None:
        """Reset mutable state to a :meth:`snapshot` token.

        The token is decoded (or copied) again on the way in, so one token
        supports any number of restores (branching explorers restore the
        same ancestor snapshot down many paths).
        """
        state = (
            pickle.loads(token)
            if isinstance(token, bytes)
            else copy.deepcopy(token)
        )
        for k in list(self.__dict__):
            if k not in self._SNAPSHOT_EXCLUDE:
                del self.__dict__[k]
        self.__dict__.update(state)

    # -- shared helpers ---------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes."""
        return self.config.n

    @property
    def t(self) -> int:
        """Failure upper bound known to every process."""
        return self.config.t

    @property
    def quorum(self) -> int:
        """The ubiquitous ``n - t`` reception threshold."""
        return self.config.quorum

    def log(self, event: str, **data: Any) -> Log:
        """Build a trace record tagged with this process id."""
        return Log(event, {"pid": self.process_id, **data})


def guarded(protocol: Protocol, sender: ProcessId, payload: Any) -> list[Effect]:
    """Invoke ``protocol.on_message`` treating handler exceptions as garbage.

    Byzantine payloads that trip a type error inside a handler are logged
    and dropped rather than propagated: a faulty process must not be able to
    crash a correct one.  Runtimes call handlers through this function.
    """
    try:
        return protocol.on_message(sender, payload)
    except Exception as exc:  # noqa: BLE001 - byzantine input is arbitrary
        return [
            Log(
                "malformed-message-dropped",
                {
                    "pid": protocol.process_id,
                    "sender": sender,
                    "payload": repr(payload),
                    "error": repr(exc),
                },
            )
        ]
