"""Protocol composition: running sub-protocols inside a parent protocol.

DEX (Figure 1) is a composite: it exchanges its own plain messages, embeds
an Identical Broadcast instance (Figure 3) and an underlying-consensus
instance, and reacts to their upcalls.  The same pattern recurs inside the
real underlying consensus (ACS embeds ``n`` reliable broadcasts and ``n``
binary-agreement instances).

Wire format: a child component's messages travel wrapped in an
:class:`Envelope` naming the component, so different components of the same
composite — and recursively nested composites — never confuse each other's
messages.  Upcalls (:class:`~repro.runtime.effects.Deliver` /
:class:`~repro.runtime.effects.Decide` effects emitted by a child) are
intercepted locally and routed to :meth:`CompositeProtocol.on_child_output`.
"""

from __future__ import annotations

from typing import Any

from ..engine.interpreter import EffectRewriter
from ..types import ProcessId
from .effects import Broadcast, Decide, Deliver, Effect, Envelope, Send, ServiceCall
from .protocol import Protocol

__all__ = ["CompositeProtocol", "Envelope"]


class CompositeProtocol(Protocol, EffectRewriter):
    """A protocol that hosts named child protocols.

    Subclasses register children with :meth:`add_child`, drive them by
    passing the effects of child method calls through :meth:`child_call`,
    and receive their upcalls in :meth:`on_child_output`.  Messages arriving
    in an :class:`Envelope` are routed to the named child automatically by
    :meth:`on_message`; everything else goes to :meth:`on_own_message`.

    Routing is the :class:`~repro.engine.interpreter.EffectRewriter`
    dispatch: the ``rewrite_*`` visitors below wrap child traffic for the
    component currently being routed (``_route_component``), which is plain
    saved/restored state — not a cached helper object — so snapshots taken
    by the model checker restore cleanly and re-entrant routing (a child
    upcall driving another child) cannot corrupt the outer call.
    """

    def __init__(self, process_id: ProcessId, config) -> None:
        super().__init__(process_id, config)
        self._children: dict[str, Protocol] = {}
        self._route_component: str | None = None
        self._rewrite_stopped = False

    # -- child management --------------------------------------------------------

    def add_child(self, name: str, child: Protocol) -> Protocol:
        """Register ``child`` under ``name``; returns the child for chaining."""
        if name in self._children:
            raise ValueError(f"duplicate child component {name!r}")
        self._children[name] = child
        return child

    def child(self, name: str) -> Protocol:
        """Look up a registered child."""
        return self._children[name]

    def child_call(self, name: str, effects: list[Effect]) -> list[Effect]:
        """Post-process the effects of a child handler or method call.

        ``Send``/``Broadcast`` payloads are wrapped in an envelope for
        ``name``; ``ServiceCall`` replies are routed back to ``name``;
        ``Deliver``/``Decide`` upcalls are handed to
        :meth:`on_child_output`, whose own effects are processed
        recursively (they may drive other children).
        """
        prev = self._route_component
        self._route_component = name
        try:
            return self.rewrite_effects(effects)
        finally:
            self._route_component = prev

    # -- routing visitors (EffectRewriter) ------------------------------------------

    def rewrite_send(self, effect: Send) -> Effect:
        return Send(effect.dst, Envelope(self._route_component, effect.payload))

    def rewrite_broadcast(self, effect: Broadcast) -> Effect:
        return Broadcast(Envelope(self._route_component, effect.payload))

    def rewrite_service_call(self, effect: ServiceCall) -> Effect:
        return effect.pushed(self._route_component)

    def rewrite_deliver(self, effect: Deliver) -> list[Effect]:
        return self.on_child_output(self._route_component, effect)

    def rewrite_decide(self, effect: Decide) -> list[Effect]:
        return self.on_child_output(self._route_component, effect)

    # -- message routing -----------------------------------------------------------

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if isinstance(payload, Envelope):
            child = self._children.get(payload.component)
            if child is None:
                return [self.log("unknown-component", component=payload.component)]
            return self.child_call(
                payload.component, child.on_message(sender, payload.payload)
            )
        return self.on_own_message(sender, payload)

    # -- hooks for subclasses ---------------------------------------------------------

    def on_own_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        """Handle a payload addressed to the composite itself."""
        return [self.log("unexpected-payload", payload=repr(payload))]

    def on_child_output(self, name: str, effect: Effect) -> list[Effect]:
        """React to an upcall (``Deliver``/``Decide``) from child ``name``.

        The returned effects are post-processed like any parent effects —
        wrap further child calls with :meth:`child_call` as usual.
        """
        return []
