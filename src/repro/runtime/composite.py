"""Protocol composition: running sub-protocols inside a parent protocol.

DEX (Figure 1) is a composite: it exchanges its own plain messages, embeds
an Identical Broadcast instance (Figure 3) and an underlying-consensus
instance, and reacts to their upcalls.  The same pattern recurs inside the
real underlying consensus (ACS embeds ``n`` reliable broadcasts and ``n``
binary-agreement instances).

Wire format: a child component's messages travel wrapped in an
:class:`Envelope` naming the component, so different components of the same
composite — and recursively nested composites — never confuse each other's
messages.  Upcalls (:class:`~repro.runtime.effects.Deliver` /
:class:`~repro.runtime.effects.Decide` effects emitted by a child) are
intercepted locally and routed to :meth:`CompositeProtocol.on_child_output`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..types import ProcessId
from .effects import Broadcast, Decide, Deliver, Effect, Send, ServiceCall
from .protocol import Protocol


@dataclass(frozen=True, slots=True)
class Envelope:
    """A child component's payload, tagged with the component name."""

    component: str
    payload: Any


class CompositeProtocol(Protocol):
    """A protocol that hosts named child protocols.

    Subclasses register children with :meth:`add_child`, drive them by
    passing the effects of child method calls through :meth:`child_call`,
    and receive their upcalls in :meth:`on_child_output`.  Messages arriving
    in an :class:`Envelope` are routed to the named child automatically by
    :meth:`on_message`; everything else goes to :meth:`on_own_message`.
    """

    def __init__(self, process_id: ProcessId, config) -> None:
        super().__init__(process_id, config)
        self._children: dict[str, Protocol] = {}

    # -- child management --------------------------------------------------------

    def add_child(self, name: str, child: Protocol) -> Protocol:
        """Register ``child`` under ``name``; returns the child for chaining."""
        if name in self._children:
            raise ValueError(f"duplicate child component {name!r}")
        self._children[name] = child
        return child

    def child(self, name: str) -> Protocol:
        """Look up a registered child."""
        return self._children[name]

    def child_call(self, name: str, effects: list[Effect]) -> list[Effect]:
        """Post-process the effects of a child handler or method call.

        ``Send``/``Broadcast`` payloads are wrapped in an envelope for
        ``name``; ``ServiceCall`` replies are routed back to ``name``;
        ``Deliver``/``Decide`` upcalls are handed to
        :meth:`on_child_output`, whose own effects are processed
        recursively (they may drive other children).
        """
        out: list[Effect] = []
        for effect in effects:
            if isinstance(effect, Send):
                out.append(Send(effect.dst, Envelope(name, effect.payload)))
            elif isinstance(effect, Broadcast):
                out.append(Broadcast(Envelope(name, effect.payload)))
            elif isinstance(effect, ServiceCall):
                out.append(effect.pushed(name))
            elif isinstance(effect, (Deliver, Decide)):
                out.extend(self.on_child_output(name, effect))
            else:
                out.append(effect)
        return out

    # -- message routing -----------------------------------------------------------

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if isinstance(payload, Envelope):
            child = self._children.get(payload.component)
            if child is None:
                return [self.log("unknown-component", component=payload.component)]
            return self.child_call(
                payload.component, child.on_message(sender, payload.payload)
            )
        return self.on_own_message(sender, payload)

    # -- hooks for subclasses ---------------------------------------------------------

    def on_own_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        """Handle a payload addressed to the composite itself."""
        return [self.log("unexpected-payload", payload=repr(payload))]

    def on_child_output(self, name: str, effect: Effect) -> list[Effect]:
        """React to an upcall (``Deliver``/``Decide``) from child ``name``.

        The returned effects are post-processed like any parent effects —
        wrap further child calls with :meth:`child_call` as usual.
        """
        return []
