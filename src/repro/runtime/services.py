"""Trusted harness services.

The paper assumes the system "is equipped with the underlying consensus
primitive" without committing to an implementation (§2.2).  A
:class:`Service` is the harness-side realisation of such an assumed
primitive: protocols reach it through the
:class:`~repro.runtime.effects.ServiceCall` effect, and the runtime
delivers its replies back as ordinary payloads.

Reply routing: composite protocols tag each request with a *reply path*
(the chain of component names the runtime must wrap the reply in so it
reaches the right sub-protocol — e.g. ``("mux", "slot3", "uc")`` for the
underlying consensus of log slot 3).  The runtime hands the request's path
to :meth:`Service.on_call`, and every :class:`ServiceReply` carries the
path to wrap its payload with — services that answer several callers (like
the oracle consensus announcing a decision) must remember each caller's
own path and reply along it.

Services are trusted — they model abstractions, not processes — but they
still participate in causal step accounting so that the cost of the
abstraction shows up in measured step counts.  Both runtimes (simulator
and asyncio) drive the same service objects.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from ..types import ProcessId


@dataclass(frozen=True, slots=True)
class ServiceReply:
    """One payload a service wants delivered.

    Attributes:
        dst: receiving process.
        payload: reply payload.
        depth: causal depth the reply carries.
        delay: extra simulated latency before delivery.
        reply_path: component path (outermost first) the runtime wraps the
            payload in; use the requesting call's path so the reply reaches
            the component that asked.
    """

    dst: ProcessId
    payload: Any
    depth: int
    delay: float = 0.0
    reply_path: tuple[str, ...] = field(default=())


class Service(abc.ABC):
    """Base class for trusted harness services."""

    @abc.abstractmethod
    def on_call(
        self,
        caller: ProcessId,
        payload: Any,
        depth: int,
        time: float,
        reply_path: tuple[str, ...] = (),
    ) -> list[ServiceReply]:
        """Handle one request.

        Args:
            caller: the process issuing the :class:`ServiceCall`.
            payload: the request payload (untrusted when the caller is
                Byzantine — services must validate).
            depth: causal depth of the request.
            time: current simulated (or wall-clock) time.
            reply_path: the request's component path; copy it onto replies
                addressed to ``caller`` (and remember it if you will reply
                to this caller later).

        Returns:
            Replies to schedule.  May be empty (e.g. while a quorum of
            requests is still being collected).
        """

    def reset(self) -> None:
        """Clear state between runs; default is stateless."""
