"""asyncio runtime: the same sans-IO protocols on a real event loop.

Where :mod:`repro.sim` interprets effects against a virtual clock, this
runner executes them over an in-memory asyncio transport: one task and one
:class:`asyncio.Queue` mailbox per process, real ``asyncio.sleep`` delays,
wall-clock timing.  Protocols are byte-for-byte the same objects — the
sans-IO design is what makes this a one-file addition — so the asyncio
numbers (bench E8) validate that nothing in the simulator results is a
simulation artifact.  Effect semantics come from
:mod:`repro.engine.interpreter`: this class only implements the
:class:`~repro.engine.interpreter.ExecutionPorts` scheduling (delayed
mailbox puts), which is also why Byzantine behaviors — ordinary protocols
wrapping honest ones — run here exactly as they do on the simulator.

Determinism caveat: delays are seeded, but asyncio's internal scheduling
makes interleavings only *mostly* reproducible; property tests that need
exact replay belong on the simulator.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..engine.events import (
    DecideEvent,
    DeliverEvent,
    EventSink,
    LogEvent,
    OutputEvent,
    SendEvent,
    ServiceEvent,
)
from ..engine.interpreter import ExecutionPorts, dispatch_service_call, interpret
from ..errors import SimulationError
from ..types import Decision, ProcessId, RunStats, SystemConfig
from .effects import SERVICE_SENDER, Deliver, Log, ServiceCall
from .protocol import Protocol, guarded
from .services import Service, ServiceReply


@dataclass
class AsyncRunResult:
    """Observable outcome of one asyncio run (wall-clock timed).

    A timed-out run is returned, not raised: ``timed_out`` is set, the
    partial ``decisions`` collected so far are surfaced, and
    :attr:`undecided_correct` names the correct processes still missing a
    decision.
    """

    config: SystemConfig
    decisions: dict[ProcessId, Decision]
    outputs: dict[ProcessId, list[Deliver]]
    stats: RunStats
    faulty: frozenset[ProcessId]
    wall_seconds: float
    timed_out: bool = False

    @property
    def correct_decisions(self) -> dict[ProcessId, Decision]:
        return {p: d for p, d in self.decisions.items() if p not in self.faulty}

    @property
    def undecided_correct(self) -> frozenset[ProcessId]:
        """Correct processes that had not decided when the run ended."""
        return frozenset(
            p
            for p in self.config.processes
            if p not in self.faulty and p not in self.decisions
        )

    def agreement_holds(self) -> bool:
        return len({d.value for d in self.correct_decisions.values()}) <= 1

    def all_correct_decided(self) -> bool:
        return not self.undecided_correct

    @property
    def decided_value(self) -> Any:
        values = {d.value for d in self.correct_decisions.values()}
        if len(values) != 1:
            raise SimulationError(f"no single decided value: {values!r}")
        return next(iter(values))

    @property
    def max_correct_step(self) -> int:
        return max((d.step for d in self.correct_decisions.values()), default=0)

    @property
    def end_time(self) -> float:
        """Alias for ``wall_seconds`` (RunResult-compatible aggregation)."""
        return self.wall_seconds


@dataclass
class _Mailbox:
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)


class AsyncioRunner(ExecutionPorts):
    """Run one protocol deployment over in-memory asyncio transport.

    Args:
        config: system parameters.
        protocols: one protocol (or Byzantine behavior) per process.
        faulty: Byzantine process ids (bookkeeping only).
        services: trusted services by name (same objects as the simulator).
        seed: seeds the per-message delay sampling.
        mean_delay: average one-way message delay in seconds.
        event_sink: optional structured-event sink
            (:mod:`repro.engine.events`); event times are wall-clock
            seconds since the run started.
    """

    def __init__(
        self,
        config: SystemConfig,
        protocols: Mapping[ProcessId, Protocol],
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        services: Mapping[str, Service] | None = None,
        seed: int = 0,
        mean_delay: float = 0.001,
        event_sink: EventSink | None = None,
    ) -> None:
        if set(protocols) != set(config.processes):
            raise SimulationError(
                "protocols must cover exactly the process ids of the config"
            )
        self.config = config
        self.protocols = dict(protocols)
        self.faulty = frozenset(faulty)
        self.services = dict(services or {})
        self.rng = random.Random(seed)
        self.mean_delay = mean_delay
        self.stats = RunStats()
        self.decisions: dict[ProcessId, Decision] = {}
        self.outputs: dict[ProcessId, list[Deliver]] = {
            pid: [] for pid in config.processes
        }
        self._events = event_sink
        self._t0 = 0.0
        self._mailboxes: dict[ProcessId, _Mailbox] = {}
        self._all_decided = asyncio.Event()
        self._pending: set[asyncio.Task] = set()

    # -- transport ------------------------------------------------------------------

    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _delay(self) -> float:
        return self.rng.uniform(0.5, 1.5) * self.mean_delay

    def _deliver_later(
        self, dst: ProcessId, sender: ProcessId, payload: Any, depth: int, delay: float
    ) -> None:
        async def deliver() -> None:
            if delay > 0:
                await asyncio.sleep(delay)
            await self._mailboxes[dst].queue.put((sender, payload, depth))

        task = asyncio.ensure_future(deliver())
        self._pending.add(task)
        task.add_done_callback(self._pending.discard)

    def _apply(self, pid: ProcessId, effects: list, depth: int) -> None:
        """Compatibility shim: route through the engine interpreter."""
        interpret(self, pid, effects, depth)

    # -- ExecutionPorts (broadcast inherits the per-destination default) --------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any, depth: int) -> None:
        self.stats.messages_sent += 1
        self._deliver_later(dst, src, payload, depth, 0.0 if dst == src else self._delay())
        if self._events is not None:
            self._events.emit(SendEvent(self._now(), src, dst, payload, depth))

    def decide(self, pid: ProcessId, value: Any, kind: Any, depth: int) -> None:
        if pid not in self.decisions:
            self.decisions[pid] = Decision(value, kind, step=depth, time=time.monotonic())
            if self._events is not None:
                self._events.emit(DecideEvent(self._now(), pid, value, kind, depth))
            if all(
                p in self.decisions
                for p in self.config.processes
                if p not in self.faulty
            ):
                self._all_decided.set()

    def output(self, pid: ProcessId, effect: Deliver, depth: int) -> None:
        self.outputs[pid].append(effect)
        if self._events is not None:
            self._events.emit(
                OutputEvent(self._now(), pid, effect.tag, effect.sender, effect.value)
            )

    def service_call(self, pid: ProcessId, call: ServiceCall, depth: int) -> None:
        if self._events is not None:
            self._events.emit(ServiceEvent(self._now(), pid, call.service, call.payload))
        dispatch_service_call(
            self.services, pid, call, depth, time.monotonic(), self._deliver_reply
        )

    def log_record(self, pid: ProcessId, record: Log, depth: int) -> None:
        if self._events is not None:
            self._events.emit(LogEvent(self._now(), pid, record.event, record.data))

    def _deliver_reply(self, reply: ServiceReply, payload: Any) -> None:
        self._deliver_later(reply.dst, SERVICE_SENDER, payload, reply.depth, self._delay())

    # -- process loop -----------------------------------------------------------------

    async def _process_loop(self, pid: ProcessId) -> None:
        mailbox = self._mailboxes[pid]
        while True:
            sender, payload, depth = await mailbox.queue.get()
            self.stats.messages_delivered += 1
            if self._events is not None:
                self._events.emit(DeliverEvent(self._now(), pid, sender, payload, depth))
            effects = guarded(self.protocols[pid], sender, payload)
            interpret(self, pid, effects, depth)

    async def run(self, timeout: float = 30.0) -> AsyncRunResult:
        """Run until every correct process decided (or ``timeout``).

        On timeout every in-flight delivery task is cancelled (nothing
        leaks into later event loops) and the partial result is returned
        with ``timed_out=True``.
        """
        start = time.monotonic()
        self._t0 = start
        self._mailboxes = {pid: _Mailbox() for pid in self.config.processes}
        loops = [
            asyncio.ensure_future(self._process_loop(pid))
            for pid in self.config.processes
        ]
        for pid in self.config.processes:
            interpret(self, pid, self.protocols[pid].on_start(), 0)
        timed_out = False
        try:
            await asyncio.wait_for(self._all_decided.wait(), timeout)
        except asyncio.TimeoutError:
            timed_out = True
        finally:
            for task in loops:
                task.cancel()
            for task in list(self._pending):
                task.cancel()
            await asyncio.gather(*loops, *self._pending, return_exceptions=True)
        return AsyncRunResult(
            config=self.config,
            decisions=dict(self.decisions),
            outputs=self.outputs,
            stats=self.stats,
            faulty=self.faulty,
            wall_seconds=time.monotonic() - start,
            timed_out=timed_out,
        )

    def run_sync(self, timeout: float = 30.0) -> AsyncRunResult:
        """Convenience wrapper: ``asyncio.run`` the deployment."""
        return asyncio.run(self.run(timeout))
