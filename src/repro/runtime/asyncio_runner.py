"""asyncio runtime: the same sans-IO protocols on a real event loop.

Where :mod:`repro.sim` interprets effects against a virtual clock, this
runner executes them over an in-memory asyncio transport: one task and one
:class:`asyncio.Queue` mailbox per process, real ``asyncio.sleep`` delays,
wall-clock timing.  Protocols are byte-for-byte the same objects — the
sans-IO design is what makes this a one-file addition — so the asyncio
numbers (bench E8) validate that nothing in the simulator results is a
simulation artifact.

Determinism caveat: delays are seeded, but asyncio's internal scheduling
makes interleavings only *mostly* reproducible; property tests that need
exact replay belong on the simulator.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import SimulationError
from ..types import Decision, ProcessId, RunStats, SystemConfig
from .composite import Envelope
from .effects import (
    SERVICE_SENDER,
    Broadcast,
    Decide,
    Deliver,
    Log,
    Send,
    ServiceCall,
)
from .protocol import Protocol, guarded
from .services import Service


@dataclass
class AsyncRunResult:
    """Observable outcome of one asyncio run (wall-clock timed)."""

    config: SystemConfig
    decisions: dict[ProcessId, Decision]
    outputs: dict[ProcessId, list[Deliver]]
    stats: RunStats
    faulty: frozenset[ProcessId]
    wall_seconds: float
    timed_out: bool = False

    @property
    def correct_decisions(self) -> dict[ProcessId, Decision]:
        return {p: d for p, d in self.decisions.items() if p not in self.faulty}

    def agreement_holds(self) -> bool:
        return len({d.value for d in self.correct_decisions.values()}) <= 1

    @property
    def decided_value(self) -> Any:
        values = {d.value for d in self.correct_decisions.values()}
        if len(values) != 1:
            raise SimulationError(f"no single decided value: {values!r}")
        return next(iter(values))

    @property
    def max_correct_step(self) -> int:
        return max((d.step for d in self.correct_decisions.values()), default=0)


@dataclass
class _Mailbox:
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)


class AsyncioRunner:
    """Run one protocol deployment over in-memory asyncio transport.

    Args:
        config: system parameters.
        protocols: one protocol (or Byzantine behavior) per process.
        faulty: Byzantine process ids (bookkeeping only).
        services: trusted services by name (same objects as the simulator).
        seed: seeds the per-message delay sampling.
        mean_delay: average one-way message delay in seconds.
    """

    def __init__(
        self,
        config: SystemConfig,
        protocols: Mapping[ProcessId, Protocol],
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        services: Mapping[str, Service] | None = None,
        seed: int = 0,
        mean_delay: float = 0.001,
    ) -> None:
        if set(protocols) != set(config.processes):
            raise SimulationError(
                "protocols must cover exactly the process ids of the config"
            )
        self.config = config
        self.protocols = dict(protocols)
        self.faulty = frozenset(faulty)
        self.services = dict(services or {})
        self.rng = random.Random(seed)
        self.mean_delay = mean_delay
        self.stats = RunStats()
        self.decisions: dict[ProcessId, Decision] = {}
        self.outputs: dict[ProcessId, list[Deliver]] = {
            pid: [] for pid in config.processes
        }
        self._mailboxes: dict[ProcessId, _Mailbox] = {}
        self._all_decided = asyncio.Event()
        self._pending: set[asyncio.Task] = set()

    # -- effect interpretation ------------------------------------------------------

    def _delay(self) -> float:
        return self.rng.uniform(0.5, 1.5) * self.mean_delay

    def _deliver_later(
        self, dst: ProcessId, sender: ProcessId, payload: Any, depth: int, delay: float
    ) -> None:
        async def deliver() -> None:
            if delay > 0:
                await asyncio.sleep(delay)
            await self._mailboxes[dst].queue.put((sender, payload, depth))

        task = asyncio.ensure_future(deliver())
        self._pending.add(task)
        task.add_done_callback(self._pending.discard)

    def _apply(self, pid: ProcessId, effects: list, depth: int) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                self.stats.messages_sent += 1
                self._deliver_later(
                    effect.dst, pid, effect.payload, depth + 1,
                    0.0 if effect.dst == pid else self._delay(),
                )
            elif isinstance(effect, Broadcast):
                for dst in self.config.processes:
                    self.stats.messages_sent += 1
                    self._deliver_later(
                        dst, pid, effect.payload, depth + 1,
                        0.0 if dst == pid else self._delay(),
                    )
            elif isinstance(effect, Decide):
                if pid not in self.decisions:
                    self.decisions[pid] = Decision(
                        effect.value, effect.kind, step=depth, time=time.monotonic()
                    )
                    if all(
                        p in self.decisions
                        for p in self.config.processes
                        if p not in self.faulty
                    ):
                        self._all_decided.set()
            elif isinstance(effect, Deliver):
                self.outputs[pid].append(effect)
            elif isinstance(effect, ServiceCall):
                self._call_service(pid, effect, depth)
            elif isinstance(effect, Log):
                pass
            else:
                raise SimulationError(f"unknown effect {effect!r}")

    def _call_service(self, pid: ProcessId, call: ServiceCall, depth: int) -> None:
        service = self.services.get(call.service)
        if service is None:
            raise SimulationError(f"no service registered under {call.service!r}")
        for reply in service.on_call(
            pid, call.payload, depth, time.monotonic(), call.reply_path
        ):
            payload: Any = reply.payload
            # reply_path is outermost-first; wrap innermost-first so the
            # outermost envelope ends up on the outside.
            for component in reversed(reply.reply_path):
                payload = Envelope(component, payload)
            self._deliver_later(
                reply.dst, SERVICE_SENDER, payload, reply.depth, self._delay()
            )

    # -- process loop -----------------------------------------------------------------

    async def _process_loop(self, pid: ProcessId) -> None:
        mailbox = self._mailboxes[pid]
        while True:
            sender, payload, depth = await mailbox.queue.get()
            self.stats.messages_delivered += 1
            effects = guarded(self.protocols[pid], sender, payload)
            self._apply(pid, effects, depth)

    async def run(self, timeout: float = 30.0) -> AsyncRunResult:
        """Run until every correct process decided (or ``timeout``)."""
        start = time.monotonic()
        self._mailboxes = {pid: _Mailbox() for pid in self.config.processes}
        loops = [
            asyncio.ensure_future(self._process_loop(pid))
            for pid in self.config.processes
        ]
        for pid in self.config.processes:
            self._apply(pid, self.protocols[pid].on_start(), 0)
        timed_out = False
        try:
            await asyncio.wait_for(self._all_decided.wait(), timeout)
        except asyncio.TimeoutError:
            timed_out = True
        finally:
            for task in loops:
                task.cancel()
            for task in list(self._pending):
                task.cancel()
            await asyncio.gather(*loops, *self._pending, return_exceptions=True)
        return AsyncRunResult(
            config=self.config,
            decisions=dict(self.decisions),
            outputs=self.outputs,
            stats=self.stats,
            faulty=self.faulty,
            wall_seconds=time.monotonic() - start,
            timed_out=timed_out,
        )

    def run_sync(self, timeout: float = 30.0) -> AsyncRunResult:
        """Convenience wrapper: ``asyncio.run`` the deployment."""
        return asyncio.run(self.run(timeout))
