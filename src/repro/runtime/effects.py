"""Effects — the output vocabulary of sans-IO protocol state machines.

Protocols in this library never touch a socket or an event loop: every
handler returns a list of :class:`Effect` values describing what should
happen (send a message, decide a value, call a trusted harness service,
emit a trace record).  A *runtime* — the deterministic simulator in
:mod:`repro.sim` or the asyncio runner in
:mod:`repro.runtime.asyncio_runner` — interprets the effects.

Keeping protocols pure state machines gives us deterministic replay,
adversarial schedulers, and causal step accounting for free, and lets the
exact same protocol code run under both runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..types import DecisionKind, ProcessId, Value
from ..codec.schema import wire_record

#: Pseudo sender id used when a trusted harness service delivers a payload.
SERVICE_SENDER: ProcessId = -1


class Effect:
    """Marker base class for all effects."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Envelope:
    """A child component's payload, tagged with the component name.

    Part of the wire vocabulary: composite protocols wrap each child's
    messages in an envelope naming the child, and the runtimes wrap service
    replies the same way (see :class:`ServiceCall.reply_path`).  Lives here
    rather than in :mod:`repro.runtime.composite` so the effect interpreter
    (:mod:`repro.engine.interpreter`) needs no import from the composition
    layer; :mod:`repro.runtime.composite` re-exports it.
    """

    component: str
    payload: Any


@dataclass(frozen=True, slots=True)
class Send(Effect):
    """Unicast ``payload`` to process ``dst`` over the reliable link."""

    dst: ProcessId
    payload: Any


@dataclass(frozen=True, slots=True)
class Broadcast(Effect):
    """Send ``payload`` to every process, the sender included.

    The paper's "send to all processes" includes the sender; the runtime
    delivers the self-copy with zero network delay but through the normal
    delivery path, so threshold counting stays uniform.
    """

    payload: Any


@dataclass(frozen=True, slots=True)
class Decide(Effect):
    """Terminal output of a consensus protocol instance."""

    value: Value
    kind: DecisionKind


@wire_record(tag=12)
@dataclass(frozen=True, slots=True)
class Deliver(Effect):
    """Upcall from a sub-protocol to its parent (never leaves the process).

    Examples: IDB's ``Id-Receive`` event, the underlying consensus'
    ``UC_decide``.  The ``tag`` names the event, ``sender`` identifies the
    origin process where meaningful (e.g. the broadcast source).
    """

    tag: str
    sender: ProcessId
    value: Any


@wire_record(tag=11)
@dataclass(frozen=True, slots=True)
class ServiceCall(Effect):
    """Invoke a trusted harness service (e.g. the oracle underlying
    consensus of §2.2, which the paper assumes as an abstraction).

    Attributes:
        service: registered service name.
        payload: request payload.
        reply_path: component path (outermost first) that the runtime wraps
            the reply in, so composite protocols receive replies addressed
            to the right child.  Filled in automatically by
            :meth:`repro.runtime.composite.CompositeProtocol.child_call`.
    """

    service: str
    payload: Any
    reply_path: tuple[str, ...] = field(default=())

    def pushed(self, component: str) -> "ServiceCall":
        """Return a copy whose reply will be routed one component deeper."""
        return ServiceCall(self.service, self.payload, (component, *self.reply_path))


@dataclass(frozen=True, slots=True)
class Log(Effect):
    """Structured trace record (collected by the runtime when enabled).

    Unlike the wire-effect dataclasses, ``data`` is a ``dict``, which the
    generated ``__hash__`` would choke on; the explicit hash below folds the
    *sorted* items so two logs built from differently-ordered kwargs hash
    (and compare) identically — state fingerprints must not depend on dict
    insertion order.
    """

    event: str
    data: dict[str, Any] = field(default_factory=dict)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Log):
            return NotImplemented
        return self.event == other.event and self.data == other.data

    def __hash__(self) -> int:
        return hash(
            (self.event, tuple(sorted((k, repr(v)) for k, v in self.data.items())))
        )


#: Deterministic rank of each effect class, used by :func:`effect_sort_key`.
_EFFECT_RANK = {
    "Send": 0,
    "Broadcast": 1,
    "Decide": 2,
    "Deliver": 3,
    "ServiceCall": 4,
    "Log": 5,
}


def effect_sort_key(effect: Effect) -> tuple:
    """A stable, content-based total-order key for effects.

    Model checking needs canonical orderings that are pure functions of
    effect *content*: state fingerprints and DPOR independence checks both
    break if two equal effect lists can serialize differently between runs.
    ``Log`` data dicts are folded in sorted-key order for exactly that
    reason; everything else is a frozen dataclass whose ``repr`` is already
    canonical.
    """
    if isinstance(effect, Log):
        body = (effect.event, tuple(sorted((k, repr(v)) for k, v in effect.data.items())))
    else:
        body = (repr(effect),)
    return (_EFFECT_RANK.get(type(effect).__name__, 99), type(effect).__name__, body)


def logs(effects: list[Effect]) -> list[Log]:
    """Extract the :class:`Log` effects from an effect list (test helper)."""
    return [e for e in effects if isinstance(e, Log)]
