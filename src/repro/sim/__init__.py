"""Deterministic discrete-event simulation of asynchronous Byzantine systems.

The simulator realises the paper's system model (§2.1): reliable
authenticated links, no bounds on relative speeds or delivery times (any
delay is schedulable), up to ``t`` arbitrary-behavior processes.  On top it
adds what a reproduction needs: determinism from a seed, adversarial
schedulers, causal step accounting and tracing.
"""

from .events import Event, EventQueue
from .latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    PerLinkLatency,
    UniformLatency,
)
from .runner import DEFAULT_MAX_EVENTS, RunResult, Simulation
from .scheduler import (
    ComposedScheduler,
    DelayMatching,
    DelaySenders,
    DeliveryScheduler,
    FairScheduler,
    PartitionScheduler,
    RandomJitterScheduler,
)
from .synchronous import (
    CrashEvent,
    SynchronousSimulation,
    SyncDecision,
    SyncProtocol,
    SyncRunResult,
)
from .trace import TraceEvent, Tracer

__all__ = [
    "Event",
    "EventQueue",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "PerLinkLatency",
    "Simulation",
    "RunResult",
    "DEFAULT_MAX_EVENTS",
    "DeliveryScheduler",
    "FairScheduler",
    "DelaySenders",
    "DelayMatching",
    "RandomJitterScheduler",
    "ComposedScheduler",
    "PartitionScheduler",
    "Tracer",
    "TraceEvent",
    "SynchronousSimulation",
    "SyncProtocol",
    "SyncRunResult",
    "SyncDecision",
    "CrashEvent",
]
