"""Message latency models.

The paper assumes a fully asynchronous network: no bound on delivery time.
A simulator nevertheless has to pick *some* delay for every message; the
models here span the spectrum used by the benchmarks — from a constant
(synchronous-looking) network to heavy-tailed delays that exercise the
interleavings where fast paths fail.

All models draw from the :class:`random.Random` instance passed in by the
simulation, never from global state, so runs stay reproducible.
"""

from __future__ import annotations

import abc
import math
import random

from ..types import ProcessId


class LatencyModel(abc.ABC):
    """Strategy object producing a one-way delay for each message."""

    @abc.abstractmethod
    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        """The delay for one message from ``src`` to ``dst``."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units.

    With constant latency the execution looks lock-step synchronous —
    convenient for asserting exact step counts.
    """

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]`` — the default model."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        return rng.uniform(self.low, self.high)


class ExponentialLatency(LatencyModel):
    """Heavy-tailed delays: ``base + Exp(mean)``.

    Occasional stragglers make ``n - t`` quorums form without the slowest
    processes, which is exactly the regime where adaptive conditions pay off.
    """

    def __init__(self, base: float = 0.1, mean: float = 1.0) -> None:
        if base < 0 or mean <= 0:
            raise ValueError("base must be >= 0 and mean > 0")
        self.base = base
        self.mean = mean

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        return self.base + rng.expovariate(1.0 / self.mean)


class LognormalLatency(LatencyModel):
    """Long-tailed delays: ``LN(mu, sigma)`` parameterised by its *mean*.

    The lognormal is the classic long-tail model of real network RTTs:
    most messages are fast, a few are much slower than the mean.  ``mu``
    is derived as ``log(mean) - sigma^2 / 2`` so the distribution's mean
    equals ``mean`` exactly — callers can swap it in for a uniform model
    of the same mean and compare tails, not totals.  The socket hub's
    ``jitter="lognormal"`` mode samples this model with its
    ``mean_delay``.
    """

    def __init__(self, mean: float = 1.0, sigma: float = 1.0) -> None:
        if mean <= 0 or sigma <= 0:
            raise ValueError("mean and sigma must be positive")
        self.mean = mean
        self.sigma = sigma
        self._mu = math.log(mean) - 0.5 * sigma * sigma

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        return rng.lognormvariate(self._mu, self.sigma)


class PerLinkLatency(LatencyModel):
    """A fixed per-link delay matrix with optional jitter.

    Models clustered deployments (fast intra-site, slow cross-site links).

    Args:
        matrix: ``matrix[src][dst]`` base delay.
        jitter: uniform jitter added on top, in ``[0, jitter]``.
    """

    def __init__(self, matrix: list[list[float]], jitter: float = 0.0) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.matrix = matrix
        self.jitter = jitter

    def sample(self, rng: random.Random, src: ProcessId, dst: ProcessId) -> float:
        base = self.matrix[src][dst]
        if self.jitter:
            return base + rng.uniform(0.0, self.jitter)
        return base
