"""The deterministic discrete-event simulation runner.

A :class:`Simulation` hosts one protocol instance per process (correct
processes run real protocols, Byzantine ones run
:mod:`repro.byzantine` behaviors — the runner does not distinguish), a
latency model, an optional adversarial delivery scheduler and a set of
trusted services.  It interprets the effects emitted by the protocols and
keeps the books the paper cares about:

* **causal step accounting** — every message extends the causal chain of
  the event whose handling produced it (``depth = triggering depth + 1``);
  a decision's ``step`` is the depth of the message whose handling decided.
  With this metric, "one-step decision" is literally ``step == 1`` (decide
  while handling a depth-1 proposal), "two-step" is ``step == 2`` (a
  depth-2 IDB echo), and the appendix claim "each IDB step costs two plain
  steps" is directly measurable.
* message counts, per-process decisions, top-level protocol outputs
  (e.g. standalone IDB deliveries) and a structured trace.

Every run is a pure function of ``(config, protocols, seed, latency,
scheduler)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..engine.events import (
    DecideEvent,
    DeliverEvent,
    EventSink,
    FaultEvent,
    LogEvent,
    OutputEvent,
    RestartEvent,
    SendEvent,
    ServiceEvent,
    TracerSink,
    combine,
)
from ..engine.faults import RestartPlan
from ..engine.interpreter import ExecutionPorts, dispatch_service_call, interpret
from ..errors import SimulationDeadlock, SimulationError
from ..runtime.effects import SERVICE_SENDER, Deliver, Effect, Log, ServiceCall
from ..runtime.protocol import Protocol, guarded
from ..runtime.services import ServiceReply
from ..runtime.services import Service
from ..types import Decision, ProcessId, RunStats, SystemConfig
from .events import Event, EventQueue
from .latency import ConstantLatency, LatencyModel, UniformLatency
from .scheduler import DeliveryScheduler, FairScheduler
from .trace import Tracer

#: Default safety valve: a single consensus instance at the sizes used in the
#: benchmarks never comes close to this many events.
DEFAULT_MAX_EVENTS = 2_000_000

_INF = float("inf")


@dataclass
class RunResult:
    """Everything observable about one finished simulation run."""

    config: SystemConfig
    decisions: dict[ProcessId, Decision]
    outputs: dict[ProcessId, list[Deliver]]
    stats: RunStats
    tracer: Tracer
    faulty: frozenset[ProcessId]
    end_time: float
    drained: bool
    depths: dict[ProcessId, int] = field(default_factory=dict)

    @property
    def correct(self) -> list[ProcessId]:
        return [p for p in self.config.processes if p not in self.faulty]

    @property
    def correct_decisions(self) -> dict[ProcessId, Decision]:
        """Decisions of correct processes only (the ones the properties
        quantify over)."""
        return {p: d for p, d in self.decisions.items() if p not in self.faulty}

    def agreement_holds(self) -> bool:
        """Agreement: all correct deciders decided the same value."""
        values = {d.value for d in self.correct_decisions.values()}
        return len(values) <= 1

    def all_correct_decided(self) -> bool:
        """Termination (within this run)."""
        return all(p in self.decisions for p in self.correct)

    @property
    def max_correct_step(self) -> int:
        """Largest decision step among correct processes."""
        ds = self.correct_decisions
        return max((d.step for d in ds.values()), default=0)

    @property
    def decided_value(self) -> Any:
        """The agreed value (requires agreement to hold and someone decided)."""
        values = {d.value for d in self.correct_decisions.values()}
        if len(values) != 1:
            raise SimulationError(f"no single decided value: {values!r}")
        return next(iter(values))


class _ProcessState:
    """Runner-internal per-process bookkeeping."""

    __slots__ = ("protocol", "depth", "decision")

    def __init__(self, protocol: Protocol) -> None:
        self.protocol = protocol
        self.depth = 0
        self.decision: Decision | None = None


class Simulation(ExecutionPorts):
    """One configured, runnable execution.

    The effect semantics live in :mod:`repro.engine.interpreter`; this
    class implements the :class:`~repro.engine.interpreter.ExecutionPorts`
    interface (how to ship, decide, call services) on top of a seeded
    discrete-event queue.

    Args:
        config: system parameters ``(n, t)``.
        protocols: one protocol per process id (Byzantine behaviors are
            protocols too).
        faulty: ids of the Byzantine processes; must have size ``<= t`` and
            is used only for bookkeeping and the stop condition — the
            runner gives faulty processes no extra powers beyond what their
            behavior object does.
        latency: message latency model (default uniform 0.5–1.5).
        scheduler: adversarial extra-delay hook (default none).
        services: trusted services by name.
        seed: PRNG seed; equal seeds give identical runs.
        trace: enable structured tracing.
        event_sink: optional structured-event sink
            (:mod:`repro.engine.events`); attaching one never perturbs the
            seeded rng stream, so a traced run delivers exactly like an
            untraced one.
    """

    def __init__(
        self,
        config: SystemConfig,
        protocols: Mapping[ProcessId, Protocol],
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        latency: LatencyModel | None = None,
        scheduler: DeliveryScheduler | None = None,
        services: Mapping[str, Service] | None = None,
        seed: int = 0,
        trace: bool = False,
        max_events: int = DEFAULT_MAX_EVENTS,
        event_sink: EventSink | None = None,
        restarts: Mapping[ProcessId, RestartPlan] | None = None,
    ) -> None:
        if set(protocols) != set(config.processes):
            raise SimulationError(
                "protocols must cover exactly the process ids of the config"
            )
        faulty = frozenset(faulty)
        if len(faulty) > config.t:
            raise SimulationError(
                f"{len(faulty)} faulty processes exceed the bound t={config.t}"
            )
        self.config = config
        self.faulty = faulty
        self.latency = latency or UniformLatency()
        self.scheduler = scheduler or FairScheduler()
        self.services = dict(services or {})
        self.rng = random.Random(seed)
        self.tracer = Tracer(enabled=trace)
        # Single hot-path check: ``None`` unless tracing or an external
        # sink is attached.  The legacy tracer is fed through TracerSink,
        # so its record stream is identical to the old inline calls.
        self._events = combine(TracerSink(self.tracer) if trace else None, event_sink)
        self.max_events = max_events
        self.queue = EventQueue()
        self.stats = RunStats()
        self.time = 0.0
        self._states = {pid: _ProcessState(p) for pid, p in protocols.items()}
        self._outputs: dict[ProcessId, list[Deliver]] = {
            pid: [] for pid in config.processes
        }
        self._started = False
        # Crash-recovery bookkeeping: processes currently down drop every
        # delivery (matching the net engine, where a dead process's socket
        # buffers are lost).  Empty when no restarts are configured, so the
        # hot-path check is a falsy test and legacy runs are untouched.
        self._restarts = dict(restarts or {})
        self._down: set[ProcessId] = set()
        self._correct = [p for p in config.processes if p not in faulty]
        # O(1) stop condition: the set shrinks as correct processes decide,
        # so the per-event check is a truth test, not an O(n) scan.
        self._undecided_correct = set(self._correct)
        # Hot-path specializations, resolved once instead of per message.
        # The no-op FairScheduler is skipped outright; the two stateless
        # latency models are inlined with the *same* arithmetic on the same
        # rng stream, keeping runs bit-identical to the generic path.
        self._fair_scheduler = type(self.scheduler) is FairScheduler
        # A dictating scheduler (ReplayScheduler) takes over delivery times
        # for every message, including self-sends and service replies.
        self._dictated = bool(getattr(self.scheduler, "dictates_delivery", False))
        self._uniform_params: tuple[float, float] | None = None
        if type(self.latency) is UniformLatency:
            low = self.latency.low
            span = self.latency.high - low
            self._uniform_params = (low, span)
            rand = self.rng.random
            self._sample_latency = lambda src, dst: low + span * rand()
        elif type(self.latency) is ConstantLatency:
            delay = self.latency.delay
            self._sample_latency = lambda src, dst: delay
        else:
            model = self.latency
            rng = self.rng
            self._sample_latency = lambda src, dst: model.sample(rng, src, dst)

    # -- public API ---------------------------------------------------------------

    @property
    def correct(self) -> list[ProcessId]:
        return list(self._correct)

    def run_until_decided(self) -> RunResult:
        """Run until every correct process has decided.

        Raises:
            SimulationDeadlock: the event queue drained first.
            SimulationError: the ``max_events`` safety valve tripped.
        """
        return self._run(stop=self._all_correct_decided)

    def run_to_quiescence(self) -> RunResult:
        """Run until no events remain (for protocols without decisions)."""
        return self._run(stop=None)

    def run_until(self, stop: Callable[["Simulation"], bool]) -> RunResult:
        """Run until an arbitrary stop predicate over the simulation holds."""
        return self._run(stop=stop)

    # -- engine ---------------------------------------------------------------------

    def _all_correct_decided(self, sim: "Simulation") -> bool:
        return not self._undecided_correct

    def _run(self, stop: Callable[["Simulation"], bool] | None) -> RunResult:
        if not self._started:
            self._started = True
            for pid in self.config.processes:
                self.queue.push(Event(0.0, "start", dst=pid))
            for pid, plan in sorted(self._restarts.items()):
                if plan.at is None:
                    continue
                self.queue.push(Event(plan.at, "crash", dst=pid))
                if plan.restart_after is not None:
                    self.queue.push(
                        Event(plan.at + plan.restart_after, "restart", dst=pid)
                    )
        processed = 0
        while self.queue:
            if stop is not None and stop(self):
                break
            # Raw heap entries: flat deliver tuples skip Event construction
            # entirely on the pop side too (see EventQueue.pop_entry).
            entry = self.queue.pop_entry()
            time = entry[0]
            if time > self.time:
                self.time = time
            processed += 1
            if processed > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; likely livelock"
                )
            if len(entry) == 3:
                event = entry[2]
                self._dispatch_fields(
                    event.kind, event.dst, event.sender, event.payload, event.depth
                )
            else:
                self._dispatch_fields("deliver", entry[2], entry[3], entry[4], entry[5])
        else:
            if stop is not None and not stop(self):
                undecided = frozenset(
                    p for p in self.correct if self._states[p].decision is None
                )
                raise SimulationDeadlock(undecided)
        return self._result()

    def _dispatch(self, event: Event) -> None:
        self._dispatch_fields(
            event.kind, event.dst, event.sender, event.payload, event.depth
        )

    def _dispatch_fields(
        self, kind: str, dst: ProcessId, sender: ProcessId, payload: Any, depth: int
    ) -> None:
        state = self._states[dst]
        if kind == "start":
            effects = state.protocol.on_start()
        elif kind == "crash":
            # Timed kill (CrashRecover): the process goes dark — every
            # delivery while down is dropped before any bookkeeping, the
            # same loss a killed OS process suffers on the net engine.
            self._down.add(dst)
            if self._events is not None:
                self._events.emit(
                    FaultEvent(self.time, dst, fault="CrashRecover", detail="killed")
                )
            return
        elif kind == "restart":
            plan = self._restarts[dst]
            state.protocol = plan.factory()
            state.depth = 0
            self._down.discard(dst)
            if self._events is not None:
                self._events.emit(RestartEvent(self.time, dst))
            effects = state.protocol.on_start()
        else:
            if self._down and dst in self._down:
                return
            if depth > state.depth:
                state.depth = depth
            self.stats.messages_delivered += 1
            if self._events is not None:
                self._events.emit(DeliverEvent(self.time, dst, sender, payload, depth))
            effects = guarded(state.protocol, sender, payload)
        if effects:
            interpret(self, dst, effects, depth)

    def _apply_effects(self, pid: ProcessId, effects: list[Effect], depth: int) -> None:
        """Compatibility shim: route through the engine interpreter.

        ``depth`` is the causal depth of the event being handled; outgoing
        messages extend exactly this chain (depth + 1), decisions happen at
        this depth, and service calls happen "within" the step at this
        depth.  This is the paper's communication-step metric: a one-step
        decision fires while handling a depth-1 proposal, a two-step
        decision while handling a depth-2 IDB echo.
        """
        interpret(self, pid, effects, depth)

    # -- ExecutionPorts ------------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any, depth: int) -> None:
        self.stats.messages_sent += 1
        if self._dictated:
            delay = self.scheduler.extra_delay(self.rng, src, dst, payload, self.time)
            if delay == _INF:
                return
            if delay < 0.0:
                delay = 0.0
        elif dst == src:
            delay = 0.0
        else:
            delay = self._sample_latency(src, dst)
            if not self._fair_scheduler:
                delay += self.scheduler.extra_delay(self.rng, src, dst, payload, self.time)
                # An adversarial scheduler may hand back a negative extra
                # (e.g. a buggy composition); clamping keeps events out of
                # the past so simulated time stays monotone.
                if delay < 0.0:
                    delay = 0.0
        self.queue.push_deliver(self.time + delay, dst, src, payload, depth)
        if self._events is not None:
            self._events.emit(SendEvent(self.time, src, dst, payload, depth))

    def broadcast(self, pid: ProcessId, payload: Any, message_depth: int) -> None:
        # Inlined fan-out of ``send``: one Broadcast becomes n queue
        # pushes, the single hottest loop of a simulated run.
        time = self.time
        push = self.queue.push_deliver
        params = self._uniform_params
        events = self._events
        if params is not None and self._fair_scheduler and events is None:
            # Uniform latency, no adversarial delay, nobody watching:
            # sample inline with the exact random.Random.uniform arithmetic
            # so the rng stream stays bit-identical to the generic path.
            low, span = params
            rand = self.rng.random
            for dst in self.config.processes:
                if dst == pid:
                    push(time, dst, pid, payload, message_depth)
                else:
                    push(
                        time + low + span * rand(),
                        dst,
                        pid,
                        payload,
                        message_depth,
                    )
        else:
            sample = self._sample_latency
            fair = self._fair_scheduler
            dictated = self._dictated
            extra = self.scheduler.extra_delay
            for dst in self.config.processes:
                if dictated:
                    delay = extra(self.rng, pid, dst, payload, time)
                    if delay == _INF:
                        continue
                    if delay < 0.0:
                        delay = 0.0
                elif dst == pid:
                    delay = 0.0
                else:
                    delay = sample(pid, dst)
                    if not fair:
                        delay += extra(self.rng, pid, dst, payload, time)
                        if delay < 0.0:
                            delay = 0.0
                push(time + delay, dst, pid, payload, message_depth)
                if events is not None:
                    events.emit(SendEvent(time, pid, dst, payload, message_depth))
        self.stats.messages_sent += self.config.n

    def decide(self, pid: ProcessId, value: Any, kind: Any, depth: int) -> None:
        state = self._states[pid]
        if state.decision is None:
            state.decision = Decision(value, kind, step=depth, time=self.time)
            self.stats.record_decision(pid, state.decision)
            self._undecided_correct.discard(pid)
            if self._events is not None:
                self._events.emit(DecideEvent(self.time, pid, value, kind, depth))

    def output(self, pid: ProcessId, effect: Deliver, depth: int) -> None:
        self._outputs[pid].append(effect)
        if self._events is not None:
            self._events.emit(
                OutputEvent(self.time, pid, effect.tag, effect.sender, effect.value)
            )

    def service_call(self, pid: ProcessId, call: ServiceCall, depth: int) -> None:
        if self._events is not None:
            self._events.emit(ServiceEvent(self.time, pid, call.service, call.payload))
        dispatch_service_call(
            self.services, pid, call, depth, self.time, self._deliver_reply
        )

    def log_record(self, pid: ProcessId, record: Log, depth: int) -> None:
        if self._events is not None:
            self._events.emit(LogEvent(self.time, pid, record.event, record.data))

    def _deliver_reply(self, reply: ServiceReply, payload: Any) -> None:
        delay = reply.delay
        if self._dictated:
            delay = self.scheduler.extra_delay(
                self.rng, SERVICE_SENDER, reply.dst, payload, self.time
            )
            if delay == _INF:
                return
            if delay < 0.0:
                delay = 0.0
        self.queue.push_deliver(
            self.time + delay, reply.dst, SERVICE_SENDER, payload, reply.depth
        )

    def _result(self) -> RunResult:
        self.stats.end_time = self.time
        return RunResult(
            config=self.config,
            decisions={
                pid: s.decision
                for pid, s in self._states.items()
                if s.decision is not None
            },
            outputs=self._outputs,
            stats=self.stats,
            tracer=self.tracer,
            faulty=self.faulty,
            end_time=self.time,
            drained=not self.queue,
            depths={pid: s.depth for pid, s in self._states.items()},
        )
