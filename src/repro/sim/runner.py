"""The deterministic discrete-event simulation runner.

A :class:`Simulation` hosts one protocol instance per process (correct
processes run real protocols, Byzantine ones run
:mod:`repro.byzantine` behaviors — the runner does not distinguish), a
latency model, an optional adversarial delivery scheduler and a set of
trusted services.  It interprets the effects emitted by the protocols and
keeps the books the paper cares about:

* **causal step accounting** — every message extends the causal chain of
  the event whose handling produced it (``depth = triggering depth + 1``);
  a decision's ``step`` is the depth of the message whose handling decided.
  With this metric, "one-step decision" is literally ``step == 1`` (decide
  while handling a depth-1 proposal), "two-step" is ``step == 2`` (a
  depth-2 IDB echo), and the appendix claim "each IDB step costs two plain
  steps" is directly measurable.
* message counts, per-process decisions, top-level protocol outputs
  (e.g. standalone IDB deliveries) and a structured trace.

Every run is a pure function of ``(config, protocols, seed, latency,
scheduler)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..errors import SimulationDeadlock, SimulationError
from ..runtime.composite import Envelope
from ..runtime.effects import (
    SERVICE_SENDER,
    Broadcast,
    Decide,
    Deliver,
    Effect,
    Log,
    Send,
    ServiceCall,
)
from ..runtime.protocol import Protocol, guarded
from ..runtime.services import Service
from ..types import Decision, ProcessId, RunStats, SystemConfig
from .events import Event, EventQueue
from .latency import LatencyModel, UniformLatency
from .scheduler import DeliveryScheduler, FairScheduler
from .trace import Tracer

#: Default safety valve: a single consensus instance at the sizes used in the
#: benchmarks never comes close to this many events.
DEFAULT_MAX_EVENTS = 2_000_000


@dataclass
class RunResult:
    """Everything observable about one finished simulation run."""

    config: SystemConfig
    decisions: dict[ProcessId, Decision]
    outputs: dict[ProcessId, list[Deliver]]
    stats: RunStats
    tracer: Tracer
    faulty: frozenset[ProcessId]
    end_time: float
    drained: bool
    depths: dict[ProcessId, int] = field(default_factory=dict)

    @property
    def correct(self) -> list[ProcessId]:
        return [p for p in self.config.processes if p not in self.faulty]

    @property
    def correct_decisions(self) -> dict[ProcessId, Decision]:
        """Decisions of correct processes only (the ones the properties
        quantify over)."""
        return {p: d for p, d in self.decisions.items() if p not in self.faulty}

    def agreement_holds(self) -> bool:
        """Agreement: all correct deciders decided the same value."""
        values = {d.value for d in self.correct_decisions.values()}
        return len(values) <= 1

    def all_correct_decided(self) -> bool:
        """Termination (within this run)."""
        return all(p in self.decisions for p in self.correct)

    @property
    def max_correct_step(self) -> int:
        """Largest decision step among correct processes."""
        ds = self.correct_decisions
        return max((d.step for d in ds.values()), default=0)

    @property
    def decided_value(self) -> Any:
        """The agreed value (requires agreement to hold and someone decided)."""
        values = {d.value for d in self.correct_decisions.values()}
        if len(values) != 1:
            raise SimulationError(f"no single decided value: {values!r}")
        return next(iter(values))


class _ProcessState:
    """Runner-internal per-process bookkeeping."""

    __slots__ = ("protocol", "depth", "decision")

    def __init__(self, protocol: Protocol) -> None:
        self.protocol = protocol
        self.depth = 0
        self.decision: Decision | None = None


class Simulation:
    """One configured, runnable execution.

    Args:
        config: system parameters ``(n, t)``.
        protocols: one protocol per process id (Byzantine behaviors are
            protocols too).
        faulty: ids of the Byzantine processes; must have size ``<= t`` and
            is used only for bookkeeping and the stop condition — the
            runner gives faulty processes no extra powers beyond what their
            behavior object does.
        latency: message latency model (default uniform 0.5–1.5).
        scheduler: adversarial extra-delay hook (default none).
        services: trusted services by name.
        seed: PRNG seed; equal seeds give identical runs.
        trace: enable structured tracing.
    """

    def __init__(
        self,
        config: SystemConfig,
        protocols: Mapping[ProcessId, Protocol],
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        latency: LatencyModel | None = None,
        scheduler: DeliveryScheduler | None = None,
        services: Mapping[str, Service] | None = None,
        seed: int = 0,
        trace: bool = False,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if set(protocols) != set(config.processes):
            raise SimulationError(
                "protocols must cover exactly the process ids of the config"
            )
        faulty = frozenset(faulty)
        if len(faulty) > config.t:
            raise SimulationError(
                f"{len(faulty)} faulty processes exceed the bound t={config.t}"
            )
        self.config = config
        self.faulty = faulty
        self.latency = latency or UniformLatency()
        self.scheduler = scheduler or FairScheduler()
        self.services = dict(services or {})
        self.rng = random.Random(seed)
        self.tracer = Tracer(enabled=trace)
        self.max_events = max_events
        self.queue = EventQueue()
        self.stats = RunStats()
        self.time = 0.0
        self._states = {pid: _ProcessState(p) for pid, p in protocols.items()}
        self._outputs: dict[ProcessId, list[Deliver]] = {
            pid: [] for pid in config.processes
        }
        self._started = False

    # -- public API ---------------------------------------------------------------

    @property
    def correct(self) -> list[ProcessId]:
        return [p for p in self.config.processes if p not in self.faulty]

    def run_until_decided(self) -> RunResult:
        """Run until every correct process has decided.

        Raises:
            SimulationDeadlock: the event queue drained first.
            SimulationError: the ``max_events`` safety valve tripped.
        """
        return self._run(stop=self._all_correct_decided)

    def run_to_quiescence(self) -> RunResult:
        """Run until no events remain (for protocols without decisions)."""
        return self._run(stop=None)

    def run_until(self, stop: Callable[["Simulation"], bool]) -> RunResult:
        """Run until an arbitrary stop predicate over the simulation holds."""
        return self._run(stop=stop)

    # -- engine ---------------------------------------------------------------------

    def _all_correct_decided(self, sim: "Simulation") -> bool:
        return all(self._states[p].decision is not None for p in self.correct)

    def _run(self, stop: Callable[["Simulation"], bool] | None) -> RunResult:
        if not self._started:
            self._started = True
            for pid in self.config.processes:
                self.queue.push(Event(0.0, "start", dst=pid))
        processed = 0
        while self.queue:
            if stop is not None and stop(self):
                break
            event = self.queue.pop()
            self.time = max(self.time, event.time)
            processed += 1
            if processed > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; likely livelock"
                )
            self._dispatch(event)
        else:
            if stop is not None and not stop(self):
                undecided = frozenset(
                    p for p in self.correct if self._states[p].decision is None
                )
                raise SimulationDeadlock(undecided)
        return self._result()

    def _dispatch(self, event: Event) -> None:
        state = self._states[event.dst]
        if event.kind == "start":
            effects = state.protocol.on_start()
        else:
            state.depth = max(state.depth, event.depth)
            self.stats.messages_delivered += 1
            self.tracer.record(
                self.time,
                event.dst,
                "deliver",
                {"from": event.sender, "payload": event.payload, "depth": event.depth},
            )
            effects = guarded(state.protocol, event.sender, event.payload)
        self._apply_effects(event.dst, effects, event.depth)

    def _apply_effects(self, pid: ProcessId, effects: list[Effect], depth: int) -> None:
        # ``depth`` is the causal depth of the event being handled; outgoing
        # messages extend exactly this chain (depth + 1), decisions happen at
        # this depth, and service calls happen "within" the step at this
        # depth.  This is the paper's communication-step metric: a one-step
        # decision fires while handling a depth-1 proposal, a two-step
        # decision while handling a depth-2 IDB echo.
        state = self._states[pid]
        for effect in effects:
            if isinstance(effect, Send):
                self._send(pid, effect.dst, effect.payload, depth + 1)
            elif isinstance(effect, Broadcast):
                for dst in self.config.processes:
                    self._send(pid, dst, effect.payload, depth + 1)
            elif isinstance(effect, Decide):
                if state.decision is None:
                    state.decision = Decision(
                        effect.value, effect.kind, step=depth, time=self.time
                    )
                    self.stats.record_decision(pid, state.decision)
                    self.tracer.record(
                        self.time,
                        pid,
                        "decide",
                        {
                            "value": effect.value,
                            "kind": effect.kind.value,
                            "step": depth,
                        },
                    )
            elif isinstance(effect, Deliver):
                self._outputs[pid].append(effect)
                self.tracer.record(
                    self.time,
                    pid,
                    f"output:{effect.tag}",
                    {"sender": effect.sender, "value": effect.value},
                )
            elif isinstance(effect, ServiceCall):
                self._call_service(pid, effect, depth)
            elif isinstance(effect, Log):
                self.tracer.record(self.time, effect.data.get("pid", pid), effect.event, effect.data)
            else:
                raise SimulationError(f"unknown effect {effect!r}")

    def _send(self, src: ProcessId, dst: ProcessId, payload: Any, depth: int) -> None:
        self.stats.messages_sent += 1
        if dst == src:
            delay = 0.0
        else:
            delay = self.latency.sample(self.rng, src, dst)
            delay += self.scheduler.extra_delay(self.rng, src, dst, payload, self.time)
        self.queue.push(
            Event(self.time + delay, "deliver", dst=dst, sender=src, payload=payload, depth=depth)
        )

    def _call_service(self, pid: ProcessId, call: ServiceCall, depth: int) -> None:
        service = self.services.get(call.service)
        if service is None:
            raise SimulationError(f"no service registered under {call.service!r}")
        self.tracer.record(self.time, pid, f"service-call:{call.service}", {"payload": call.payload})
        for reply in service.on_call(pid, call.payload, depth, self.time, call.reply_path):
            payload: Any = reply.payload
            # reply_path is outermost-first; wrap innermost-first so the
            # outermost envelope ends up on the outside.
            for component in reversed(reply.reply_path):
                payload = Envelope(component, payload)
            self.queue.push(
                Event(
                    self.time + reply.delay,
                    "deliver",
                    dst=reply.dst,
                    sender=SERVICE_SENDER,
                    payload=payload,
                    depth=reply.depth,
                )
            )

    def _result(self) -> RunResult:
        self.stats.end_time = self.time
        return RunResult(
            config=self.config,
            decisions={
                pid: s.decision
                for pid, s in self._states.items()
                if s.decision is not None
            },
            outputs=self._outputs,
            stats=self.stats,
            tracer=self.tracer,
            faulty=self.faulty,
            end_time=self.time,
            drained=not self.queue,
            depths={pid: s.depth for pid, s in self._states.items()},
        )
