"""Synchronous round-based simulation with crash failures.

The comparison row "Mostefaoui et.al [11]" of the paper's Table 1 lives in
a different system model: *synchronous* rounds and *crash* failures, where
one-step decision is possible with only ``n > t`` processes.  This engine
provides that model:

* execution proceeds in lock-step rounds; every process broadcasts one
  message per round and receives the round's messages from all processes
  that actually sent to it;
* a crashing process stops at a scheduled round, after its message reached
  only an adversary-chosen subset of recipients — the classic source of
  asymmetric views in synchronous crash consensus.

Protocols implement :class:`SyncProtocol`: ``first_message()`` produces the
round-1 broadcast, ``on_round(round, received)`` consumes one round's
deliveries and returns the next broadcast (or ``None`` to fall silent) and
optionally a decision.  The engine never lets a crashed process speak
again, and reports per-process decisions with the deciding round.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import SimulationError
from ..types import ProcessId, SystemConfig, Value


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """When and how a process crashes.

    Attributes:
        round: the round during which the crash happens (1-based); the
            process participates fully in earlier rounds.
        delivered_to: recipients that still receive its final-round
            message; ``None`` means an adversary-chosen random subset.
    """

    round: int
    delivered_to: frozenset[ProcessId] | None = None


@dataclass(frozen=True, slots=True)
class SyncDecision:
    """A decision made in the synchronous model."""

    value: Value
    round: int


class SyncProtocol(abc.ABC):
    """A protocol for the lock-step synchronous model."""

    def __init__(self, process_id: ProcessId, config: SystemConfig) -> None:
        self.process_id = process_id
        self.config = config

    @abc.abstractmethod
    def first_message(self) -> Any:
        """The message broadcast in round 1."""

    @abc.abstractmethod
    def on_round(
        self, round_: int, received: Mapping[ProcessId, Any]
    ) -> tuple[Any, Value | None]:
        """Consume round ``round_``'s deliveries.

        Returns:
            ``(next_message, decision)`` — ``next_message`` is broadcast in
            the following round (``None`` = send nothing), ``decision`` is
            a value to decide now (``None`` = keep going).  The engine
            records only the first decision and keeps running the protocol
            so late processes still receive its floods.
        """


class SynchronousSimulation:
    """Run synchronous protocols under a crash schedule.

    Args:
        config: system parameters; at most ``t`` crash events allowed.
        protocols: one protocol per process.
        crashes: crash schedule (subset of processes).
        seed: randomises adversary-chosen delivery subsets.
    """

    def __init__(
        self,
        config: SystemConfig,
        protocols: Mapping[ProcessId, SyncProtocol],
        crashes: Mapping[ProcessId, CrashEvent] | None = None,
        seed: int = 0,
    ) -> None:
        if set(protocols) != set(config.processes):
            raise SimulationError(
                "protocols must cover exactly the process ids of the config"
            )
        crashes = dict(crashes or {})
        if len(crashes) > config.t:
            raise SimulationError(
                f"{len(crashes)} crashes exceed the bound t={config.t}"
            )
        self.config = config
        self.protocols = dict(protocols)
        self.crashes = crashes
        self.rng = random.Random(seed)

    @property
    def faulty(self) -> frozenset[ProcessId]:
        return frozenset(self.crashes)

    @property
    def correct(self) -> list[ProcessId]:
        return [p for p in self.config.processes if p not in self.crashes]

    def run(self, max_rounds: int) -> "SyncRunResult":
        """Execute up to ``max_rounds`` rounds."""
        decisions: dict[ProcessId, SyncDecision] = {}
        crashed: set[ProcessId] = set()
        outbox: dict[ProcessId, Any] = {
            pid: protocol.first_message() for pid, protocol in self.protocols.items()
        }
        for round_ in range(1, max_rounds + 1):
            deliveries: dict[ProcessId, dict[ProcessId, Any]] = {
                pid: {} for pid in self.config.processes
            }
            for sender, message in outbox.items():
                if message is None or sender in crashed:
                    continue
                event = self.crashes.get(sender)
                if event is not None and event.round == round_:
                    recipients = event.delivered_to
                    if recipients is None:
                        cut = self.rng.randint(0, self.config.n)
                        recipients = frozenset(
                            self.rng.sample(range(self.config.n), cut)
                        )
                    crashed.add(sender)
                elif event is not None and event.round < round_:
                    crashed.add(sender)
                    continue
                else:
                    recipients = frozenset(self.config.processes)
                for dst in recipients:
                    deliveries[dst][sender] = message
            next_outbox: dict[ProcessId, Any] = {}
            for pid, protocol in self.protocols.items():
                if pid in crashed:
                    continue
                message, decision = protocol.on_round(round_, deliveries[pid])
                next_outbox[pid] = message
                if decision is not None and pid not in decisions:
                    decisions[pid] = SyncDecision(decision, round_)
            outbox = next_outbox
            if all(pid in decisions for pid in self.correct):
                break
        return SyncRunResult(
            config=self.config,
            decisions=decisions,
            faulty=self.faulty,
            rounds=round_,
        )


@dataclass
class SyncRunResult:
    """Outcome of a synchronous run."""

    config: SystemConfig
    decisions: dict[ProcessId, SyncDecision]
    faulty: frozenset[ProcessId]
    rounds: int
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def correct_decisions(self) -> dict[ProcessId, SyncDecision]:
        return {p: d for p, d in self.decisions.items() if p not in self.faulty}

    def agreement_holds(self) -> bool:
        return len({d.value for d in self.correct_decisions.values()}) <= 1

    def all_correct_decided(self) -> bool:
        return all(
            p in self.decisions for p in self.config.processes if p not in self.faulty
        )

    @property
    def decided_value(self) -> Value:
        values = {d.value for d in self.correct_decisions.values()}
        if len(values) != 1:
            raise SimulationError(f"no single decided value: {values!r}")
        return next(iter(values))

    @property
    def max_decision_round(self) -> int:
        return max((d.round for d in self.correct_decisions.values()), default=0)
