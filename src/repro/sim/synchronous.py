"""Synchronous round-based simulation with crash failures.

The comparison row "Mostefaoui et.al [11]" of the paper's Table 1 lives in
a different system model: *synchronous* rounds and *crash* failures, where
one-step decision is possible with only ``n > t`` processes.  This engine
provides that model:

* execution proceeds in lock-step rounds; every process broadcasts one
  message per round and receives the round's messages from all processes
  that actually sent to it;
* a crashing process stops at a scheduled round, after its message reached
  only an adversary-chosen subset of recipients — the classic source of
  asymmetric views in synchronous crash consensus.

Protocols implement :class:`SyncProtocol`: ``first_message()`` produces the
round-1 broadcast, ``on_round(round, received)`` consumes one round's
deliveries and returns the next broadcast (or ``None`` to fall silent) and
optionally a decision.  The engine never lets a crashed process speak
again, and reports per-process decisions with the deciding round.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..engine.events import (
    DecideEvent,
    DeliverEvent,
    EventSink,
    LogEvent,
    OutputEvent,
    RoundEvent,
    SendEvent,
    ServiceEvent,
    TracerSink,
    combine,
)
from ..engine.interpreter import ExecutionPorts, dispatch_service_call, interpret
from ..errors import SimulationError
from ..runtime.effects import SERVICE_SENDER, Deliver, Log, ServiceCall
from ..runtime.protocol import Protocol, guarded
from ..runtime.services import Service, ServiceReply
from ..types import Decision, DecisionKind, ProcessId, RunStats, SystemConfig, Value


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """When and how a process crashes.

    Attributes:
        round: the round during which the crash happens (1-based); the
            process participates fully in earlier rounds.
        delivered_to: recipients that still receive its final-round
            message; ``None`` means an adversary-chosen random subset.
    """

    round: int
    delivered_to: frozenset[ProcessId] | None = None


@dataclass(frozen=True, slots=True)
class SyncDecision:
    """A decision made in the synchronous model."""

    value: Value
    round: int


class SyncProtocol(abc.ABC):
    """A protocol for the lock-step synchronous model."""

    def __init__(self, process_id: ProcessId, config: SystemConfig) -> None:
        self.process_id = process_id
        self.config = config

    @abc.abstractmethod
    def first_message(self) -> Any:
        """The message broadcast in round 1."""

    @abc.abstractmethod
    def on_round(
        self, round_: int, received: Mapping[ProcessId, Any]
    ) -> tuple[Any, Value | None]:
        """Consume round ``round_``'s deliveries.

        Returns:
            ``(next_message, decision)`` — ``next_message`` is broadcast in
            the following round (``None`` = send nothing), ``decision`` is
            a value to decide now (``None`` = keep going).  The engine
            records only the first decision and keeps running the protocol
            so late processes still receive its floods.
        """


class SynchronousSimulation:
    """Run synchronous protocols under a crash schedule.

    Args:
        config: system parameters; at most ``t`` crash events allowed.
        protocols: one protocol per process.
        crashes: crash schedule (subset of processes).
        seed: randomises adversary-chosen delivery subsets.
    """

    def __init__(
        self,
        config: SystemConfig,
        protocols: Mapping[ProcessId, SyncProtocol],
        crashes: Mapping[ProcessId, CrashEvent] | None = None,
        seed: int = 0,
        event_sink: EventSink | None = None,
    ) -> None:
        if set(protocols) != set(config.processes):
            raise SimulationError(
                "protocols must cover exactly the process ids of the config"
            )
        crashes = dict(crashes or {})
        if len(crashes) > config.t:
            raise SimulationError(
                f"{len(crashes)} crashes exceed the bound t={config.t}"
            )
        self.config = config
        self.protocols = dict(protocols)
        self.crashes = crashes
        self.rng = random.Random(seed)
        self._events = event_sink

    @property
    def faulty(self) -> frozenset[ProcessId]:
        return frozenset(self.crashes)

    @property
    def correct(self) -> list[ProcessId]:
        return [p for p in self.config.processes if p not in self.crashes]

    def run(self, max_rounds: int) -> "SyncRunResult":
        """Execute up to ``max_rounds`` rounds."""
        decisions: dict[ProcessId, SyncDecision] = {}
        crashed: set[ProcessId] = set()
        outbox: dict[ProcessId, Any] = {
            pid: protocol.first_message() for pid, protocol in self.protocols.items()
        }
        for round_ in range(1, max_rounds + 1):
            if self._events is not None:
                self._events.emit(RoundEvent(float(round_), -1, round_))
            deliveries: dict[ProcessId, dict[ProcessId, Any]] = {
                pid: {} for pid in self.config.processes
            }
            for sender, message in outbox.items():
                if message is None or sender in crashed:
                    continue
                event = self.crashes.get(sender)
                if event is not None and event.round == round_:
                    recipients = event.delivered_to
                    if recipients is None:
                        cut = self.rng.randint(0, self.config.n)
                        recipients = frozenset(
                            self.rng.sample(range(self.config.n), cut)
                        )
                    crashed.add(sender)
                elif event is not None and event.round < round_:
                    crashed.add(sender)
                    continue
                else:
                    recipients = frozenset(self.config.processes)
                for dst in recipients:
                    deliveries[dst][sender] = message
            next_outbox: dict[ProcessId, Any] = {}
            for pid, protocol in self.protocols.items():
                if pid in crashed:
                    continue
                if self._events is not None:
                    for sender, message in deliveries[pid].items():
                        self._events.emit(
                            DeliverEvent(float(round_), pid, sender, message, round_)
                        )
                message, decision = protocol.on_round(round_, deliveries[pid])
                next_outbox[pid] = message
                if decision is not None and pid not in decisions:
                    decisions[pid] = SyncDecision(decision, round_)
                    if self._events is not None:
                        self._events.emit(
                            DecideEvent(
                                float(round_), pid, decision, DecisionKind.UNDERLYING, round_
                            )
                        )
            outbox = next_outbox
            if all(pid in decisions for pid in self.correct):
                break
        return SyncRunResult(
            config=self.config,
            decisions=decisions,
            faulty=self.faulty,
            rounds=round_,
        )


@dataclass
class SyncRunResult:
    """Outcome of a synchronous run."""

    config: SystemConfig
    decisions: dict[ProcessId, SyncDecision]
    faulty: frozenset[ProcessId]
    rounds: int
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def correct_decisions(self) -> dict[ProcessId, SyncDecision]:
        return {p: d for p, d in self.decisions.items() if p not in self.faulty}

    def agreement_holds(self) -> bool:
        return len({d.value for d in self.correct_decisions.values()}) <= 1

    def all_correct_decided(self) -> bool:
        return all(
            p in self.decisions for p in self.config.processes if p not in self.faulty
        )

    @property
    def decided_value(self) -> Value:
        values = {d.value for d in self.correct_decisions.values()}
        if len(values) != 1:
            raise SimulationError(f"no single decided value: {values!r}")
        return next(iter(values))

    @property
    def max_decision_round(self) -> int:
        return max((d.round for d in self.correct_decisions.values()), default=0)


class LockstepSimulation(ExecutionPorts):
    """Run *asynchronous* sans-IO protocols in deterministic lockstep rounds.

    This is the ``engine="sync"`` backend of
    :class:`~repro.harness.Scenario`: the same
    :class:`~repro.runtime.protocol.Protocol` objects as the other
    backends, but with a maximally synchronous schedule — every message
    sent during round ``r`` is delivered (in send order) at round
    ``r + 1``, so all processes see complete, identical rounds.  A useful
    extreme for cross-engine equivalence checks: causal step accounting is
    identical, scheduling noise is zero.

    Not to be confused with :class:`SynchronousSimulation`, which hosts
    round-*native* :class:`SyncProtocol` implementations (the Mostefaoui
    Table-1 row); this class is a scheduling policy for effect-based
    protocols and interprets effects through the shared engine.
    """

    def __init__(
        self,
        config: SystemConfig,
        protocols: Mapping[ProcessId, Protocol],
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        services: Mapping[str, Service] | None = None,
        seed: int = 0,
        trace: bool = False,
        event_sink: EventSink | None = None,
        max_rounds: int = 10_000,
    ) -> None:
        if set(protocols) != set(config.processes):
            raise SimulationError(
                "protocols must cover exactly the process ids of the config"
            )
        faulty = frozenset(faulty)
        if len(faulty) > config.t:
            raise SimulationError(
                f"{len(faulty)} faulty processes exceed the bound t={config.t}"
            )
        from .trace import Tracer

        self.config = config
        self.protocols = dict(protocols)
        self.faulty = faulty
        self.services = dict(services or {})
        self.rng = random.Random(seed)  # unused by the schedule; kept for parity
        self.tracer = Tracer(enabled=trace)
        self._events = combine(TracerSink(self.tracer) if trace else None, event_sink)
        self.max_rounds = max_rounds
        self.stats = RunStats()
        self.time = 0.0
        self.decisions: dict[ProcessId, Decision] = {}
        self.outputs: dict[ProcessId, list[Deliver]] = {
            pid: [] for pid in config.processes
        }
        self._depths: dict[ProcessId, int] = {pid: 0 for pid in config.processes}
        #: messages to deliver next round, in send order.
        self._next: list[tuple[ProcessId, ProcessId, Any, int]] = []
        self._undecided_correct = {
            p for p in config.processes if p not in faulty
        }

    @property
    def correct(self) -> list[ProcessId]:
        return [p for p in self.config.processes if p not in self.faulty]

    # -- ExecutionPorts (broadcast inherits the per-destination default) --------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any, depth: int) -> None:
        self.stats.messages_sent += 1
        self._next.append((dst, src, payload, depth))
        if self._events is not None:
            self._events.emit(SendEvent(self.time, src, dst, payload, depth))

    def decide(self, pid: ProcessId, value: Any, kind: Any, depth: int) -> None:
        if pid not in self.decisions:
            decision = Decision(value, kind, step=depth, time=self.time)
            self.decisions[pid] = decision
            self.stats.record_decision(pid, decision)
            self._undecided_correct.discard(pid)
            if self._events is not None:
                self._events.emit(DecideEvent(self.time, pid, value, kind, depth))

    def output(self, pid: ProcessId, effect: Deliver, depth: int) -> None:
        self.outputs[pid].append(effect)
        if self._events is not None:
            self._events.emit(
                OutputEvent(self.time, pid, effect.tag, effect.sender, effect.value)
            )

    def service_call(self, pid: ProcessId, call: ServiceCall, depth: int) -> None:
        if self._events is not None:
            self._events.emit(ServiceEvent(self.time, pid, call.service, call.payload))
        dispatch_service_call(
            self.services, pid, call, depth, self.time, self._deliver_reply
        )

    def log_record(self, pid: ProcessId, record: Log, depth: int) -> None:
        if self._events is not None:
            self._events.emit(LogEvent(self.time, pid, record.event, record.data))

    def _deliver_reply(self, reply: ServiceReply, payload: Any) -> None:
        self._next.append((reply.dst, SERVICE_SENDER, payload, reply.depth))

    # -- round loop -------------------------------------------------------------------

    def run_until_decided(self) -> "RunResult":
        """Run rounds until every correct process decided.

        Returns the same :class:`~repro.sim.runner.RunResult` type as the
        discrete-event backend (``end_time`` is the final round number), so
        aggregation and assertions work unchanged.
        """
        from .runner import RunResult

        for pid in self.config.processes:
            interpret(self, pid, self.protocols[pid].on_start(), 0)
        round_ = 0
        while self._next and self._undecided_correct:
            round_ += 1
            if round_ > self.max_rounds:
                raise SimulationError(
                    f"exceeded max_rounds={self.max_rounds}; likely livelock"
                )
            self.time = float(round_)
            if self._events is not None:
                self._events.emit(RoundEvent(self.time, -1, round_))
            inbox, self._next = self._next, []
            for dst, sender, payload, depth in inbox:
                if depth > self._depths[dst]:
                    self._depths[dst] = depth
                self.stats.messages_delivered += 1
                if self._events is not None:
                    self._events.emit(
                        DeliverEvent(self.time, dst, sender, payload, depth)
                    )
                effects = guarded(self.protocols[dst], sender, payload)
                interpret(self, dst, effects, depth)
        if self._undecided_correct and not self._next:
            from ..errors import SimulationDeadlock

            raise SimulationDeadlock(frozenset(self._undecided_correct))
        self.stats.end_time = self.time
        return RunResult(
            config=self.config,
            decisions=dict(self.decisions),
            outputs=self.outputs,
            stats=self.stats,
            tracer=self.tracer,
            faulty=self.faulty,
            end_time=self.time,
            drained=not self._next,
            depths=dict(self._depths),
        )
