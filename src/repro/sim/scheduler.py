"""Delivery schedulers: adversarial control over message ordering.

Asynchronous impossibility and worst-case arguments are all about *which*
``n - t`` messages arrive first.  A :class:`DeliveryScheduler` adds extra,
possibly targeted delay on top of the latency model, letting experiments
construct the schedules the paper reasons about — e.g. starving a process
of ``k`` specific proposals so that its view leaves ``C¹_k``, or delaying
the underlying consensus to show the fast paths still decide.
"""

from __future__ import annotations

import abc
import random
from collections import deque
from collections.abc import Callable, Iterable
from typing import Any

from ..types import ProcessId


class DeliveryScheduler(abc.ABC):
    """Hook deciding extra delay for each message, after latency sampling.

    A scheduler may instead *dictate* delivery outright by setting the class
    attribute :attr:`dictates_delivery`.  In dictated mode the runner skips
    latency sampling entirely and consults :meth:`extra_delay` for **every**
    message — self-sends and service replies included, which the normal path
    delivers at fixed delays without asking — treating the returned value as
    the full delay.  ``float("inf")`` means "never deliver".
    """

    #: When True, the runner hands this scheduler total control of delivery
    #: times (see class docstring).  Used by :class:`ReplayScheduler`.
    dictates_delivery: bool = False

    @abc.abstractmethod
    def extra_delay(
        self,
        rng: random.Random,
        src: ProcessId,
        dst: ProcessId,
        payload: Any,
        time: float,
    ) -> float:
        """Additional delay (``>= 0``) for this message."""


class FairScheduler(DeliveryScheduler):
    """No interference: delivery order is governed by latency alone."""

    def extra_delay(self, rng, src, dst, payload, time) -> float:
        return 0.0


class DelaySenders(DeliveryScheduler):
    """Delay every message originating from a set of processes.

    Starving receivers of these senders' proposals shapes the first quorum:
    with ``extra`` larger than any other end-to-end latency, the first
    ``n - |senders|`` messages at every process come from the others.
    """

    def __init__(self, senders: Iterable[ProcessId], extra: float) -> None:
        if extra < 0:
            raise ValueError("extra delay must be non-negative")
        self.senders = frozenset(senders)
        self.extra = extra

    def extra_delay(self, rng, src, dst, payload, time) -> float:
        return self.extra if src in self.senders else 0.0


class DelayMatching(DeliveryScheduler):
    """Delay messages selected by an arbitrary predicate.

    The predicate receives ``(src, dst, payload)``; use it to slow a single
    protocol layer (e.g. only IDB envelopes, or only service replies) while
    leaving the rest of the traffic untouched.
    """

    def __init__(
        self,
        predicate: Callable[[ProcessId, ProcessId, Any], bool],
        extra: float,
    ) -> None:
        if extra < 0:
            raise ValueError("extra delay must be non-negative")
        self.predicate = predicate
        self.extra = extra

    def extra_delay(self, rng, src, dst, payload, time) -> float:
        return self.extra if self.predicate(src, dst, payload) else 0.0


class RandomJitterScheduler(DeliveryScheduler):
    """Add uniform random jitter to every message (stress interleavings)."""

    def __init__(self, max_jitter: float) -> None:
        if max_jitter < 0:
            raise ValueError("max_jitter must be non-negative")
        self.max_jitter = max_jitter

    def extra_delay(self, rng, src, dst, payload, time) -> float:
        return rng.uniform(0.0, self.max_jitter)


class ComposedScheduler(DeliveryScheduler):
    """Sum the extra delays of several schedulers."""

    def __init__(self, schedulers: Iterable[DeliveryScheduler]) -> None:
        self.schedulers = list(schedulers)

    def extra_delay(self, rng, src, dst, payload, time) -> float:
        return sum(
            s.extra_delay(rng, src, dst, payload, time) for s in self.schedulers
        )


class ReplayScheduler(DeliveryScheduler):
    """Dictate the exact global delivery order recorded by the model checker.

    The schedule is a sequence of ``(src, dst, payload_key)`` records, one
    per delivery, in order.  Each pushed message is matched against the next
    unconsumed record with the same key (FIFO per key — send order is
    identical between the checker and the simulator, so ties resolve
    correctly), and scheduled at the absolute time ``rank + 1``.  Causality
    guarantees those targets are always in the future: a message can only be
    pushed while handling a delivery of strictly smaller rank.  Messages the
    schedule never delivers get infinite delay — the runner drops them,
    which in the asynchronous model is just a delay past the end of the run.

    Args:
        schedule: delivery records ``(src, dst, payload_key)`` in order.
        payload_key: canonical key function applied to pushed payloads;
            must match how the schedule's keys were produced (default
            ``repr``, which is stable for the frozen message dataclasses).
    """

    dictates_delivery = True

    def __init__(
        self,
        schedule: Iterable[tuple[ProcessId, ProcessId, str]],
        payload_key: Callable[[Any], str] = repr,
    ) -> None:
        self._key = payload_key
        self._ranks: dict[tuple[ProcessId, ProcessId, str], deque[int]] = {}
        count = 0
        for rank, (src, dst, key) in enumerate(schedule):
            self._ranks.setdefault((src, dst, key), deque()).append(rank)
            count += 1
        #: First time strictly after every dictated delivery.
        self.horizon = float(count + 1)

    def extra_delay(self, rng, src, dst, payload, time) -> float:
        pending = self._ranks.get((src, dst, self._key(payload)))
        if not pending:
            return float("inf")
        return float(pending.popleft() + 1) - time


class PartitionScheduler(DeliveryScheduler):
    """A temporary network partition (legal in the asynchronous model).

    Messages crossing group boundaries while the partition is active
    (``start <= send time < end``) are held back until just after ``end``;
    intra-group traffic is unaffected.  Since the paper's model puts no
    bound on delivery time, a partition is just a very asymmetric schedule
    — safety must hold throughout, and liveness resumes at the heal.

    Args:
        group_of: maps a process id to its partition group.
        start: partition start time.
        end: heal time (must be ``>= start``).
        jitter: random extra delay after the heal, avoiding a thundering
            herd of simultaneous deliveries.
    """

    def __init__(
        self,
        group_of: Callable[[ProcessId], int],
        start: float,
        end: float,
        jitter: float = 0.5,
    ) -> None:
        if end < start:
            raise ValueError("partition must end after it starts")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.group_of = group_of
        self.start = start
        self.end = end
        self.jitter = jitter

    def extra_delay(self, rng, src, dst, payload, time) -> float:
        if self.start <= time < self.end and self.group_of(src) != self.group_of(dst):
            held_until = self.end + rng.uniform(0.0, self.jitter)
            return held_until - time
        return 0.0
