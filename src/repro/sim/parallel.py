"""Deterministic parallel mapping for batch experiments.

Batch experiments (``Scenario.run_many``, Monte-Carlo coverage sweeps)
evaluate many independent seeded work items.  This module provides the one
executor they share: a :class:`~concurrent.futures.ThreadPoolExecutor`
``map`` that preserves input order.

Why threads and not processes: algorithm specs and underlying-consensus
factories are closures (see :class:`repro.harness.AlgorithmSpec`), which do
not pickle, and a simulation's working set is small — the thread pool keeps
the exact same objects and code path as the serial loop.

Why results are identical to the serial path: each work item builds its own
:class:`~repro.sim.runner.Simulation` with its own ``random.Random(seed)``,
so no randomness is shared across items, and ``Executor.map`` yields results
in submission order — aggregation folds them in the same order as a serial
``for`` loop would.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map"]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: int | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, in parallel, preserving input order.

    Args:
        fn: the work function; must not share mutable state across items.
        items: the inputs; consumed eagerly.
        max_workers: pool size (``None`` = the executor's default).

    Returns:
        ``[fn(x) for x in items]`` — same values, same order.
    """
    items = list(items)
    if len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, items))
