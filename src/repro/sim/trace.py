"""Execution tracing.

A :class:`Tracer` collects structured records emitted through
:class:`~repro.runtime.effects.Log` effects plus runtime-generated records
(deliveries, decisions).  Traces power the Figure-1 path-reproduction bench
and make failed property tests diagnosable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One trace record."""

    time: float
    pid: int
    event: str
    data: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Accumulates trace events; cheap no-op when disabled.

    Args:
        enabled: when False, :meth:`record` discards everything, keeping
            hot benchmark loops free of tracing overhead.
        capacity: optional hard cap on stored events (oldest kept).
    """

    def __init__(self, enabled: bool = True, capacity: int | None = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.events: list[TraceEvent] = []

    def record(self, time: float, pid: int, event: str, data: dict[str, Any] | None = None) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.events) >= self.capacity:
            return
        self.events.append(TraceEvent(time, pid, event, dict(data or {})))

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def by_event(self, event: str) -> list[TraceEvent]:
        """All records with the given event name."""
        return [e for e in self.events if e.event == event]

    def by_pid(self, pid: int) -> list[TraceEvent]:
        """All records emitted by (or about) one process."""
        return [e for e in self.events if e.pid == pid]

    def format(self, limit: int | None = None) -> str:
        """Human-readable rendering, one line per record."""
        lines = []
        for e in self.events[: limit if limit is not None else len(self.events)]:
            detail = " ".join(f"{k}={v!r}" for k, v in e.data.items())
            lines.append(f"[t={e.time:8.3f}] p{e.pid:<3} {e.event:<28} {detail}")
        return "\n".join(lines)

    def format_timeline(
        self, pids: list[int], events: tuple[str, ...] = ("decide",), width: int = 60
    ) -> str:
        """ASCII timeline: one lane per process, markers at event times.

        Args:
            pids: which processes to render (one lane each).
            events: which event names to mark (first letter used as glyph).
            width: characters spanning the trace's time range.
        """
        marked = [e for e in self.events if e.event in events and e.pid in pids]
        if not marked:
            return "(no matching events)"
        t_max = max(e.time for e in marked) or 1.0
        lanes = []
        for pid in pids:
            lane = ["·"] * (width + 1)
            for e in marked:
                if e.pid == pid:
                    lane[round(e.time / t_max * width)] = e.event[0].upper()
            lanes.append(f"p{pid:<3} |" + "".join(lane) + "|")
        scale = f"     0{' ' * (width - len(f'{t_max:.1f}') - 1)}t={t_max:.1f}"
        return "\n".join(lanes + [scale])
