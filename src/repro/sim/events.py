"""Discrete-event queue primitives for the deterministic simulator.

Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing tie-breaker, making every run a pure function of the seed and
the configuration — a prerequisite for reproducible experiments and for
shrinking failures found by property-based tests.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any

from ..types import ProcessId


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled occurrence.

    Attributes:
        time: simulated delivery time.
        kind: ``"start"`` or ``"deliver"``.
        dst: receiving process.
        sender: originating process (``SERVICE_SENDER`` for services).
        payload: the message payload (``None`` for start events).
        depth: causal communication depth carried by the message — the
            paper's step metric.  A message sent by a process at depth ``d``
            arrives with ``depth = d + 1``.
    """

    time: float
    kind: str
    dst: ProcessId
    sender: ProcessId = -2
    payload: Any = None
    depth: int = 0


class EventQueue:
    """A deterministic priority queue of :class:`Event` values.

    Internally entries are plain tuples ordered by ``(time, seq)``; the
    tie-breaker ``seq`` is unique, so comparison never reaches the trailing
    fields.  Deliver events pushed through :meth:`push_deliver` are stored
    *flat* — most scheduled messages are never delivered (runs stop once
    every correct process decided), so materialising an :class:`Event` per
    push would waste the bulk of the allocations on the hottest loop of a
    run.  :meth:`pop` builds the :class:`Event` lazily; :meth:`pop_entry`
    exposes the raw tuple for the simulator's dispatch loop.
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._counter = itertools.count()
        self.pushed = 0
        self.popped = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, next(self._counter), event))
        self.pushed += 1

    def push_deliver(
        self,
        time: float,
        dst: ProcessId,
        sender: ProcessId,
        payload: Any,
        depth: int,
    ) -> None:
        """Schedule a ``"deliver"`` event without materialising it."""
        heapq.heappush(
            self._heap, (time, next(self._counter), dst, sender, payload, depth)
        )
        self.pushed += 1

    def pop(self) -> Event:
        entry = heapq.heappop(self._heap)
        self.popped += 1
        if len(entry) == 3:
            return entry[2]
        time, _, dst, sender, payload, depth = entry
        return Event(time, "deliver", dst, sender, payload, depth)

    def pop_entry(self) -> tuple:
        """Pop the raw heap entry: ``(time, seq, Event)`` for events pushed
        whole, ``(time, seq, dst, sender, payload, depth)`` for flat
        delivers."""
        self.popped += 1
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
