"""Discrete-event queue primitives for the deterministic simulator.

Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing tie-breaker, making every run a pure function of the seed and
the configuration — a prerequisite for reproducible experiments and for
shrinking failures found by property-based tests.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any

from ..types import ProcessId


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled occurrence.

    Attributes:
        time: simulated delivery time.
        kind: ``"start"`` or ``"deliver"``.
        dst: receiving process.
        sender: originating process (``SERVICE_SENDER`` for services).
        payload: the message payload (``None`` for start events).
        depth: causal communication depth carried by the message — the
            paper's step metric.  A message sent by a process at depth ``d``
            arrives with ``depth = d + 1``.
    """

    time: float
    kind: str
    dst: ProcessId
    sender: ProcessId = -2
    payload: Any = None
    depth: int = 0


class EventQueue:
    """A deterministic priority queue of :class:`Event` values."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self.pushed = 0
        self.popped = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, next(self._counter), event))
        self.pushed += 1

    def pop(self) -> Event:
        _, _, event = heapq.heappop(self._heap)
        self.popped += 1
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
