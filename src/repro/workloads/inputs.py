"""Input-vector workload generators.

The paper's motivation (§1.1) is that consensus-based applications usually
receive "good" inputs: in a replicated state machine with little client
contention, almost all servers propose the same request.  The generators
here span that spectrum so coverage/latency experiments can sweep it:

* :func:`unanimous` — everyone proposes the same value (the classic
  one-step situation);
* :class:`ContentionWorkload` — each process independently proposes the
  favourite value with probability ``1 − p`` and a contending value
  otherwise (``p`` is the contention rate);
* :class:`ZipfWorkload` — skewed multi-value popularity, modelling hot
  keys;
* :class:`AdversarialBoundaryWorkload` — inputs engineered to sit exactly
  on a condition boundary ``C_k \\ C_{k+1}`` (the inputs experiment E3
  uses to demonstrate adaptiveness).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..conditions.views import View
from ..types import Value


def unanimous(value: Value, n: int) -> list[Value]:
    """All ``n`` processes propose ``value``."""
    return [value] * n


def split(value_a: Value, value_b: Value, n: int, count_b: int) -> list[Value]:
    """``n − count_b`` proposals of ``value_a`` followed by ``count_b`` of
    ``value_b`` (a fixed-margin contended vector)."""
    if not 0 <= count_b <= n:
        raise ValueError(f"count_b must be in [0, {n}], got {count_b}")
    return [value_a] * (n - count_b) + [value_b] * count_b


def with_frequency_gap(value_a: Value, value_b: Value, n: int, gap: int) -> list[Value]:
    """A two-value vector whose frequency gap ``#a − #b`` is exactly ``gap``.

    Used to construct boundary inputs: ``gap = 4t + 2k + 1`` is the
    smallest member of the frequency pair's ``C¹_k``.
    """
    if gap < 0 or (n - gap) % 2 != 0 or gap > n:
        raise ValueError(
            f"cannot realise gap {gap} with n={n}: need gap <= n and n - gap even"
        )
    count_b = (n - gap) // 2
    return split(value_a, value_b, n, count_b)


class ContentionWorkload:
    """i.i.d. proposals: favourite with probability ``1 − p``, else a
    uniformly random contender.

    ``p = 0`` reproduces the unanimous case; ``p → 1`` approaches uniform
    contention.  This is the replicated-state-machine model of §1.1 where
    ``p`` is the probability a server saw a concurrent competing request.
    """

    def __init__(
        self,
        n: int,
        favourite: Value = 1,
        contenders: Sequence[Value] = (2, 3),
        p: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"contention rate p must be in [0, 1], got {p}")
        if not contenders:
            raise ValueError("need at least one contending value")
        self.n = n
        self.favourite = favourite
        self.contenders = list(contenders)
        self.p = p
        self._rng = random.Random(seed)

    def vector(self) -> list[Value]:
        """Sample one input vector."""
        return [
            self.favourite
            if self._rng.random() >= self.p
            else self._rng.choice(self.contenders)
            for _ in range(self.n)
        ]

    def vectors(self, count: int) -> list[list[Value]]:
        """Sample ``count`` vectors."""
        return [self.vector() for _ in range(count)]


class ZipfWorkload:
    """Proposals drawn from a Zipf-like popularity distribution over
    ``values`` (rank ``r`` has weight ``1 / r**alpha``)."""

    def __init__(
        self,
        n: int,
        values: Sequence[Value],
        alpha: float = 1.5,
        seed: int = 0,
    ) -> None:
        if not values:
            raise ValueError("need at least one value")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.n = n
        self.values = list(values)
        weights = [1.0 / (rank**alpha) for rank in range(1, len(values) + 1)]
        total = sum(weights)
        self.weights = [w / total for w in weights]
        self._rng = random.Random(seed)

    def vector(self) -> list[Value]:
        """Sample one input vector."""
        return self._rng.choices(self.values, weights=self.weights, k=self.n)

    def vectors(self, count: int) -> list[list[Value]]:
        return [self.vector() for _ in range(count)]


class CorrelatedWorkload:
    """Proposals correlated by group — models client-to-replica proximity.

    Processes are split into groups; each slot, every *group* samples one
    opinion (favourite with probability ``1 − p``, else a contender), and
    the group's members all propose it.  Compared with i.i.d. contention,
    correlated disagreement produces large minority blocks — exactly the
    inputs that leave the frequency conditions fastest, so this workload
    is the pessimistic counterpart of :class:`ContentionWorkload`.
    """

    def __init__(
        self,
        n: int,
        groups: int = 2,
        favourite: Value = 1,
        contenders: Sequence[Value] = (2, 3),
        p: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"contention rate p must be in [0, 1], got {p}")
        if groups < 1 or groups > n:
            raise ValueError(f"groups must be in [1, {n}], got {groups}")
        if not contenders:
            raise ValueError("need at least one contending value")
        self.n = n
        self.groups = groups
        self.favourite = favourite
        self.contenders = list(contenders)
        self.p = p
        self._rng = random.Random(seed)

    def group_of(self, pid: int) -> int:
        """The group a process belongs to (contiguous blocks)."""
        return pid * self.groups // self.n

    def vector(self) -> list[Value]:
        """Sample one input vector (one opinion per group)."""
        opinions = [
            self.favourite
            if self._rng.random() >= self.p
            else self._rng.choice(self.contenders)
            for _ in range(self.groups)
        ]
        return [opinions[self.group_of(pid)] for pid in range(self.n)]

    def vectors(self, count: int) -> list[list[Value]]:
        return [self.vector() for _ in range(count)]


class AdversarialBoundaryWorkload:
    """Inputs lying exactly in ``C_freq(d) \\ C_freq(d+1)`` boundaries.

    For the frequency pair, ``boundary_vector(k)`` returns a vector in
    ``C¹_k`` but not in ``C¹_{k+1}``: one-step decision is guaranteed iff
    the actual number of faults is at most ``k`` — the sharp adaptiveness
    frontier of experiment E3.
    """

    def __init__(self, n: int, t: int, value_a: Value = 1, value_b: Value = 2) -> None:
        self.n = n
        self.t = t
        self.value_a = value_a
        self.value_b = value_b

    def one_step_boundary(self, k: int) -> list[Value]:
        """A vector with frequency gap exactly ``4t + 2k + 1`` or ``+2``
        (whichever parity ``n`` allows) — inside ``C¹_k``, outside
        ``C¹_{k+1}``."""
        gap = 4 * self.t + 2 * k + 1
        if (self.n - gap) % 2 != 0:
            gap += 1
        return with_frequency_gap(self.value_a, self.value_b, self.n, gap)

    def two_step_boundary(self, k: int) -> list[Value]:
        """Same for the two-step sequence (gap exactly above ``2t + 2k``)."""
        gap = 2 * self.t + 2 * k + 1
        if (self.n - gap) % 2 != 0:
            gap += 1
        return with_frequency_gap(self.value_a, self.value_b, self.n, gap)


def as_view(inputs: Sequence[Value]) -> View:
    """The input vector as a :class:`~repro.conditions.views.View`."""
    return View(inputs)
