"""Failure-pattern generators: which processes fail, and how.

Produces the ``faults`` mapping consumed by
:class:`repro.harness.Scenario` and validated by the
:class:`~repro.engine.faults.FaultPlane`.  Patterns are seeded so sweeps
over the actual failure count ``f`` (the paper's adaptiveness axis) are
reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..engine.faults import Crash, Equivocate, Fault, Garbage, Silent
from ..types import ProcessId, Value


def silent_faults(pids: Sequence[ProcessId]) -> dict[ProcessId, Fault]:
    """Every listed process is silent (crashed from the start)."""
    return {pid: Silent() for pid in pids}


def crash_faults(
    pids: Sequence[ProcessId], budget: int = 3
) -> dict[ProcessId, Fault]:
    """Every listed process crashes after ``budget`` messages
    (mid-broadcast for ``0 < budget < n``)."""
    return {pid: Crash(budget) for pid in pids}


def equivocating_faults(
    pids: Sequence[ProcessId], value_a: Value, value_b: Value
) -> dict[ProcessId, Fault]:
    """Every listed process two-facedly proposes ``value_a``/``value_b``."""
    return {pid: Equivocate(value_a, value_b) for pid in pids}


def garbage_faults(
    pids: Sequence[ProcessId], values: Sequence[Value] = (0, 1, 2), seed: int = 0
) -> dict[ProcessId, Fault]:
    """Every listed process sprays wire-shaped garbage."""
    return {pid: Garbage(values=values, seed=seed) for pid in pids}


class FailureSweep:
    """Enumerate failure patterns of increasing size ``f = 0 .. t``.

    By default faulty ids are drawn from the *end* of the id space (the
    highest ids), which composes neatly with input generators that place
    contending values at the end; ``randomize=True`` samples the faulty
    set uniformly instead.
    """

    def __init__(self, n: int, t: int, randomize: bool = False, seed: int = 0) -> None:
        if t >= n:
            raise ValueError("t must be smaller than n")
        self.n = n
        self.t = t
        self.randomize = randomize
        self._rng = random.Random(seed)

    def faulty_ids(self, f: int) -> list[ProcessId]:
        """Pick ``f`` faulty process ids."""
        if not 0 <= f <= self.t:
            raise ValueError(f"f must be in [0, {self.t}], got {f}")
        if self.randomize:
            return sorted(self._rng.sample(range(self.n), f))
        return list(range(self.n - f, self.n))

    def patterns(
        self, make_fault, f_values: Sequence[int] | None = None
    ) -> list[tuple[int, dict[ProcessId, Fault]]]:
        """``(f, faults)`` pairs for each requested failure count.

        Args:
            make_fault: ``(pid) -> Fault`` constructor.
            f_values: failure counts to produce; default ``0 .. t``.
        """
        fs = list(f_values) if f_values is not None else list(range(self.t + 1))
        out = []
        for f in fs:
            out.append((f, {pid: make_fault(pid) for pid in self.faulty_ids(f)}))
        return out
