"""Workload generators: input vectors and failure patterns."""

from .failures import (
    FailureSweep,
    crash_faults,
    equivocating_faults,
    garbage_faults,
    silent_faults,
)
from .inputs import (
    AdversarialBoundaryWorkload,
    ContentionWorkload,
    CorrelatedWorkload,
    ZipfWorkload,
    as_view,
    split,
    unanimous,
    with_frequency_gap,
)

__all__ = [
    "unanimous",
    "split",
    "with_frequency_gap",
    "ContentionWorkload",
    "CorrelatedWorkload",
    "ZipfWorkload",
    "AdversarialBoundaryWorkload",
    "as_view",
    "FailureSweep",
    "silent_faults",
    "crash_faults",
    "equivocating_faults",
    "garbage_faults",
]
