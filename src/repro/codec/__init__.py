"""``repro.codec`` — the library's single serialization layer.

Everything that turns records into bytes goes through here: the socket
engine's frame payloads (:mod:`repro.net.wire`), the write-ahead log and
snapshots (:mod:`repro.durable`), and the benchmark tooling.  Three codecs
share one interface (``encode_into(obj, buf)`` / ``encode(obj)`` /
``decode(data)``), selected by a one-byte id that doubles as the wire
frame's codec byte and the WAL record's codec prefix:

======================  ====  ========================================
codec                    id   role
======================  ====  ========================================
:class:`PickleCodec`      1   legacy escape hatch, trusted local only
:class:`JsonCodec`        2   interop / debugging, JSON-safe payloads
:class:`BinaryCodec`      3   the data plane (struct-packed, default)
======================  ====  ========================================

The schema registry (:mod:`repro.codec.schema`) defines which record
shapes the binary codec struct-packs; everything else falls back to an
embedded pickle blob, so encoding is total.
"""

from __future__ import annotations

from typing import Any, Protocol

from .binary import BinaryCodec, CodecError, Opaque
from .fallback import JsonCodec, PickleCodec

__all__ = [
    "CODEC_PICKLE",
    "CODEC_JSON",
    "CODEC_BINARY",
    "CODEC_IDS",
    "CODEC_NAMES",
    "BinaryCodec",
    "JsonCodec",
    "PickleCodec",
    "PayloadCodec",
    "CodecError",
    "Opaque",
    "codec_for",
    "codec_named",
]

CODEC_PICKLE = 1
CODEC_JSON = 2
CODEC_BINARY = 3

#: Known codec ids, in id order.
CODEC_IDS = (CODEC_PICKLE, CODEC_JSON, CODEC_BINARY)

#: Name -> id, the vocabulary of ``Scenario(codec=)`` / ``--codec``.
CODEC_NAMES = {"pickle": CODEC_PICKLE, "json": CODEC_JSON, "binary": CODEC_BINARY}


class PayloadCodec(Protocol):
    """The interface every codec implements."""

    id: int
    name: str

    def encode_into(self, obj: Any, buf: bytearray) -> None: ...

    def encode(self, obj: Any) -> bytes: ...

    def decode(self, data: bytes) -> Any: ...


#: Shared stateless instances (the lazy binary variant is per-decoder).
_PICKLE = PickleCodec()
_JSON = JsonCodec()
_BINARY = BinaryCodec()
_BINARY_LAZY = BinaryCodec(lazy=True)

_BY_ID: dict[int, PayloadCodec] = {
    CODEC_PICKLE: _PICKLE,
    CODEC_JSON: _JSON,
    CODEC_BINARY: _BINARY,
}


def codec_for(codec_id: int, lazy: bool = False) -> PayloadCodec:
    """The codec instance for a wire codec id.

    Args:
        codec_id: one of :data:`CODEC_IDS`.
        lazy: relay mode — for the binary codec, blob fields decode as
            :class:`Opaque` spans; the fallback codecs ignore it (they
            cannot relay without materializing).

    Raises:
        CodecError: unknown id.
    """
    if lazy and codec_id == CODEC_BINARY:
        return _BINARY_LAZY
    codec = _BY_ID.get(codec_id)
    if codec is None:
        raise CodecError(f"unknown codec id {codec_id}")
    return codec


def codec_named(name: str) -> int:
    """Map a codec name (CLI / ``Scenario(codec=)``) to its wire id."""
    try:
        return CODEC_NAMES[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; expected one of {sorted(CODEC_NAMES)}"
        ) from None
