"""The struct-packed binary codec (``CODEC_BINARY``).

A compact, self-describing tagged encoding for the library's high-volume
record shapes.  Every value is one tag byte followed by a tag-specific
body; registered dataclasses (see :mod:`repro.codec.schema`) pack as their
schema tag plus field values in schema order, so a DEX proposal inside two
envelopes costs a handful of varints instead of a pickle of class paths.

Three properties the pickle codec cannot offer:

* **Relay passthrough.**  Schema fields marked as blobs are carried
  length-prefixed; a relay (the hub) decodes the surrounding struct but
  keeps the blob as an :class:`Opaque` byte span and splices it verbatim
  into outgoing frames — the payload crosses the hub without ever being
  decoded or re-encoded.  This, not raw encode speed, is where the data
  plane wins: the hub is the global bottleneck, and with this codec it
  never looks inside a consensus payload.
* **Buffer reuse.**  :meth:`BinaryCodec.encode_into` appends to a caller
  bytearray, so hot loops encode straight into one reusable send buffer
  instead of allocating per-frame ``bytes``.
* **A language-neutral core.**  Varints, UTF-8, IEEE doubles, and a
  published tag table — nothing Python-specific on the main paths.  The
  escape hatch (:data:`TAG_PICKLE`) wraps any unregistered object in a
  pickle blob behind the same interface, so encoding is total; frames that
  use it are by definition not cross-language portable.

Integers use zigzag varints; ``None``/``True``/``False`` and the
:data:`repro.types.BOTTOM` sentinel are single bytes; envelope components
pack via the component table / instance grammar of the schema module.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

from ..errors import ReproError
from ..types import BOTTOM, DecisionKind
from . import schema as _schema

__all__ = ["BinaryCodec", "CodecError", "Opaque", "encode", "encode_into", "decode"]


class CodecError(ReproError):
    """A byte stream violated the binary codec (bad tag, truncation)."""


# -- value tags ----------------------------------------------------------------------
# APPEND ONLY: these constants are the wire format, pinned by the golden
# frames fixture.

TAG_NONE = 0x00
TAG_TRUE = 0x01
TAG_FALSE = 0x02
TAG_INT = 0x03  # zigzag varint
TAG_FLOAT = 0x04  # 8 bytes, IEEE 754 big-endian
TAG_STR = 0x05  # varint byte length + UTF-8
TAG_BYTES = 0x06  # varint length + raw bytes
TAG_TUPLE = 0x07  # varint count + values
TAG_LIST = 0x08  # varint count + values
TAG_DICT = 0x09  # varint count + alternating key/value
TAG_STRUCT = 0x0A  # varint schema tag + fields in schema order
TAG_ENVELOPE = 0x0B  # component (see below) + payload value
TAG_KIND = 0x0C  # varint index into DecisionKind member order
TAG_BLOB = 0x0D  # varint length + encoded inner value
TAG_PICKLE = 0x0E  # varint length + pickle bytes (escape hatch)
TAG_BOTTOM = 0x0F
TAG_FROZENSET = 0x10  # varint count + values in encoded-bytes order

# Envelope component kinds (first byte after TAG_ENVELOPE):
_COMPONENT_STR = 0x00  # varint length + UTF-8
_COMPONENT_INSTANCE = 0x01  # varint shard + varint slot
_COMPONENT_TABLE_BASE = 0x02  # 0x02 + k: COMPONENT_TABLE[k]

_FLOAT = struct.Struct("!d")

_KIND_MEMBERS = tuple(DecisionKind)
_KIND_INDEX = {member: i for i, member in enumerate(_KIND_MEMBERS)}


class Opaque:
    """A value carried as its encoded bytes, never materialized.

    The hub's frame decoder runs in lazy mode: blob-framed fields (e.g.
    ``MsgSend.payload``) surface as ``Opaque`` spans.  Re-encoding splices
    the span verbatim, so relaying costs a memcpy instead of a decode +
    encode round trip.  :meth:`decode` materializes on demand (only the
    event-stream sink ever needs to).
    """

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data

    def decode(self) -> Any:
        return decode(self.data)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Opaque) and other.data == self.data

    def __hash__(self) -> int:
        return hash((Opaque, self.data))

    def __repr__(self) -> str:
        return f"Opaque({len(self.data)} bytes)"


def wrap_opaque(value: Any) -> Opaque:
    """Encode ``value`` into a fresh :class:`Opaque` (node-side cache path)."""
    buf = bytearray()
    _encode_value(value, buf)
    return Opaque(bytes(buf))


# -- encoding ------------------------------------------------------------------------


def _write_varint(n: int, buf: bytearray) -> None:
    while n > 0x7F:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


def _zigzag(n: int) -> int:
    # non-negative n -> 2n, negative n -> -2n - 1
    return (n << 1) if n >= 0 else (-(n << 1) - 1)


def _encode_value(obj: Any, buf: bytearray) -> None:
    kind = type(obj)
    if kind is int:
        buf.append(TAG_INT)
        _write_varint(_zigzag(obj), buf)
    elif kind is str:
        raw = obj.encode("utf-8")
        buf.append(TAG_STR)
        _write_varint(len(raw), buf)
        buf += raw
    elif kind is _schema_envelope_cls():
        _encode_envelope(obj, buf)
    elif kind is bool:
        buf.append(TAG_TRUE if obj else TAG_FALSE)
    elif obj is None:
        buf.append(TAG_NONE)
    elif kind is tuple:
        buf.append(TAG_TUPLE)
        _write_varint(len(obj), buf)
        for item in obj:
            _encode_value(item, buf)
    elif kind is float:
        buf.append(TAG_FLOAT)
        buf += _FLOAT.pack(obj)
    elif kind is dict:
        buf.append(TAG_DICT)
        _write_varint(len(obj), buf)
        for key, value in obj.items():
            _encode_value(key, buf)
            _encode_value(value, buf)
    elif kind is list:
        buf.append(TAG_LIST)
        _write_varint(len(obj), buf)
        for item in obj:
            _encode_value(item, buf)
    elif kind is bytes:
        buf.append(TAG_BYTES)
        _write_varint(len(obj), buf)
        buf += obj
    elif kind is Opaque:
        buf.append(TAG_BLOB)
        _write_varint(len(obj.data), buf)
        buf += obj.data
    elif kind is DecisionKind:
        buf.append(TAG_KIND)
        _write_varint(_KIND_INDEX[obj], buf)
    elif obj is BOTTOM:
        buf.append(TAG_BOTTOM)
    elif kind is frozenset:
        # Deterministic order: sort by encoded bytes, so equal sets encode
        # equal frames regardless of build order.
        buf.append(TAG_FROZENSET)
        _write_varint(len(obj), buf)
        encoded = []
        for item in obj:
            item_buf = bytearray()
            _encode_value(item, item_buf)
            encoded.append(bytes(item_buf))
        for raw in sorted(encoded):
            buf += raw
    else:
        entry = _schema.entry_for_class(kind)
        if entry is not None:
            _encode_struct(obj, entry, buf)
        else:
            raw = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
            buf.append(TAG_PICKLE)
            _write_varint(len(raw), buf)
            buf += raw


def _encode_struct(obj: Any, entry: _schema.SchemaEntry, buf: bytearray) -> None:
    buf.append(TAG_STRUCT)
    _write_varint(entry.tag, buf)
    blobs = entry.blobs
    if blobs:
        for name in entry.fields:
            value = getattr(obj, name)
            if name in blobs:
                if type(value) is Opaque:
                    buf.append(TAG_BLOB)
                    _write_varint(len(value.data), buf)
                    buf += value.data
                else:
                    inner = bytearray()
                    _encode_value(value, inner)
                    buf.append(TAG_BLOB)
                    _write_varint(len(inner), buf)
                    buf += inner
            else:
                _encode_value(value, buf)
    else:
        for name in entry.fields:
            _encode_value(getattr(obj, name), buf)


_envelope_cls: type | None = None


def _schema_envelope_cls() -> type:
    global _envelope_cls
    if _envelope_cls is None:
        from ..runtime.effects import Envelope

        _envelope_cls = Envelope
    return _envelope_cls


def _encode_envelope(obj: Any, buf: bytearray) -> None:
    buf.append(TAG_ENVELOPE)
    component = obj.component
    index = _schema.component_index(component)
    if index is not None:
        buf.append(_COMPONENT_TABLE_BASE + index)
    else:
        instance = _schema.parse_instance(component)
        if instance is not None:
            buf.append(_COMPONENT_INSTANCE)
            _write_varint(instance[0], buf)
            _write_varint(instance[1], buf)
        else:
            raw = component.encode("utf-8")
            buf.append(_COMPONENT_STR)
            _write_varint(len(raw), buf)
            buf += raw
    _encode_value(obj.payload, buf)


def encode_into(obj: Any, buf: bytearray) -> None:
    """Append the binary encoding of ``obj`` to ``buf``."""
    _encode_value(obj, buf)


def encode(obj: Any) -> bytes:
    buf = bytearray()
    _encode_value(obj, buf)
    return bytes(buf)


# -- decoding ------------------------------------------------------------------------


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    shift = 0
    result = 0
    try:
        while True:
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, pos
            shift += 7
    except IndexError:
        raise CodecError("truncated varint") from None


def _decode_value(data: bytes, pos: int, lazy: bool) -> tuple[Any, int]:
    try:
        tag = data[pos]
    except IndexError:
        raise CodecError("truncated value (no tag byte)") from None
    pos += 1
    if tag == TAG_INT:
        zig, pos = _read_varint(data, pos)
        return (zig >> 1) if not zig & 1 else -((zig + 1) >> 1), pos
    if tag == TAG_STR:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise CodecError("truncated string")
        return data[pos:end].decode("utf-8"), end
    if tag == TAG_STRUCT:
        return _decode_struct(data, pos, lazy)
    if tag == TAG_ENVELOPE:
        return _decode_envelope(data, pos, lazy)
    if tag == TAG_TUPLE:
        count, pos = _read_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(data, pos, lazy)
            items.append(item)
        return tuple(items), pos
    if tag == TAG_BLOB:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise CodecError("truncated blob")
        if lazy:
            return Opaque(bytes(data[pos:end])), end
        inner, inner_end = _decode_value(data, pos, lazy)
        if inner_end != end:
            raise CodecError("blob length does not match its contents")
        return inner, end
    if tag == TAG_NONE:
        return None, pos
    if tag == TAG_TRUE:
        return True, pos
    if tag == TAG_FALSE:
        return False, pos
    if tag == TAG_FLOAT:
        end = pos + 8
        if end > len(data):
            raise CodecError("truncated float")
        return _FLOAT.unpack_from(data, pos)[0], end
    if tag == TAG_BYTES:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise CodecError("truncated bytes")
        return bytes(data[pos:end]), end
    if tag == TAG_LIST:
        count, pos = _read_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(data, pos, lazy)
            items.append(item)
        return items, pos
    if tag == TAG_DICT:
        count, pos = _read_varint(data, pos)
        out = {}
        for _ in range(count):
            key, pos = _decode_value(data, pos, lazy)
            value, pos = _decode_value(data, pos, lazy)
            out[key] = value
        return out, pos
    if tag == TAG_KIND:
        index, pos = _read_varint(data, pos)
        if index >= len(_KIND_MEMBERS):
            raise CodecError(f"unknown DecisionKind index {index}")
        return _KIND_MEMBERS[index], pos
    if tag == TAG_PICKLE:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise CodecError("truncated pickle escape")
        return pickle.loads(data[pos:end]), end
    if tag == TAG_BOTTOM:
        return BOTTOM, pos
    if tag == TAG_FROZENSET:
        count, pos = _read_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(data, pos, lazy)
            items.append(item)
        return frozenset(items), pos
    raise CodecError(f"unknown binary tag 0x{tag:02x}")


def _decode_struct(data: bytes, pos: int, lazy: bool) -> tuple[Any, int]:
    tag, pos = _read_varint(data, pos)
    entry = _schema.entry_for_tag(tag)
    if entry is None:
        _schema.ensure_registered()
        entry = _schema.entry_for_tag(tag)
        if entry is None:
            raise CodecError(f"unknown schema tag {tag}")
    values = []
    for _ in entry.fields:
        value, pos = _decode_value(data, pos, lazy)
        values.append(value)
    return entry.cls(*values), pos


def _decode_envelope(data: bytes, pos: int, lazy: bool) -> tuple[Any, int]:
    try:
        kind = data[pos]
    except IndexError:
        raise CodecError("truncated envelope component") from None
    pos += 1
    if kind >= _COMPONENT_TABLE_BASE:
        index = kind - _COMPONENT_TABLE_BASE
        table = _schema.COMPONENT_TABLE
        if index >= len(table):
            raise CodecError(f"unknown component table index {index}")
        component = table[index]
    elif kind == _COMPONENT_INSTANCE:
        shard, pos = _read_varint(data, pos)
        slot, pos = _read_varint(data, pos)
        component = _schema.instance_name(shard, slot)
    else:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise CodecError("truncated envelope component")
        component = data[pos:end].decode("utf-8")
        pos = end
    payload, pos = _decode_value(data, pos, lazy)
    return _schema_envelope_cls()(component, payload), pos


def decode(data: bytes, lazy: bool = False) -> Any:
    """Decode one value; trailing bytes are a :class:`CodecError`.

    With ``lazy=True``, blob-framed spans come back as :class:`Opaque`
    instead of being materialized (the hub's relay mode).
    """
    value, end = _decode_value(data, 0, lazy)
    if end != len(data):
        raise CodecError(f"{len(data) - end} trailing bytes after value")
    return value


class BinaryCodec:
    """The struct-packed codec behind the shared codec interface.

    Args:
        lazy: decode blob fields as :class:`Opaque` spans (relay mode).
    """

    id = 3
    name = "binary"

    def __init__(self, lazy: bool = False) -> None:
        self._lazy = lazy

    def encode_into(self, obj: Any, buf: bytearray) -> None:
        _encode_value(obj, buf)

    def encode(self, obj: Any) -> bytes:
        buf = bytearray()
        _encode_value(obj, buf)
        return bytes(buf)

    def decode(self, data: bytes) -> Any:
        return decode(data, self._lazy)
