"""The schema registry: which record shapes travel struct-packed.

The binary codec (:mod:`repro.codec.binary`) can only struct-pack a shape
it knows about.  This module is the single registry of those shapes: every
high-volume record class — wire control messages, DEX/IDB protocol
messages, WAL records, catch-up messages — registers itself here with a
stable one-byte tag via the :func:`wire_record` decorator.  The tag, the
field order, and the blob markings together *are* the wire format; golden
frames in ``tests/data/codec_frames.bin`` pin them byte-for-byte.

Deliberately a leaf module: it imports nothing from the rest of the
library, so any message-defining module can decorate its classes without
an import cycle.  The registry fills as modules load; decoders call
:func:`ensure_registered` once to force-load every participating module
before trusting a tag lookup.

The shard envelope-tag grammar (``s<shard>.<slot>``) also lives here —
it is part of the wire format (the binary codec packs matching envelope
components as two varints instead of a string), and
:mod:`repro.shard.router` re-exports it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Callable, Iterator, TypeVar

__all__ = [
    "SchemaEntry",
    "wire_record",
    "register",
    "entry_for_class",
    "entry_for_tag",
    "registered_entries",
    "ensure_registered",
    "COMPONENT_TABLE",
    "INSTANCE_PREFIX",
    "instance_name",
    "parse_instance",
]

_T = TypeVar("_T", bound=type)


@dataclass(frozen=True, slots=True)
class SchemaEntry:
    """One registered record shape.

    Attributes:
        tag: stable wire tag (one varint byte; changing it is a wire break).
        cls: the dataclass.
        fields: field names in wire order (the dataclass field order).
        blobs: names of fields carried as length-prefixed blobs, so a relay
            (the hub) can forward them without decoding — see
            :class:`repro.codec.binary.Opaque`.
    """

    tag: int
    cls: type
    fields: tuple[str, ...]
    blobs: frozenset[str]


#: tag -> entry and class -> entry; filled by :func:`register`.
_BY_TAG: dict[int, SchemaEntry] = {}
_BY_CLASS: dict[type, SchemaEntry] = {}

#: Modules whose import populates the registry.  Decoding a tag requires
#: every participating module to be loaded; :func:`ensure_registered`
#: imports these once.
_SCHEMA_MODULES = (
    "repro.runtime.effects",
    "repro.net.wire",
    "repro.core.dex",
    "repro.broadcast.idb",
    "repro.underlying.oracle",
    "repro.baselines.bosco",
    "repro.baselines.brasileiro",
    "repro.baselines.crash_onestep",
    "repro.baselines.sync_onestep",
    "repro.durable.wal",
    "repro.durable.snapshot",
    "repro.durable.recovery",
    "repro.frontend.socket",
    "repro.mesh.wire",
)

_registered_all = False


def register(tag: int, cls: type, blobs: tuple[str, ...] = ()) -> SchemaEntry:
    """Register ``cls`` under ``tag``.  Idempotent for the same class."""
    if not 0 < tag < 128:
        raise ValueError(f"schema tag must fit one varint byte, got {tag}")
    existing = _BY_TAG.get(tag)
    if existing is not None:
        if existing.cls.__module__ == cls.__module__ and existing.cls.__qualname__ == cls.__qualname__:
            return existing
        raise ValueError(f"schema tag {tag} already taken by {existing.cls.__qualname__}")
    names = tuple(f.name for f in dataclass_fields(cls))
    unknown = set(blobs) - set(names)
    if unknown:
        raise ValueError(f"blob fields {sorted(unknown)} not on {cls.__qualname__}")
    entry = SchemaEntry(tag=tag, cls=cls, fields=names, blobs=frozenset(blobs))
    _BY_TAG[tag] = entry
    _BY_CLASS[cls] = entry
    return entry


def wire_record(tag: int, blobs: tuple[str, ...] = ()) -> Callable[[_T], _T]:
    """Class decorator registering a dataclass in the wire schema."""

    def apply(cls: _T) -> _T:
        register(tag, cls, blobs)
        return cls

    return apply


def entry_for_class(cls: type) -> SchemaEntry | None:
    return _BY_CLASS.get(cls)


def entry_for_tag(tag: int) -> SchemaEntry | None:
    return _BY_TAG.get(tag)


def registered_entries() -> Iterator[SchemaEntry]:
    """All entries, in tag order (forces a full registry load first)."""
    ensure_registered()
    for tag in sorted(_BY_TAG):
        yield _BY_TAG[tag]


def ensure_registered() -> dict[int, SchemaEntry]:
    """Import every schema-bearing module; return the tag table."""
    global _registered_all
    if not _registered_all:
        import importlib

        for name in _SCHEMA_MODULES:
            importlib.import_module(name)
        _registered_all = True
    return _BY_TAG


# -- envelope component grammar ------------------------------------------------------
#
# Composite routing wraps payloads in Envelope(component, payload) chains.
# Component strings come from a tiny vocabulary: the static component names
# below, plus the sharded instance grammar "s<shard>.<slot>".  The binary
# codec packs table entries as one byte and instance names as two varints.

#: Interned component names, in wire order.  APPEND ONLY — the position is
#: the wire encoding.
COMPONENT_TABLE: tuple[str, ...] = ("mux", "idb", "uc", "dex", "bosco", "brasileiro", "crash")

_COMPONENT_INDEX = {name: i for i, name in enumerate(COMPONENT_TABLE)}

INSTANCE_PREFIX = "s"


def component_index(component: str) -> int | None:
    """Wire index of an interned component name, or ``None``."""
    return _COMPONENT_INDEX.get(component)


def instance_name(shard: int, slot: int) -> str:
    """The envelope component addressing one ``(shard, slot)`` instance."""
    return f"{INSTANCE_PREFIX}{shard}.{slot}"


def parse_instance(component: str) -> tuple[int, int] | None:
    """Invert :func:`instance_name`; ``None`` for foreign components."""
    if not component.startswith(INSTANCE_PREFIX):
        return None
    body = component[len(INSTANCE_PREFIX) :]
    shard_text, dot, slot_text = body.partition(".")
    if not dot or not shard_text.isdigit() or not slot_text.isdigit():
        return None
    return int(shard_text), int(slot_text)


def check_registry() -> list[str]:
    """Sanity-check the loaded registry; returns human-readable problems.

    Used by tests: every registered class must be a frozen dataclass whose
    constructor accepts its fields positionally (the decoder builds
    instances that way).
    """
    problems: list[str] = []
    ensure_registered()
    for entry in registered_entries():
        params = getattr(entry.cls, "__dataclass_params__", None)
        if params is None:
            problems.append(f"{entry.cls.__qualname__} is not a dataclass")
        elif not params.frozen:
            problems.append(f"{entry.cls.__qualname__} is not frozen")
    return problems
