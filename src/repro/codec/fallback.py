"""The legacy codecs behind the shared ``encode_into``/``decode`` interface.

These are escape hatches, not the data plane:

* :class:`PickleCodec` round-trips anything, but every frame pays C-pickle
  class-path overhead and nothing can be relayed without a full decode —
  and it is only safe between processes *we forked on this machine*.
* :class:`JsonCodec` handles JSON-safe payloads only; it exists for
  interop tests and for eyeballing frames on the wire.

Both expose the same three methods as :class:`repro.codec.binary.BinaryCodec`
so frame writers (``net/wire.py``, ``durable/wal.py``) never branch on the
codec kind.
"""

from __future__ import annotations

import json
import pickle
from typing import Any

__all__ = ["PickleCodec", "JsonCodec"]


class PickleCodec:
    """Arbitrary-object codec via :mod:`pickle` (highest protocol)."""

    id = 1
    name = "pickle"

    def encode_into(self, obj: Any, buf: bytearray) -> None:
        buf += pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)

    def encode(self, obj: Any) -> bytes:
        return pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes) -> Any:
        return pickle.loads(data)


class JsonCodec:
    """JSON-safe payloads only; compact separators, UTF-8 bytes."""

    id = 2
    name = "json"

    def encode_into(self, obj: Any, buf: bytearray) -> None:
        buf += json.dumps(obj, separators=(",", ":")).encode("utf-8")

    def encode(self, obj: Any) -> bytes:
        return json.dumps(obj, separators=(",", ":")).encode("utf-8")

    def decode(self, data: bytes) -> Any:
        return json.loads(bytes(data).decode("utf-8"))
