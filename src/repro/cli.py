"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``       — one consensus instance: algorithm × inputs × faults;
* ``table1``    — print the paper's Table 1 (optionally with empirical
  validation, which runs ~50 simulations);
* ``coverage``  — closed-form fast-path coverage curves for the two-value
  workload model;
* ``legality``  — mechanically check LT1/LT2/LA3/LA4/LU5 for a pair;
* ``conditions``— adaptive condition levels of a concrete input vector;
* ``check``     — model-check the named verification suite
  (:mod:`repro.mc`): exhaustive schedule exploration within delay
  bounds, per enumerated byzantine variant;
* ``bench``     — benchmark workloads: hot-path micro-benchmarks
  (``--workload hotpath``), the socket-engine throughput/latency/fast-path
  comparison (``--workload net``), the sharded multi-consensus service
  sweep (``--workload shard``), the parallel-hub mesh ablation
  (``--workload mesh``), or the client-facing saturation sweep
  (``--workload frontend``); ``--engine`` stays as a compatibility
  alias for the first two;
* ``serve``     — put the admission-controlled frontend behind a UDS/TCP
  socket and serve client sessions (:mod:`repro.frontend.socket`);
* ``hub``       — run one standalone mesh hub group over TCP
  (:mod:`repro.mesh`), so another host's ``MeshTopology.remote`` can
  point a cluster's shard traffic at it;
* ``load``      — drive load at the frontend: a seeded open- or
  closed-loop run in process, or a socket session against a ``serve``
  endpoint.

Every command prints plain-text tables (diff-friendly) and returns a
non-zero exit code on property violations, so the CLI can serve as a
smoke-check in CI pipelines of downstream projects.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .analysis.tables import dex_condition_examples, paper_table1, validated_table1
from .conditions.frequency import FrequencyPair
from .conditions.legality import LegalityChecker
from .conditions.privileged import PrivilegedPair
from .conditions.views import View
from .errors import ReproError
from .harness import (
    ENGINES,
    AlgorithmSpec,
    Collapse,
    Crash,
    CrashRecover,
    Equivocate,
    Fault,
    Garbage,
    Saboteur,
    Scenario,
    Silent,
    Spoiler,
    all_algorithms,
)
from .metrics.report import format_table

_TABLE1_COLUMNS = [
    "algorithm",
    "system",
    "failures",
    "processes",
    "one_step",
    "two_step",
    "validated",
]


def _parse_value(text: str):
    """Values on the command line: ints when possible, else strings."""
    try:
        return int(text)
    except ValueError:
        return text


def _parse_inputs(text: str) -> list:
    return [_parse_value(v) for v in text.split(",") if v != ""]


def _parse_fault(spec: str) -> tuple[int, Fault]:
    """``pid:kind[:arg[:arg]]`` — e.g. ``6:equivocate:1:2`` or ``5:silent``."""
    parts = spec.split(":")
    if len(parts) < 2:
        raise argparse.ArgumentTypeError(
            f"fault spec {spec!r} must look like pid:kind[:args]"
        )
    pid = int(parts[0])
    kind = parts[1]
    args = [_parse_value(p) for p in parts[2:]]
    if kind == "silent":
        return pid, Silent()
    if kind == "crash":
        return pid, Crash(budget=int(args[0]) if args else 3)
    if kind == "equivocate":
        if len(args) != 2:
            raise argparse.ArgumentTypeError("equivocate needs two values")
        return pid, Equivocate(args[0], args[1])
    if kind == "garbage":
        return pid, Garbage(seed=int(args[0]) if args else 0)
    if kind == "spoiler":
        if not args:
            raise argparse.ArgumentTypeError("spoiler needs a fallback value")
        return pid, Spoiler(fallback=args[0])
    if kind == "collapse":
        if not args:
            raise argparse.ArgumentTypeError("collapse needs a value")
        return pid, Collapse(args[0])
    if kind == "saboteur":
        if not args:
            raise argparse.ArgumentTypeError("saboteur needs a poison value")
        return pid, Saboteur(args[0])
    if kind == "recover":
        if not args:
            raise argparse.ArgumentTypeError(
                "recover needs a crash time: pid:recover:at[:restart_after]"
            )
        restart = float(args[1]) if len(args) > 1 else None
        return pid, CrashRecover(at=float(args[0]), restart_after=restart)
    raise argparse.ArgumentTypeError(f"unknown fault kind {kind!r}")


def _algorithm_by_name(name: str) -> AlgorithmSpec:
    for spec in all_algorithms():
        if spec.name == name:
            return spec
    names = ", ".join(s.name for s in all_algorithms())
    raise argparse.ArgumentTypeError(f"unknown algorithm {name!r} (one of: {names})")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DEX (DSN 2010) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one consensus instance")
    run.add_argument("--algorithm", "-a", type=_algorithm_by_name, default="dex-freq")
    run.add_argument("--inputs", "-i", type=_parse_inputs, required=True,
                     help="comma-separated proposals, one per process")
    run.add_argument("--t", type=int, default=None, help="failure bound")
    run.add_argument("--fault", "-f", dest="faults", type=_parse_fault,
                     action="append", default=[],
                     help="pid:kind[:args], repeatable (silent, crash, "
                          "equivocate, garbage, spoiler, collapse, saboteur, "
                          "recover)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--runs", type=int, default=1,
                     help="run this many seeds (seed..seed+runs-1) and print "
                          "the aggregate instead of per-process decisions")
    run.add_argument("--uc", choices=["oracle", "real"], default="oracle")
    run.add_argument("--engine", default="sim", metavar="{" + ",".join(ENGINES) + "}",
                     help="execution backend: deterministic discrete-event "
                          "(sim), real event loop (asyncio), lockstep rounds "
                          "(sync), the model checker's FIFO schedule (mc) or "
                          "one OS process per node over real sockets (net)")
    run.add_argument("--net-jitter", choices=["uniform", "lognormal"],
                     default="uniform",
                     help="net engine: per-message hub delay model — bounded "
                          "uniform jitter or a long-tailed lognormal of the "
                          "same mean")
    run.add_argument("--codec", choices=["binary", "pickle", "json"],
                     default="binary",
                     help="net engine: payload codec for wire frames and "
                          "durable records (struct-packed binary by default; "
                          "pickle/json are the escape hatches)")
    run.add_argument("--hubs", type=int, default=1,
                     help="net engine: hub groups of the mesh transport "
                          "(1 = the classic single-hub star)")
    run.add_argument("--trace", action="store_true", help="print the event trace")

    table1 = sub.add_parser("table1", help="print the paper's Table 1")
    table1.add_argument("--validate", action="store_true",
                        help="empirically validate the implemented rows")

    coverage = sub.add_parser("coverage", help="closed-form coverage curves")
    coverage.add_argument("--n", type=int, default=13)
    coverage.add_argument("--t", type=int, default=2)
    coverage.add_argument("--q", type=float, action="append", default=None,
                          help="favourite probability, repeatable")

    legality = sub.add_parser("legality", help="verify LT1..LU5 for a pair")
    legality.add_argument("--pair", choices=["freq", "prv"], default="freq")
    legality.add_argument("--n", type=int, default=7)
    legality.add_argument("--t", type=int, default=1)
    legality.add_argument("--values", type=_parse_inputs, default=[1, 2])

    conditions = sub.add_parser("conditions", help="condition levels of an input")
    conditions.add_argument("--inputs", "-i", type=_parse_inputs, default=None)
    conditions.add_argument("--n", type=int, default=13)

    check = sub.add_parser(
        "check",
        help="model-check the named verification suite (repro.mc)",
    )
    check.add_argument("--smoke", action="store_true",
                       help="tightened bounds for CI (seconds, not minutes)")
    check.add_argument("--json", action="store_true", dest="as_json",
                       help="machine-readable report on stdout")

    bench = sub.add_parser("bench",
                           help="benchmarks -> BENCH_hotpath.json / BENCH_net.json "
                                "/ BENCH_shard.json / BENCH_mesh.json / "
                                "BENCH_recovery.json / BENCH_frontend.json")
    bench.add_argument("--workload",
                       choices=["hotpath", "net", "shard", "mesh", "recovery",
                                "frontend"],
                       default=None,
                       help="hotpath: simulator micro-benchmarks; net: fast-path "
                            "rate + throughput/latency over real sockets vs sim; "
                            "shard: sharded multi-consensus service sweep "
                            "(throughput/latency/one-step rate vs shard count "
                            "and key skew); mesh: the parallel-hub ablation "
                            "(shard-workload net throughput vs hub-group count, "
                            "per codec and key skew, with per-hub frame "
                            "counters); recovery: WAL replay latency vs log "
                            "length, fsync throughput tax, and one socket-engine "
                            "kill/restart/rejoin cell; frontend: the client-"
                            "facing saturation sweep (offered load vs client "
                            "p50/p99, shed rate past the knee, open vs closed "
                            "loop, UDS socket round-trip)")
    bench.add_argument("--engine", choices=["hotpath", "net"], default=None,
                       help="compatibility alias for --workload (hotpath/net)")
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--runs", type=int, default=10,
                       help="net bench: runs per workload per engine; shard "
                            "bench: seeds per cell (default 3)")
    bench.add_argument("--n", type=int, default=7,
                       help="net/shard bench: system size")
    bench.add_argument("--shards", type=lambda s: tuple(int(x) for x in s.split(",")),
                       default=None,
                       help="shard bench: comma-separated shard counts "
                            "(default 1,2,4)")
    bench.add_argument("--count", type=int, default=48,
                       help="shard bench: client commands per run")
    bench.add_argument("--hubs", type=lambda s: tuple(int(x) for x in s.split(",")),
                       default=None,
                       help="mesh bench: comma-separated hub-group counts "
                            "(default 1,2,4)")
    bench.add_argument("--smoke", action="store_true",
                       help="tiny sizes, one repeat — seconds, for CI")
    bench.add_argument("--sizes", type=lambda s: tuple(int(x) for x in s.split(",")),
                       default=None,
                       help="comma-separated instance sizes (default 7,13,19,25,31)")
    bench.add_argument("--out", default=None,
                       help="output path (default benchmarks/results/"
                            "BENCH_<workload>.json under the current directory)")

    serve = sub.add_parser(
        "serve",
        help="serve the admission-controlled frontend over a UDS/TCP socket",
    )
    serve.add_argument("--path", default=None,
                       help="UDS path to bind (the default transport)")
    serve.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="bind TCP instead of UDS (port 0 = kernel-picked)")
    serve.add_argument("--n", type=int, default=7, help="replica count")
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument("--max-batch", type=int, default=4)
    serve.add_argument("--queue-bound", type=int, default=16,
                       help="per-shard admission queue depth")
    serve.add_argument("--policy", choices=["shed", "block", "deadline"],
                       default="shed")
    serve.add_argument("--deadline", type=int, default=None,
                       help="queue-wait bound in ticks (deadline policy)")
    serve.add_argument("--codec", choices=["binary", "pickle", "json"],
                       default="binary")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--sessions", type=int, default=1,
                       help="client sessions to serve before exiting")
    serve.add_argument("--timeout", type=float, default=60.0)

    hub = sub.add_parser(
        "hub",
        help="run one standalone mesh hub group over TCP (repro.mesh)",
    )
    hub.add_argument("--index", type=int, required=True,
                     help="hub-group index in [1, hubs) — hub 0 always lives "
                          "inside the cluster orchestrator")
    hub.add_argument("--hubs", type=int, required=True,
                     help="total hub-group count of the mesh")
    hub.add_argument("--shards", type=int, required=True,
                     help="shard count of the workload (attribution modulus)")
    hub.add_argument("--n", type=int, required=True, help="replica count")
    hub.add_argument("--host", default="127.0.0.1", help="bind address")
    hub.add_argument("--port", type=int, default=0,
                     help="bind port (0 = kernel-picked, printed on stderr)")
    hub.add_argument("--peer", dest="peers", action="append", default=[],
                     metavar="IDX:HOST:PORT",
                     help="another remote hub's endpoint, repeatable "
                          "(cross-group frames for it relay directly instead "
                          "of through the orchestrator)")
    hub.add_argument("--seed", type=int, default=0,
                     help="cluster seed (per-hub jitter stream = seed + index)")
    hub.add_argument("--mean-delay", type=float, default=0.0005)
    hub.add_argument("--net-jitter", choices=["uniform", "lognormal"],
                     default="uniform")
    hub.add_argument("--codec", choices=["binary", "pickle", "json"],
                     default="binary")
    hub.add_argument("--timeout", type=float, default=300.0,
                     help="failsafe deadline in seconds")

    load = sub.add_parser(
        "load",
        help="drive load at the frontend (in-process loop, or a socket session)",
    )
    load.add_argument("--mode", choices=["open", "closed"], default="open",
                      help="open: Poisson arrivals at --offered per tick; "
                           "closed: a window of --clients outstanding")
    load.add_argument("--offered", type=float, default=8.0,
                      help="open loop: offered load in commands per slot tick")
    load.add_argument("--ticks", type=int, default=40,
                      help="open loop: submission duration in ticks")
    load.add_argument("--clients", type=int, default=8,
                      help="closed loop: window of outstanding submissions")
    load.add_argument("--count", type=int, default=160,
                      help="closed loop / socket session: total commands")
    load.add_argument("--n", type=int, default=7, help="replica count")
    load.add_argument("--shards", type=int, default=2)
    load.add_argument("--max-batch", type=int, default=4)
    load.add_argument("--queue-bound", type=int, default=16)
    load.add_argument("--policy", choices=["shed", "block", "deadline"],
                      default="shed")
    load.add_argument("--deadline", type=int, default=None)
    load.add_argument("--skew", choices=["uniform", "zipf"], default="uniform")
    load.add_argument("--keyspace", type=int, default=32)
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--path", default=None,
                      help="drive a `repro serve` UDS endpoint instead of an "
                           "in-process service")
    load.add_argument("--tcp", default=None, metavar="HOST:PORT",
                      help="drive a `repro serve` TCP endpoint")
    load.add_argument("--codec", choices=["binary", "pickle", "json"],
                      default="binary")
    load.add_argument("--timeout", type=float, default=60.0)
    return parser


def _cmd_run(args) -> int:
    algorithm = (
        args.algorithm
        if isinstance(args.algorithm, AlgorithmSpec)
        else _algorithm_by_name(args.algorithm)
    )
    mesh = None
    if args.hubs > 1:
        from .mesh.topology import MeshTopology

        mesh = MeshTopology(hubs=args.hubs)
    scenario = Scenario(
        algorithm,
        args.inputs,
        t=args.t,
        faults=dict(args.faults),
        uc=args.uc,
        seed=args.seed,
        trace=args.trace,
        engine=args.engine,
        net_jitter=args.net_jitter,
        codec=args.codec,
        mesh=mesh,
    )
    if args.runs > 1:
        aggregate = scenario.run_many(range(args.seed, args.seed + args.runs))
        print(format_table([aggregate.summary()],
                           title=f"{algorithm.name}: n={scenario.config.n}, "
                                 f"t={scenario.config.t}, {args.runs} runs"))
        low, high = aggregate.confidence_interval()
        print(f"mean slowest step: {aggregate.mean_max_step:.3f} "
              f"(95% CI [{low:.3f}, {high:.3f}])")
        return 0 if aggregate.agreement_violations == 0 else 1
    result = scenario.run()
    rows = [
        {
            "pid": pid,
            "value": repr(d.value),
            "path": d.kind.value,
            "step": d.step,
            "time": round(d.time, 3),
        }
        for pid, d in sorted(result.correct_decisions.items())
    ]
    print(format_table(rows, title=f"{algorithm.name}: n={scenario.config.n}, "
                                   f"t={scenario.config.t}, seed={args.seed}"))
    print(f"messages={result.stats.messages_sent} "
          f"agreement={'ok' if result.agreement_holds() else 'VIOLATED'}")
    if args.trace and hasattr(result, "tracer"):
        print(result.tracer.format())
    return 0 if result.agreement_holds() else 1


def _cmd_table1(args) -> int:
    rows = validated_table1() if args.validate else paper_table1()
    print(format_table(rows, _TABLE1_COLUMNS, title="Table 1"))
    print()
    print(format_table(dex_condition_examples(13), title="Condition examples (n=13)"))
    bad = [r for r in rows if r["validated"].startswith("NO")]
    return 1 if bad else 0


def _cmd_coverage(args) -> int:
    from .analysis.closed_form import (
        bosco_one_step,
        dex_freq_one_step,
        dex_freq_two_step,
        dex_prv_one_step,
    )

    qs = args.q or [0.95, 0.9, 0.8, 0.7, 0.5]
    rows = []
    for q in qs:
        for f in range(args.t + 1):
            rows.append(
                {
                    "q": q,
                    "f": f,
                    "dex-freq 1-step": round(dex_freq_one_step(args.n, args.t, f, q), 4),
                    "dex-freq ≤2-step": round(dex_freq_two_step(args.n, args.t, f, q), 4),
                    "dex-prv 1-step": round(dex_prv_one_step(args.n, args.t, f, q), 4),
                    "bosco 1-step": round(bosco_one_step(args.n, args.t, f, q), 4),
                }
            )
    print(format_table(rows, title=f"Closed-form coverage, n={args.n}, t={args.t}"))
    return 0


def _cmd_legality(args) -> int:
    if args.pair == "freq":
        pair = FrequencyPair(args.n, args.t)
    else:
        pair = PrivilegedPair(args.n, args.t, privileged=args.values[0])
    report = LegalityChecker(pair, args.values).check_exhaustive()
    print(f"pair={report.pair} checks={report.checks} "
          f"legal={'yes' if report.is_legal else 'NO'}")
    for violation in report.violations:
        print(f"  violation: {violation}")
    return 0 if report.is_legal else 1


def _cmd_conditions(args) -> int:
    if args.inputs is not None:
        n = len(args.inputs)
        t = max((n - 1) // 6, 0)
        vector = View(args.inputs)
        freq = FrequencyPair(n, t)
        rows = [
            {
                "n": n,
                "t": t,
                "gap": vector.frequency_gap(),
                "freq 1-step level": str(freq.one_step_level(vector)),
                "freq 2-step level": str(freq.two_step_level(vector)),
            }
        ]
        print(format_table(rows, title=f"Condition levels of {args.inputs}"))
    else:
        print(format_table(dex_condition_examples(args.n),
                           title=f"Condition examples (n={args.n})"))
    return 0


def _cmd_check(args) -> int:
    import json

    from .mc.suite import run_suite

    reports = run_suite(smoke=args.smoke)
    if args.as_json:
        print(json.dumps([r.describe() for r in reports], indent=2))
        return 0 if all(r.ok for r in reports) else 1
    rows = []
    for report in reports:
        verdict = "ok" if report.ok else "FAIL"
        if report.expect_violation and report.ok:
            verdict = f"ok (violation @ {report.violation_budget} delays)"
        rows.append(
            {
                "check": report.name,
                "config": report.config,
                "budget": report.delay_budget,
                "variants": len(report.variants),
                "states": report.states,
                "complete": "yes" if report.complete else "capped",
                "time": f"{report.elapsed:.1f}s",
                "verdict": verdict,
            }
        )
    title = "Verification suite" + (" (smoke)" if args.smoke else "")
    print(format_table(rows, title=title))
    failed = [r for r in reports if not r.ok]
    for report in failed:
        print(f"\n{report.name}: FAILED — {report.description}")
        if report.counterexample is not None:
            ce = report.counterexample
            print(f"  {ce.invariant}: {ce.detail}")
            for src, dst, payload in ce.schedule:
                print(f"    deliver {src} -> {dst}: {payload}")
    return 1 if failed else 0


def _cmd_bench(args) -> int:
    from .metrics.bench import (
        DEFAULT_SIZES,
        MESH_HUB_COUNTS,
        SHARD_COUNTS,
        SMOKE_SIZES,
        write_frontend_bench,
        write_hotpath_bench,
        write_mesh_bench,
        write_net_bench,
        write_recovery_bench,
        write_shard_bench,
    )

    workload = args.workload or args.engine or "hotpath"
    if workload == "mesh":
        runs = 3 if args.runs == 10 else args.runs  # net-oriented default
        path = write_mesh_bench(
            out=args.out,
            n=args.n,
            hubs=args.hubs or MESH_HUB_COUNTS,
            shards=args.shards[0] if args.shards else 4,
            count=96 if args.count == 48 else args.count,  # shard-oriented default
            runs=runs,
            smoke=args.smoke,
        )
    elif workload == "frontend":
        shards = args.shards[0] if args.shards else 2
        path = write_frontend_bench(out=args.out, shards=shards, smoke=args.smoke)
    elif workload == "recovery":
        path = write_recovery_bench(
            out=args.out,
            repeats=args.repeats,
            smoke=args.smoke,
        )
    elif workload == "shard":
        runs = 3 if args.runs == 10 else args.runs  # net-oriented default
        path = write_shard_bench(
            out=args.out,
            n=args.n,
            shards=args.shards or SHARD_COUNTS,
            count=args.count,
            runs=runs,
            smoke=args.smoke,
        )
    elif workload == "net":
        runs = 2 if args.smoke else args.runs
        path = write_net_bench(out=args.out, n=args.n, runs=runs)
    else:
        if args.smoke:
            sizes = args.sizes or SMOKE_SIZES
            repeats = 1
        else:
            sizes = args.sizes or DEFAULT_SIZES
            repeats = args.repeats
        path = write_hotpath_bench(
            out=args.out,
            sizes=sizes,
            repeats=repeats,
        )
    print(path.read_text(), end="")
    print(f"wrote {path}", file=sys.stderr)
    return 0


def _parse_hostport(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"{text!r} is not HOST:PORT")
    return host, int(port)


def _frontend_factory(args):
    """A fresh admission-controlled frontend per session, from CLI knobs."""
    from .frontend.api import Frontend
    from .shard.service import ShardedService

    def make():
        service = ShardedService(
            n=args.n,
            shards=args.shards,
            max_batch=args.max_batch,
            seed=args.seed,
        )
        return Frontend(
            service,
            queue_bound=args.queue_bound,
            policy=args.policy,
            deadline=args.deadline,
        )

    return make


def _cmd_serve(args) -> int:
    from .codec import CODEC_NAMES
    from .frontend.socket import FrontendServer

    if (args.path is None) == (args.tcp is None):
        print("error: pass exactly one of --path (UDS) or --tcp HOST:PORT",
              file=sys.stderr)
        return 2
    server = FrontendServer(
        _frontend_factory(args),
        path=args.path,
        address=_parse_hostport(args.tcp) if args.tcp else None,
        codec=CODEC_NAMES[args.codec],
    )
    where = server.bind()
    print(f"serving frontend at {where} "
          f"(n={args.n}, shards={args.shards}, policy={args.policy})",
          file=sys.stderr)
    try:
        for _ in range(args.sessions):
            report = server.serve_once(timeout=args.timeout)
            print(format_table([report.summary()], title="session"))
    finally:
        server.close()
    return 0


def _cmd_hub(args) -> int:
    from .codec import CODEC_NAMES
    from .mesh.hub import serve_hub

    peers: dict[int, tuple[str, int]] = {}
    for spec in args.peers:
        parts = spec.split(":")
        if len(parts) != 3 or not parts[0].isdigit() or not parts[2].isdigit():
            print(f"error: peer {spec!r} must look like IDX:HOST:PORT",
                  file=sys.stderr)
            return 2
        peers[int(parts[0])] = (parts[1], int(parts[2]))

    def announce(address) -> None:
        host, port = address[:2]
        print(f"hub {args.index}/{args.hubs} listening at {host}:{port} "
              f"(shards={args.shards}, n={args.n})", file=sys.stderr)

    return serve_hub(
        args.index,
        args.hubs,
        args.shards,
        args.n,
        host=args.host,
        port=args.port,
        peers=peers or None,
        seed=args.seed,
        mean_delay=args.mean_delay,
        jitter=args.net_jitter,
        codec=CODEC_NAMES[args.codec],
        deadline_seconds=args.timeout,
        announce=announce,
    )


def _cmd_load(args) -> int:
    from .codec import CODEC_NAMES

    if args.path or args.tcp:
        from .frontend.socket import ClientReply, SocketClient

        client = SocketClient(
            path=args.path,
            address=_parse_hostport(args.tcp) if args.tcp else None,
            codec=CODEC_NAMES[args.codec],
            timeout=args.timeout,
        )
        import random

        rng = random.Random(args.seed)
        commands = [
            (f"k{rng.randrange(args.keyspace)}", i) for i in range(args.count)
        ]
        outcomes = client.submit_all(commands)
        replies = sum(1 for o in outcomes.values() if isinstance(o, ClientReply))
        rejects = len(outcomes) - replies
        print(format_table(
            [{"submits": len(commands), "replies": replies, "rejects": rejects}],
            title=f"socket session against {args.path or args.tcp}"))
        return 0 if replies + rejects == len(commands) else 1

    from .frontend.loadgen import LoadGenerator

    generator = LoadGenerator(
        keyspace=args.keyspace, skew=args.skew, seed=args.seed
    )
    frontend = _frontend_factory(args)()
    if args.mode == "open":
        report = generator.open_loop(
            frontend, offered=args.offered, ticks=args.ticks, timeout=args.timeout
        )
        title = f"open loop: offered={args.offered}/tick over {args.ticks} ticks"
    else:
        report = generator.closed_loop(
            frontend, clients=args.clients, total=args.count, timeout=args.timeout
        )
        title = f"closed loop: {args.clients} clients, {args.count} commands"
    print(format_table([report.summary()], title=title))
    divergence = bool(report.shard.divergence) if report.shard else False
    return 1 if divergence else 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "table1": _cmd_table1,
        "coverage": _cmd_coverage,
        "legality": _cmd_legality,
        "conditions": _cmd_conditions,
        "check": _cmd_check,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "hub": _cmd_hub,
        "load": _cmd_load,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
