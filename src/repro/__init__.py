"""repro — a full reproduction of *Doubly-Expedited One-Step Byzantine
Consensus* (Banu, Izumi, Wada; DSN 2010).

The package provides:

* :mod:`repro.core` — algorithm **DEX** (Figure 1), generic over legal
  condition-sequence pairs;
* :mod:`repro.conditions` — the condition-based machinery of §3: views,
  adaptive condition sequences, the frequency-based and
  privileged-value-based pairs, and a mechanical legality checker for
  criteria LT1–LU5;
* :mod:`repro.broadcast` — Identical Broadcast (appendix Figure 3) and
  Bracha reliable broadcast;
* :mod:`repro.underlying` — the underlying-consensus abstraction (§2.2) as
  a trusted oracle *and* a real signature-free stack (RBC + common-coin
  binary agreement + asynchronous common subset);
* :mod:`repro.baselines` — BOSCO (weak/strong), Brasileiro's one-step
  converter, and a plain two-step reference;
* :mod:`repro.sim` / :mod:`repro.runtime` — a deterministic discrete-event
  simulator and an asyncio runtime, both interpreting the same sans-IO
  protocols, with causal step accounting matching the paper's
  communication-step metric;
* :mod:`repro.byzantine` — a programmable adversary library;
* :mod:`repro.harness` — declarative scenario construction;
* :mod:`repro.workloads`, :mod:`repro.metrics`, :mod:`repro.analysis`,
  :mod:`repro.apps` — experiment support and the motivating applications;
* :mod:`repro.shard` — the keyspace-sharded multi-consensus service (many
  concurrent DEX instances, batched, multiplexed over one engine).

Quickstart::

    from repro import Scenario, dex_freq

    result = Scenario(dex_freq(), inputs=[1] * 7, seed=1).run()
    print(result.decided_value, result.max_correct_step)   # 1 1
"""

from .conditions import (
    ConditionSequence,
    ConditionSequencePair,
    FrequencyPair,
    LegalityChecker,
    PrivilegedPair,
    View,
)
from .core import DexConsensus
from .errors import (
    ConfigurationError,
    LegalityError,
    ReproError,
    ResilienceError,
    SimulationDeadlock,
    SimulationError,
)
from .harness import (
    AlgorithmSpec,
    Deployment,
    Collapse,
    Crash,
    Custom,
    Equivocate,
    Fault,
    Garbage,
    Scenario,
    Silent,
    Spoiler,
    all_algorithms,
    bosco_strong,
    bosco_weak,
    brasileiro,
    dex_freq,
    dex_prv,
    izumi,
    run_once,
    twostep,
)
from .sim import RunResult, Simulation
from .types import BOTTOM, Decision, DecisionKind, SystemConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "DexConsensus",
    # conditions
    "View",
    "ConditionSequence",
    "ConditionSequencePair",
    "FrequencyPair",
    "PrivilegedPair",
    "LegalityChecker",
    # harness
    "Scenario",
    "Deployment",
    "AlgorithmSpec",
    "run_once",
    "all_algorithms",
    "dex_freq",
    "dex_prv",
    "bosco_weak",
    "bosco_strong",
    "brasileiro",
    "izumi",
    "twostep",
    "Fault",
    "Silent",
    "Crash",
    "Equivocate",
    "Garbage",
    "Spoiler",
    "Collapse",
    "Custom",
    # runtime
    "Simulation",
    "RunResult",
    # types
    "BOTTOM",
    "SystemConfig",
    "Decision",
    "DecisionKind",
    # errors
    "ReproError",
    "ConfigurationError",
    "ResilienceError",
    "SimulationError",
    "SimulationDeadlock",
    "LegalityError",
]
