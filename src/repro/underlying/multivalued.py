"""Concrete multivalued Byzantine consensus (``n > 3t``).

The top of the real underlying-consensus stack: run the asynchronous
common subset (:class:`~repro.underlying.acs.CommonSubset`) on the
proposals and decide a deterministic function of the agreed subset — the
most frequent value, ties broken towards the largest.

* **Agreement** — all correct processes obtain the same subset with the
  same values, and the extraction rule is deterministic.
* **Termination** — inherited from ACS/ABA/RBC.
* **Unanimity** — if every correct process proposes ``v``, the subset has
  at least ``n − t`` members of which at most ``t`` are Byzantine;
  ``n − 2t > t`` makes ``v`` the strict plurality, so the rule picks ``v``.

This protocol plugs into DEX anywhere the oracle abstraction does — the
``uc`` child slot accepts either — so the reproduction can run end-to-end
with zero trusted components.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from ..runtime.composite import CompositeProtocol
from ..runtime.effects import Deliver, Effect
from ..types import ProcessId, SystemConfig, Value, largest
from .acs import DELIVER_TAG as ACS_DELIVER_TAG
from .acs import CommonSubset
from .base import UC_DECIDE_TAG, UnderlyingConsensus
from .coin import CommonCoin


class MultivaluedConsensus(CompositeProtocol, UnderlyingConsensus):
    """Multivalued consensus over an asynchronous common subset.

    Args:
        process_id: hosting process.
        config: must satisfy ``n > 3t``.
        coin: the shared common coin (see :mod:`repro.underlying.coin`).
        instance: instance label for coin namespacing.
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        coin: CommonCoin | None = None,
        instance: Any = 0,
    ) -> None:
        super().__init__(process_id, config)
        self._acs = self.add_child(
            "acs", CommonSubset(process_id, config, coin or CommonCoin(), instance)
        )
        self._decided = False

    def propose(self, value: Value) -> list[Effect]:
        """``UC_propose(value)``."""
        return self.child_call("acs", self._acs.propose(value))

    @property
    def has_proposed(self) -> bool:
        return self._acs.has_proposed

    def on_child_output(self, name: str, effect) -> list[Effect]:
        if (
            name == "acs"
            and isinstance(effect, Deliver)
            and effect.tag == ACS_DELIVER_TAG
            and not self._decided
        ):
            self._decided = True
            value = extract_decision(effect.value)
            return [Deliver(UC_DECIDE_TAG, self.process_id, value)]
        return []


def extract_decision(subset: dict[ProcessId, Value]) -> Value:
    """The deterministic decision rule: plurality value, ties to the largest."""
    if not subset:
        raise ValueError("the agreed subset cannot be empty (|S| >= n - t)")
    counts = Counter(subset.values())
    best = max(counts.values())
    return largest(v for v, c in counts.items() if c == best)
