"""The underlying-consensus abstraction (paper §2.2).

DEX assumes "the underlying consensus primitive that ensures agreement,
termination and unanimity, but provides no guarantees about its running
time".  This module fixes the interface; two interchangeable
implementations ship with the library:

* :class:`repro.underlying.oracle.OracleConsensus` — the abstraction
  itself, realised as a trusted harness service (fast, deterministic,
  step-cost configurable).  This is what the paper assumes and what the
  benchmarks use by default.
* :class:`repro.underlying.multivalued.MultivaluedConsensus` — a real,
  signature-free Byzantine consensus built from Bracha reliable broadcast,
  common-coin binary agreement and an asynchronous common subset
  (``n > 3t``), so that no part of the reproduction is a stub.

Both expose ``propose(value)`` (the paper's ``UC_propose``) and announce
the decision with a ``Deliver(tag=UC_DECIDE_TAG, …)`` upcall (the paper's
``UC_decide``).
"""

from __future__ import annotations

import abc

from ..runtime.effects import Effect
from ..runtime.protocol import Protocol
from ..types import Value

#: Upcall tag carrying the underlying consensus decision to the parent.
UC_DECIDE_TAG = "uc-decide"


class UnderlyingConsensus(Protocol):
    """Interface of the underlying consensus primitive.

    Contract (all under at most ``t`` Byzantine processes):

    * **Agreement** — no two correct processes decide differently;
    * **Termination** — if every correct process proposes, every correct
      process eventually decides;
    * **Unanimity** — if all correct processes propose ``v``, the decision
      is ``v``;
    * no timing guarantees whatsoever.
    """

    @abc.abstractmethod
    def propose(self, value: Value) -> list[Effect]:
        """``UC_propose(value)`` — at most one call per instance."""

    @property
    @abc.abstractmethod
    def has_proposed(self) -> bool:
        """True once :meth:`propose` was invoked."""
