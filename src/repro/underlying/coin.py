"""Common coin for the binary-agreement substrate.

Randomized Byzantine agreement needs a *common coin*: a per-round random
bit that every process observes identically.  Production systems obtain it
from threshold cryptography (e.g. threshold BLS over a distributed key);
the standard simulation substitute — used here, and documented as such in
DESIGN.md — is a pseudo-random function of a shared seed: every process
evaluates ``PRF(seed, instance, round)`` locally, so all observe the same
unpredictable-looking bit without any messages.

The substitution preserves the property the ABA proof needs (a common
random bit per round, independent across rounds).  It is *weaker* against
a rushing adversary, which could precompute the coin — acceptable for a
reproduction whose adversaries are the scripted behaviors of
:mod:`repro.byzantine`.
"""

from __future__ import annotations

import hashlib
from typing import Any


class CommonCoin:
    """Deterministic shared-seed common coin.

    Args:
        seed: the shared secret; all processes of one system must use the
            same seed, and different experiments should use different seeds.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def bit(self, instance: Any, round_: int) -> int:
        """The common coin for ``(instance, round_)`` — 0 or 1."""
        material = f"{self.seed}|{instance!r}|{round_}".encode()
        digest = hashlib.sha256(material).digest()
        return digest[0] & 1

    def value(self, instance: Any, round_: int, modulus: int) -> int:
        """A common value in ``range(modulus)`` (e.g. for leader election)."""
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        material = f"{self.seed}|{instance!r}|{round_}|v".encode()
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big") % modulus
