"""Asynchronous Common Subset (ACS) — agreeing on who contributed.

The HoneyBadgerBFT-style construction over the two lower layers:

* every process reliably broadcasts its proposal
  (:class:`~repro.broadcast.bracha.BrachaBroadcast`);
* for each process ``j`` a binary-agreement instance
  (:class:`~repro.underlying.aba.BinaryAgreement`) decides whether ``j``'s
  proposal makes it into the common subset — a process votes 1 for ``j``
  once it RBC-delivers ``j``'s proposal, and votes 0 for all undecided
  instances once ``n − t`` instances have decided 1;
* the result is the set ``S = {j : ABA_j = 1}`` together with the
  RBC-delivered value of every member (delivery of members is guaranteed:
  ABA only decides 1 if some correct process voted 1, i.e. delivered, and
  Bracha broadcast is total).

All correct processes obtain the same ``S`` (ABA agreement) with the same
values (RBC agreement), and ``|S| ≥ n − t``.  The subset surfaces as
``Deliver(tag="acs-decide", value={pid: value, …})``.
"""

from __future__ import annotations

from typing import Any

from ..broadcast.bracha import BrachaBroadcast
from ..broadcast.bracha import DELIVER_TAG as RBC_DELIVER_TAG
from ..runtime.composite import CompositeProtocol
from ..runtime.effects import Deliver, Effect
from ..types import ProcessId, SystemConfig, Value
from .aba import DELIVER_TAG as ABA_DELIVER_TAG
from .aba import BinaryAgreement
from .coin import CommonCoin

DELIVER_TAG = "acs-decide"


class CommonSubset(CompositeProtocol):
    """One process's ACS endpoint.

    Args:
        process_id: hosting process.
        config: must satisfy ``n > 3t`` (inherited from both substrates).
        coin: common coin shared by the embedded ABA instances.
        instance: label namespacing the coin draws of this ACS.
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        coin: CommonCoin,
        instance: Any = 0,
    ) -> None:
        super().__init__(process_id, config)
        self.instance = instance
        self._rbc = self.add_child("rbc", BrachaBroadcast(process_id, config))
        self._abas: dict[ProcessId, BinaryAgreement] = {
            j: self.add_child(
                f"aba{j}",
                BinaryAgreement(process_id, config, coin, instance=(instance, j)),
            )
            for j in config.processes
        }
        self._values: dict[ProcessId, Value] = {}
        self._aba_result: dict[ProcessId, int] = {}
        self._voted: set[ProcessId] = set()
        self._zero_filled = False
        self._completed = False
        self._proposed = False

    # -- input action ----------------------------------------------------------------

    def propose(self, value: Value) -> list[Effect]:
        """Contribute ``value`` to the common subset."""
        if self._proposed:
            return []
        self._proposed = True
        return self.child_call("rbc", self._rbc.rbc_send(value))

    @property
    def has_proposed(self) -> bool:
        return self._proposed

    # -- child upcalls ----------------------------------------------------------------

    def on_child_output(self, name: str, effect) -> list[Effect]:
        if not isinstance(effect, Deliver):
            return []
        if name == "rbc" and effect.tag == RBC_DELIVER_TAG:
            return self._on_rbc_deliver(effect.sender, effect.value)
        if name.startswith("aba") and effect.tag == ABA_DELIVER_TAG:
            return self._on_aba_decide(int(name[3:]), effect.value)
        return []

    def _vote(self, j: ProcessId, value: int) -> list[Effect]:
        if j in self._voted:
            return []
        self._voted.add(j)
        return self.child_call(f"aba{j}", self._abas[j].propose(value))

    def _on_rbc_deliver(self, origin: ProcessId, value: Value) -> list[Effect]:
        self._values.setdefault(origin, value)
        effects: list[Effect] = []
        if not self._zero_filled:
            effects.extend(self._vote(origin, 1))
        effects.extend(self._maybe_complete())
        return effects

    def _on_aba_decide(self, j: ProcessId, value: int) -> list[Effect]:
        self._aba_result[j] = value
        effects: list[Effect] = []
        ones = sum(1 for v in self._aba_result.values() if v == 1)
        if ones >= self.quorum and not self._zero_filled:
            self._zero_filled = True
            for other in self.config.processes:
                effects.extend(self._vote(other, 0))
        effects.extend(self._maybe_complete())
        return effects

    def _maybe_complete(self) -> list[Effect]:
        if self._completed:
            return []
        if len(self._aba_result) < self.n:
            return []
        members = [j for j, v in self._aba_result.items() if v == 1]
        if any(j not in self._values for j in members):
            return []  # totality of RBC will fill these in
        self._completed = True
        subset = {j: self._values[j] for j in sorted(members)}
        return [Deliver(DELIVER_TAG, self.process_id, subset)]
