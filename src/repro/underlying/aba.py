"""Asynchronous binary Byzantine agreement with a common coin (``n > 3t``).

This is the signature-free round-based algorithm of Mostéfaoui, Moumen and
Raynal (PODC 2014), the standard building block for asynchronous BFT
stacks.  Each round ``r``:

1. **BV-broadcast** — broadcast ``EST(r, est)``; relay any ``EST(r, v)``
   seen from ``t + 1`` distinct processes (once per value); a value seen
   from ``2t + 1`` distinct processes enters ``bin_values[r]`` — the set of
   values provably estimated by at least one correct process.
2. When ``bin_values[r]`` first becomes non-empty, broadcast ``AUX(r, w)``
   for one of its values.
3. Wait for ``AUX(r, ·)`` messages from ``n − t`` distinct processes whose
   values all lie in ``bin_values[r]``; call the value set ``vals``.
4. Draw the common coin ``s = coin(r)``.  If ``vals == {b}``: set
   ``est = b`` and **decide** ``b`` when ``b == s``.  Otherwise set
   ``est = s``.  Enter round ``r + 1``.

A decided process broadcasts ``DECIDED(b)`` once and *keeps participating*
(the harness stops the world when every correct process has decided, so no
in-protocol halting dance is needed); receiving ``DECIDED(b)`` from
``t + 1`` distinct processes — at least one of them correct — lets a
process adopt the decision immediately.

Safety is coin-independent; termination relies on the coin eventually
matching the single surviving estimate (expected two rounds with a fair
coin).  Decision surfaces as ``Deliver(tag="aba-decide", …)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ResilienceError
from ..runtime.effects import Broadcast, Deliver, Effect
from ..runtime.protocol import Protocol
from ..types import ProcessId, SystemConfig
from .coin import CommonCoin

DELIVER_TAG = "aba-decide"

#: Byzantine processes could inflate per-round state by quoting absurd round
#: numbers; rounds further ahead of a process's current round are ignored.
ROUND_HORIZON = 64


@dataclass(frozen=True, slots=True)
class AbaEst:
    """BV-broadcast estimate message for one round."""

    round: int
    value: int


@dataclass(frozen=True, slots=True)
class AbaAux:
    """Auxiliary vote: one value from the sender's ``bin_values``."""

    round: int
    value: int


@dataclass(frozen=True, slots=True)
class AbaDecided:
    """One-shot decision announcement."""

    value: int


class BinaryAgreement(Protocol):
    """One instance of common-coin binary agreement.

    Args:
        process_id: hosting process.
        config: must satisfy ``n > 3t``.
        coin: the shared common coin.
        instance: instance label mixed into the coin (so parallel instances
            draw independent coins).
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        coin: CommonCoin,
        instance: Any = 0,
    ) -> None:
        if not config.satisfies(3):
            raise ResilienceError("BinaryAgreement", config.n, config.t, "n > 3t")
        super().__init__(process_id, config)
        self.coin = coin
        self.instance = instance
        self.est: int | None = None
        self.round = 0
        self.decided: int | None = None
        self._est_sent: dict[int, set[int]] = {}
        self._est_from: dict[tuple[int, int], set[ProcessId]] = {}
        self._bin_values: dict[int, set[int]] = {}
        self._aux_sent: set[int] = set()
        self._aux_from: dict[int, dict[ProcessId, int]] = {}
        self._rounds_done: set[int] = set()
        self._decided_from: dict[int, set[ProcessId]] = {}
        self._announced = False

    # -- input action ----------------------------------------------------------------

    def propose(self, value: int) -> list[Effect]:
        """Start the instance with binary input ``value``."""
        if value not in (0, 1):
            raise ValueError(f"binary agreement input must be 0 or 1, got {value!r}")
        if self.est is not None:
            return []
        self.est = value
        return self._enter_round()

    @property
    def has_proposed(self) -> bool:
        return self.est is not None

    # -- round machinery -----------------------------------------------------------------

    def _enter_round(self) -> list[Effect]:
        effects = self._broadcast_est(self.round, self.est)
        effects.extend(self._maybe_send_aux(self.round))
        effects.extend(self._try_complete(self.round))
        return effects

    def _broadcast_est(self, round_: int, value: int) -> list[Effect]:
        sent = self._est_sent.setdefault(round_, set())
        if value in sent:
            return []
        sent.add(value)
        return [Broadcast(AbaEst(round_, value))]

    def _maybe_send_aux(self, round_: int) -> list[Effect]:
        if round_ != self.round or round_ in self._aux_sent:
            return []
        bin_values = self._bin_values.get(round_)
        if not bin_values:
            return []
        self._aux_sent.add(round_)
        return [Broadcast(AbaAux(round_, min(bin_values)))]

    def _try_complete(self, round_: int) -> list[Effect]:
        if round_ != self.round or round_ in self._rounds_done:
            return []
        bin_values = self._bin_values.get(round_, set())
        if not bin_values:
            return []
        votes = self._aux_from.get(round_, {})
        valid = {s: v for s, v in votes.items() if v in bin_values}
        if len(valid) < self.quorum:
            return []
        vals = set(valid.values())
        self._rounds_done.add(round_)
        s = self.coin.bit(self.instance, round_)
        effects: list[Effect] = [
            self.log("aba-round", round=round_, vals=sorted(vals), coin=s)
        ]
        if len(vals) == 1:
            (b,) = vals
            self.est = b
            if b == s:
                effects.extend(self._decide(b))
        else:
            self.est = s
        self.round = round_ + 1
        effects.extend(self._enter_round())
        return effects

    def _decide(self, value: int) -> list[Effect]:
        if self._announced:
            return []
        self._announced = True
        self.decided = value
        return [
            Broadcast(AbaDecided(value)),
            Deliver(DELIVER_TAG, self.process_id, value),
        ]

    # -- message handlers ------------------------------------------------------------------

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if isinstance(payload, AbaEst):
            return self._on_est(sender, payload)
        if isinstance(payload, AbaAux):
            return self._on_aux(sender, payload)
        if isinstance(payload, AbaDecided):
            return self._on_decided(sender, payload)
        return []

    def _valid(self, round_: int, value: int) -> bool:
        return (
            isinstance(round_, int)
            and isinstance(value, int)
            and value in (0, 1)
            and 0 <= round_ <= self.round + ROUND_HORIZON
        )

    def _on_est(self, sender: ProcessId, message: AbaEst) -> list[Effect]:
        if not self._valid(message.round, message.value):
            return []
        senders = self._est_from.setdefault((message.round, message.value), set())
        senders.add(sender)
        effects: list[Effect] = []
        if len(senders) >= self.t + 1:
            effects.extend(self._broadcast_est(message.round, message.value))
        if len(senders) >= 2 * self.t + 1:
            bin_values = self._bin_values.setdefault(message.round, set())
            if message.value not in bin_values:
                bin_values.add(message.value)
                effects.extend(self._maybe_send_aux(message.round))
                effects.extend(self._try_complete(message.round))
        return effects

    def _on_aux(self, sender: ProcessId, message: AbaAux) -> list[Effect]:
        if not self._valid(message.round, message.value):
            return []
        votes = self._aux_from.setdefault(message.round, {})
        votes.setdefault(sender, message.value)
        return self._try_complete(message.round)

    def _on_decided(self, sender: ProcessId, message: AbaDecided) -> list[Effect]:
        if message.value not in (0, 1):
            return []
        senders = self._decided_from.setdefault(message.value, set())
        senders.add(sender)
        if len(senders) >= self.t + 1 and not self._announced:
            if self.est is None:
                self.est = message.value
            return self._decide(message.value)
        return []
