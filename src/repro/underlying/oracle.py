"""Oracle underlying consensus — the paper's §2.2 abstraction as a service.

The paper deliberately does not fix an underlying consensus algorithm; it
assumes one exists (via partial synchrony, failure detectors, randomization
— "we simply assume an abstraction of them").  :class:`OracleService` is
that abstraction made executable: a trusted harness component that

* collects ``UC_propose`` values, at most one per caller;
* once proposals from ``n − t`` distinct processes arrived, fixes the
  decision to the most frequent proposed value (ties broken towards the
  largest) — with ``n > 3t`` this preserves unanimity because correct
  proposals outnumber Byzantine ones in any ``n − t`` quorum;
* announces the decision to every process.

Causal step accounting is preserved: the decision carries
``max(depth of the quorum proposals) + step_cost``.  ``step_cost`` defaults
to 2 — the optimal latency of consensus in well-behaved runs [9] — which is
exactly the modelling that makes DEX's worst case "four steps in
well-behaved runs" (2-step IDB proposal pipeline + 2-step UC) and BOSCO's
"three steps" (1 + 2) measurable in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..runtime.effects import Deliver, Effect, ServiceCall
from ..runtime.services import Service, ServiceReply
from ..types import ProcessId, SystemConfig, Value, largest
from .base import UC_DECIDE_TAG, UnderlyingConsensus
from ..codec.schema import wire_record

#: Default service name used by :class:`OracleConsensus`.
SERVICE_NAME = "oracle-uc"


@wire_record(tag=19)
@dataclass(frozen=True, slots=True)
class OracleProposal:
    """``UC_propose(value)`` request for one consensus instance."""

    instance: Any
    value: Value


@wire_record(tag=20)
@dataclass(frozen=True, slots=True)
class OracleDecision:
    """``UC_decide(value)`` announcement for one consensus instance."""

    instance: Any
    value: Value


class OracleService(Service):
    """Trusted realisation of the underlying consensus primitive.

    Args:
        config: the ``(n, t)`` parameters; the quorum is ``n − t``.
        step_cost: causal steps the abstract consensus costs on top of its
            slowest quorum proposal (default 2, the failure-free optimum).
        reply_delay: simulated latency of the decision announcement.
    """

    def __init__(
        self, config: SystemConfig, step_cost: int = 2, reply_delay: float = 1.0
    ) -> None:
        if step_cost < 0 or reply_delay < 0:
            raise ValueError("step_cost and reply_delay must be non-negative")
        self.config = config
        self.step_cost = step_cost
        self.reply_delay = reply_delay
        self._proposals: dict[
            Any, dict[ProcessId, tuple[Value, int, tuple[str, ...]]]
        ] = {}
        self._decisions: dict[Any, tuple[Value, int]] = {}

    def reset(self) -> None:
        self._proposals.clear()
        self._decisions.clear()

    def on_call(
        self,
        caller: ProcessId,
        payload: Any,
        depth: int,
        time: float,
        reply_path: tuple[str, ...] = (),
    ) -> list[ServiceReply]:
        if not isinstance(payload, OracleProposal):
            return []  # garbage from a Byzantine caller
        instance = payload.instance
        if instance in self._decisions:
            # Late proposer: repeat the announcement to it alone, along the
            # path of *this* request.
            value, decision_depth = self._decisions[instance]
            return [
                ServiceReply(
                    caller,
                    OracleDecision(instance, value),
                    max(decision_depth, depth + self.step_cost),
                    self.reply_delay,
                    reply_path,
                )
            ]
        proposals = self._proposals.setdefault(instance, {})
        proposals.setdefault(caller, (payload.value, depth, reply_path))
        if len(proposals) < self.config.quorum:
            return []
        value = self._choose(proposals)
        decision_depth = max(d for _, d, _ in proposals.values()) + self.step_cost
        self._decisions[instance] = (value, decision_depth)
        announcement = OracleDecision(instance, value)
        # Announce to every proposer so far, each along its own request
        # path; processes that have not proposed this instance yet get the
        # decision when their proposal arrives (late-proposer branch).
        return [
            ServiceReply(dst, announcement, decision_depth, self.reply_delay, path)
            for dst, (_, _, path) in proposals.items()
        ]

    @staticmethod
    def _choose(
        proposals: dict[ProcessId, tuple[Value, int, tuple[str, ...]]]
    ) -> Value:
        """Most frequent proposed value; ties broken towards the largest."""
        counts: dict[Value, int] = {}
        for value, _, _ in proposals.values():
            counts[value] = counts.get(value, 0) + 1
        best = max(counts.values())
        return largest(v for v, c in counts.items() if c == best)


class OracleConsensus(UnderlyingConsensus):
    """Process-side adapter speaking to :class:`OracleService`.

    Args:
        process_id: hosting process.
        config: system parameters.
        instance: consensus instance key (lets one service serve repeated
            consensus, e.g. one instance per replicated-state-machine slot).
        service: registered name of the oracle service.
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        instance: Any = 0,
        service: str = SERVICE_NAME,
    ) -> None:
        super().__init__(process_id, config)
        self.instance = instance
        self.service = service
        self._proposed = False
        self._decided = False

    @property
    def has_proposed(self) -> bool:
        return self._proposed

    def propose(self, value: Value) -> list[Effect]:
        if self._proposed:
            return []
        self._proposed = True
        return [ServiceCall(self.service, OracleProposal(self.instance, value))]

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if (
            isinstance(payload, OracleDecision)
            and payload.instance == self.instance
            and not self._decided
        ):
            self._decided = True
            return [Deliver(UC_DECIDE_TAG, self.process_id, payload.value)]
        return []
