"""Underlying consensus: the paper's §2.2 abstraction and a real stack.

Two interchangeable implementations of
:class:`~repro.underlying.base.UnderlyingConsensus`:

* **oracle** — the abstraction itself as a trusted harness service;
* **multivalued** — Bracha RBC + common-coin binary agreement + ACS
  (``n > 3t``), fully message-passing with zero trusted components.
"""

from .aba import DELIVER_TAG as ABA_DELIVER_TAG
from .aba import AbaAux, AbaDecided, AbaEst, BinaryAgreement
from .acs import DELIVER_TAG as ACS_DELIVER_TAG
from .acs import CommonSubset
from .base import UC_DECIDE_TAG, UnderlyingConsensus
from .coin import CommonCoin
from .multivalued import MultivaluedConsensus, extract_decision
from .oracle import (
    SERVICE_NAME as ORACLE_SERVICE_NAME,
)
from .oracle import (
    OracleConsensus,
    OracleDecision,
    OracleProposal,
    OracleService,
)

__all__ = [
    "UnderlyingConsensus",
    "UC_DECIDE_TAG",
    "OracleService",
    "OracleConsensus",
    "OracleProposal",
    "OracleDecision",
    "ORACLE_SERVICE_NAME",
    "CommonCoin",
    "BinaryAgreement",
    "AbaEst",
    "AbaAux",
    "AbaDecided",
    "ABA_DELIVER_TAG",
    "CommonSubset",
    "ACS_DELIVER_TAG",
    "MultivaluedConsensus",
    "extract_decision",
]
