"""``repro.shard`` — the keyspace-sharded multi-consensus service.

The paper's replicated-server motivation at "heavy traffic" scale: the
keyspace is split into shards, each shard orders batched client commands
through consecutive DEX instances, and all instances of all shards
multiplex over one engine — on the socket engine, one hub connection per
node carries every instance's frames.

* :mod:`repro.shard.router` — key→shard mapping + the ``(shard, slot)``
  instance multiplexer;
* :mod:`repro.shard.batcher` — per-shard size/time-bounded batching with
  loser re-proposal;
* :mod:`repro.shard.service` — :class:`ShardedService` frontend, seeded
  client streams (uniform/zipf skew, open/closed loop), per-shard stores
  and the cross-shard divergence check;
* :mod:`repro.shard.metrics` — per-shard and aggregate throughput /
  latency / one-step-rate folded from the typed event stream.
"""

from .batcher import ShardBatcher
from .metrics import ShardStreamSink, step_of_kind
from .router import INSTANCE_DECIDED_TAG, ShardMultiplexer, instance_name, parse_instance, shard_of
from .service import ShardedService, ShardNode, ShardReport, dex_shard_factory, shard_workload

__all__ = [
    "INSTANCE_DECIDED_TAG",
    "ShardBatcher",
    "ShardMultiplexer",
    "ShardNode",
    "ShardReport",
    "ShardStreamSink",
    "ShardedService",
    "dex_shard_factory",
    "instance_name",
    "parse_instance",
    "shard_of",
    "shard_workload",
    "step_of_kind",
]
