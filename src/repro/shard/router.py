"""Key→shard routing and the ``(shard, slot)`` instance multiplexer.

A sharded service runs one independent replicated log per shard; every
shard advances through consecutive consensus slots.  Two pieces make that
work over a *single* transport:

* :func:`shard_of` — the deterministic key→shard mapping.  It hashes with
  ``zlib.crc32``, never ``hash()``: the builtin string hash is salted per
  process (``PYTHONHASHSEED``), so forked node workers on the ``net``
  engine would disagree about which shard owns a key.
* :class:`ShardMultiplexer` — a composite protocol hosting one consensus
  child per *instance* ``(shard, slot)``.  Children are named
  ``s<shard>.<slot>``, so every message a child sends travels inside an
  :class:`~repro.runtime.effects.Envelope` tagged with its instance — the
  shard-tagged frames the transport multiplexes.  On the ``net`` engine
  this means many instances share one hub connection per node instead of
  one cluster per instance.

The multiplexer generalizes :class:`repro.apps.pipeline.SlotMultiplexer`
from slot keys to ``(shard, slot)`` keys; like it, an instance comes into
existence two ways — locally via :meth:`ShardMultiplexer.propose`, or
remotely when the first envelope for an unseen instance arrives, in which
case it is created *without* proposing (a lagging replica participating in
a round it has not reached).
"""

from __future__ import annotations

import zlib
from typing import Any, Callable

from ..codec.schema import instance_name, parse_instance
from ..runtime.composite import CompositeProtocol, Envelope
from ..runtime.effects import Decide, Deliver, Effect
from ..runtime.protocol import Protocol
from ..types import DecisionKind, ProcessId, SystemConfig, Value

__all__ = [
    "INSTANCE_DECIDED_TAG",
    "shard_of",
    "hub_of",
    "instance_name",
    "parse_instance",
    "ShardMultiplexer",
]

#: Upcall tag of a per-instance decision surfaced by the multiplexer.
INSTANCE_DECIDED_TAG = "shard-slot-decided"

#: builds the consensus instance for one ``(shard, slot)``:
#: ``(shard, slot, proposal) -> Protocol``.
ShardInstanceFactory = Callable[[int, int, Value], Protocol]


def shard_of(key: Any, shards: int) -> int:
    """The shard owning ``key`` — stable across processes and machines.

    ``crc32`` of the key's string form, reduced mod ``shards``; the builtin
    ``hash()`` is process-salted for strings and would split a forked
    cluster's keyspace inconsistently.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    return zlib.crc32(str(key).encode("utf-8")) % shards


def hub_of(shard: int, hubs: int) -> int:
    """The hub group owning ``shard`` in a parallel-hub mesh.

    Round-robin (``shard % hubs``): every hub carries the same number of
    shards (±1), and with one hub the answer is always hub 0 — the star
    topology is the degenerate case.  Nodes, hubs and the metrics layer
    must all agree on this mapping, so it lives here next to
    :func:`shard_of`.
    """
    if hubs < 1:
        raise ValueError("need at least one hub")
    if shard < 0:
        raise ValueError("shard must be non-negative")
    return shard % hubs


class ShardMultiplexer(CompositeProtocol):
    """Hosts one consensus child per ``(shard, slot)``, created lazily.

    Args:
        process_id: hosting replica.
        config: system parameters (shared by every instance).
        make_instance: per-instance consensus factory.
        shards: number of shards — instance keys outside ``[0, shards)``
            are rejected (Byzantine shard-number inflation guard).
        max_slots: ceiling on slot numbers (slot-number inflation guard).
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        make_instance: ShardInstanceFactory,
        shards: int,
        max_slots: int = 10_000,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        super().__init__(process_id, config)
        self._make_instance = make_instance
        self.shards = shards
        self._max_slots = max_slots
        self._proposed: set[tuple[int, int]] = set()
        self.decided: dict[tuple[int, int], tuple[Value, DecisionKind]] = {}

    # -- instance management ---------------------------------------------------------

    def _instance_of(self, component: str) -> tuple[int, int] | None:
        key = parse_instance(component)
        if key is None:
            return None
        shard, slot = key
        if not 0 <= shard < self.shards:
            return None  # Byzantine shard-number inflation guard
        if not 0 <= slot < self._max_slots:
            return None  # Byzantine slot-number inflation guard
        return key

    def _ensure(self, shard: int, slot: int) -> Protocol:
        name = instance_name(shard, slot)
        if name not in self._children:
            self.add_child(name, self._make_instance(shard, slot, None))
        return self.child(name)

    def propose(self, shard: int, slot: int, value: Value) -> list[Effect]:
        """Start this replica's participation in instance ``(shard, slot)``."""
        if (shard, slot) in self._proposed:
            return []
        self._proposed.add((shard, slot))
        name = instance_name(shard, slot)
        if name in self._children:
            node = self.child(name)
            node.proposal = value  # created lazily by a remote message
        else:
            node = self.add_child(name, self._make_instance(shard, slot, value))
        return self.child_call(name, node.on_start())

    # -- routing ---------------------------------------------------------------------

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if isinstance(payload, Envelope):
            key = self._instance_of(payload.component)
            if key is not None:
                self._ensure(*key)
        return super().on_message(sender, payload)

    def on_child_output(self, name: str, effect: Effect) -> list[Effect]:
        key = self._instance_of(name)
        if key is None or not isinstance(effect, Decide):
            return []
        if key in self.decided:
            return []
        self.decided[key] = (effect.value, effect.kind)
        shard, slot = key
        return [
            Deliver(
                INSTANCE_DECIDED_TAG,
                self.process_id,
                (shard, slot, effect.value, effect.kind),
            )
        ]
