"""The sharded replicated-state-machine service.

The paper's §1.1 motivation — replicated servers ordering client update
requests — at "heavy traffic" scale: the keyspace is split into shards,
each shard orders its own batched command log through consecutive DEX
instances, and *all* instances of *all* shards multiplex over one engine
(one hub connection per node on the socket engine).

Pieces:

* :func:`shard_workload` — a seeded client request stream with
  configurable key skew (``uniform`` or ``zipf``; skew drives contention,
  and contention drives the one-step rate) in open loop (arrivals paced by
  ``rate`` per slot-tick) or closed loop (everything enqueued up front);
* :class:`ShardNode` — one replica: a :class:`~repro.shard.router.
  ShardMultiplexer` of per-``(shard, slot)`` DEX instances, one
  :class:`~repro.shard.batcher.ShardBatcher` and one
  :class:`~repro.apps.rsm.KeyValueStore` per shard.  When a slot decides,
  the batch is applied, losers are re-proposed, and the next slot opens;
  when every shard drains, the replica emits its single top-level
  ``Decide`` whose value is the *digest* of all applied batches — so the
  engines' agreement check doubles as the cross-shard divergence check,
  even when replicas are forked OS processes whose stores the parent
  cannot inspect;
* :class:`ShardedService` — the frontend: builds the deployment (through
  the harness's :class:`~repro.harness.Deployment`), runs it on any
  engine, and folds the typed event stream into per-shard and aggregate
  throughput/latency/one-step-rate (see :mod:`repro.shard.metrics`).

Contention is modelled exactly like :mod:`repro.apps.rsm`, generalized per
``(shard, slot)``: with probability ``contention`` a slot has two competing
batches (head vs. shifted-by-one rival) and each replica independently saw
one of them first.  All coins are derived from arithmetic-integer seeds —
never from string hashes — so forked replicas flip identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..apps.rsm import Command, KeyValueStore
from ..conditions.frequency import FrequencyPair
from ..core.dex import DexConsensus
from ..durable.recovery import (
    MAX_CATCHUP_ENTRIES,
    MAX_CATCHUP_SLOT,
    CatchUpReply,
    CatchUpRequest,
    CatchUpTracker,
    DurabilityConfig,
    NodeDurability,
    RecoveredState,
    SlotDecided,
)
from ..engine.events import EventSink, combine
from ..engine.faults import Fault, FaultPlane, restart_plans
from ..errors import ConfigurationError
from ..harness import AlgorithmSpec, Deployment
from ..runtime.composite import CompositeProtocol, Envelope
from ..runtime.effects import Decide, Deliver, Effect, Send
from ..runtime.protocol import Protocol
from ..types import DecisionKind, ProcessId, SystemConfig, Value
from ..underlying.oracle import SERVICE_NAME, OracleConsensus, OracleService
from .batcher import ShardBatcher
from .metrics import ShardStreamSink
from .router import INSTANCE_DECIDED_TAG, ShardMultiplexer, parse_instance, shard_of

__all__ = [
    "shard_workload",
    "ShardNode",
    "ShardReport",
    "ShardedService",
    "dex_shard_factory",
]

#: Key-skew models of the workload generator.
SKEWS = ("uniform", "zipf")


def shard_workload(
    count: int,
    keyspace: int = 32,
    skew: str = "uniform",
    zipf_alpha: float = 1.2,
    rate: int | None = None,
    seed: int = 0,
) -> list[tuple[int, Command]]:
    """A reproducible client request stream: ``[(arrival_slot, command)]``.

    Args:
        count: number of ``set`` commands.
        keyspace: number of distinct keys (``k0`` … ``k<keyspace-1>``).
        skew: ``"uniform"`` — every key equally likely; ``"zipf"`` — key
            rank ``r`` drawn with weight ``1/r^alpha`` (hot keys
            concentrate traffic on few shards, the adverse case).
        zipf_alpha: zipf exponent (higher = more skewed).
        rate: open-loop arrival rate in commands per slot-tick; ``None``
            runs closed-loop (everything arrives at slot 0).
        seed: workload seed (independent of the engine seed).
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if keyspace < 1:
        raise ConfigurationError("need at least one key")
    if skew not in SKEWS:
        raise ConfigurationError(f"unknown skew {skew!r} (one of: {', '.join(SKEWS)})")
    if rate is not None and rate < 1:
        raise ConfigurationError("open-loop rate must be at least 1 per slot")
    rng = random.Random(seed * 7_919 + 11)
    keys = [f"k{i}" for i in range(keyspace)]
    weights = (
        [1.0 / (rank + 1) ** zipf_alpha for rank in range(keyspace)]
        if skew == "zipf"
        else None
    )
    stream: list[tuple[int, Command]] = []
    for j in range(count):
        arrival = 0 if rate is None else j // rate
        key = keys[rng.randrange(keyspace)] if weights is None else rng.choices(keys, weights)[0]
        stream.append((arrival, ("set", key, j)))
    return stream


# -- deterministic contention coins ---------------------------------------------------


def _slot_rng(seed: int, shard: int, slot: int, pid: int = -1) -> random.Random:
    """A PRNG keyed by ``(seed, shard, slot[, pid])`` via pure integer
    arithmetic — identical in every replica process regardless of
    ``PYTHONHASHSEED`` (tuple seeds with strings would be salted)."""
    key = ((seed + 1) * 1_000_003 + shard) * 1_000_003 + slot
    return random.Random(key * 1_000_003 + pid + 7)


def proposal_for(
    pid: ProcessId,
    shard: int,
    slot: int,
    batcher: ShardBatcher,
    contention: float,
    seed: int,
) -> tuple:
    """This replica's batch proposal for ``(shard, slot)``.

    With probability ``contention`` the slot is contended: two concurrent
    client submissions race, and each replica saw one of the two batches
    first (an independent fair coin per replica, so a random majority
    backs the head batch) — the multi-shard generalization of
    :meth:`repro.apps.rsm.ReplicatedStateMachine._slot_proposals`.
    """
    head = batcher.head_batch()
    rival = batcher.rival_batch()
    if (
        rival != head
        and contention > 0.0
        and _slot_rng(seed, shard, slot).random() < contention
    ):
        return head if _slot_rng(seed, shard, slot, pid).random() < 0.5 else rival
    return head


def dex_shard_factory(process_id: ProcessId, config: SystemConfig):
    """Per-``(shard, slot)`` DEX instances (frequency pair) over the shared
    oracle UC: each instance uses its own oracle instance key, so one
    :class:`~repro.underlying.oracle.OracleService` serves every shard."""
    pair = FrequencyPair(config.n, config.t)

    def make(shard: int, slot: int, proposal: Value) -> Protocol:
        return DexConsensus(
            process_id,
            config,
            pair,
            proposal,
            uc_factory=lambda pid, cfg, key=(shard, slot): OracleConsensus(
                pid, cfg, instance=key
            ),
        )

    return make


class ShardNode(CompositeProtocol):
    """One replica of the sharded service.

    Args:
        process_id: replica id.
        config: system parameters.
        shards: shard count.
        arrivals: the full client stream (``[(arrival_slot, command)]``);
            the node routes each command to its shard via
            :func:`~repro.shard.router.shard_of`.
        make_instance: per-``(shard, slot)`` consensus factory.
        max_batch, max_wait: batch bounds per shard (see
            :class:`~repro.shard.batcher.ShardBatcher`).
        contention: probability a slot has two competing batches.
        seed: contention-coin seed (must match across replicas).
        durability: optional :class:`~repro.durable.recovery.
            NodeDurability` — when present, every decided slot is
            committed to the WAL before the in-memory state advances,
            periodic snapshots bound replay, and ``on_start`` resumes
            from disk (then catches missed slots up from peers) instead
            of starting fresh.  ``None`` (the default) leaves the node
            byte-identical to the pre-durability behavior.
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        shards: int,
        arrivals: Sequence[tuple[int, Command]],
        make_instance,
        max_batch: int = 4,
        max_wait: int = 2,
        contention: float = 0.0,
        seed: int = 0,
        durability: NodeDurability | None = None,
    ) -> None:
        if not 0.0 <= contention <= 1.0:
            raise ConfigurationError("contention must be in [0, 1]")
        super().__init__(process_id, config)
        self.shards = shards
        self.contention = contention
        self.seed = seed
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.durability = durability
        self._mux = self.add_child(
            "mux", ShardMultiplexer(process_id, config, make_instance, shards)
        )
        self._batchers = {s: ShardBatcher(max_batch, max_wait) for s in range(shards)}
        self._arrivals: dict[int, list[tuple[int, Command]]] = {
            s: [] for s in range(shards)
        }
        for arrival, command in arrivals:
            self._arrivals[shard_of(command[1], shards)].append((arrival, command))
        self._slot = {s: 0 for s in range(shards)}
        self.stores = {s: KeyValueStore() for s in range(shards)}
        self.applied: dict[int, list[tuple]] = {s: [] for s in range(shards)}
        self._drained: set[int] = set()
        self._done = False
        # crash-recovery state: while ``_recovering`` the node adopts
        # peer-verified slots instead of proposing; ``_future`` buffers
        # decisions of its own instances that ran ahead of the frontier.
        self._recovering = False
        self._catchup: CatchUpTracker | None = None
        self._future: dict[tuple[int, int], tuple[Any, Any]] = {}
        # rejoin-race plumbing: peers with an outstanding catch-up request
        # (served again as new slots settle), the one-shot book of
        # ``SlotDecided`` notices already sent per (peer, shard, slot), and
        # the ``t + 1`` identical-batch vote count over received notices.
        self._rejoining: set[ProcessId] = set()
        self._decided_served: set[tuple[ProcessId, int, int]] = set()
        self._slot_votes: dict[tuple[int, int], dict[tuple, set[ProcessId]]] = {}

    # -- slot lifecycle --------------------------------------------------------------

    def _inject(self, shard: int) -> None:
        """Move every arrival due by the shard's current slot into its batcher."""
        now = self._slot[shard]
        pending = self._arrivals[shard]
        while pending and pending[0][0] <= now:
            _, command = pending.pop(0)
            self._batchers[shard].submit(command, now)

    def _open(self, shard: int) -> list[Effect]:
        """Open the shard's next slot — full batch, aged partial batch,
        heartbeat (empty batch, to advance the slot clock while traffic is
        still arriving), or nothing if the shard drained."""
        slot = self._slot[shard]
        self._inject(shard)
        batcher = self._batchers[shard]
        future = bool(self._arrivals[shard])
        if batcher.ready(slot) or (len(batcher) and not future):
            batch = proposal_for(
                self.process_id, shard, slot, batcher, self.contention, self.seed
            )
        elif len(batcher) or future:
            batch = ()  # heartbeat: ages the partial batch / awaits arrivals
        else:
            self._drained.add(shard)
            return self._maybe_finish()
        if self.durability is not None:
            self.durability.log_propose(shard, slot, batch)
        effects: list[Effect] = [
            self.log("shard.open", shard=shard, slot=slot, size=len(batch))
        ]
        effects.extend(self.child_call("mux", self._mux.propose(shard, slot, batch)))
        return effects

    def _maybe_finish(self) -> list[Effect]:
        if self._done or len(self._drained) < self.shards:
            return []
        self._done = True
        digest = tuple(
            (shard, tuple(self.applied[shard])) for shard in range(self.shards)
        )
        return [Decide(digest, DecisionKind.UNDERLYING)]

    def _apply(self, shard: int, batch: Any) -> int:
        """Apply one decided batch; returns the number of applied commands.
        Malformed (Byzantine-injected) entries are skipped, not applied."""
        applied = 0
        if not isinstance(batch, tuple):
            return 0
        for command in batch:
            if (
                isinstance(command, tuple)
                and len(command) == 3
                and command[0] == "set"
            ):
                self.stores[shard].apply(command)
                applied += 1
        return applied

    # -- protocol hooks --------------------------------------------------------------

    def on_start(self) -> list[Effect]:
        if self.durability is not None:
            recovered = self.durability.recover(self.shards)
            if recovered is not None:
                return self._resume_from(recovered)
        effects: list[Effect] = []
        for shard in range(self.shards):
            effects.extend(self._open(shard))
        return effects

    def on_child_output(self, name: str, effect: Effect) -> list[Effect]:
        if not (isinstance(effect, Deliver) and effect.tag == INSTANCE_DECIDED_TAG):
            return []
        shard, slot, batch, kind = effect.value
        if slot != self._slot[shard]:
            if slot > self._slot[shard]:
                # An own-instance decision ahead of the frontier.  With
                # durability that means this node fell behind (it was down
                # while peers kept deciding) — buffer it and make sure a
                # catch-up round is running to fill the gap.  Without, it
                # is transport reordering: a passive instance collected a
                # quorum for slot k+1 before slot k's decision landed
                # (independent per-hub jitter makes this routine on a
                # mesh).  Either way the instance decides exactly once, so
                # dropping the value would wedge the slot forever — buffer
                # it and let the advancing frontier settle it.
                self._future[(shard, slot)] = (batch, kind)
                effects = [
                    self.log("shard.future-decision", shard=shard, slot=slot)
                ]
                if self.durability is not None and not self._recovering:
                    effects.extend(self._enter_catchup())
                return effects
            return [self.log("shard.stale-decision", shard=shard, slot=slot)]
        return self._commit(shard, slot, batch, kind, effect)

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        """Node-level routing, plus the stale-envelope rejoin trigger.

        A consensus envelope addressed to an instance this replica has
        already settled means the *sender* is behind — its instance will
        never hear from ours again (it decided and went quiet), so without
        help the sender stalls.  Re-serve the decided slot once per
        (sender, shard, slot); an envelope at or past our frontier instead
        marks the sender caught up.
        """
        if self.durability is not None and isinstance(payload, Envelope):
            inner = payload.payload if payload.component == "mux" else None
            if isinstance(inner, Envelope):
                key = parse_instance(inner.component)
                if key is not None and 0 <= key[0] < self.shards:
                    shard, slot = key
                    if slot < self._slot[shard]:
                        effects = self._offer_decided(sender, shard, slot)
                        effects.extend(super().on_message(sender, payload))
                        return effects
                    self._rejoining.discard(sender)
        return super().on_message(sender, payload)

    def on_own_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if isinstance(payload, CatchUpRequest):
            return self._serve_catchup(sender, payload)
        if isinstance(payload, CatchUpReply):
            return self._absorb_catchup(sender, payload)
        if isinstance(payload, SlotDecided):
            return self._absorb_decided(sender, payload)
        return super().on_own_message(sender, payload)

    # -- decided-slot bookkeeping ----------------------------------------------------

    def _settle(self, shard: int, slot: int, batch: Any, kind_label: str) -> tuple:
        """Apply one decided slot and advance the frontier (persisting
        through the WAL first when durable); returns the safe batch.

        Arrivals due by ``slot`` are injected before the batch is
        acknowledged: a no-op on the proposing path (``_open`` already
        injected them) but essential when *adopting* peer-decided slots,
        so commands the peers batched are marked done rather than
        lingering as pending re-proposals.
        """
        safe_batch = batch if isinstance(batch, tuple) else ()
        self._slot_votes.pop((shard, slot), None)
        if self.durability is not None:
            self.durability.commit(shard, slot, safe_batch, kind_label)
        pending = self._arrivals[shard]
        while pending and pending[0][0] <= slot:
            _, command = pending.pop(0)
            self._batchers[shard].submit(command, slot)
        self._apply(shard, safe_batch)
        self.applied[shard].append(safe_batch)
        self._batchers[shard].acknowledge(safe_batch, now=slot + 1)
        self._slot[shard] = slot + 1
        if self.durability is not None:
            self.durability.maybe_snapshot(
                self._slot,
                self.applied,
                {s: store.data for s, store in self.stores.items()},
            )
        return safe_batch

    def _commit(
        self, shard: int, slot: int, batch: Any, kind: Any, effect: Effect
    ) -> list[Effect]:
        """A frontier decision from this node's own consensus instance."""
        safe_batch = self._settle(shard, slot, batch, kind.value)
        effects: list[Effect] = [effect]  # re-surface for the runner's outputs
        effects.append(
            self.log(
                "shard.decide",
                shard=shard,
                slot=slot,
                kind=kind.value,
                size=len(safe_batch),
            )
        )
        effects.extend(self._notify_rejoining(shard, slot))
        effects.extend(self._drain_future(shard))
        if not self._recovering:
            effects.extend(self._open(shard))
        return effects

    def _drain_future(self, shard: int) -> list[Effect]:
        """Settle buffered ahead-of-frontier decisions that the advancing
        frontier has reached (logged as recovery slots — this node never
        opened them after its restart)."""
        effects: list[Effect] = []
        while True:
            entry = self._future.pop((shard, self._slot[shard]), None)
            if entry is None:
                return effects
            batch, kind = entry
            slot = self._slot[shard]
            safe_batch = self._settle(shard, slot, batch, kind.value)
            effects.append(
                self.log("recovery.slot", shard=shard, slot=slot, size=len(safe_batch))
            )

    # -- crash recovery: replay ------------------------------------------------------

    def _resume_from(self, recovered: RecoveredState) -> list[Effect]:
        """Rebuild the in-memory state from disk, then catch up from peers.

        The batcher replay interleaves arrival injection and decided-batch
        acknowledgement slot by slot — the same order the live path runs
        them — so the rebuilt pending queue equals the pre-crash one.
        """
        for shard in range(self.shards):
            slot = recovered.slots.get(shard, 0)
            batches = recovered.applied.get(shard, [])
            batcher = self._batchers[shard]
            pending = self._arrivals[shard]
            for s in range(slot):
                while pending and pending[0][0] <= s:
                    _, command = pending.pop(0)
                    batcher.submit(command, s)
                batch = batches[s] if s < len(batches) else ()
                safe_batch = batch if isinstance(batch, tuple) else ()
                self._apply(shard, safe_batch)
                self.applied[shard].append(safe_batch)
                batcher.acknowledge(safe_batch, now=s + 1)
            self._slot[shard] = slot
        effects: list[Effect] = [
            self.log(
                "recovery.replayed",
                slots=dict(self._slot),
                records=recovered.replayed_records,
                snapshot=recovered.from_snapshot,
                truncated=recovered.truncated_bytes,
            )
        ]
        effects.extend(self._enter_catchup())
        return effects

    # -- crash recovery: peer catch-up ----------------------------------------------

    def _enter_catchup(self) -> list[Effect]:
        """Start (or restart) a catch-up round: broadcast our frontier and
        stop proposing until peers confirm nothing decided past it."""
        self._recovering = True
        if self._catchup is None:
            self._catchup = CatchUpTracker(self.config.t + 1)
        round_no = self._catchup.new_round()
        frontier = tuple((s, self._slot[s]) for s in range(self.shards))
        request = CatchUpRequest(round_no, frontier)
        effects: list[Effect] = [
            self.log("recovery.catchup-round", round=round_no, frontier=frontier)
        ]
        effects.extend(
            Send(dst, request)
            for dst in self.config.processes
            if dst != self.process_id
        )
        return effects

    def _serve_catchup(self, sender: ProcessId, request: CatchUpRequest) -> list[Effect]:
        """Answer a recovering peer: every applied batch past its frontier
        (capped), plus our own frontier so it knows when it is current.

        The sender is also marked rejoining: slots that settle *after* this
        reply — the window between its catch-up rounds — are pushed to it
        unsolicited as :class:`~repro.durable.recovery.SlotDecided`."""
        self._rejoining.add(sender)
        wanted: dict[int, int] = {}
        frontier = request.frontier if isinstance(request.frontier, tuple) else ()
        for pair in frontier[: self.shards * 2]:
            if (
                isinstance(pair, tuple)
                and len(pair) == 2
                and isinstance(pair[0], int)
                and isinstance(pair[1], int)
            ):
                wanted[pair[0]] = max(pair[1], 0)
        entries: list[tuple[int, int, tuple]] = []
        for shard in range(self.shards):
            history = self.applied[shard]
            for slot in range(min(wanted.get(shard, 0), len(history)), len(history)):
                if len(entries) >= MAX_CATCHUP_ENTRIES:
                    break
                entries.append((shard, slot, history[slot]))
        reply = CatchUpReply(
            request.round,
            tuple(entries),
            tuple((s, len(self.applied[s])) for s in range(self.shards)),
        )
        return [
            self.log("recovery.served", peer=sender, entries=len(entries)),
            Send(sender, reply),
        ]

    def _absorb_catchup(self, sender: ProcessId, reply: CatchUpReply) -> list[Effect]:
        """Fold one catch-up reply in; adopt every slot ``t + 1`` distinct
        peers vouch for, finish once a quorum confirms our frontier."""
        if not self._recovering or self._catchup is None:
            return []
        if not self._catchup.absorb(sender, reply):
            return []
        effects: list[Effect] = []
        progressed = True
        while progressed:
            progressed = False
            for shard in range(self.shards):
                key = (shard, self._slot[shard])
                buffered = self._future.pop(key, None)
                if buffered is not None:
                    batch, kind = buffered
                    safe = self._settle(shard, key[1], batch, kind.value)
                else:
                    batch = self._catchup.verified(shard, key[1])
                    if batch is None:
                        continue
                    safe = self._settle(shard, key[1], batch, "catchup")
                effects.append(
                    self.log("recovery.slot", shard=shard, slot=key[1], size=len(safe))
                )
                progressed = True
        threshold = self.config.t + 1
        if self._catchup.replies >= threshold and self._catchup.frontier_reached(
            self._slot
        ):
            effects.extend(self._finish_catchup())
        elif self._catchup.replies >= self.config.n - 1 - self.config.t:
            # Every reply a full round can guarantee is in and we are
            # still behind some reported frontier: ask again.
            effects.extend(self._enter_catchup())
        return effects

    def _finish_catchup(self) -> list[Effect]:
        """Frontier verified against a quorum: resume proposing."""
        self._recovering = False
        effects: list[Effect] = [
            self.log(
                "recovery.caught_up",
                slots=dict(self._slot),
                rounds=self._catchup.round if self._catchup else 0,
            )
        ]
        for shard in range(self.shards):
            effects.extend(self._open(shard))
        return effects

    # -- crash recovery: re-serving decided slots -------------------------------------

    def _offer_decided(self, peer: ProcessId, shard: int, slot: int) -> list[Effect]:
        """Push one already-decided slot to a lagging peer, at most once
        per (peer, shard, slot) — the peer adopts it only under the same
        ``t + 1`` identical-batch rule as catch-up replies."""
        if (
            peer == self.process_id
            or peer not in self.config.processes
            or (peer, shard, slot) in self._decided_served
        ):
            return []
        history = self.applied[shard]
        if slot >= len(history):
            return []
        self._decided_served.add((peer, shard, slot))
        return [
            self.log("recovery.re_served", peer=peer, shard=shard, slot=slot),
            Send(peer, SlotDecided(shard, slot, history[slot])),
        ]

    def _notify_rejoining(self, shard: int, slot: int) -> list[Effect]:
        """A slot just settled while peers have catch-up requests
        outstanding: push it to each of them, closing the race where the
        decision lands *between* their catch-up rounds."""
        effects: list[Effect] = []
        for peer in sorted(self._rejoining):
            effects.extend(self._offer_decided(peer, shard, slot))
        return effects

    def _absorb_decided(self, sender: ProcessId, notice: SlotDecided) -> list[Effect]:
        """Count one unsolicited decided-slot notice; adopt at ``t + 1``.

        Validation mirrors :meth:`CatchUpTracker.absorb` — the notice may
        be Byzantine, so shard and slot numbers are range-checked and a
        single sender can never carry a batch over the threshold.  Only
        frontier slots settle; votes for slots further ahead wait until
        the frontier reaches them.
        """
        shard, slot, batch = notice.shard, notice.slot, notice.batch
        if not (
            isinstance(shard, int)
            and isinstance(slot, int)
            and 0 <= shard < self.shards
            and 0 <= slot < MAX_CATCHUP_SLOT
            and isinstance(batch, tuple)
        ):
            return []
        if slot < self._slot[shard]:
            return []  # old news: already settled here
        voters = self._slot_votes.setdefault((shard, slot), {}).setdefault(
            batch, set()
        )
        voters.add(sender)
        threshold = self.config.t + 1
        effects: list[Effect] = []
        while True:
            frontier = (shard, self._slot[shard])
            adopted = None
            for candidate, votes in self._slot_votes.get(frontier, {}).items():
                if len(votes) >= threshold:
                    adopted = candidate
                    break
            if adopted is None:
                break
            safe = self._settle(shard, frontier[1], adopted, "catchup")
            effects.append(
                self.log(
                    "recovery.slot", shard=shard, slot=frontier[1], size=len(safe)
                )
            )
        if effects and not self._recovering:
            effects.extend(self._drain_future(shard))
            effects.extend(self._open(shard))
        return effects


@dataclass
class ShardReport:
    """Outcome of one sharded-service run.

    ``digest`` is the agreed value — per shard, the ordered tuple of
    applied batches — from which ``states`` is reconstructed by replay, so
    the report is identical no matter which engine (in-memory or forked
    processes) produced it.
    """

    shards: int
    engine: str
    commands: int
    slots: int
    duration: float
    digest: tuple | None
    divergence: bool
    per_shard: list[dict[str, Any]]
    aggregate: dict[str, Any]
    states: dict[int, dict[str, int]] = field(default_factory=dict)
    result: Any = None

    @property
    def throughput(self) -> float:
        """Applied commands per time unit (virtual on sim, wall on net)."""
        return self.commands / self.duration if self.duration else 0.0


class ShardedService:
    """Frontend: run a client stream through the sharded consensus service.

    Args:
        n: replica count.
        t: failure bound (default: the frequency pair's max, ``(n-1)//6``).
        shards: shard count.
        max_batch, max_wait: per-shard batch bounds.
        contention: per-slot contention probability.
        skew: key skew of the workload (``uniform`` / ``zipf``).
        zipf_alpha: zipf exponent when ``skew == "zipf"``.
        keyspace: distinct keys in the workload.
        rate: open-loop arrivals per slot tick (``None`` = closed loop).
        faults: fault spec per faulty replica (validated by the
            :class:`~repro.engine.faults.FaultPlane`, as everywhere).
        seed: master seed — engine scheduling, workload and contention
            coins all derive from it.
        engine: any of the harness engines (``sim``/``asyncio``/``net``…).
        uc_step_cost: causal step cost of the oracle UC (feeds the
            per-slot step accounting of the metrics).
        net_jitter: hub jitter model on the socket engine
            (``"uniform"`` or ``"lognormal"``).
        codec: payload codec on the socket engine and for durable records
            (``"binary"`` — the struct-packed default — ``"pickle"`` or
            ``"json"``).
        event_sink: optional extra sink receiving the run's event stream.
        durability: optional :class:`~repro.durable.recovery.
            DurabilityConfig` — every replica persists proposals and
            decisions through a per-node WAL under ``durability.root``,
            and :class:`~repro.engine.faults.CrashRecover` faults restart
            the killed replica from its on-disk state (sim and net
            engines only).
    """

    def __init__(
        self,
        n: int = 7,
        t: int | None = None,
        shards: int = 2,
        max_batch: int = 4,
        max_wait: int = 2,
        contention: float = 0.0,
        skew: str = "uniform",
        zipf_alpha: float = 1.2,
        keyspace: int = 32,
        rate: int | None = None,
        faults: Mapping[ProcessId, Fault] | None = None,
        seed: int = 0,
        engine: str = "sim",
        uc_step_cost: int = 2,
        net_jitter: str = "uniform",
        codec: str = "binary",
        event_sink: EventSink | None = None,
        durability: DurabilityConfig | None = None,
        mesh: Any = None,
    ) -> None:
        self.config = SystemConfig(n, t if t is not None else max((n - 1) // 6, 0))
        if not self.config.satisfies(6):
            raise ConfigurationError(
                f"the sharded service deploys DEX (frequency pair): needs "
                f"n > 6t, got n={n}, t={self.config.t}"
            )
        self.shards = shards
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.contention = contention
        self.skew = skew
        self.zipf_alpha = zipf_alpha
        self.keyspace = keyspace
        self.rate = rate
        self.seed = seed
        self.engine = engine
        self.uc_step_cost = uc_step_cost
        self.net_jitter = net_jitter
        self.codec = codec
        self.event_sink = event_sink
        self.durability = durability
        #: optional :class:`~repro.mesh.topology.MeshTopology` — parallel
        #: hub groups on the socket engine; in-memory engines ignore it.
        self.mesh = mesh
        self._plane = FaultPlane(
            self.config, faults, failure_model="byzantine", algorithm_name="shard-dex"
        )

    #: minimal spec handed to fault builders (garbage templates and names).
    _SPEC = AlgorithmSpec(name="shard-dex", make=lambda *a: None, required_ratio=6)

    def _make_node(
        self, pid: ProcessId, arrivals: Sequence[tuple[int, Command]]
    ) -> ShardNode:
        """Build one replica; a fresh :class:`~repro.durable.recovery.
        NodeDurability` per call, so restart factories re-open (and
        replay) the node's on-disk state instead of sharing handles."""
        return ShardNode(
            pid,
            self.config,
            self.shards,
            arrivals,
            dex_shard_factory(pid, self.config),
            max_batch=self.max_batch,
            max_wait=self.max_wait,
            contention=self.contention,
            seed=self.seed,
            durability=(
                self.durability.node(pid) if self.durability is not None else None
            ),
        )

    def deployment(
        self, arrivals: Sequence[tuple[int, Command]], sink: EventSink | None
    ) -> Deployment:
        """The engine-agnostic deployment: one :class:`ShardNode` per
        replica (faulty ones wrapped by the plane) plus the shared oracle.
        Replicas under a :class:`~repro.engine.faults.CrashRecover` fault
        with a ``restart_after`` get a restart plan and are *not* counted
        faulty — the engines await their (post-recovery) decisions."""
        services = {
            SERVICE_NAME: OracleService(self.config, step_cost=self.uc_step_cost)
        }
        protocols: dict[ProcessId, Protocol] = {}
        for pid in self.config.processes:
            make_honest = lambda value, pid=pid: self._make_node(  # noqa: E731
                pid, arrivals
            )
            protocols[pid] = self._plane.build(pid, make_honest, None, self._SPEC)
        restarts = restart_plans(
            self._plane,
            lambda pid: lambda: self._make_node(pid, arrivals),
        )
        self._plane.announce(sink)
        return Deployment(
            config=self.config,
            protocols=protocols,
            services=services,
            faulty=frozenset(self._plane.faults) - self._plane.recovering(),
            seed=self.seed,
            event_sink=sink,
            net_jitter=self.net_jitter,
            codec=self.codec,
            restarts=restarts,
            durability=self.durability,
            mesh=self.mesh,
            shards=self.shards,
        )

    def run(self, count: int = 16, timeout: float = 30.0) -> ShardReport:
        """Generate the workload, run it on the configured engine, and
        assemble the per-shard/aggregate report."""
        arrivals = shard_workload(
            count,
            keyspace=self.keyspace,
            skew=self.skew,
            zipf_alpha=self.zipf_alpha,
            rate=self.rate,
            seed=self.seed,
        )
        return self.run_stream(arrivals, timeout=timeout)

    def run_stream(
        self, arrivals: Sequence[tuple[int, Command]], timeout: float = 30.0
    ) -> ShardReport:
        """Run an explicit client stream (``[(arrival_slot, command)]``)
        through the service — the entry point the admission-controlled
        frontend (:mod:`repro.frontend`) feeds with whatever the queues
        accepted, as opposed to :meth:`run`'s self-generated workload."""
        shard_sink = ShardStreamSink(
            self.shards,
            uc_step_cost=self.uc_step_cost,
            hubs=getattr(self.mesh, "hubs", 1) if self.mesh is not None else 1,
        )
        sink = combine(shard_sink, self.event_sink)
        deployment = self.deployment(arrivals, sink)
        if self.engine == "net":
            from ..net.faults import plan_from_plane

            result = deployment.run_net(
                timeout=timeout, link_plan=plan_from_plane(self._plane)
            )
        elif self.engine == "asyncio":
            result = deployment.run_async(timeout=timeout)
        else:
            result = deployment.run(self.engine)
        divergence = not result.agreement_holds() or not result.correct_decisions
        undecided = [
            pid
            for pid in self.config.processes
            if pid not in deployment.faulty and pid not in result.correct_decisions
        ]
        if undecided:
            divergence = True
        digest = result.decided_value if result.correct_decisions else None
        duration = getattr(result, "wall_seconds", None) or result.end_time
        commands, slots, states = 0, 0, {}
        if digest is not None and not divergence:
            for shard, batches in digest:
                store = KeyValueStore()
                for batch in batches:
                    for command in batch:
                        store.apply(command)
                states[shard] = dict(store.data)
                commands += sum(len(batch) for batch in batches)
                slots += len(batches)
        per_shard, aggregate = shard_sink.report(
            commands_by_shard=(
                {
                    shard: sum(len(batch) for batch in batches)
                    for shard, batches in digest
                }
                if digest is not None and not divergence
                else None
            ),
            duration=duration,
        )
        return ShardReport(
            shards=self.shards,
            engine=self.engine,
            commands=commands,
            slots=slots,
            duration=duration,
            digest=digest,
            divergence=divergence,
            per_shard=per_shard,
            aggregate=aggregate,
            states=states,
            result=result,
        )
