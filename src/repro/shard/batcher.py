"""Per-shard proposal batching: size- and time-bounded.

Generalizes the per-slot queue of :mod:`repro.apps.rsm` to the multi-shard
case.  Each shard owns one :class:`ShardBatcher`; a consensus slot decides
a whole *batch* of client commands, so the ordering cost of one instance is
amortized over up to ``max_batch`` commands.

The two bounds:

* **size** — a batch closes as soon as ``max_batch`` commands are queued;
* **time** — a partial batch closes after waiting ``max_wait`` slots, so a
  trickle of traffic is never starved behind the size bound.  Time is
  measured in slot numbers (the shard's logical clock): the service opens
  heartbeat slots while a partial batch ages, which both advances the
  clock and keeps the replicas' views aligned.

Commands leave the queue only when *decided* (:meth:`acknowledge`): a
contended slot decides one of two competing batches, and the losers stay
queued to be re-proposed in later slots — exactly the fairness story of
``apps/rsm.py``, per shard.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

__all__ = ["ShardBatcher"]

#: A batch proposal: an ordered tuple of commands (hashable, so consensus
#: can decide it like any other value).
Batch = tuple


class ShardBatcher:
    """One shard's pending-command queue with batch formation rules.

    Args:
        max_batch: size bound — a full batch closes immediately.
        max_wait: time bound in slots — a partial batch closes once it has
            waited this many slots (0 = never wait, always propose what is
            there).
    """

    def __init__(self, max_batch: int = 4, max_wait: int = 2) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._queue: list[Hashable] = []
        self._waiting_since: int | None = None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def pending(self) -> tuple:
        """The queued commands, in arrival order (read-only view)."""
        return tuple(self._queue)

    def submit(self, command: Hashable, now: int) -> None:
        """Queue one client command at slot-time ``now``."""
        if not self._queue:
            self._waiting_since = now
        self._queue.append(command)

    def ready(self, now: int) -> bool:
        """Whether a batch should close at slot-time ``now``."""
        if len(self._queue) >= self.max_batch:
            return True
        if not self._queue:
            return False
        assert self._waiting_since is not None
        return now - self._waiting_since >= self.max_wait

    def head_batch(self) -> Batch:
        """The batch this replica proposes: the queue head."""
        return tuple(self._queue[: self.max_batch])

    def rival_batch(self) -> Batch:
        """The competing batch of a contended slot: shifted by one command,
        modelling replicas that saw a concurrent submission first."""
        if len(self._queue) < 2:
            return self.head_batch()
        return tuple(self._queue[1 : self.max_batch + 1])

    def acknowledge(self, decided: Iterable[Hashable] | Sequence, now: int) -> None:
        """Remove the decided commands; losers stay queued for re-proposal.

        Args:
            decided: the batch consensus decided (possibly a rival batch,
                possibly containing foreign commands this replica never
                queued — those are ignored).
            now: the slot-time the decision landed; restarts the wait clock
                of whatever remains queued — but only when the decision
                actually consumed commands.  An empty (heartbeat) decision
                leaves the clock running: heartbeat slots exist to *age*
                a partial batch toward the time bound, so resetting on
                them would starve a trickle of traffic forever.
        """
        remaining = list(self._queue)
        for command in decided:
            try:
                remaining.remove(command)
            except ValueError:
                pass  # decided but never queued here (Byzantine injection)
        if not remaining:
            self._waiting_since = None
        elif len(remaining) != len(self._queue):
            self._waiting_since = now
        self._queue = remaining
