"""Per-shard and aggregate metrics folded from the typed event stream.

The sharded service never inspects engine internals: everything here is
computed from the cross-engine event stream (:mod:`repro.engine.events`),
so the same collector works whether the replicas are simulator callbacks
or forked OS processes behind the socket hub.

Attribution works through the message envelopes themselves: every frame a
consensus instance sends travels inside an ``Envelope`` chain ending in an
instance component ``s<shard>.<slot>`` (see :mod:`repro.shard.router`), so
sends and delivers can be charged to their shard by unwrapping envelopes —
no side channel needed.  Slot timing comes from the ``shard.open`` /
``shard.decide`` log records each replica emits: their time delta is the
*per-slot* decision latency, which sidesteps the fact that causal ``step``
depth accumulates across chained slots (slot 17's decision rides on the
message chain of slots 0..16, so its raw ``DecideEvent.step`` is useless).
Per-slot step counts are instead derived from the decision *kind*:
one-step/fast = 1, two-step = 2, underlying = 2 + the UC's step cost.

Everything folds into :class:`~repro.metrics.collectors.StreamAggregate`
instances — one per shard plus one aggregate — whose summaries feed
``BENCH_shard.json`` and experiment E19.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from ..engine.events import (
    DeliverEvent,
    EventSink,
    EventStats,
    LogEvent,
    RunEvent,
    SendEvent,
    ServiceEvent,
)
from ..metrics.collectors import StreamAggregate
from ..runtime.composite import Envelope
from ..types import DecisionKind
from .router import hub_of, parse_instance

__all__ = ["step_of_kind", "ShardStreamSink"]

#: shard key for traffic that cannot be attributed to any instance
#: (top-level control messages, foreign envelopes).
UNATTRIBUTED = -1


def step_of_kind(kind: DecisionKind, uc_step_cost: int = 2) -> int:
    """Communication steps one slot's decision took, by decision kind.

    The causal ``step`` depth on a :class:`~repro.engine.events.DecideEvent`
    accumulates across chained slots, so per-slot accounting derives the
    step count from the kind instead: the expedited paths decide in one
    step, the plain two-step path in two, and falling back to the
    underlying consensus costs the two dissemination steps plus the UC.
    """
    if kind in (DecisionKind.ONE_STEP, DecisionKind.FAST):
        return 1
    if kind is DecisionKind.TWO_STEP:
        return 2
    return 2 + uc_step_cost


class ShardStreamSink(EventSink):
    """Folds a sharded run's event stream into per-shard aggregates.

    Attach as (part of) the run's event sink; afterwards :meth:`fold`
    yields one :class:`~repro.metrics.collectors.StreamAggregate` per
    shard plus the aggregate, each instance ``(shard, slot)`` counted as
    one "run" of that shard's log.
    """

    def __init__(self, shards: int, uc_step_cost: int = 2, hubs: int = 1) -> None:
        self.shards = shards
        self.uc_step_cost = uc_step_cost
        #: hub groups of the transport (mesh runs); per-shard rows carry
        #: the owning hub and the summary a per-hub rollup, so a report
        #: shows how the load *should* split across hubs.
        self.hubs = hubs
        self.sends: Counter = Counter()
        self.delivers: Counter = Counter()
        self.service_calls: Counter = Counter()
        #: ``(pid, shard, slot) -> open time`` from ``shard.open`` records.
        self.opens: dict[tuple[Any, int, int], float] = {}
        #: ``(pid, shard, slot) -> (decide time, kind)`` from ``shard.decide``.
        self.decides: dict[tuple[Any, int, int], tuple[float, DecisionKind]] = {}

    # -- attribution -------------------------------------------------------------------

    def _shard_of_payload(self, payload: Any) -> int:
        """Charge a message to its shard by unwrapping its envelope chain
        (``Envelope("mux", Envelope("s<shard>.<slot>", …))``)."""
        seen = 0
        while isinstance(payload, Envelope) and seen < 8:
            key = parse_instance(payload.component)
            if key is not None and 0 <= key[0] < self.shards:
                return key[0]
            payload = payload.payload
            seen += 1
        return UNATTRIBUTED

    def _shard_of_service(self, payload: Any) -> int:
        instance = getattr(payload, "instance", None)
        if (
            isinstance(instance, tuple)
            and len(instance) == 2
            and isinstance(instance[0], int)
            and 0 <= instance[0] < self.shards
        ):
            return instance[0]
        return UNATTRIBUTED

    # -- sink --------------------------------------------------------------------------

    def emit(self, event: RunEvent) -> None:
        if isinstance(event, SendEvent):
            self.sends[self._shard_of_payload(event.payload)] += 1
        elif isinstance(event, DeliverEvent):
            self.delivers[self._shard_of_payload(event.payload)] += 1
        elif isinstance(event, ServiceEvent):
            self.service_calls[self._shard_of_service(event.payload)] += 1
        elif isinstance(event, LogEvent) and event.event in (
            "shard.open",
            "shard.decide",
        ):
            data = event.data
            key = (event.pid, int(data["shard"]), int(data["slot"]))
            if event.event == "shard.open":
                self.opens.setdefault(key, event.time)
            else:
                self.decides.setdefault(
                    key, (event.time, DecisionKind(data["kind"]))
                )

    # -- folding -----------------------------------------------------------------------

    def fold(self) -> tuple[dict[int, StreamAggregate], StreamAggregate]:
        """Fold the stream: ``(per-shard aggregates, overall aggregate)``.

        Each decided instance contributes one synthetic
        :class:`~repro.engine.events.EventStats` — per replica a per-slot
        step count (:func:`step_of_kind`) and a per-slot latency (decide
        time minus that replica's open time) — folded into its shard's
        aggregate and the overall one.  Message counters are then assigned
        from the envelope attribution.
        """
        per_shard = {s: StreamAggregate(label=f"shard{s}") for s in range(self.shards)}
        overall = StreamAggregate(label="aggregate")
        instances: dict[tuple[int, int], dict[Any, tuple[float, DecisionKind]]] = {}
        for (pid, shard, slot), outcome in self.decides.items():
            instances.setdefault((shard, slot), {})[pid] = outcome
        for (shard, slot), outcomes in sorted(instances.items()):
            stats = EventStats()
            for pid, (decided_at, kind) in outcomes.items():
                opened_at = self.opens.get((pid, shard, slot))
                stats.decide_steps[pid] = step_of_kind(kind, self.uc_step_cost)
                stats.decide_times[pid] = (
                    decided_at - opened_at if opened_at is not None else decided_at
                )
                stats.decide_kinds[kind] = stats.decide_kinds.get(kind, 0) + 1
            per_shard[shard].add_stats(stats)
            overall.add_stats(stats)
        for shard in range(self.shards):
            per_shard[shard].sends = self.sends.get(shard, 0)
            per_shard[shard].delivers = self.delivers.get(shard, 0)
            per_shard[shard].service_calls = self.service_calls.get(shard, 0)
        overall.sends = sum(self.sends.values())
        overall.delivers = sum(self.delivers.values())
        overall.service_calls = sum(self.service_calls.values())
        return per_shard, overall

    def report(
        self,
        commands_by_shard: dict[int, int] | None = None,
        duration: float | None = None,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Summary rows: one dict per shard plus the aggregate dict.

        Args:
            commands_by_shard: applied-command counts (from the agreed
                digest); enables commands-per-duration throughput.
            duration: the run's duration in engine time units (virtual on
                the simulator, wall seconds on asyncio/net).
        """
        per_shard, overall = self.fold()
        rows: list[dict[str, Any]] = []
        total_commands = 0
        for shard in range(self.shards):
            aggregate = per_shard[shard]
            commands = (commands_by_shard or {}).get(shard, 0)
            total_commands += commands
            row = {
                "shard": shard,
                "hub": hub_of(shard, self.hubs),
                "slots": aggregate.runs,
                "commands": commands,
                "throughput_cmds": (
                    round(commands / duration, 3) if duration else 0.0
                ),
                **aggregate.summary(),
            }
            rows.append(row)
        per_hub: dict[int, dict[str, int]] = {
            hub: {"shards": 0, "commands": 0, "slots": 0}
            for hub in range(self.hubs)
        }
        for row in rows:
            bucket = per_hub[row["hub"]]
            bucket["shards"] += 1
            bucket["commands"] += row["commands"]
            bucket["slots"] += row["slots"]
        summary = {
            "shards": self.shards,
            "hubs": self.hubs,
            "slots": overall.runs,
            "commands": total_commands,
            "throughput_cmds": (
                round(total_commands / duration, 3) if duration else 0.0
            ),
            "duration": round(duration, 6) if duration else 0.0,
            "per_hub": {str(hub): counts for hub, counts in per_hub.items()},
            **overall.summary(),
        }
        return rows, summary
