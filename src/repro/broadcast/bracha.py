"""Bracha's reliable broadcast (``n > 3t``) — substrate of the real
underlying consensus.

The paper's underlying consensus is an abstraction; our concrete
implementation (:mod:`repro.underlying`) follows the classic signature-free
stack, whose bottom layer is Bracha's 1987 reliable broadcast:

1. sender broadcasts ``(init, m)``;
2. on the first ``(init, m)`` from ``j``: broadcast ``(echo, j, m)``;
3. on ``(echo, j, m)`` from more than ``(n + t) / 2`` distinct processes:
   broadcast ``(ready, j, m)`` (once per origin);
4. on ``(ready, j, m)`` from ``t + 1`` distinct processes: broadcast the
   ready too (amplification, once per origin);
5. on ``(ready, j, m)`` from ``2t + 1`` distinct processes: deliver ``m``
   from ``j`` (once per origin).

Guarantees (standard): validity, agreement on the delivered message per
origin, and *totality* — if one correct process delivers, all do.  Compared
with IDB it is stronger (totality) and cheaper in resilience (``n > 3t``
vs ``n > 4t``) but costs three plain steps instead of two; DEX uses IDB
precisely because two steps is what the double-expedition needs.

Deliveries surface as ``Deliver(tag="rbc-deliver", sender=origin,
value=m)``.  Instances are tagged so that protocols can run many RBCs
side by side (ACS runs ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ResilienceError
from ..runtime.effects import Broadcast, Deliver, Effect
from ..runtime.protocol import Protocol
from ..types import ProcessId, SystemConfig, Value

DELIVER_TAG = "rbc-deliver"


@dataclass(frozen=True, slots=True)
class RbcInit:
    value: Value


@dataclass(frozen=True, slots=True)
class RbcEcho:
    value: Value
    origin: ProcessId


@dataclass(frozen=True, slots=True)
class RbcReady:
    value: Value
    origin: ProcessId


class BrachaBroadcast(Protocol):
    """One endpoint of Bracha reliable broadcast, all origins multiplexed.

    Args:
        process_id: hosting process.
        config: must satisfy ``n > 3t``.
        initial_value: when set, broadcast it at start (standalone use).
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        initial_value: Value | None = None,
    ) -> None:
        if not config.satisfies(3):
            raise ResilienceError("BrachaBroadcast", config.n, config.t, "n > 3t")
        super().__init__(process_id, config)
        self.initial_value = initial_value
        self._echoed: set[ProcessId] = set()
        self._readied: set[ProcessId] = set()
        self._delivered: set[ProcessId] = set()
        self._echo_from: dict[tuple[ProcessId, Value], set[ProcessId]] = {}
        self._ready_from: dict[tuple[ProcessId, Value], set[ProcessId]] = {}

    @property
    def echo_quorum(self) -> int:
        """Strictly more than ``(n + t) / 2`` echoes."""
        return (self.n + self.t) // 2 + 1

    def rbc_send(self, value: Value) -> list[Effect]:
        """Reliably broadcast ``value`` from this process."""
        return [Broadcast(RbcInit(value))]

    def on_start(self) -> list[Effect]:
        if self.initial_value is None:
            return []
        return self.rbc_send(self.initial_value)

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if isinstance(payload, RbcInit):
            return self._on_init(sender, payload)
        if isinstance(payload, RbcEcho):
            return self._on_echo(sender, payload)
        if isinstance(payload, RbcReady):
            return self._on_ready(sender, payload)
        return [self.log("rbc-ignored", sender=sender, payload=repr(payload))]

    def _on_init(self, sender: ProcessId, message: RbcInit) -> list[Effect]:
        if sender in self._echoed:
            return []
        self._echoed.add(sender)
        return [Broadcast(RbcEcho(message.value, sender))]

    def _on_echo(self, sender: ProcessId, message: RbcEcho) -> list[Effect]:
        key = (message.origin, message.value)
        echoes = self._echo_from.setdefault(key, set())
        echoes.add(sender)
        if len(echoes) >= self.echo_quorum and message.origin not in self._readied:
            self._readied.add(message.origin)
            return [Broadcast(RbcReady(message.value, message.origin))]
        return []

    def _on_ready(self, sender: ProcessId, message: RbcReady) -> list[Effect]:
        key = (message.origin, message.value)
        readies = self._ready_from.setdefault(key, set())
        readies.add(sender)
        effects: list[Effect] = []
        if len(readies) >= self.t + 1 and message.origin not in self._readied:
            self._readied.add(message.origin)
            effects.append(Broadcast(RbcReady(message.value, message.origin)))
        if len(readies) >= 2 * self.t + 1 and message.origin not in self._delivered:
            self._delivered.add(message.origin)
            effects.append(Deliver(DELIVER_TAG, message.origin, message.value))
        return effects

    @property
    def delivered_origins(self) -> frozenset[ProcessId]:
        """Origins whose broadcast this process has delivered."""
        return frozenset(self._delivered)
