"""Broadcast primitives: Identical Broadcast (paper appendix) and Bracha's
reliable broadcast (substrate of the concrete underlying consensus)."""

from .bracha import BrachaBroadcast, RbcEcho, RbcInit, RbcReady
from .bracha import DELIVER_TAG as RBC_DELIVER_TAG
from .idb import DELIVER_TAG as IDB_DELIVER_TAG
from .idb import IdbEcho, IdbInit, IdenticalBroadcast

__all__ = [
    "IdenticalBroadcast",
    "IdbInit",
    "IdbEcho",
    "IDB_DELIVER_TAG",
    "BrachaBroadcast",
    "RbcInit",
    "RbcEcho",
    "RbcReady",
    "RBC_DELIVER_TAG",
]
