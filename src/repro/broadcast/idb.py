"""Identical Broadcast — algorithm IDB (paper appendix, Figure 3).

Identical Broadcast guarantees that *all* correct processes deliver the
same message per sender, even when the sender is Byzantine (Figure 2):

* **Termination** — if a correct process Id-Sends ``m``, every correct
  process Id-Receives ``m``;
* **Agreement** — two correct processes never Id-Receive different messages
  for the same sender;
* **Validity** — for any sender, a correct process Id-Receives at most once,
  and only a message the (correct) sender actually Id-Sent.

The implementation is witness-based and needs ``n > 4t`` (Theorem 4):

1. ``Id-send(m)``: P-send ``(init, m)`` to all.
2. On the *first* ``(init, m')`` from ``p_j``: P-send ``(echo, m', j)``.
3. On ``(echo, m', j)``: with ``n − 2t`` matching copies from distinct
   processes, P-send the echo too (amplification, at most one echo per
   origin ever); with ``n − t`` copies, Id-Receive ``m'`` (once per origin).

One IDB communication step costs exactly two plain steps (init + echo),
which is why DEX's IDB-based path is a *two*-step decision scheme.
Deliveries surface as ``Deliver(tag="id-receive", sender=origin, value=m)``
upcalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ResilienceError
from ..runtime.effects import Broadcast, Deliver, Effect
from ..runtime.protocol import Protocol
from ..types import ProcessId, SystemConfig, Value
from ..codec.schema import wire_record

DELIVER_TAG = "id-receive"


@wire_record(tag=17)
@dataclass(frozen=True, slots=True)
class IdbInit:
    """``(init, m)`` — the sender's own broadcast of its message."""

    value: Value


@wire_record(tag=18)
@dataclass(frozen=True, slots=True)
class IdbEcho:
    """``(echo, m', j)`` — a witness statement that ``p_j`` sent ``m'``."""

    value: Value
    origin: ProcessId


class IdenticalBroadcast(Protocol):
    """One process's endpoint of the Identical Broadcast system.

    A single instance handles broadcasts from *every* origin (the origin id
    travels inside the echo messages), so DEX embeds exactly one.

    Args:
        process_id: hosting process.
        config: must satisfy ``n > 4t``.
        initial_value: when set, :meth:`on_start` Id-Sends it — convenient
            for running IDB standalone; composites call :meth:`id_send`
            themselves and leave this unset.
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        initial_value: Value | None = None,
    ) -> None:
        if not config.satisfies(4):
            raise ResilienceError("IdenticalBroadcast", config.n, config.t, "n > 4t")
        super().__init__(process_id, config)
        self.initial_value = initial_value
        self._echoed: set[ProcessId] = set()
        self._accepted: set[ProcessId] = set()
        self._witnesses: dict[tuple[ProcessId, Value], set[ProcessId]] = {}

    # -- input action -------------------------------------------------------------

    def id_send(self, value: Value) -> list[Effect]:
        """Id-Send ``value`` to all processes (one init broadcast)."""
        return [Broadcast(IdbInit(value))]

    def on_start(self) -> list[Effect]:
        if self.initial_value is None:
            return []
        return self.id_send(self.initial_value)

    # -- message handlers -----------------------------------------------------------

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if isinstance(payload, IdbInit):
            return self._on_init(sender, payload)
        if isinstance(payload, IdbEcho):
            return self._on_echo(sender, payload)
        return [self.log("idb-ignored", sender=sender, payload=repr(payload))]

    def _on_init(self, sender: ProcessId, message: IdbInit) -> list[Effect]:
        if sender in self._echoed:  # first-echo(j) is false
            return []
        self._echoed.add(sender)
        return [Broadcast(IdbEcho(message.value, sender))]

    def _on_echo(self, sender: ProcessId, message: IdbEcho) -> list[Effect]:
        key = (message.origin, message.value)
        witnesses = self._witnesses.setdefault(key, set())
        witnesses.add(sender)
        num = len(witnesses)
        effects: list[Effect] = []
        if num >= self.n - 2 * self.t and message.origin not in self._echoed:
            self._echoed.add(message.origin)
            effects.append(Broadcast(IdbEcho(message.value, message.origin)))
        if num >= self.n - self.t and message.origin not in self._accepted:
            self._accepted.add(message.origin)
            effects.append(Deliver(DELIVER_TAG, message.origin, message.value))
        return effects

    # -- observability ----------------------------------------------------------------

    @property
    def accepted_origins(self) -> frozenset[ProcessId]:
        """Origins whose broadcast this process has Id-Received."""
        return frozenset(self._accepted)
