"""Experiment harness: declarative construction of consensus runs.

Tests, benchmarks and examples all describe a run the same way — *which
algorithm*, *which input vector*, *which faults*, *which network* — and get
back a fully wired :class:`~repro.sim.runner.Simulation`.  The harness owns
the fiddly parts: building one protocol instance per process, wrapping the
faulty ones in :mod:`repro.byzantine` behaviors, choosing the underlying
consensus (the paper's oracle abstraction or the real RBC+ABA+ACS stack)
and registering its services.

Example::

    from repro.harness import Scenario, dex_freq, Equivocate

    result = Scenario(
        dex_freq(),
        inputs=[1, 1, 1, 1, 1, 2, 1],   # n = 7 ⇒ t = 1 for the freq pair
        faults={6: Equivocate(1, 2)},
        seed=42,
    ).run()
    assert result.agreement_holds()
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from .baselines.bosco import BoscoConsensus, BoscoVote
from .baselines.brasileiro import BrasileiroConsensus, BrasileiroValue
from .baselines.twostep import TwoStepConsensus
from .broadcast.idb import IdbInit
from .byzantine.adversary import CrashBehavior, SilentBehavior, TwoFacedBehavior
from .byzantine.behaviors import RandomGarbageBehavior
from .conditions.frequency import FrequencyPair
from .conditions.privileged import PrivilegedPair
from .core.dex import DexConsensus, DexProposal
from .errors import ConfigurationError
from .runtime.composite import Envelope
from .runtime.protocol import Protocol
from .runtime.services import Service
from .sim.latency import LatencyModel
from .sim.runner import RunResult, Simulation
from .sim.scheduler import DeliveryScheduler
from .types import ProcessId, SystemConfig, Value
from .underlying.coin import CommonCoin
from .underlying.multivalued import MultivaluedConsensus
from .underlying.oracle import SERVICE_NAME, OracleConsensus, OracleService

#: builds an honest protocol instance for a given initial value.
HonestFactory = Callable[[Value], Protocol]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Everything the harness needs to deploy one algorithm.

    Attributes:
        name: short identifier used in reports (e.g. ``"dex-freq"``).
        make: builds the per-process protocol:
            ``make(pid, config, value, uc_factory)``.
        required_ratio: resilience as a multiplier (``n > ratio · t``).
        failure_model: ``"byzantine"`` or ``"crash"`` — the strongest fault
            class the algorithm's safety argument covers; the harness
            rejects stronger injected faults.
        garbage_templates: wire-shaped payload examples for the garbage
            adversary.
        table1: the algorithm's row of the paper's Table 1 (used by the
            table-regeneration bench).
    """

    name: str
    make: Callable[..., Protocol]
    required_ratio: int
    failure_model: str = "byzantine"
    garbage_templates: tuple[Any, ...] = ()
    table1: dict[str, str] = field(default_factory=dict)

    def max_t(self, n: int) -> int:
        """Largest ``t`` this algorithm tolerates with ``n`` processes."""
        return max((n - 1) // self.required_ratio, 0)


# -- algorithm registry ------------------------------------------------------------


def dex_freq() -> AlgorithmSpec:
    """DEX instantiated with the frequency-based pair (``n > 6t``)."""
    return AlgorithmSpec(
        name="dex-freq",
        make=lambda pid, config, value, uc_factory: DexConsensus(
            pid, config, FrequencyPair(config.n, config.t), value, uc_factory
        ),
        required_ratio=6,
        garbage_templates=(DexProposal(0), Envelope("idb", IdbInit(0))),
        table1={
            "system": "Asyn.",
            "failures": "Byzan.",
            "processes": "6t+1",
            "one_step": "Condition-Based (adaptive)",
            "two_step": "Condition-Based (adaptive)",
        },
    )


def dex_prv(privileged: Value = 1) -> AlgorithmSpec:
    """DEX instantiated with the privileged-value pair (``n > 5t``)."""
    return AlgorithmSpec(
        name="dex-prv",
        make=lambda pid, config, value, uc_factory: DexConsensus(
            pid,
            config,
            PrivilegedPair(config.n, config.t, privileged),
            value,
            uc_factory,
        ),
        required_ratio=5,
        garbage_templates=(DexProposal(0), Envelope("idb", IdbInit(0))),
        table1={
            "system": "Asyn.",
            "failures": "Byzan.",
            "processes": "5t+1",
            "one_step": "Condition-Based (privileged value)",
            "two_step": "Condition-Based (privileged value)",
        },
    )


def bosco_weak() -> AlgorithmSpec:
    """BOSCO, weakly one-step (``n > 5t``)."""
    return AlgorithmSpec(
        name="bosco-weak",
        make=lambda pid, config, value, uc_factory: BoscoConsensus(
            pid, config, value, "weak", uc_factory
        ),
        required_ratio=5,
        garbage_templates=(BoscoVote(0),),
        table1={
            "system": "Asyn.",
            "failures": "Byzan.",
            "processes": "5t+1 (Weak)",
            "one_step": "Agreed proposals, no failures",
            "two_step": "—",
        },
    )


def bosco_strong() -> AlgorithmSpec:
    """BOSCO, strongly one-step (``n > 7t``)."""
    return AlgorithmSpec(
        name="bosco-strong",
        make=lambda pid, config, value, uc_factory: BoscoConsensus(
            pid, config, value, "strong", uc_factory
        ),
        required_ratio=7,
        garbage_templates=(BoscoVote(0),),
        table1={
            "system": "Asyn.",
            "failures": "Byzan.",
            "processes": "7t+1 (Strong)",
            "one_step": "Agreed proposals of correct processes",
            "two_step": "—",
        },
    )


def izumi() -> AlgorithmSpec:
    """Adaptive crash-model one-step consensus (Izumi et al. [8] row)."""
    from .baselines.crash_onestep import CrashValue, IzumiCrashConsensus

    return AlgorithmSpec(
        name="izumi",
        make=lambda pid, config, value, uc_factory: IzumiCrashConsensus(
            pid, config, value, uc_factory
        ),
        required_ratio=3,
        failure_model="crash",
        garbage_templates=(CrashValue(0),),
        table1={
            "system": "Asyn.",
            "failures": "Crash",
            "processes": "3t+1",
            "one_step": "Condition-Based (adaptive)",
            "two_step": "—",
        },
    )


def brasileiro() -> AlgorithmSpec:
    """Brasileiro et al.'s one-step converter (crash model, ``n > 3t``)."""
    return AlgorithmSpec(
        name="brasileiro",
        make=lambda pid, config, value, uc_factory: BrasileiroConsensus(
            pid, config, value, uc_factory
        ),
        required_ratio=3,
        failure_model="crash",
        garbage_templates=(BrasileiroValue(0),),
        table1={
            "system": "Asyn.",
            "failures": "Crash",
            "processes": "3t+1",
            "one_step": "Agreed proposals",
            "two_step": "—",
        },
    )


def twostep() -> AlgorithmSpec:
    """No fast path: underlying consensus only (zero-degradation reference)."""
    return AlgorithmSpec(
        name="twostep",
        make=lambda pid, config, value, uc_factory: TwoStepConsensus(
            pid, config, value, uc_factory
        ),
        required_ratio=3,
        table1={
            "system": "Asyn.",
            "failures": "Byzan.",
            "processes": "3t+1",
            "one_step": "—",
            "two_step": "underlying only",
        },
    )


def all_algorithms() -> list[AlgorithmSpec]:
    """Every registered asynchronous algorithm, in the paper's Table 1
    order.  The synchronous row (Mostefaoui et al. [11]) runs on the
    round-based engine instead — see
    :class:`repro.baselines.sync_onestep.SyncOneStepConsensus`.
    """
    return [
        brasileiro(),
        izumi(),
        bosco_weak(),
        bosco_strong(),
        dex_freq(),
        dex_prv(),
        twostep(),
    ]


# -- fault specifications --------------------------------------------------------------


class Fault(abc.ABC):
    """How one faulty process misbehaves in a scenario."""

    #: fault class for model compatibility checks.
    model: str = "byzantine"

    @abc.abstractmethod
    def build(
        self,
        pid: ProcessId,
        config: SystemConfig,
        make_honest: HonestFactory,
        value: Value,
        spec: AlgorithmSpec,
    ) -> Protocol:
        """Construct the behavior protocol for process ``pid``."""


class Silent(Fault):
    """Crashed from the start: never sends a message."""

    model = "crash"

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        return SilentBehavior(pid, config)


class Crash(Fault):
    """Run honestly, then crash after ``budget`` point-to-point messages.

    ``budget`` between ``1`` and ``n − 1`` crashes mid-broadcast of the
    initial proposal.
    """

    model = "crash"

    def __init__(self, budget: int) -> None:
        self.budget = budget

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        return CrashBehavior(make_honest(value), self.budget)


class Equivocate(Fault):
    """Two-faced: behave like an honest process proposing ``value_a`` to one
    half of the system and ``value_b`` to the other (Figure 2's attack,
    consistently applied at every protocol layer)."""

    def __init__(self, value_a: Value, value_b: Value) -> None:
        self.value_a = value_a
        self.value_b = value_b

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        return TwoFacedBehavior(make_honest(self.value_a), make_honest(self.value_b))


class Garbage(Fault):
    """Spray wire-shaped random payloads (robustness stressor)."""

    def __init__(self, values: Sequence[Value] = (0, 1, 2), fanout: int = 3, seed: int = 0) -> None:
        self.values = list(values)
        self.fanout = fanout
        self.seed = seed

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        templates = list(spec.garbage_templates) or [value]
        return RandomGarbageBehavior(
            pid, config, templates, self.values, self.fanout, self.seed + pid
        )


class Spoiler(Fault):
    """Adaptive attack on the frequency conditions: observe the proposals,
    then vote for the runner-up value on both DEX layers (see
    :class:`repro.byzantine.targeted.SpoilerBehavior`)."""

    def __init__(self, fallback: Value, watch_threshold: int | None = None) -> None:
        self.fallback = fallback
        self.watch_threshold = watch_threshold

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        from .byzantine.targeted import SpoilerBehavior

        return SpoilerBehavior(pid, config, self.fallback, self.watch_threshold)


class Collapse(Fault):
    """A priori gap collapser: immediately votes ``value`` on both DEX
    layers (see :class:`repro.byzantine.targeted.GapCollapser`)."""

    def __init__(self, value: Value) -> None:
        self.value = value

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        from .byzantine.targeted import GapCollapser

        return GapCollapser(pid, config, self.value)


class Saboteur(Fault):
    """Poison the underlying consensus, then act honest: races an
    arbitrary ``UC_propose`` for ``uc_value`` before running the honest
    start code (see :class:`repro.byzantine.targeted.FallbackSaboteur`).
    Above the resilience bound this is provably harmless — which is
    exactly what scenarios deploying it are meant to confirm."""

    def __init__(self, uc_value: Value) -> None:
        self.uc_value = uc_value

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        from .byzantine.targeted import FallbackSaboteur

        return FallbackSaboteur(make_honest(value), self.uc_value)


class Custom(Fault):
    """Escape hatch: any ``(pid, config, make_honest, value) -> Protocol``."""

    def __init__(self, factory: Callable[..., Protocol], model: str = "byzantine") -> None:
        self.factory = factory
        self.model = model

    def build(self, pid, config, make_honest, value, spec) -> Protocol:
        return self.factory(pid, config, make_honest, value)


# -- scenario ---------------------------------------------------------------------------


class Scenario:
    """A declarative consensus run.

    Args:
        algorithm: which algorithm to deploy.
        inputs: one initial value per process (its length fixes ``n``).  A
            faulty process's entry is the value its behavior builds on
            (e.g. face A of an equivocator).
        t: declared failure bound; defaults to the largest the algorithm's
            resilience allows for this ``n``.
        faults: fault spec per faulty process id (size must be ``≤ t``).
        uc: ``"oracle"`` (the paper's §2.2 abstraction, default) or
            ``"real"`` (Bracha RBC + common-coin ABA + ACS).
        uc_step_cost: causal step cost of the oracle abstraction.
        latency, scheduler, seed, trace, max_events: passed to the
            simulator.
    """

    def __init__(
        self,
        algorithm: AlgorithmSpec,
        inputs: Sequence[Value],
        t: int | None = None,
        faults: Mapping[ProcessId, Fault] | None = None,
        uc: str = "oracle",
        uc_step_cost: int = 2,
        latency: LatencyModel | None = None,
        scheduler: DeliveryScheduler | None = None,
        seed: int = 0,
        trace: bool = False,
        max_events: int | None = None,
    ) -> None:
        n = len(inputs)
        if t is None:
            t = algorithm.max_t(n)
        self.config = SystemConfig(n, t)
        if not self.config.satisfies(algorithm.required_ratio):
            raise ConfigurationError(
                f"{algorithm.name} requires n > {algorithm.required_ratio}t; "
                f"got n={n}, t={t}"
            )
        faults = dict(faults or {})
        if len(faults) > t:
            raise ConfigurationError(
                f"{len(faults)} faults exceed the declared bound t={t}"
            )
        if algorithm.failure_model == "crash":
            for pid, fault in faults.items():
                if fault.model != "crash":
                    raise ConfigurationError(
                        f"{algorithm.name} is a crash-model algorithm; fault "
                        f"{type(fault).__name__} on p{pid} is Byzantine"
                    )
        self.algorithm = algorithm
        self.inputs = list(inputs)
        self.faults = faults
        self.uc = uc
        self.uc_step_cost = uc_step_cost
        self.latency = latency
        self.scheduler = scheduler
        self.seed = seed
        self.trace = trace
        self.max_events = max_events

    # -- wiring ----------------------------------------------------------------------

    def _uc_factory_and_services(self) -> tuple[Callable, dict[str, Service]]:
        if self.uc == "oracle":
            service = OracleService(self.config, step_cost=self.uc_step_cost)
            factory = lambda pid, cfg: OracleConsensus(pid, cfg)  # noqa: E731
            return factory, {SERVICE_NAME: service}
        if self.uc == "real":
            coin = CommonCoin(seed=self.seed)
            factory = lambda pid, cfg: MultivaluedConsensus(pid, cfg, coin)  # noqa: E731
            return factory, {}
        raise ConfigurationError(f"unknown underlying consensus kind {self.uc!r}")

    def components(self) -> tuple[dict[ProcessId, Protocol], dict[str, Service]]:
        """Build the per-process protocols and the trusted services.

        Shared by the simulator path (:meth:`build`) and the asyncio path
        (:meth:`run_async`).
        """
        uc_factory, services = self._uc_factory_and_services()
        protocols: dict[ProcessId, Protocol] = {}
        for pid in self.config.processes:
            value = self.inputs[pid]
            make_honest: HonestFactory = (
                lambda v, pid=pid: self.algorithm.make(
                    pid, self.config, v, uc_factory
                )
            )
            fault = self.faults.get(pid)
            if fault is None:
                protocols[pid] = make_honest(value)
            else:
                protocols[pid] = fault.build(
                    pid, self.config, make_honest, value, self.algorithm
                )
        return protocols, services

    def build(self) -> Simulation:
        """Construct the fully wired simulation (not yet run)."""
        protocols, services = self.components()
        kwargs: dict[str, Any] = {}
        if self.max_events is not None:
            kwargs["max_events"] = self.max_events
        return Simulation(
            self.config,
            protocols,
            faulty=frozenset(self.faults),
            latency=self.latency,
            scheduler=self.scheduler,
            services=services,
            seed=self.seed,
            trace=self.trace,
            **kwargs,
        )

    def run(self) -> RunResult:
        """Build and run until every correct process decided."""
        return self.build().run_until_decided()

    def run_many(
        self,
        seeds,
        expected_value: Value | None = None,
        parallel: bool = False,
        max_workers: int | None = None,
    ):
        """Run the scenario once per seed and aggregate the results.

        Args:
            seeds: iterable of simulation seeds; each run is otherwise
                identical to this scenario.
            expected_value: when set, decisions differing from it count as
                unanimity violations in the aggregate.
            parallel: run the seeds on a thread pool.  Each seed builds its
                own simulation with its own PRNG and results are folded in
                seed order, so the aggregate is identical to the serial one.
            max_workers: pool size when ``parallel`` (``None`` = default).

        Returns:
            A :class:`repro.metrics.collectors.RunAggregate`.
        """
        from .metrics.collectors import RunAggregate

        def one_run(seed: int) -> RunResult:
            return Scenario(
                self.algorithm,
                self.inputs,
                t=self.config.t,
                faults=self.faults,
                uc=self.uc,
                uc_step_cost=self.uc_step_cost,
                latency=self.latency,
                scheduler=self.scheduler,
                seed=seed,
                trace=False,
                max_events=self.max_events,
            ).run()

        if parallel:
            from .sim.parallel import parallel_map

            runs = parallel_map(one_run, seeds, max_workers=max_workers)
        else:
            runs = [one_run(seed) for seed in seeds]
        aggregate = RunAggregate(label=self.algorithm.name)
        for run in runs:
            aggregate.add(run, expected_value=expected_value)
        return aggregate

    def run_async(self, timeout: float = 30.0, mean_delay: float = 0.001):
        """Run the same deployment on the asyncio runtime instead.

        Returns an :class:`~repro.runtime.asyncio_runner.AsyncRunResult`.
        """
        from .runtime.asyncio_runner import AsyncioRunner

        protocols, services = self.components()
        runner = AsyncioRunner(
            self.config,
            protocols,
            faulty=frozenset(self.faults),
            services=services,
            seed=self.seed,
            mean_delay=mean_delay,
        )
        return runner.run_sync(timeout)


def run_once(
    algorithm: AlgorithmSpec, inputs: Sequence[Value], **kwargs: Any
) -> RunResult:
    """One-shot convenience wrapper around :class:`Scenario`."""
    return Scenario(algorithm, inputs, **kwargs).run()
