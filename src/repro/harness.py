"""Experiment harness: declarative construction of consensus runs.

Tests, benchmarks and examples all describe a run the same way — *which
algorithm*, *which input vector*, *which faults*, *which network*, *which
execution engine* — and get back a fully wired run.  The harness owns the
fiddly parts: building one protocol instance per process, wrapping the
faulty ones through the :class:`~repro.engine.faults.FaultPlane`, choosing
the underlying consensus (the paper's oracle abstraction or the real
RBC+ABA+ACS stack) and registering its services.

The fault vocabulary (:class:`Fault`, :class:`Silent`, :class:`Crash`,
:class:`Equivocate`, …) lives in :mod:`repro.engine.faults` and is
re-exported here for compatibility.

Example::

    from repro.harness import Scenario, dex_freq, Equivocate

    result = Scenario(
        dex_freq(),
        inputs=[1, 1, 1, 1, 1, 2, 1],   # n = 7 ⇒ t = 1 for the freq pair
        faults={6: Equivocate(1, 2)},
        seed=42,
    ).run()
    assert result.agreement_holds()

``Scenario(..., engine="asyncio")`` (or ``"sync"``, ``"mc"``) runs the same
deployment on a different backend — see :meth:`Scenario.run`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from .baselines.bosco import BoscoConsensus, BoscoVote
from .baselines.brasileiro import BrasileiroConsensus, BrasileiroValue
from .baselines.twostep import TwoStepConsensus
from .broadcast.idb import IdbInit
from .conditions.frequency import FrequencyPair
from .conditions.privileged import PrivilegedPair
from .core.dex import DexConsensus, DexProposal
from .engine.events import EventSink
from .engine.faults import (
    Collapse,
    Crash,
    CrashRecover,
    Custom,
    Equivocate,
    Fault,
    FaultPlane,
    Garbage,
    HonestFactory,
    RestartPlan,
    Saboteur,
    Silent,
    Spoiler,
    restart_plans,
)
from .errors import ConfigurationError
from .runtime.composite import Envelope
from .runtime.effects import Deliver
from .runtime.protocol import Protocol
from .runtime.services import Service
from .sim.latency import LatencyModel
from .sim.runner import RunResult, Simulation
from .sim.scheduler import DeliveryScheduler
from .types import ProcessId, SystemConfig, Value
from .underlying.coin import CommonCoin
from .underlying.multivalued import MultivaluedConsensus
from .underlying.oracle import SERVICE_NAME, OracleConsensus, OracleService

__all__ = [
    "AlgorithmSpec",
    "Deployment",
    "ENGINES",
    "HonestFactory",
    "NET_JITTERS",
    "Scenario",
    "run_once",
    # algorithm registry
    "dex_freq",
    "dex_prv",
    "bosco_weak",
    "bosco_strong",
    "izumi",
    "brasileiro",
    "twostep",
    "all_algorithms",
    # fault vocabulary (re-exported from repro.engine.faults)
    "Fault",
    "FaultPlane",
    "Silent",
    "Crash",
    "CrashRecover",
    "Equivocate",
    "Garbage",
    "Spoiler",
    "Collapse",
    "Saboteur",
    "Custom",
    "RestartPlan",
    "restart_plans",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Everything the harness needs to deploy one algorithm.

    Attributes:
        name: short identifier used in reports (e.g. ``"dex-freq"``).
        make: builds the per-process protocol:
            ``make(pid, config, value, uc_factory)``.
        required_ratio: resilience as a multiplier (``n > ratio · t``).
        failure_model: ``"byzantine"`` or ``"crash"`` — the strongest fault
            class the algorithm's safety argument covers; the harness
            rejects stronger injected faults.
        garbage_templates: wire-shaped payload examples for the garbage
            adversary.
        table1: the algorithm's row of the paper's Table 1 (used by the
            table-regeneration bench).
    """

    name: str
    make: Callable[..., Protocol]
    required_ratio: int
    failure_model: str = "byzantine"
    garbage_templates: tuple[Any, ...] = ()
    table1: dict[str, str] = field(default_factory=dict)

    def max_t(self, n: int) -> int:
        """Largest ``t`` this algorithm tolerates with ``n`` processes."""
        return max((n - 1) // self.required_ratio, 0)


# -- algorithm registry ------------------------------------------------------------


def dex_freq() -> AlgorithmSpec:
    """DEX instantiated with the frequency-based pair (``n > 6t``)."""
    return AlgorithmSpec(
        name="dex-freq",
        make=lambda pid, config, value, uc_factory: DexConsensus(
            pid, config, FrequencyPair(config.n, config.t), value, uc_factory
        ),
        required_ratio=6,
        garbage_templates=(DexProposal(0), Envelope("idb", IdbInit(0))),
        table1={
            "system": "Asyn.",
            "failures": "Byzan.",
            "processes": "6t+1",
            "one_step": "Condition-Based (adaptive)",
            "two_step": "Condition-Based (adaptive)",
        },
    )


def dex_prv(privileged: Value = 1) -> AlgorithmSpec:
    """DEX instantiated with the privileged-value pair (``n > 5t``)."""
    return AlgorithmSpec(
        name="dex-prv",
        make=lambda pid, config, value, uc_factory: DexConsensus(
            pid,
            config,
            PrivilegedPair(config.n, config.t, privileged),
            value,
            uc_factory,
        ),
        required_ratio=5,
        garbage_templates=(DexProposal(0), Envelope("idb", IdbInit(0))),
        table1={
            "system": "Asyn.",
            "failures": "Byzan.",
            "processes": "5t+1",
            "one_step": "Condition-Based (privileged value)",
            "two_step": "Condition-Based (privileged value)",
        },
    )


def bosco_weak() -> AlgorithmSpec:
    """BOSCO, weakly one-step (``n > 5t``)."""
    return AlgorithmSpec(
        name="bosco-weak",
        make=lambda pid, config, value, uc_factory: BoscoConsensus(
            pid, config, value, "weak", uc_factory
        ),
        required_ratio=5,
        garbage_templates=(BoscoVote(0),),
        table1={
            "system": "Asyn.",
            "failures": "Byzan.",
            "processes": "5t+1 (Weak)",
            "one_step": "Agreed proposals, no failures",
            "two_step": "—",
        },
    )


def bosco_strong() -> AlgorithmSpec:
    """BOSCO, strongly one-step (``n > 7t``)."""
    return AlgorithmSpec(
        name="bosco-strong",
        make=lambda pid, config, value, uc_factory: BoscoConsensus(
            pid, config, value, "strong", uc_factory
        ),
        required_ratio=7,
        garbage_templates=(BoscoVote(0),),
        table1={
            "system": "Asyn.",
            "failures": "Byzan.",
            "processes": "7t+1 (Strong)",
            "one_step": "Agreed proposals of correct processes",
            "two_step": "—",
        },
    )


def izumi() -> AlgorithmSpec:
    """Adaptive crash-model one-step consensus (Izumi et al. [8] row)."""
    from .baselines.crash_onestep import CrashValue, IzumiCrashConsensus

    return AlgorithmSpec(
        name="izumi",
        make=lambda pid, config, value, uc_factory: IzumiCrashConsensus(
            pid, config, value, uc_factory
        ),
        required_ratio=3,
        failure_model="crash",
        garbage_templates=(CrashValue(0),),
        table1={
            "system": "Asyn.",
            "failures": "Crash",
            "processes": "3t+1",
            "one_step": "Condition-Based (adaptive)",
            "two_step": "—",
        },
    )


def brasileiro() -> AlgorithmSpec:
    """Brasileiro et al.'s one-step converter (crash model, ``n > 3t``)."""
    return AlgorithmSpec(
        name="brasileiro",
        make=lambda pid, config, value, uc_factory: BrasileiroConsensus(
            pid, config, value, uc_factory
        ),
        required_ratio=3,
        failure_model="crash",
        garbage_templates=(BrasileiroValue(0),),
        table1={
            "system": "Asyn.",
            "failures": "Crash",
            "processes": "3t+1",
            "one_step": "Agreed proposals",
            "two_step": "—",
        },
    )


def twostep() -> AlgorithmSpec:
    """No fast path: underlying consensus only (zero-degradation reference)."""
    return AlgorithmSpec(
        name="twostep",
        make=lambda pid, config, value, uc_factory: TwoStepConsensus(
            pid, config, value, uc_factory
        ),
        required_ratio=3,
        table1={
            "system": "Asyn.",
            "failures": "Byzan.",
            "processes": "3t+1",
            "one_step": "—",
            "two_step": "underlying only",
        },
    )


def all_algorithms() -> list[AlgorithmSpec]:
    """Every registered asynchronous algorithm, in the paper's Table 1
    order.  The synchronous row (Mostefaoui et al. [11]) runs on the
    round-based engine instead — see
    :class:`repro.baselines.sync_onestep.SyncOneStepConsensus`.
    """
    return [
        brasileiro(),
        izumi(),
        bosco_weak(),
        bosco_strong(),
        dex_freq(),
        dex_prv(),
        twostep(),
    ]


# -- deployment -------------------------------------------------------------------------


#: The execution backends ``Scenario.engine`` selects between.
ENGINES = ("sim", "asyncio", "sync", "mc", "net")

#: Hub jitter models of the socket engine (see :mod:`repro.net.cluster`).
NET_JITTERS = ("uniform", "lognormal")


@dataclass
class Deployment:
    """A fully wired, engine-agnostic deployment.

    Where :class:`Scenario` is the *declarative* layer (algorithm registry,
    input vectors, fault validation), a ``Deployment`` is the layer below:
    concrete per-process protocols plus trusted services, ready to run on
    any backend.  ``Scenario.run`` builds one internally; multi-instance
    frontends that wire their own protocols (e.g.
    :class:`repro.shard.service.ShardedService`) build one directly and
    get every engine for free.

    Args:
        config: system parameters.
        protocols: one (possibly fault-wrapped) protocol per process.
        services: trusted services by name.
        faulty: ids of the faulty processes.
        seed: backend PRNG seed (scheduling, jitter).
        trace: enable the legacy tracer on the discrete-event backend.
        latency, scheduler, max_events: discrete-event backend knobs.
        event_sink: receives the structured run events of any backend.
        net_jitter: hub jitter model on the socket engine — ``"uniform"``
            (bounded) or ``"lognormal"`` (long-tailed), both seeded.
        codec: wire codec of the socket engine by name — ``"binary"``
            (default, the struct-packed data plane), ``"pickle"``, or
            ``"json"``; see :mod:`repro.codec`.  In-memory engines never
            serialize, so they ignore it.
        restarts: per-pid :class:`~repro.engine.faults.RestartPlan`
            crash-recovery schedules (kill at ``at``, relaunch
            ``restart_after`` later with a freshly built protocol).
            Honored by the ``"sim"`` and ``"net"`` engines; the others
            reject a deployment that carries one.
        durability: optional :class:`~repro.durable.DurabilityConfig`
            carried for protocols that persist (the sharded service);
            stateless consensus protocols ignore it.
        mesh: optional :class:`~repro.mesh.topology.MeshTopology` — the
            socket engine runs a :class:`~repro.mesh.cluster.MeshCluster`
            (parallel hub groups) instead of the single-hub star when one
            is present with ``hubs > 1``; in-memory engines ignore it.
        shards: shard count of the workload, for mesh shard→hub
            attribution (``1`` for unsharded deployments — everything is
            then control traffic pinned to hub 0).
    """

    config: SystemConfig
    protocols: dict[ProcessId, Protocol]
    services: dict[str, Service] = field(default_factory=dict)
    faulty: frozenset = frozenset()
    seed: int = 0
    trace: bool = False
    latency: LatencyModel | None = None
    scheduler: DeliveryScheduler | None = None
    max_events: int | None = None
    event_sink: EventSink | None = None
    net_jitter: str = "uniform"
    codec: str = "binary"
    restarts: dict[ProcessId, RestartPlan] = field(default_factory=dict)
    durability: Any = None
    mesh: Any = None
    shards: int = 1

    def __post_init__(self) -> None:
        if self.net_jitter not in NET_JITTERS:
            raise ConfigurationError(
                f"unknown net jitter {self.net_jitter!r} "
                f"(one of: {', '.join(NET_JITTERS)})"
            )
        from .codec import CODEC_NAMES

        if self.codec not in CODEC_NAMES:
            raise ConfigurationError(
                f"unknown codec {self.codec!r} (one of: {', '.join(sorted(CODEC_NAMES))})"
            )

    def _reject_restarts(self, engine: str) -> None:
        if self.restarts:
            raise ConfigurationError(
                f"the {engine!r} engine does not support crash-recovery "
                "restarts; run on 'sim' or 'net'"
            )

    def run(self, engine: str = "sim", **kwargs: Any):
        """Run on ``engine``, forwarding ``kwargs`` to its runner method."""
        if engine == "asyncio":
            return self.run_async(**kwargs)
        if engine == "sync":
            return self.run_sync(**kwargs)
        if engine == "mc":
            return self.run_mc(**kwargs)
        if engine == "net":
            return self.run_net(**kwargs)
        if engine == "sim":
            return self.run_sim(**kwargs)
        raise ConfigurationError(
            f"unknown engine {engine!r} (one of: {', '.join(ENGINES)})"
        )

    def build_sim(self) -> Simulation:
        """The fully wired discrete-event simulation (not yet run)."""
        kwargs: dict[str, Any] = {}
        if self.max_events is not None:
            kwargs["max_events"] = self.max_events
        return Simulation(
            self.config,
            self.protocols,
            faulty=self.faulty,
            latency=self.latency,
            scheduler=self.scheduler,
            services=self.services,
            seed=self.seed,
            trace=self.trace,
            event_sink=self.event_sink,
            restarts=self.restarts,
            **kwargs,
        )

    def run_sim(self) -> RunResult:
        """Run on the deterministic discrete-event backend."""
        return self.build_sim().run_until_decided()

    def run_sync(self) -> RunResult:
        """Run on the deterministic lockstep-round backend."""
        self._reject_restarts("sync")
        from .sim.synchronous import LockstepSimulation

        return LockstepSimulation(
            self.config,
            self.protocols,
            faulty=self.faulty,
            services=self.services,
            seed=self.seed,
            trace=self.trace,
            event_sink=self.event_sink,
        ).run_until_decided()

    def run_mc(self) -> RunResult:
        """Run the model checker's state machine on its FIFO baseline
        schedule and repackage the outcome as a :class:`RunResult`."""
        self._reject_restarts("mc")
        from .mc.state import McSystem
        from .sim.trace import Tracer
        from .types import Decision, RunStats

        system = McSystem(
            self.config,
            self.protocols,
            services=self.services,
            faulty=self.faulty,
            event_sink=self.event_sink,
        )
        system.run_fifo()
        decisions = {
            pid: Decision(value, kind, step=step)
            for pid, (value, kind, step) in system.decisions.items()
        }
        outputs = {
            pid: [Deliver(tag, sender, value) for tag, sender, value in out]
            for pid, out in system.outputs.items()
        }
        stats = RunStats(
            messages_sent=system.counter,
            messages_delivered=system.deliveries,
            decisions=dict(decisions),
            end_time=float(system.deliveries),
        )
        return RunResult(
            config=self.config,
            decisions=decisions,
            outputs=outputs,
            stats=stats,
            tracer=Tracer(enabled=False),
            faulty=self.faulty,
            end_time=float(system.deliveries),
            drained=not system.pending,
        )

    def run_async(self, timeout: float = 30.0, mean_delay: float = 0.001):
        """Run on the asyncio runtime; returns an
        :class:`~repro.runtime.asyncio_runner.AsyncRunResult`."""
        self._reject_restarts("asyncio")
        from .runtime.asyncio_runner import AsyncioRunner

        runner = AsyncioRunner(
            self.config,
            self.protocols,
            faulty=self.faulty,
            services=self.services,
            seed=self.seed,
            mean_delay=mean_delay,
            event_sink=self.event_sink,
        )
        return runner.run_sync(timeout)

    def run_net(
        self,
        timeout: float = 30.0,
        transport: str = "uds",
        mean_delay: float = 0.0005,
        link_plan: Any = None,
        batch_deliveries: bool = True,
    ):
        """Run as real OS processes over sockets; returns a
        :class:`~repro.net.cluster.NetRunResult`.

        With a :attr:`mesh` topology of more than one hub group this
        builds a :class:`~repro.mesh.cluster.MeshCluster` (lazy import —
        plain net runs never load the mesh subsystem)."""
        from .codec import codec_named
        from .net.cluster import NetCluster

        kwargs: dict[str, Any] = dict(
            faulty=self.faulty,
            services=self.services,
            seed=self.seed,
            mean_delay=mean_delay,
            event_sink=self.event_sink,
            transport=transport,
            codec=codec_named(self.codec),
            link_plan=link_plan,
            jitter=self.net_jitter,
            batch_deliveries=batch_deliveries,
            restarts=self.restarts,
        )
        if self.mesh is not None and getattr(self.mesh, "hubs", 1) > 1:
            from .mesh.cluster import MeshCluster

            cluster: NetCluster = MeshCluster(
                self.config,
                self.protocols,
                mesh=self.mesh,
                shards=self.shards,
                **kwargs,
            )
        else:
            cluster = NetCluster(self.config, self.protocols, **kwargs)
        return cluster.run(timeout)


# -- scenario ---------------------------------------------------------------------------


@dataclass
class Scenario:
    """A declarative consensus run.

    A plain dataclass: cloning with :func:`dataclasses.replace` re-runs
    validation and re-derives ``config``, so multi-seed sweeps
    (:meth:`run_many`) can never silently drop a field.

    Args:
        algorithm: which algorithm to deploy.
        inputs: one initial value per process (its length fixes ``n``).  A
            faulty process's entry is the value its behavior builds on
            (e.g. face A of an equivocator).
        t: declared failure bound; defaults to the largest the algorithm's
            resilience allows for this ``n``.
        faults: fault spec per faulty process id (size must be ``≤ t``);
            validated and applied through the
            :class:`~repro.engine.faults.FaultPlane`, identically on every
            backend.
        uc: ``"oracle"`` (the paper's §2.2 abstraction, default) or
            ``"real"`` (Bracha RBC + common-coin ABA + ACS).
        uc_step_cost: causal step cost of the oracle abstraction.
        latency, scheduler, seed, trace, max_events: passed to the
            simulator (``latency``/``scheduler``/``max_events`` apply to the
            discrete-event backend only).
        engine: which backend :meth:`run` drives — ``"sim"`` (deterministic
            discrete-event), ``"asyncio"`` (real event loop), ``"sync"``
            (deterministic lockstep rounds), ``"mc"`` (the model
            checker's state machine on its FIFO baseline schedule) or
            ``"net"`` (one OS process per node over real sockets).
        event_sink: optional :class:`~repro.engine.events.EventSink`
            receiving the structured run events of any backend.
        codec: socket-engine wire codec by name — ``"binary"`` (default),
            ``"pickle"``, or ``"json"``; see :mod:`repro.codec`.  The
            in-memory engines never serialize, so they ignore it.
        durability: optional :class:`~repro.durable.DurabilityConfig`.
            Consensus algorithms hold no replicated state machine, so a
            plain scenario only carries it through to the deployment
            (state-machine frontends like the sharded service consume it);
            what it *does* change here is the restart semantics of a
            :class:`CrashRecover` fault — the restarted protocol instance
            is rebuilt by the algorithm factory either way, amnesiac
            without durable state to replay.
    """

    algorithm: AlgorithmSpec
    inputs: Sequence[Value]
    t: int | None = None
    faults: Mapping[ProcessId, Fault] | None = None
    uc: str = "oracle"
    uc_step_cost: int = 2
    latency: LatencyModel | None = None
    scheduler: DeliveryScheduler | None = None
    seed: int = 0
    trace: bool = False
    max_events: int | None = None
    engine: str = "sim"
    event_sink: EventSink | None = None
    net_jitter: str = "uniform"
    codec: str = "binary"
    durability: Any = None
    #: optional :class:`~repro.mesh.topology.MeshTopology` — parallel hub
    #: groups on the socket engine; other engines ignore it.
    mesh: Any = None
    #: derived in ``__post_init__`` — not an init arg, ignored by clones.
    config: SystemConfig = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.inputs = list(self.inputs)
        n = len(self.inputs)
        if self.t is None:
            self.t = self.algorithm.max_t(n)
        self.config = SystemConfig(n, self.t)
        if not self.config.satisfies(self.algorithm.required_ratio):
            raise ConfigurationError(
                f"{self.algorithm.name} requires n > "
                f"{self.algorithm.required_ratio}t; got n={n}, t={self.t}"
            )
        self._plane = FaultPlane(
            self.config,
            self.faults,
            failure_model=self.algorithm.failure_model,
            algorithm_name=self.algorithm.name,
        )
        self.faults = self._plane.faults
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r} (one of: {', '.join(ENGINES)})"
            )
        if self.net_jitter not in NET_JITTERS:
            raise ConfigurationError(
                f"unknown net jitter {self.net_jitter!r} "
                f"(one of: {', '.join(NET_JITTERS)})"
            )
        from .codec import CODEC_NAMES

        if self.codec not in CODEC_NAMES:
            raise ConfigurationError(
                f"unknown codec {self.codec!r} (one of: {', '.join(sorted(CODEC_NAMES))})"
            )

    # -- wiring ----------------------------------------------------------------------

    def _uc_factory_and_services(self) -> tuple[Callable, dict[str, Service]]:
        if self.uc == "oracle":
            service = OracleService(self.config, step_cost=self.uc_step_cost)
            factory = lambda pid, cfg: OracleConsensus(pid, cfg)  # noqa: E731
            return factory, {SERVICE_NAME: service}
        if self.uc == "real":
            coin = CommonCoin(seed=self.seed)
            factory = lambda pid, cfg: MultivaluedConsensus(pid, cfg, coin)  # noqa: E731
            return factory, {}
        raise ConfigurationError(f"unknown underlying consensus kind {self.uc!r}")

    def components(self) -> tuple[dict[ProcessId, Protocol], dict[str, Service]]:
        """Build the per-process protocols and the trusted services.

        Shared by the simulator path (:meth:`build`) and the asyncio path
        (:meth:`run_async`).
        """
        uc_factory, services = self._uc_factory_and_services()
        protocols: dict[ProcessId, Protocol] = {}
        for pid in self.config.processes:
            value = self.inputs[pid]
            make_honest: HonestFactory = (
                lambda v, pid=pid: self.algorithm.make(
                    pid, self.config, v, uc_factory
                )
            )
            protocols[pid] = self._plane.build(pid, make_honest, value, self.algorithm)
        self._plane.announce(self.event_sink)
        return protocols, services

    def _restart_factory(self, pid: ProcessId) -> Callable[[], Protocol]:
        """The relaunch builder for one ``CrashRecover`` pid: a fresh honest
        instance of the algorithm (amnesiac — consensus protocols keep no
        durable state; called in the restarted worker on the net engine)."""

        def factory() -> Protocol:
            uc_factory, _ = self._uc_factory_and_services()
            return self.algorithm.make(
                pid, self.config, self.inputs[pid], uc_factory
            )

        return factory

    def deployment(self) -> Deployment:
        """Wire the protocols/services into an engine-agnostic
        :class:`Deployment` (builds fresh protocol instances each call).

        ``CrashRecover`` faults become :class:`RestartPlan` entries, and a
        recovering pid is *excluded* from the deployment's faulty set: the
        engines wait for its (post-restart) decision and the agreement
        checks quantify over it — recovery means rejoining the correct
        set, not leaving it.
        """
        protocols, services = self.components()
        restarts = restart_plans(self._plane, self._restart_factory)
        return Deployment(
            config=self.config,
            protocols=protocols,
            services=services,
            faulty=frozenset(self.faults) - self._plane.recovering(),
            seed=self.seed,
            trace=self.trace,
            latency=self.latency,
            scheduler=self.scheduler,
            max_events=self.max_events,
            event_sink=self.event_sink,
            net_jitter=self.net_jitter,
            codec=self.codec,
            restarts=restarts,
            durability=self.durability,
            mesh=self.mesh,
        )

    def build(self) -> Simulation:
        """Construct the fully wired discrete-event simulation (not yet run)."""
        return self.deployment().build_sim()

    def run(self):
        """Run the scenario on the selected :attr:`engine`.

        Returns a :class:`~repro.sim.runner.RunResult` for the ``"sim"``,
        ``"sync"`` and ``"mc"`` backends, an
        :class:`~repro.runtime.asyncio_runner.AsyncRunResult` for
        ``"asyncio"`` and a :class:`~repro.net.cluster.NetRunResult` for
        ``"net"`` — all expose the shared observability surface
        (``correct_decisions``, ``max_correct_step``, ``end_time``,
        ``agreement_holds()``, …).
        """
        if self.engine == "net":
            return self.run_net()
        return self.deployment().run(self.engine)

    def run_net(
        self,
        timeout: float = 30.0,
        transport: str = "uds",
        mean_delay: float = 0.0005,
        batch_deliveries: bool = True,
    ):
        """Run the same deployment as real OS processes over sockets.

        One forked worker per node, framed traffic through the hub of
        :class:`~repro.net.cluster.NetCluster`, the plane's crash-model
        faults projected onto link behaviors.  Returns a
        :class:`~repro.net.cluster.NetRunResult` (the asyncio result
        surface plus per-node exit codes).
        """
        from .net.faults import plan_from_plane

        return self.deployment().run_net(
            timeout=timeout,
            transport=transport,
            mean_delay=mean_delay,
            link_plan=plan_from_plane(self._plane),
            batch_deliveries=batch_deliveries,
        )

    def run_many(
        self,
        seeds,
        expected_value: Value | None = None,
        parallel: bool = False,
        max_workers: int | None = None,
    ):
        """Run the scenario once per seed and aggregate the results.

        Each per-seed clone is made with :func:`dataclasses.replace`, so
        every field of this scenario — including ones added after this
        method was written — carries over; only ``seed`` and ``trace``
        differ.

        Args:
            seeds: iterable of simulation seeds; each run is otherwise
                identical to this scenario.
            expected_value: when set, decisions differing from it count as
                unanimity violations in the aggregate.
            parallel: run the seeds on a thread pool.  Each seed builds its
                own simulation with its own PRNG and results are folded in
                seed order, so the aggregate is identical to the serial one.
            max_workers: pool size when ``parallel`` (``None`` = default).

        Returns:
            A :class:`repro.metrics.collectors.RunAggregate`.
        """
        from .metrics.collectors import RunAggregate

        def one_run(seed: int):
            return dataclasses.replace(self, seed=seed, trace=False).run()

        if parallel:
            from .sim.parallel import parallel_map

            runs = parallel_map(one_run, seeds, max_workers=max_workers)
        else:
            runs = [one_run(seed) for seed in seeds]
        aggregate = RunAggregate(label=self.algorithm.name)
        for run in runs:
            aggregate.add(run, expected_value=expected_value)
        return aggregate

    def run_async(self, timeout: float = 30.0, mean_delay: float = 0.001):
        """Run the same deployment on the asyncio runtime instead.

        Returns an :class:`~repro.runtime.asyncio_runner.AsyncRunResult`.
        """
        return self.deployment().run_async(timeout=timeout, mean_delay=mean_delay)


def run_once(
    algorithm: AlgorithmSpec, inputs: Sequence[Value], **kwargs: Any
) -> RunResult:
    """One-shot convenience wrapper around :class:`Scenario`."""
    return Scenario(algorithm, inputs, **kwargs).run()
