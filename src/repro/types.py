"""Shared primitive types used across every layer of the library.

The paper's vocabulary maps onto these types as follows:

* a *process* ``p_i`` is identified by a 0-based :data:`ProcessId`;
* a *proposal value* is any hashable, totally ordered Python object
  (:data:`Value`); the paper's ordered set ``V`` is typically realised with
  ``int`` or ``str`` values in tests and benchmarks;
* a *communication step* is measured as causal message depth
  (:class:`StepCount`); a one-step decision happens at depth 1, a two-step
  decision at depth 2;
* the way a process decided (line 8, line 17 or line 21 of Figure 1) is a
  :class:`DecisionKind`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TypeAlias

ProcessId: TypeAlias = int
Value: TypeAlias = object
StepCount: TypeAlias = int

#: The default value the paper writes as ``⊥`` (bottom).  It is a unique
#: sentinel so that any application value — including ``None`` — can be
#: proposed.
BOTTOM = type("Bottom", (), {
    "__repr__": lambda self: "⊥",
    "__reduce__": lambda self: (_get_bottom, ()),
})()


def _get_bottom() -> object:
    """Support pickling of the :data:`BOTTOM` singleton."""
    return BOTTOM


def order_key(value: Value) -> tuple[str, str]:
    """A total-order key that works across heterogeneous value types.

    The paper assumes ``V`` is an ordered set.  Correct processes propose
    comparable values, but Byzantine processes can inject values of any
    type into views and quorums; tie-breaking must still be deterministic
    (agreement depends on every correct process breaking ties identically
    over identical data).  Sorting by ``(type name, repr)`` is total and
    identical everywhere.
    """
    return (type(value).__name__, repr(value))


def largest(values) -> Value:
    """``max`` under the native order when possible, else :func:`order_key`.

    Native comparison keeps the intuitive semantics for homogeneous values
    (the common case); the fallback keeps Byzantine-mixed value sets from
    crashing a correct process with ``TypeError``.
    """
    vals = list(values)
    if not vals:
        raise ValueError("largest() of an empty collection")
    try:
        return max(vals)
    except TypeError:
        return max(vals, key=order_key)


class DecisionKind(enum.Enum):
    """How a process reached its decision (Figure 1 of the paper)."""

    #: Line 8 — `P1(J1)` held over a view of ``n-t`` plain messages.
    ONE_STEP = "one-step"
    #: Line 17 — `P2(J2)` held over a view of ``n-t`` identical-broadcast
    #: deliveries.
    TWO_STEP = "two-step"
    #: Line 21 — the decision was borrowed from the underlying consensus.
    UNDERLYING = "underlying"
    #: Used by baseline algorithms whose single fast path is not split into
    #: one- and two-step variants (e.g. BOSCO's fast decision).
    FAST = "fast"

    @property
    def is_expedited(self) -> bool:
        """True when the decision came from a fast path, not the fallback."""
        return self is not DecisionKind.UNDERLYING


@dataclass(frozen=True, slots=True)
class Decision:
    """The outcome of one consensus instance at one process.

    Attributes:
        value: the decided value.
        kind: which decision path fired.
        step: causal communication depth at the moment of decision. The
            underlying-consensus path reports the depth of the message that
            carried the decision.
        time: simulated (or wall-clock) time of the decision; ``0.0`` when
            the runtime does not track time.
    """

    value: Value
    kind: DecisionKind
    step: StepCount
    time: float = 0.0


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Static parameters of one consensus deployment.

    Attributes:
        n: total number of processes (the paper's ``n``).
        t: upper bound on the number of Byzantine processes (``t``),
            known to every process in advance.
    """

    n: int
    t: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.t < 0:
            raise ValueError(f"t must be non-negative, got {self.t}")
        if self.t >= self.n:
            raise ValueError(f"t must be smaller than n, got n={self.n}, t={self.t}")

    @property
    def processes(self) -> range:
        """All process identifiers, ``0 .. n-1``."""
        return range(self.n)

    @property
    def quorum(self) -> int:
        """The ``n - t`` threshold used throughout the paper."""
        return self.n - self.t

    def satisfies(self, bound_multiplier: int) -> bool:
        """Check ``n > bound_multiplier * t`` (e.g. ``satisfies(5)`` ⇔ n>5t)."""
        return self.n > bound_multiplier * self.t


@dataclass(slots=True)
class RunStats:
    """Aggregate counters filled in by a runtime while a protocol executes.

    The simulator and the asyncio runner both produce one :class:`RunStats`
    per run, which the metrics layer consumes.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    bytes_sent: int = 0
    decisions: dict[ProcessId, Decision] = field(default_factory=dict)
    end_time: float = 0.0

    def record_decision(self, pid: ProcessId, decision: Decision) -> None:
        """Store the first decision of ``pid``; later ones are ignored."""
        self.decisions.setdefault(pid, decision)

    @property
    def max_decision_step(self) -> StepCount:
        """Largest decision depth among processes that decided."""
        if not self.decisions:
            return 0
        return max(d.step for d in self.decisions.values())

    @property
    def decided_values(self) -> set[Value]:
        """The set of distinct decided values (must be a singleton)."""
        return {d.value for d in self.decisions.values()}
