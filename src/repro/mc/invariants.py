"""Safety invariants checked in every explored state.

Decisions are irrevocable, so all of these are *stable* properties: once
violated in a state they stay violated in every successor.  That lets the
explorer check on arrival and prune subtrees whose correct processes have
all decided.

The condition-based one-step validity check deserves a note.  The paper's
legality proofs imply that when the correct processes' inputs alone are
decisive enough, every one-step decision is forced:

* frequency pair — if the gap between the two most frequent *correct*
  inputs exceeds ``2t``, any ``n − t`` view contains at least that winner
  with a gap ``> 0`` (at most ``t`` correct entries missing, at most ``t``
  byzantine entries present), so ``F`` picks the winner;
* privileged pair — ``P1`` requires ``#_m(J) > 3t ≥ t``, so a one-step
  decision is always the privileged value ``m``, unconditionally.

:func:`one_step_guarantee` computes the forced value (or ``None`` when the
inputs are not decisive); :class:`GuaranteedOneStep` enforces it.  A
violation of this invariant below the resilience bound is exactly the
failure mode E17 walks through.
"""

from __future__ import annotations

import abc
from collections import Counter
from typing import Any

from ..conditions.base import ConditionSequencePair
from ..conditions.privileged import PrivilegedPair
from ..types import DecisionKind, ProcessId, Value
from .state import McSystem


class Violation:
    """One invariant violation observed in a concrete state."""

    def __init__(self, invariant: str, detail: str, system: McSystem) -> None:
        self.invariant = invariant
        self.detail = detail
        self.decisions = {
            pid: (value, kind.value, step)
            for pid, (value, kind, step) in system.correct_decisions().items()
        }

    def describe(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "decisions": {
                str(pid): list(decision) for pid, decision in self.decisions.items()
            },
        }

    def __repr__(self) -> str:
        return f"Violation({self.invariant}: {self.detail})"


class Invariant(abc.ABC):
    """A safety predicate over :class:`McSystem` states."""

    name: str = "invariant"

    @abc.abstractmethod
    def check(self, system: McSystem) -> str | None:
        """``None`` when the state is fine, else a violation description."""

    def violation(self, system: McSystem) -> Violation | None:
        detail = self.check(system)
        if detail is None:
            return None
        return Violation(self.name, detail, system)


class Agreement(Invariant):
    """No two correct processes decide different values."""

    name = "agreement"

    def check(self, system: McSystem) -> str | None:
        values = {value for value, _, _ in system.correct_decisions().values()}
        if len(values) > 1:
            return f"correct processes decided {sorted(map(repr, values))}"
        return None


class Unanimity(Invariant):
    """If every correct process proposed ``v``, only ``v`` may be decided.

    This is condition-based validity in its base case (the all-equal vector
    belongs to every nonempty legal condition).
    """

    name = "unanimity"

    def __init__(self, correct_inputs: dict[ProcessId, Value]) -> None:
        self._unanimous: Value | None = None
        values = set(correct_inputs.values())
        if len(values) == 1:
            self._unanimous = next(iter(values))

    def check(self, system: McSystem) -> str | None:
        if self._unanimous is None:
            return None
        for pid, (value, _, _) in system.correct_decisions().items():
            if value != self._unanimous:
                return (
                    f"inputs unanimously {self._unanimous!r} but "
                    f"p{pid} decided {value!r}"
                )
        return None


def one_step_guarantee(
    pair: ConditionSequencePair, correct_inputs: dict[ProcessId, Value]
) -> Value | None:
    """The value every one-step decision is forced to, or ``None``.

    See the module docstring for the derivations.  Returns ``None`` for
    pair families without a proven forcing argument — the invariant is then
    vacuous rather than unsound.
    """
    if isinstance(pair, PrivilegedPair):
        return pair.privileged
    counts = Counter(correct_inputs.values())
    ranked = counts.most_common(2)
    if not ranked:
        return None
    winner, top = ranked[0]
    second = ranked[1][1] if len(ranked) > 1 else 0
    if top - second > 2 * pair.t:
        return winner
    return None


class GuaranteedOneStep(Invariant):
    """Condition-based one-step validity: when the correct inputs force a
    one-step value, every ``ONE_STEP`` decision must equal it."""

    name = "one-step-validity"

    def __init__(
        self, pair: ConditionSequencePair, correct_inputs: dict[ProcessId, Value]
    ) -> None:
        self._forced = one_step_guarantee(pair, correct_inputs)

    def check(self, system: McSystem) -> str | None:
        if self._forced is None:
            return None
        for pid, (value, kind, _) in system.correct_decisions().items():
            if kind is DecisionKind.ONE_STEP and value != self._forced:
                return (
                    f"correct inputs force one-step value {self._forced!r} "
                    f"but p{pid} one-step decided {value!r}"
                )
        return None


class DecisionStepBound(Invariant):
    """No correct decision may cost more than ``max_step`` causal steps.

    With the oracle underlying consensus (``step_cost = 2``) DEX's worst
    case in well-behaved runs is 4 steps (2-step IDB pipeline + 2-step UC).
    """

    name = "decision-step-bound"

    def __init__(self, max_step: int) -> None:
        self.max_step = max_step

    def check(self, system: McSystem) -> str | None:
        for pid, (_, kind, step) in system.correct_decisions().items():
            if step > self.max_step:
                return (
                    f"p{pid} decided via {kind.value} at step {step} "
                    f"> bound {self.max_step}"
                )
        return None


class IdbConsistency(Invariant):
    """IDB agreement: two correct processes never Id-Receive different
    values for the same origin (and at most once per origin)."""

    name = "idb-consistency"

    def __init__(self, tag: str = "id-receive") -> None:
        self.tag = tag

    def check(self, system: McSystem) -> str | None:
        delivered: dict[ProcessId, Any] = {}
        for pid in system.correct:
            seen: set[ProcessId] = set()
            for tag, origin, value in system.outputs[pid]:
                if tag != self.tag:
                    continue
                if origin in seen:
                    return f"p{pid} Id-Received twice from origin {origin}"
                seen.add(origin)
                if origin in delivered and delivered[origin] != value:
                    return (
                        f"origin {origin} Id-Received as {delivered[origin]!r} "
                        f"and {value!r} at different correct processes"
                    )
                delivered.setdefault(origin, value)
        return None
