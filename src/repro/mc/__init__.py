"""``repro.mc`` — an exhaustive-schedule model checker for sans-IO protocols.

The simulator (:mod:`repro.sim`) samples *one* schedule per seed; the model
checker enumerates *every* message-delivery order of a protocol composition
(within an optional reorder budget) and checks safety invariants in each
reached state.  The pieces:

* :mod:`repro.mc.state` — :class:`McSystem`, the branchable execution state
  (protocol snapshots × pending-message multiset) with the exact effect
  semantics of the simulator;
* :mod:`repro.mc.fingerprint` — canonical state hashing, merging converging
  branches;
* :mod:`repro.mc.explorer` — DFS with sleep-set partial-order reduction and
  per-destination reorder budgets;
* :mod:`repro.mc.invariants` — agreement, condition-based one-step
  validity, decision-step bounds, IDB consistency;
* :mod:`repro.mc.counterexample` — minimized, serializable violation traces
  that replay deterministically on the simulator via
  :class:`repro.sim.scheduler.ReplayScheduler`;
* :mod:`repro.mc.abstraction` — the trusted oracle-IDB service, a sound
  modular abstraction that shrinks the schedule space for larger configs;
* :mod:`repro.mc.scenario` — serializable scenario specs and bounded
  Byzantine-choice enumeration;
* :mod:`repro.mc.suite` — the named verification suite behind
  ``python -m repro check``.
"""

from .counterexample import Counterexample, minimize, replay_on_simulator
from .explorer import ExplorationResult, Explorer
from .fingerprint import fingerprint
from .invariants import (
    Agreement,
    DecisionStepBound,
    GuaranteedOneStep,
    IdbConsistency,
    Invariant,
    Unanimity,
    Violation,
    one_step_guarantee,
)
from .scenario import (
    UnderResilientPair,
    build_simulation,
    build_system,
    byzantine_variants,
    dex_scenario,
    idb_scenario,
)
from .state import McMessage, McSystem
from .suite import CheckReport, run_suite

__all__ = [
    "Agreement",
    "CheckReport",
    "Counterexample",
    "DecisionStepBound",
    "ExplorationResult",
    "Explorer",
    "GuaranteedOneStep",
    "IdbConsistency",
    "Invariant",
    "McMessage",
    "McSystem",
    "Unanimity",
    "UnderResilientPair",
    "Violation",
    "build_simulation",
    "build_system",
    "byzantine_variants",
    "dex_scenario",
    "fingerprint",
    "idb_scenario",
    "minimize",
    "one_step_guarantee",
    "replay_on_simulator",
    "run_suite",
]
