"""Replayable counterexamples: serialize, minimize, and re-execute traces.

A violation found by the explorer is only worth something if it can be
handed around: a :class:`Counterexample` bundles the *scenario spec* (the
serializable recipe for rebuilding the protocol composition, see
:mod:`repro.mc.scenario`) with the *schedule* — the list of
``(src, dst, payload key)`` delivery records leading to the violation.
Message identity is content-based, never uid-based, so the same trace means
the same execution in any process (payload keys are ``repr`` of frozen
dataclasses; state fingerprints, which are process-local, are deliberately
not serialized).

The trace replays in two independent ways:

* :func:`run_schedule` re-executes it on a fresh :class:`McSystem`
  (used by greedy minimization);
* :func:`replay_on_simulator` drives the *real* simulator with a
  :class:`~repro.sim.scheduler.ReplayScheduler` dictating the exact global
  delivery order — the strongest evidence that the checker's semantics
  match the runtime the experiments use.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..sim.latency import ConstantLatency
from ..sim.runner import RunResult, Simulation
from ..sim.scheduler import ReplayScheduler
from .state import McSystem

Record = tuple[int, int, str]


@dataclass
class Counterexample:
    """A serialized violation trace.

    Attributes:
        spec: scenario spec rebuilding the protocol composition.
        schedule: delivery records, in order, from the initial state to the
            violating state.
        invariant: name of the violated invariant.
        detail: human-readable description of the violation.
        decisions: correct decisions in the violating state,
            ``pid -> [value, kind, step]``.
        minimized: whether greedy minimization ran.
    """

    spec: dict[str, Any]
    schedule: list[Record]
    invariant: str
    detail: str
    decisions: dict[int, list[Any]] = field(default_factory=dict)
    minimized: bool = False

    def to_json(self) -> str:
        return json.dumps(
            {
                "spec": self.spec,
                "schedule": [list(record) for record in self.schedule],
                "invariant": self.invariant,
                "detail": self.detail,
                "decisions": {
                    str(pid): decision for pid, decision in self.decisions.items()
                },
                "minimized": self.minimized,
            },
            indent=2,
            default=repr,
        )

    @classmethod
    def from_json(cls, text: str) -> "Counterexample":
        data = json.loads(text)
        return cls(
            spec=data["spec"],
            schedule=[
                (record[0], record[1], record[2]) for record in data["schedule"]
            ],
            invariant=data["invariant"],
            detail=data["detail"],
            decisions={
                int(pid): decision for pid, decision in data["decisions"].items()
            },
            minimized=data.get("minimized", False),
        )

    def to_scheduler(self) -> ReplayScheduler:
        return ReplayScheduler(self.schedule)


def run_schedule(
    system: McSystem, schedule: list[Record]
) -> McSystem | None:
    """Execute ``schedule`` on a fresh system, matching records by content.

    Each record is matched against the lowest-uid pending message with the
    same ``(src, dst, payload key)`` — FIFO per key, mirroring the replay
    scheduler.  Returns the final system, or ``None`` when some record has
    no pending match (the schedule is infeasible, e.g. after minimization
    removed a delivery its successors depended on).
    """
    system.start()
    for record in schedule:
        match: int | None = None
        for uid in sorted(system.pending):
            if system.schedule_record(uid) == record:
                match = uid
                break
        if match is None:
            return None
        system.deliver(match)
    return system


def replay_with_events(counterexample: Counterexample, build_system):
    """Replay the trace with an :class:`~repro.engine.events.EventLog`
    attached, so the violation renders as the same typed event stream
    every execution backend emits (cross-engine-comparable: deliveries,
    decisions, service calls — not checker-internal records).

    ``build_system`` is the scenario factory ``(spec, event_sink=...) ->
    McSystem``.  Returns ``(system, log)``; ``system`` is ``None`` when
    the schedule is infeasible (the log still holds the events up to the
    first unmatched record).
    """
    from ..engine.events import EventLog

    log = EventLog()
    system = build_system(counterexample.spec, event_sink=log)
    return run_schedule(system, counterexample.schedule), log


def minimize(
    counterexample: Counterexample,
    build_system,
    build_invariants,
) -> Counterexample:
    """Greedy delta-minimization of a violation trace.

    Repeatedly tries to drop single deliveries; a candidate survives when
    the remaining schedule still executes and still violates the same
    invariant.  Quadratic in trace length, which is fine at model-checking
    scale, and yields 1-minimal traces: removing any single remaining
    delivery breaks the violation.

    ``build_system``/``build_invariants`` are the scenario factories
    (passed in to keep this module free of scenario imports).
    """
    schedule = list(counterexample.schedule)

    def violates(candidate: list[Record]) -> bool:
        system = run_schedule(build_system(counterexample.spec), candidate)
        if system is None:
            return False
        for invariant in build_invariants(counterexample.spec):
            if invariant.name != counterexample.invariant:
                continue
            if invariant.check(system) is not None:
                return True
        return False

    changed = True
    while changed:
        changed = False
        index = len(schedule) - 1
        while index >= 0:
            candidate = schedule[:index] + schedule[index + 1 :]
            if violates(candidate):
                schedule = candidate
                changed = True
            index -= 1
    return Counterexample(
        spec=counterexample.spec,
        schedule=schedule,
        invariant=counterexample.invariant,
        detail=counterexample.detail,
        decisions=counterexample.decisions,
        minimized=True,
    )


def replay_on_simulator(
    counterexample: Counterexample, build_simulation
) -> RunResult:
    """Replay the trace on the real discrete-event simulator.

    The :class:`ReplayScheduler` dictates the exact global delivery order
    of the trace (messages the trace never delivers are dropped — in the
    asynchronous model, delayed past the end of the run), with zero base
    latency so delivery times are the trace ranks.  ``build_simulation`` is
    the scenario factory ``(spec, scheduler=..., latency=...) ->
    Simulation``.
    """
    simulation: Simulation = build_simulation(
        counterexample.spec,
        scheduler=counterexample.to_scheduler(),
        latency=ConstantLatency(0.0),
    )
    return simulation.run_to_quiescence()


def replay_matches(counterexample: Counterexample, result: RunResult) -> bool:
    """True when the simulator replay reproduced the recorded decisions."""
    replayed = {
        pid: [decision.value, decision.kind.value, decision.step]
        for pid, decision in result.correct_decisions.items()
    }
    return replayed == counterexample.decisions
