"""DFS schedule exploration with sleep-set POR and delay bounds.

The explorer walks the tree of message-delivery orders of one
:class:`~repro.mc.state.McSystem`.  Three reductions keep it tractable:

**Sleep sets** (partial-order reduction).  After fully exploring the
subtree where pending message ``m`` is delivered first, ``m`` is put to
sleep for the remaining sibling branches: any schedule delivering ``m``
later is equivalent to one already explored *until a dependent delivery
happens*, at which point ``m`` wakes up.  Two deliveries are dependent when
they target the same process or touch a common trusted service.  Service
footprints are observed at execution time, which is sound here because a
handler's *calls* (unlike the replies) are a function of the destination's
local state only — reordering deliveries to other destinations cannot
change which services a sleeping message's handler would invoke.

**State fingerprinting.**  Converging branches merge on the canonical
digest of (protocol states × services × pending multiset × decisions).  A
fingerprint is only trusted when the previous visit dominated the current
one — explored with a subset sleep set, at least as much remaining budget,
and a superset of already-paid-for delayed messages — the classic side
condition for combining state matching with sleep sets.  Sleep and delayed
sets are compared by message *content*, never by uid: two schedules
reaching the same state may number the same message differently.

**Delay bounds.**  Messages are delivered FIFO per destination unless the
schedule *delays* some: delivering a message overtakes every older pending
message bound for the same destination, and the budget caps the number of
distinct messages overtaken along one schedule.  This is delay-bounded
scheduling: a budget of ``d`` explores every schedule in which at most
``d`` messages are held back (each for arbitrarily long, past arbitrarily
many others), which reaches reordering bugs at small ``d`` where pairwise
inversion counts would grow with the length of the detour.  ``None``
removes the bound (full exhaustion — feasible only for tiny configs).
The FIFO baseline costs 0, so exploration never deadlocks.

Invariants are checked in every state *before* the memo lookup, so a
violation in a merged state is still reported.  Exploration also prunes
once every correct process has decided: decisions are irrevocable and all
invariants quantify over decisions/outputs, so no deeper state can add a
violation the current state does not already show.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from ..types import ProcessId
from .invariants import Invariant, Violation
from .state import McSystem

#: Content multiset of a uid set — schedule-invariant comparison form.
_Keys = tuple[tuple[ProcessId, ProcessId, int, str], ...]


@dataclass
class ExplorationResult:
    """Aggregate outcome of one exploration."""

    states: int = 0
    transitions: int = 0
    merged: int = 0
    slept: int = 0
    pruned_budget: int = 0
    collapsed: int = 0
    max_depth: int = 0
    complete: bool = True
    violations: list[Violation] = field(default_factory=list)
    #: Schedule (``(src, dst, payload key)`` records) witnessing the first
    #: violation, if any.
    trace: list[tuple[ProcessId, ProcessId, str]] | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> dict[str, Any]:
        return {
            "states": self.states,
            "transitions": self.transitions,
            "merged": self.merged,
            "slept": self.slept,
            "pruned_budget": self.pruned_budget,
            "collapsed": self.collapsed,
            "max_depth": self.max_depth,
            "complete": self.complete,
            "violations": [v.describe() for v in self.violations],
        }


class _Stop(Exception):
    """Internal: unwind the DFS (violation found or state cap hit)."""


class Explorer:
    """Explore every delivery order of ``system`` within the bounds.

    Args:
        system: a *fresh* (not yet started) system; the explorer owns it.
        invariants: safety predicates checked in every state.
        delay_budget: max distinct messages a schedule may delay
            (``None`` = no bound).
        max_states: hard cap on distinct state visits; exceeding it marks
            the result incomplete instead of running forever.
        stop_on_violation: stop at the first violation (default) or keep
            exploring and collect all of them.
        max_depth: optional cap on schedule length (defensive bound for
            protocols that might generate messages forever).
        order: DFS descent order.  ``"fifo"`` (default) tries in-order
            deliveries first — fastest to *certify* a budget, because the
            cheap schedules merge early.  ``"adversarial"`` spends the
            budget eagerly: costlier deliveries before cheaper ones.
            Violations that require delayed messages sit earlier in that
            ordering, so boundary checks hunting for a known-to-exist
            violation tend to find it sooner (measured ~15% on the n=4
            under-resilient attack).  Both orders visit the same state
            space when run to completion.
    """

    def __init__(
        self,
        system: McSystem,
        invariants: list[Invariant],
        delay_budget: int | None = 2,
        max_states: int = 200_000,
        stop_on_violation: bool = True,
        max_depth: int | None = None,
        order: str = "fifo",
    ) -> None:
        if order not in ("fifo", "adversarial"):
            raise ValueError(f"unknown exploration order {order!r}")
        self.system = system
        self.invariants = list(invariants)
        self.delay_budget = delay_budget
        self.max_states = max_states
        self.stop_on_violation = stop_on_violation
        self.max_depth = max_depth
        self.adversarial = order == "adversarial"
        self.result = ExplorationResult()
        self._visited: dict[str, list[tuple[_Keys, int | None, _Keys]]] = {}
        self._path: list[tuple[ProcessId, ProcessId, str]] = []

    def run(self) -> ExplorationResult:
        self.system.start()
        try:
            self._explore(frozenset(), self.delay_budget, frozenset())
        except _Stop:
            pass
        return self.result

    # -- the DFS -------------------------------------------------------------------

    def _explore(
        self,
        sleep: frozenset[int],
        remaining: int | None,
        delayed: frozenset[int],
    ) -> None:
        result = self.result
        result.states += 1
        if result.states > self.max_states:
            result.complete = False
            raise _Stop
        if len(self._path) > result.max_depth:
            result.max_depth = len(self._path)

        for invariant in self.invariants:
            violation = invariant.violation(self.system)
            if violation is not None:
                result.violations.append(violation)
                if result.trace is None:
                    result.trace = list(self._path)
                if self.stop_on_violation:
                    raise _Stop
                return  # state is terminal for reporting purposes

        if self.system.all_correct_decided():
            return
        if self.max_depth is not None and len(self._path) >= self.max_depth:
            result.complete = False
            return
        candidates = self.system.delivery_overtakes()
        if not candidates:
            return

        if self._covered(sleep, remaining, delayed):
            result.merged += 1
            return

        # Deliverable now = affordable and not asleep.  The cost of a
        # delivery is the number of *newly* delayed messages it overtakes;
        # already-delayed ones are paid for.
        runnable: list[tuple[int, tuple[int, ...]]] = []
        for uid, overtakes in candidates:
            if uid in sleep:
                result.slept += 1
                continue
            if remaining is not None:
                cost = sum(1 for other in overtakes if other not in delayed)
                if cost > remaining:
                    result.pruned_budget += 1
                    continue
            runnable.append((uid, overtakes))
        if not runnable:
            return

        # Ample candidate: an undesignated FIFO head.  If its delivery
        # turns out service-free, it forms a singleton persistent set up to
        # the schedules that overtake *it* — siblings targeting other
        # destinations commute with it and stay available in its subtree,
        # and every invariant here is persistent (decisions and outputs are
        # append-only), so a violation behind a sibling ordering is still
        # visible after this delivery.  The overtake-it schedules are
        # covered by one extra branch: *designate* the head as delayed
        # (spend 1, deliver nothing) and re-explore.
        ample = None
        for position, (uid, overtakes) in enumerate(runnable):
            if not overtakes and uid not in delayed:
                ample = position
                break
        if ample is not None and ample > 0:
            runnable.insert(0, runnable.pop(ample))
        can_designate = ample is not None and (remaining is None or remaining >= 1)
        token = (
            self.system.snapshot()
            if len(runnable) > 1 or can_designate
            else None
        )
        if self.adversarial:
            # Budget-hungry descent: take costlier deliveries before
            # cheaper ones.  Covers the same space, just delay-heavy
            # schedules first.
            def _cost(item: tuple[int, tuple[int, ...]]) -> int:
                return -sum(1 for other in item[1] if other not in delayed)

            if ample is not None:
                runnable[1:] = sorted(runnable[1:], key=_cost)
            else:
                runnable.sort(key=_cost)
        local_sleep = set(sleep)
        footprints = self.system.footprints
        for index, (uid, overtakes) in enumerate(runnable):
            if uid in local_sleep:  # woken entries re-sleep as we advance
                continue
            record = self.system.schedule_record(uid)
            dst = self.system.pending[uid].dst
            child_delayed = (delayed | frozenset(overtakes)) - {uid}
            child_remaining = (
                None
                if remaining is None
                else remaining - len(child_delayed - delayed)
            )
            footprint = self.system.deliver(uid)
            result.transitions += 1
            child_sleep = frozenset(
                slept
                for slept in local_sleep
                if self._independent(slept, dst, footprint, footprints)
            )
            self._path.append(record)
            try:
                self._explore(child_sleep, child_remaining, child_delayed)
            finally:
                self._path.pop()
            if index == 0 and ample is not None and not footprint:
                result.collapsed += len(runnable) - 1
                if can_designate:
                    self.system.restore(token)
                    self._explore(
                        sleep,
                        None if remaining is None else remaining - 1,
                        delayed | {uid},
                    )
                return
            if index + 1 < len(runnable):
                self.system.restore(token)
            local_sleep.add(uid)

    def _independent(
        self,
        slept_uid: int,
        delivered_dst: ProcessId,
        delivered_footprint: frozenset[str],
        footprints: dict[int, frozenset[str]],
    ) -> bool:
        slept = self.system.pending.get(slept_uid)
        if slept is None or slept.dst == delivered_dst:
            return False
        slept_footprint = footprints.get(slept_uid, frozenset())
        return not (slept_footprint & delivered_footprint)

    def _keys(self, uids: frozenset[int]) -> _Keys:
        """Content multiset of pending uids (uids from other schedules
        don't align; contents do).  Delivered uids drop out — they no
        longer constrain the future."""
        return tuple(
            sorted(
                self.system.message_key(uid)
                for uid in uids
                if uid in self.system.pending
            )
        )

    def _covered(
        self,
        sleep: frozenset[int],
        remaining: int | None,
        delayed: frozenset[int],
    ) -> bool:
        """State matching with the sleep/budget/delay dominance condition.

        A previous visit covers this one when it was at least as
        permissive in every dimension: fewer sleeping messages, at least
        as much remaining budget, and at least the same set of
        already-paid-for delayed messages.
        """
        fp = self.system.fingerprint()
        entries = self._visited.setdefault(fp, [])
        sleep_keys = self._keys(sleep)
        delayed_keys = self._keys(delayed)
        for prev_sleep, prev_remaining, prev_delayed in entries:
            if (
                _subset(prev_sleep, sleep_keys)
                and _budget_geq(prev_remaining, remaining)
                and _subset(delayed_keys, prev_delayed)
            ):
                return True
        # Keep the list minimal: drop entries the new visit dominates.
        entries[:] = [
            (s, r, d)
            for s, r, d in entries
            if not (
                _subset(sleep_keys, s)
                and _budget_geq(remaining, r)
                and _subset(d, delayed_keys)
            )
        ]
        entries.append((sleep_keys, remaining, delayed_keys))
        return False


def _subset(a: _Keys, b: _Keys) -> bool:
    """Multiset inclusion ``a ⊆ b`` on content-key tuples."""
    if not a:
        return True
    if len(a) > len(b):
        return False
    return not (Counter(a) - Counter(b))


def _budget_geq(a: int | None, b: int | None) -> bool:
    """``a >= b`` where ``None`` means unbounded."""
    if a is None:
        return True
    if b is None:
        return False
    return a >= b
