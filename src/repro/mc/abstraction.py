"""The oracle-IDB abstraction: trusted Identical Broadcast as a service.

The witness-based IDB implementation costs ``n`` init deliveries plus up to
``n²`` echo deliveries *per sender* — at ``n = 7`` that multiplies the
schedule space far beyond exhaustion.  For model checking DEX itself (not
IDB), the embedded IDB can be replaced by a trusted service that grants
exactly the three properties Theorem 4 proves and the DEX proofs consume:

* **Termination** — a correct Id-Send is eventually Id-Received everywhere
  (the service replies to every process immediately; *when* each reply is
  delivered remains a free schedule choice);
* **Agreement** — one value per sender, delivered identically (the service
  keeps the first value per caller; even a Byzantine caller cannot
  equivocate through it, which is precisely IDB's guarantee);
* **Validity** — the delivered value is the one the sender Id-Sent.

Causal accounting matches the real protocol: one IDB step costs two plain
steps (init + echo), so deliveries carry ``depth + 2``.

This is a *sound modular abstraction* for checking DEX: every behavior the
service exhibits is one the real IDB can exhibit (delivery order stays
unconstrained per receiver), so a DEX violation found under the abstraction
maps to a real execution, and verification transfers provided IDB itself is
verified — which the suite does separately against the witness protocol
(:mod:`repro.mc.suite`, check ``idb-n5``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..broadcast.idb import DELIVER_TAG
from ..runtime.effects import Deliver, Effect, ServiceCall
from ..runtime.protocol import Protocol
from ..runtime.services import Service, ServiceReply
from ..types import ProcessId, SystemConfig, Value

#: Default registered name of the trusted IDB service.
IDB_SERVICE_NAME = "oracle-idb"

#: The abstraction's causal cost per IDB step (init + echo).
IDB_STEP_COST = 2


@dataclass(frozen=True, slots=True)
class IdbSend:
    """``Id-Send(value)`` request to the trusted IDB."""

    value: Value


@dataclass(frozen=True, slots=True)
class IdbDeliver:
    """``Id-Receive`` notification: ``origin`` Id-Sent ``value``."""

    origin: ProcessId
    value: Value


class OracleIdbService(Service):
    """Trusted realisation of Identical Broadcast.

    One reply per (sender, destination) pair; the first value per sender
    wins, enforcing IDB agreement against equivocating callers.  Replies
    are addressed along the *caller's* reply path — all honest processes
    embed the IDB child under the same component name, so the path routes
    correctly at every destination (processes without that component drop
    the payload, exactly as they would ignore real IDB traffic).
    """

    def __init__(self, config: SystemConfig, step_cost: int = IDB_STEP_COST) -> None:
        self.config = config
        self.step_cost = step_cost
        self._sent: dict[ProcessId, Value] = {}

    def reset(self) -> None:
        self._sent.clear()

    def on_call(
        self,
        caller: ProcessId,
        payload: Any,
        depth: int,
        time: float,
        reply_path: tuple[str, ...] = (),
    ) -> list[ServiceReply]:
        if not isinstance(payload, IdbSend):
            return []  # garbage from a Byzantine caller
        if caller in self._sent:
            return []  # IDB validity: at most one broadcast per sender
        self._sent[caller] = payload.value
        announcement = IdbDeliver(caller, payload.value)
        return [
            ServiceReply(dst, announcement, depth + self.step_cost, 0.0, reply_path)
            for dst in self.config.processes
        ]


class OracleIdb(Protocol):
    """Process-side adapter with the :class:`IdenticalBroadcast` interface.

    Drop-in for DEX's ``idb`` child via the ``idb_factory`` hook: exposes
    ``id_send`` and surfaces deliveries under the real IDB's
    ``Deliver`` tag, so :class:`~repro.core.dex.DexConsensus` needs no
    changes to run on the abstraction.
    """

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        service: str = IDB_SERVICE_NAME,
    ) -> None:
        super().__init__(process_id, config)
        self.service = service
        self._received: set[ProcessId] = set()

    def id_send(self, value: Value) -> list[Effect]:
        return [ServiceCall(self.service, IdbSend(value))]

    def on_message(self, sender: ProcessId, payload: Any) -> list[Effect]:
        if isinstance(payload, IdbDeliver) and payload.origin not in self._received:
            self._received.add(payload.origin)
            return [Deliver(DELIVER_TAG, payload.origin, payload.value)]
        return []


def oracle_idb_factory(service: str = IDB_SERVICE_NAME):
    """An ``idb_factory`` for :class:`~repro.core.dex.DexConsensus`."""
    return lambda pid, config: OracleIdb(pid, config, service)
