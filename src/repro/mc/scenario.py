"""Serializable scenario specs: one recipe, two runtimes.

A *spec* is a JSON-safe dict describing a protocol composition — algorithm,
``(n, t)``, condition pair, inputs, byzantine assignment, abstraction
choices.  The same spec builds

* an :class:`~repro.mc.state.McSystem` for exploration
  (:func:`build_system`),
* a :class:`~repro.sim.runner.Simulation` for counterexample replay
  (:func:`build_simulation`),
* the invariant set the scenario is checked against
  (:func:`build_invariants`),

so a counterexample carries everything needed to rebuild the execution in
another process.

Byzantine nondeterminism is handled as *choice points at the root*: a
behavior template (equivocation values and targets, crash budgets, UC
poison values) is expanded by :func:`byzantine_variants` into a bounded,
deterministically-ordered list of concrete behavior specs, and each variant
is explored as its own tree.  This trades tree-width inside the DPOR for a
visible, budgetable enumeration — the report says exactly which adversaries
were covered.

:class:`UnderResilientPair` lives here rather than in
:mod:`repro.conditions` because it is deliberately *illegal*: a frequency
pair with its crash-grade margins halved (``P1: gap > 2t``,
``P2: gap > t``), accepted down to ``n > 3t``.  Against a Byzantine
process it loses agreement — the checker finds the trace automatically
(EXPERIMENTS.md E17), which is the point: it demonstrates that the paper's
``n > 5t``/margin requirements are load-bearing, not conservative.
"""

from __future__ import annotations

from typing import Any

from ..broadcast.idb import IdenticalBroadcast
from ..byzantine.adversary import (
    ByzantineBehavior,
    CrashBehavior,
    SilentBehavior,
    TwoFacedBehavior,
)
from ..byzantine.targeted import FallbackSaboteur
from ..conditions.base import ConditionSequencePair
from ..conditions.frequency import FrequencyPair
from ..conditions.privileged import PrivilegedPair
from ..conditions.views import View
from ..core.dex import DexConsensus
from ..errors import ConfigurationError
from ..runtime.protocol import Protocol
from ..sim.latency import LatencyModel
from ..sim.runner import Simulation
from ..sim.scheduler import DeliveryScheduler
from ..types import ProcessId, SystemConfig, Value
from ..underlying.oracle import SERVICE_NAME as UC_SERVICE_NAME
from ..underlying.oracle import OracleService
from .abstraction import IDB_SERVICE_NAME, OracleIdbService, oracle_idb_factory
from .invariants import (
    Agreement,
    DecisionStepBound,
    GuaranteedOneStep,
    IdbConsistency,
    Invariant,
    Unanimity,
)
from .state import McSystem


class UnderResilientPair(FrequencyPair):
    """A frequency pair with crash-grade margins — deliberately illegal.

    ``P1: gap > 2t`` and ``P2: gap > t`` would be adequate against *crash*
    faults; against Byzantine equivocation the halved margins leave room
    for one process to fast-decide on a gap another quorum never sees.
    Used only to demonstrate the resilience boundary (E17).
    """

    required_ratio = 3

    def p1(self, view: View) -> bool:
        return view.frequency_gap() > 2 * self.t

    def p2(self, view: View) -> bool:
        return view.frequency_gap() > self.t


# -- pair registry -------------------------------------------------------------------

def make_pair(spec: dict[str, Any], n: int, t: int) -> ConditionSequencePair:
    kind = spec["kind"]
    enforce = bool(spec.get("enforce_resilience", True))
    if kind == "freq":
        return FrequencyPair(n, t, enforce_resilience=enforce)
    if kind == "prv":
        return PrivilegedPair(
            n, t, spec["privileged"], enforce_resilience=enforce
        )
    if kind == "under-freq":
        return UnderResilientPair(n, t, enforce_resilience=enforce)
    raise ConfigurationError(f"unknown pair kind {kind!r}")


# -- scenario constructors -----------------------------------------------------------

def dex_scenario(
    n: int,
    t: int,
    inputs: list[Value],
    pair: dict[str, Any] | None = None,
    byzantine: dict[int, dict[str, Any]] | None = None,
    oracle_idb: bool = True,
    enforce_resilience: bool = True,
    step_bound: int | None = None,
) -> dict[str, Any]:
    """Build a DEX scenario spec (see module docstring)."""
    if len(inputs) != n:
        raise ConfigurationError(f"need {n} inputs, got {len(inputs)}")
    return {
        "kind": "dex",
        "n": n,
        "t": t,
        "pair": dict(pair or {"kind": "freq"}),
        "inputs": list(inputs),
        "byzantine": {
            str(pid): dict(spec) for pid, spec in (byzantine or {}).items()
        },
        "oracle_idb": bool(oracle_idb),
        "enforce_resilience": bool(enforce_resilience),
        "step_bound": step_bound,
    }


def idb_scenario(
    n: int,
    t: int,
    inputs: list[Value],
    byzantine: dict[int, dict[str, Any]] | None = None,
) -> dict[str, Any]:
    """Build a standalone Identical-Broadcast scenario spec."""
    if len(inputs) != n:
        raise ConfigurationError(f"need {n} inputs, got {len(inputs)}")
    return {
        "kind": "idb",
        "n": n,
        "t": t,
        "inputs": list(inputs),
        "byzantine": {
            str(pid): dict(spec) for pid, spec in (byzantine or {}).items()
        },
    }


# -- builders ------------------------------------------------------------------------

def _faulty(spec: dict[str, Any]) -> frozenset[ProcessId]:
    return frozenset(int(pid) for pid in spec.get("byzantine", {}))


def _correct_inputs(spec: dict[str, Any]) -> dict[ProcessId, Value]:
    faulty = _faulty(spec)
    return {
        pid: value
        for pid, value in enumerate(spec["inputs"])
        if pid not in faulty
    }


def _build_components(
    spec: dict[str, Any]
) -> tuple[SystemConfig, dict[ProcessId, Protocol], dict[str, Any], frozenset[ProcessId]]:
    config = SystemConfig(spec["n"], spec["t"])
    faulty = _faulty(spec)
    if spec["kind"] == "dex":
        services: dict[str, Any] = {UC_SERVICE_NAME: OracleService(config)}
        idb_factory = None
        if spec.get("oracle_idb", True):
            services[IDB_SERVICE_NAME] = OracleIdbService(config)
            idb_factory = oracle_idb_factory()
        enforce = bool(spec.get("enforce_resilience", True))
        pair_spec = dict(spec["pair"])
        pair_spec.setdefault("enforce_resilience", enforce)

        def honest(pid: ProcessId, value: Value) -> DexConsensus:
            return DexConsensus(
                pid,
                config,
                make_pair(pair_spec, config.n, config.t),
                value,
                idb_factory=idb_factory,
                enforce_resilience=enforce,
            )

    elif spec["kind"] == "idb":
        services = {}

        def honest(pid: ProcessId, value: Value) -> IdenticalBroadcast:
            return IdenticalBroadcast(pid, config, initial_value=value)

    else:
        raise ConfigurationError(f"unknown scenario kind {spec['kind']!r}")

    protocols: dict[ProcessId, Protocol] = {}
    for pid in config.processes:
        behavior = spec.get("byzantine", {}).get(str(pid))
        if behavior is None:
            protocols[pid] = honest(pid, spec["inputs"][pid])
        else:
            protocols[pid] = _build_behavior(
                behavior, pid, config, honest, spec["inputs"][pid]
            )
    return config, protocols, services, faulty


def _build_behavior(
    behavior: dict[str, Any],
    pid: ProcessId,
    config: SystemConfig,
    honest,
    base_value: Value,
) -> ByzantineBehavior:
    kind = behavior["kind"]
    if kind == "silent":
        return SilentBehavior(pid, config)
    if kind == "crash":
        return CrashBehavior(honest(pid, base_value), behavior["budget"])
    if kind == "two-faced":
        group_a = frozenset(behavior["group_a"])
        return TwoFacedBehavior(
            honest(pid, behavior["value_a"]),
            honest(pid, behavior["value_b"]),
            group_of=lambda dst: "a" if dst in group_a else "b",
        )
    if kind == "saboteur":
        return FallbackSaboteur(honest(pid, base_value), behavior["uc_value"])
    raise ConfigurationError(f"unknown byzantine kind {kind!r}")


def build_system(spec: dict[str, Any], event_sink=None) -> McSystem:
    """Instantiate a fresh, unstarted :class:`McSystem` from a spec.

    ``event_sink`` (an :class:`~repro.engine.events.EventSink`) makes the
    system emit the cross-engine structured event stream while it runs —
    used by counterexample replay to render traces comparably to every
    other backend.
    """
    config, protocols, services, faulty = _build_components(spec)
    return McSystem(
        config, protocols, services=services, faulty=faulty, event_sink=event_sink
    )


def build_simulation(
    spec: dict[str, Any],
    scheduler: DeliveryScheduler | None = None,
    latency: LatencyModel | None = None,
    seed: int = 0,
    trace: bool = False,
) -> Simulation:
    """Instantiate the *same* composition on the discrete-event simulator."""
    config, protocols, services, faulty = _build_components(spec)
    return Simulation(
        config,
        protocols,
        faulty=faulty,
        latency=latency,
        scheduler=scheduler,
        services=services,
        seed=seed,
        trace=trace,
    )


def build_invariants(spec: dict[str, Any]) -> list[Invariant]:
    """The invariant set a scenario is checked against."""
    if spec["kind"] == "idb":
        return [IdbConsistency()]
    correct_inputs = _correct_inputs(spec)
    pair = make_pair(
        {**spec["pair"], "enforce_resilience": False}, spec["n"], spec["t"]
    )
    invariants: list[Invariant] = [
        Agreement(),
        Unanimity(correct_inputs),
        GuaranteedOneStep(pair, correct_inputs),
    ]
    if spec.get("step_bound") is not None:
        invariants.append(DecisionStepBound(spec["step_bound"]))
    return invariants


# -- bounded byzantine choice --------------------------------------------------------

def byzantine_variants(
    spec: dict[str, Any],
    pid: ProcessId,
    budget: int | None = None,
) -> list[dict[str, Any]]:
    """Enumerate concrete byzantine behaviors for process ``pid``.

    Deterministic order, cheapest adversaries first: silence, partial
    crashes, then every two-faced equivocation over the input-value domain
    crossed with singleton/complement target groups, and (for DEX) the
    underlying-consensus saboteur per domain value.  ``budget`` truncates
    the list; ``None`` keeps all of them.  The returned dicts slot into a
    spec's ``byzantine`` map.
    """
    n = spec["n"]
    correct = [p for p in range(n) if p != pid]
    domain = sorted(set(spec["inputs"]), key=repr)
    variants: list[dict[str, Any]] = [{"kind": "silent"}]
    for crash_budget in sorted({1, n // 2}):
        variants.append({"kind": "crash", "budget": crash_budget})
    seen: set[str] = set()
    # Complement splits (lie to one process, tell the rest the other story)
    # are the canonical equivocation and the most likely to break a
    # protocol, so they come before singleton splits — checks that stop at
    # the first violation, and truncated budgets, meet them first.
    group_kinds = (
        [[p for p in correct if p != c] for c in correct]
        + [[c] for c in correct]
    )
    for group_a in group_kinds:
        for value_a in domain:
            for value_b in domain:
                if value_a == value_b:
                    continue
                key = f"{value_a!r}|{value_b!r}|{group_a!r}"
                if key in seen:
                    continue
                seen.add(key)
                variants.append(
                    {
                        "kind": "two-faced",
                        "value_a": value_a,
                        "value_b": value_b,
                        "group_a": group_a,
                    }
                )
    if spec["kind"] == "dex":
        for value in domain:
            variants.append({"kind": "saboteur", "uc_value": value})
    if budget is not None:
        variants = variants[:budget]
    return variants


def describe_variant(variant: dict[str, Any]) -> str:
    """Short human-readable label for a byzantine variant."""
    kind = variant["kind"]
    if kind == "silent":
        return "silent"
    if kind == "crash":
        return f"crash@{variant['budget']}"
    if kind == "two-faced":
        return (
            f"two-faced({variant['value_a']!r}→{{{','.join(map(str, variant['group_a']))}}}, "
            f"{variant['value_b']!r}→rest)"
        )
    if kind == "saboteur":
        return f"saboteur(uc={variant['uc_value']!r})"
    return kind
